/**
 * @file
 * Reproduces Figure 10: S/D speedups over Java S/D on the
 * microbenchmarks, for Kryo, Cereal-Vanilla (no fine-grained
 * parallelism) and Cereal.
 *
 * Paper headline: Kryo 2.30x (ser) / 52.3x (deser); Cereal 26.5x (ser)
 * / 364.5x (deser); the gap between Cereal Vanilla and Cereal shows
 * how much of the win is the fine-grained (object/block-level)
 * parallelism.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "workloads/harness.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

namespace {

struct Row
{
    double ks, kd, vs, vd, cs, cd;
};

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 64, "fig10_micro_speedup");
    bench::banner(
        "Figure 10: microbenchmark S/D speedup over Java S/D (log scale)",
        "Kryo 2.30x/52.3x, Cereal 26.5x/364.5x (ser/deser averages)");

    const auto &benches = allMicroBenches();
    std::vector<Row> rows(benches.size());
    runner::SweepRunner sweep("fig10_micro_speedup");

    for (std::size_t i = 0; i < benches.size(); ++i) {
        const MicroBench mb = benches[i];
        const std::uint64_t scale = opts.scale;
        sweep.add(microBenchName(mb), [&rows, i, mb,
                                       scale](json::Writer &w) {
            KlassRegistry reg;
            MicroWorkloads micro(reg);
            Heap src(reg, 0x1'0000'0000ULL);
            Addr root = micro.build(src, mb, scale, 42);

            JavaSerializer java;
            KryoSerializer kryo;
            kryo.registerAll(reg);
            auto mj = measureSoftware(java, src, root);
            auto mk = measureSoftware(kryo, src, root);

            AccelConfig vanilla;
            vanilla.pipelined = false;
            auto mv = measureCereal(src, root, vanilla);
            auto mc = measureCereal(src, root);

            rows[i] = {mj.serSeconds / mk.serSeconds,
                       mj.deserSeconds / mk.deserSeconds,
                       mj.serSeconds / mv.serSeconds,
                       mj.deserSeconds / mv.deserSeconds,
                       mj.serSeconds / mc.serSeconds,
                       mj.deserSeconds / mc.deserSeconds};

            mj.writeJson(w, "java");
            mk.writeJson(w, "kryo");
            mv.writeJson(w, "cereal_vanilla");
            mc.writeJson(w, "cereal");
            w.kv("kryo_ser_speedup", rows[i].ks);
            w.kv("kryo_deser_speedup", rows[i].kd);
            w.kv("vanilla_ser_speedup", rows[i].vs);
            w.kv("vanilla_deser_speedup", rows[i].vd);
            w.kv("cereal_ser_speedup", rows[i].cs);
            w.kv("cereal_deser_speedup", rows[i].cd);
        });
    }

    auto avg_of = [&rows](double Row::*m) {
        double s = 0;
        for (const auto &r : rows) {
            s += r.*m;
        }
        return s / static_cast<double>(rows.size());
    };
    sweep.setSummary([&](json::Writer &w) {
        w.kv("kryo_ser_speedup_avg", avg_of(&Row::ks));
        w.kv("kryo_deser_speedup_avg", avg_of(&Row::kd));
        w.kv("vanilla_ser_speedup_avg", avg_of(&Row::vs));
        w.kv("vanilla_deser_speedup_avg", avg_of(&Row::vd));
        w.kv("cereal_ser_speedup_avg", avg_of(&Row::cs));
        w.kv("cereal_deser_speedup_avg", avg_of(&Row::cd));
    });

    bench::runSweep(sweep, opts);

    std::printf("%-13s %10s %10s | %10s %10s | %10s %10s\n", "workload",
                "kryo-ser", "kryo-de", "vanil-ser", "vanil-de",
                "cereal-ser", "cereal-de");
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const Row &r = rows[i];
        std::printf("%-13s %10.2f %10.2f | %10.2f %10.2f | %10.2f %10.2f\n",
                    microBenchName(benches[i]), r.ks, r.kd, r.vs, r.vd,
                    r.cs, r.cd);
    }
    std::printf("%-13s %10.2f %10.2f | %10.2f %10.2f | %10.2f %10.2f\n",
                "average", avg_of(&Row::ks), avg_of(&Row::kd),
                avg_of(&Row::vs), avg_of(&Row::vd), avg_of(&Row::cs),
                avg_of(&Row::cd));
    std::printf("(paper avgs)  %10s %10s | %10s %10s | %10s %10s\n",
                "2.30", "52.3", "-", "-", "26.5", "364.5");
    std::printf("scale divisor: %llu (paper-size graphs / %llu)\n",
                (unsigned long long)opts.scale,
                (unsigned long long)opts.scale);
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
