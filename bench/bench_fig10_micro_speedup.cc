/**
 * @file
 * Reproduces Figure 10: S/D speedups over Java S/D on the
 * microbenchmarks, for Kryo, Cereal-Vanilla (no fine-grained
 * parallelism) and Cereal.
 *
 * Paper headline: Kryo 2.30x (ser) / 52.3x (deser); Cereal 26.5x (ser)
 * / 364.5x (deser); the gap between Cereal Vanilla and Cereal shows
 * how much of the win is the fine-grained (object/block-level)
 * parallelism.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "workloads/harness.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    const std::uint64_t scale = bench::scaleFromArgs(argc, argv);
    bench::banner(
        "Figure 10: microbenchmark S/D speedup over Java S/D (log scale)",
        "Kryo 2.30x/52.3x, Cereal 26.5x/364.5x (ser/deser averages)");

    std::printf("%-13s %10s %10s | %10s %10s | %10s %10s\n", "workload",
                "kryo-ser", "kryo-de", "vanil-ser", "vanil-de",
                "cereal-ser", "cereal-de");

    std::vector<double> ks, kd, vs, vd, cs, cd;
    KlassRegistry reg;
    MicroWorkloads micro(reg);

    for (auto mb : allMicroBenches()) {
        Heap src(reg, 0x1'0000'0000ULL +
                          0x10'0000'0000ULL * static_cast<Addr>(mb));
        Addr root = micro.build(src, mb, scale, 42);

        JavaSerializer java;
        KryoSerializer kryo;
        kryo.registerAll(reg);
        auto mj = measureSoftware(java, src, root);
        auto mk = measureSoftware(kryo, src, root);

        AccelConfig vanilla;
        vanilla.pipelined = false;
        auto mv = measureCereal(src, root, vanilla);
        auto mc = measureCereal(src, root);

        double k_s = mj.serSeconds / mk.serSeconds;
        double k_d = mj.deserSeconds / mk.deserSeconds;
        double v_s = mj.serSeconds / mv.serSeconds;
        double v_d = mj.deserSeconds / mv.deserSeconds;
        double c_s = mj.serSeconds / mc.serSeconds;
        double c_d = mj.deserSeconds / mc.deserSeconds;
        ks.push_back(k_s);
        kd.push_back(k_d);
        vs.push_back(v_s);
        vd.push_back(v_d);
        cs.push_back(c_s);
        cd.push_back(c_d);
        std::printf("%-13s %10.2f %10.2f | %10.2f %10.2f | %10.2f %10.2f\n",
                    microBenchName(mb), k_s, k_d, v_s, v_d, c_s, c_d);
    }

    auto avg = [](const std::vector<double> &x) {
        double s = 0;
        for (double v : x) {
            s += v;
        }
        return s / static_cast<double>(x.size());
    };
    std::printf("%-13s %10.2f %10.2f | %10.2f %10.2f | %10.2f %10.2f\n",
                "average", avg(ks), avg(kd), avg(vs), avg(vd), avg(cs),
                avg(cd));
    std::printf("(paper avgs)  %10s %10s | %10s %10s | %10s %10s\n",
                "2.30", "52.3", "-", "-", "26.5", "364.5");
    std::printf("scale divisor: %llu (paper-size graphs / %llu)\n",
                (unsigned long long)scale, (unsigned long long)scale);
    return 0;
}
