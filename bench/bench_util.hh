/**
 * @file
 * Shared entry point for the figure/table reproduction binaries.
 *
 * Every bench prints a self-describing table: a title line naming the
 * paper figure/table it regenerates, column headers, and the same rows
 * or series the paper reports, followed by the paper's headline
 * numbers for eyeball comparison.
 *
 * Every bench also registers its sweep points with a
 * runner::SweepRunner and accepts a common command line:
 *
 *   bench_<name> [scale] [--threads N] [--json [path]]
 *
 * --threads N runs the independent sweep points on a work-stealing
 * pool; output (stdout tables and JSON) is bit-identical to a serial
 * run because every point builds its own simulation context from
 * explicit seeds and results land in registration-order slots.
 * --json writes the schema-stable BENCH_<name>.json document (default
 * path BENCH_<name>.json in the working directory) — the repo's
 * machine-readable perf trajectory.
 */

#ifndef CEREAL_BENCH_BENCH_UTIL_HH
#define CEREAL_BENCH_BENCH_UTIL_HH

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "runner/sweep_runner.hh"
#include "sim/logging.hh"

namespace cereal {
namespace bench {

/** Parsed common command line of a bench binary. */
struct BenchOptions
{
    /** Scale divisor: paper-size graphs / scale (bench-specific default). */
    std::uint64_t scale = 64;
    /** Sweep-point worker threads (1 = serial reference behaviour). */
    unsigned threads = 1;
    /** Destination for the JSON document; empty = don't write. */
    std::string jsonPath;
};

/** Print the bench banner. */
inline void
banner(const char *experiment, const char *claim)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", experiment);
    std::printf("paper: %s\n", claim);
    std::printf("==============================================================\n");
}

/**
 * Parse (and remove from @p argv) the common bench options, so
 * remaining arguments can be handed to another parser (the
 * google-benchmark bench does this). A bare integer positional sets
 * the scale divisor.
 */
inline BenchOptions
parseArgs(int &argc, char **argv, std::uint64_t default_scale = 64,
          const char *bench_name = nullptr)
{
    BenchOptions opts;
    opts.scale = default_scale;

    auto is_integer = [](const char *s) {
        if (*s == '\0') {
            return false;
        }
        for (; *s; ++s) {
            if (!std::isdigit(static_cast<unsigned char>(*s))) {
                return false;
            }
        }
        return true;
    };

    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--threads") == 0) {
            fatal_if(i + 1 >= argc || !is_integer(argv[i + 1]),
                     "--threads needs a positive integer");
            opts.threads =
                static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
            fatal_if(opts.threads == 0, "--threads must be >= 1");
        } else if (std::strcmp(arg, "--json") == 0) {
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0 &&
                !is_integer(argv[i + 1])) {
                opts.jsonPath = argv[++i];
            } else {
                fatal_if(bench_name == nullptr,
                         "--json with no path needs a bench name default");
                opts.jsonPath = std::string("BENCH_") + bench_name + ".json";
            }
        } else if (std::strcmp(arg, "--help") == 0) {
            std::printf("usage: %s [scale] [--threads N] [--json [path]]\n",
                        argv[0]);
            std::exit(0);
        } else if (is_integer(arg)) {
            opts.scale = std::strtoull(arg, nullptr, 10);
            fatal_if(opts.scale == 0, "scale divisor must be >= 1");
        } else {
            // Unrecognized: keep for a downstream parser.
            argv[out++] = argv[i];
            continue;
        }
    }
    argc = out;
    argv[argc] = nullptr;
    return opts;
}

/**
 * Write the BENCH_<name>.json document when --json was given; the
 * "config" header carries the scale divisor (plus any @p extra pairs)
 * but never the thread count — N-thread output must be byte-identical
 * to serial output.
 */
inline void
writeBenchJson(const runner::SweepRunner &sweep, const BenchOptions &opts,
               std::vector<runner::ConfigKv> extra = {})
{
    if (opts.jsonPath.empty()) {
        return;
    }
    std::vector<runner::ConfigKv> config;
    config.push_back({"scale", opts.scale});
    for (auto &kv : extra) {
        config.push_back(std::move(kv));
    }
    auto path = sweep.writeJsonFile(opts.jsonPath, config);
    std::printf("json: %s\n", path.c_str());
}

} // namespace bench
} // namespace cereal

#endif // CEREAL_BENCH_BENCH_UTIL_HH
