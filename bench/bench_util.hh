/**
 * @file
 * Shared entry point for the figure/table reproduction binaries.
 *
 * Every bench prints a self-describing table: a title line naming the
 * paper figure/table it regenerates, column headers, and the same rows
 * or series the paper reports, followed by the paper's headline
 * numbers for eyeball comparison.
 *
 * Every bench also registers its sweep points with a
 * runner::SweepRunner and parses the one common command line via
 * bench::Options:
 *
 *   bench_<name> [scale] [--threads N] [--json [path]] [--trace <path>]
 *               [--metrics <path> [--metrics-interval N]]
 *
 * --threads N runs the independent sweep points on a work-stealing
 * pool; output (stdout tables, JSON, and traces) is bit-identical to a
 * serial run because every point builds its own simulation context
 * from explicit seeds and results land in registration-order slots.
 * --json writes the schema-stable BENCH_<name>.json document (default
 * path BENCH_<name>.json in the working directory) — the repo's
 * machine-readable perf trajectory. --trace records every point with
 * a per-point trace sink and writes one merged Chrome trace_event
 * document (open in chrome://tracing or https://ui.perfetto.dev) plus
 * a per-component self-time summary on stdout. --metrics samples every
 * instrumented component's time series (see src/metrics) at a fixed
 * tick interval and writes them as CSV (".csv" path) or the Prometheus
 * text exposition format (any other path); the same series are embedded
 * in the --json document. Metrics output is byte-identical across
 * --threads values, like everything else.
 *
 * Unknown flags are fatal: a typoed `--thread 4` silently running
 * serially is exactly the kind of bug a measurement harness must not
 * have.
 */

#ifndef CEREAL_BENCH_BENCH_UTIL_HH
#define CEREAL_BENCH_BENCH_UTIL_HH

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "runner/sweep_runner.hh"
#include "sim/logging.hh"
#include "sim/sim_mode.hh"

namespace cereal {
namespace bench {

/** Parsed common command line of a bench binary. */
class Options
{
  public:
    /** Scale divisor: paper-size graphs / scale (bench-specific default). */
    std::uint64_t scale = 64;
    /** Sweep-point worker threads (1 = serial reference behaviour). */
    unsigned threads = 1;
    /** Destination for the JSON document; empty = don't write. */
    std::string jsonPath;
    /** Destination for the Chrome trace; empty = tracing off. */
    std::string tracePath;
    /** Destination for the metrics export; empty = metrics off.
     *  ".csv" selects long-form CSV, anything else Prometheus text. */
    std::string metricsPath;
    /** Metrics sampling interval, ticks (0 = recorder default). */
    Tick metricsInterval = 0;
    /**
     * Simulation fidelity (--sim-mode cycle|fast|sampled). Fast and
     * sampled modes drop observability, so combining them with
     * --trace/--metrics is fatal rather than silently lossy.
     */
    SimMode simMode = SimMode::CycleAccurate;
    /**
     * Head-based request-trace sampling rate in (0, 1] (--trace-sample;
     * default: every request). Shared by the request-trace layer and
     * the per-request Chrome spans; the decision is a pure seeded hash
     * of the trace id, so it is valid in every sim mode — request
     * traces are reported stats, not observability. Note that sampled
     * frames carry the 16-byte trace-context extension on the wire, so
     * changing the rate shifts simulated wire timing slightly (the
     * honest cost of context propagation); baselines are recorded at
     * the default rate.
     */
    double traceSample = 1.0;

    /**
     * Parse the common bench command line. Unknown arguments are
     * fatal; --help prints usage and exits.
     */
    static Options
    parse(int argc, char **argv, std::uint64_t default_scale = 64,
          const char *bench_name = nullptr)
    {
        return parseImpl(argc, argv, default_scale, bench_name, false);
    }

    /**
     * Like parse(), but leaves `--benchmark_*` flags in argv for a
     * downstream parser (the google-benchmark bench); any other
     * unknown flag is still fatal. @p argc is updated in place.
     */
    static Options
    parsePassthrough(int &argc, char **argv,
                     std::uint64_t default_scale = 64,
                     const char *bench_name = nullptr)
    {
        return parseImpl(argc, argv, default_scale, bench_name, true);
    }

  private:
    static bool
    isInteger(const char *s)
    {
        if (*s == '\0') {
            return false;
        }
        for (; *s; ++s) {
            if (!std::isdigit(static_cast<unsigned char>(*s))) {
                return false;
            }
        }
        return true;
    }

    static Options
    parseImpl(int &argc, char **argv, std::uint64_t default_scale,
              const char *bench_name, bool pass_benchmark_flags)
    {
        Options opts;
        opts.scale = default_scale;

        int out = 1;
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (std::strcmp(arg, "--threads") == 0) {
                fatal_if(i + 1 >= argc || !isInteger(argv[i + 1]),
                         "--threads needs a positive integer");
                opts.threads = static_cast<unsigned>(
                    std::strtoul(argv[++i], nullptr, 10));
                fatal_if(opts.threads == 0, "--threads must be >= 1");
            } else if (std::strcmp(arg, "--json") == 0) {
                if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0 &&
                    !isInteger(argv[i + 1])) {
                    opts.jsonPath = argv[++i];
                } else {
                    fatal_if(bench_name == nullptr,
                             "--json with no path needs a bench name default");
                    opts.jsonPath =
                        std::string("BENCH_") + bench_name + ".json";
                }
            } else if (std::strcmp(arg, "--trace") == 0) {
                fatal_if(i + 1 >= argc, "--trace needs an output path");
                opts.tracePath = argv[++i];
            } else if (std::strcmp(arg, "--metrics") == 0) {
                fatal_if(i + 1 >= argc, "--metrics needs an output path");
                opts.metricsPath = argv[++i];
            } else if (std::strcmp(arg, "--metrics-interval") == 0) {
                fatal_if(i + 1 >= argc || !isInteger(argv[i + 1]),
                         "--metrics-interval needs a positive tick count");
                opts.metricsInterval = std::strtoull(argv[++i], nullptr, 10);
                fatal_if(opts.metricsInterval == 0,
                         "--metrics-interval must be >= 1");
            } else if (std::strcmp(arg, "--trace-sample") == 0) {
                fatal_if(i + 1 >= argc,
                         "--trace-sample needs a rate in (0, 1]");
                char *end = nullptr;
                opts.traceSample = std::strtod(argv[++i], &end);
                fatal_if(end == argv[i] || *end != '\0' ||
                             !(opts.traceSample > 0) ||
                             opts.traceSample > 1,
                         "--trace-sample rate must be in (0, 1], got"
                         " '%s'", argv[i]);
            } else if (std::strcmp(arg, "--sim-mode") == 0) {
                fatal_if(i + 1 >= argc,
                         "--sim-mode needs cycle, fast, or sampled");
                fatal_if(!parseSimMode(argv[++i], opts.simMode),
                         "unknown --sim-mode '%s' (cycle, fast, sampled)",
                         argv[i]);
            } else if (std::strcmp(arg, "--help") == 0) {
                std::printf("usage: %s [scale] [--threads N] [--json [path]]"
                            " [--trace <path>] [--metrics <path>"
                            " [--metrics-interval N]] [--trace-sample R]"
                            " [--sim-mode M]\n",
                            argv[0]);
                std::printf("  scale          scale divisor (default %llu)\n",
                            static_cast<unsigned long long>(default_scale));
                std::printf("  --threads N    run sweep points on N workers"
                            " (output identical to serial)\n");
                std::printf("  --json [path]  write BENCH_<name>.json"
                            " (default BENCH_%s.json)\n",
                            bench_name != nullptr ? bench_name : "<name>");
                std::printf("  --trace <path> write a Chrome trace_event"
                            " JSON profile of every point\n");
                std::printf("  --metrics <path>  write sampled time series"
                            " (.csv = CSV, else Prometheus text)\n");
                std::printf("  --metrics-interval N  sampling interval in"
                            " ticks (default 1000000 = 1us)\n");
                std::printf("  --trace-sample R  head-based request-trace"
                            " sampling rate in (0, 1] (default 1)\n");
                std::printf("  --sim-mode M   cycle (default), fast"
                            " (stat-preserving, observability off),\n"
                            "                 or sampled (shortened serving"
                            " runs, approximate percentiles)\n");
                std::exit(0);
            } else if (isInteger(arg)) {
                opts.scale = std::strtoull(arg, nullptr, 10);
                fatal_if(opts.scale == 0, "scale divisor must be >= 1");
            } else if (pass_benchmark_flags &&
                       std::strncmp(arg, "--benchmark_", 12) == 0) {
                argv[out++] = argv[i];
            } else {
                fatal("unknown argument '%s' (see --help)", arg);
            }
        }
        argc = out;
        argv[argc] = nullptr;
        fatal_if(!simModeObserves(opts.simMode) &&
                     (!opts.tracePath.empty() || !opts.metricsPath.empty()),
                 "--sim-mode %s drops trace/metrics; run cycle-accurate"
                 " to observe", simModeName(opts.simMode));
        return opts;
    }
};

/** Print the bench banner. */
inline void
banner(const char *experiment, const char *claim)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", experiment);
    std::printf("paper: %s\n", claim);
    std::printf("==============================================================\n");
}

/**
 * Execute the sweep under @p opts: enables per-point tracing when
 * --trace was given, then runs on the requested worker count.
 */
inline void
runSweep(runner::SweepRunner &sweep, const Options &opts)
{
    // Set before any sweep thread spawns: configs built inside the
    // points snapshot the global via their default initializers.
    setGlobalSimMode(opts.simMode);
    if (!opts.tracePath.empty()) {
        sweep.enableTrace();
    }
    if (!opts.metricsPath.empty()) {
        sweep.enableMetrics(opts.metricsInterval);
    }
    sweep.run(opts.threads);
}

/**
 * Write the outputs --json/--trace asked for. The JSON "config"
 * header carries the scale divisor (plus any @p extra pairs) but
 * never the thread count — N-thread output must be byte-identical to
 * serial output, and the same holds for the trace document.
 */
inline void
writeBenchOutputs(const runner::SweepRunner &sweep, const Options &opts,
                  std::vector<runner::ConfigKv> extra = {})
{
    if (!opts.jsonPath.empty()) {
        std::vector<runner::ConfigKv> config;
        config.push_back({"scale", opts.scale});
        for (auto &kv : extra) {
            config.push_back(std::move(kv));
        }
        auto path = sweep.writeJsonFile(opts.jsonPath, config);
        std::printf("json: %s\n", path.c_str());
    }
    if (!opts.tracePath.empty()) {
        auto path = sweep.writeTraceFile(opts.tracePath);
        sweep.writeTraceSummary(std::cout);
        std::printf("trace: %s\n", path.c_str());
    }
    if (!opts.metricsPath.empty()) {
        auto path = sweep.writeMetricsFile(opts.metricsPath);
        std::printf("metrics: %s\n", path.c_str());
    }
}

} // namespace bench
} // namespace cereal

#endif // CEREAL_BENCH_BENCH_UTIL_HH
