/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Every bench prints a self-describing table: a title line naming the
 * paper figure/table it regenerates, column headers, and the same rows
 * or series the paper reports, followed by the paper's headline
 * numbers for eyeball comparison.
 */

#ifndef CEREAL_BENCH_BENCH_UTIL_HH
#define CEREAL_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace cereal {
namespace bench {

/** Print the bench banner. */
inline void
banner(const char *experiment, const char *claim)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", experiment);
    std::printf("paper: %s\n", claim);
    std::printf("==============================================================\n");
}

/** Scale divisor: benches accept one optional argv (default 64). */
inline std::uint64_t
scaleFromArgs(int argc, char **argv, std::uint64_t def = 64)
{
    if (argc > 1) {
        return std::strtoull(argv[1], nullptr, 10);
    }
    return def;
}

} // namespace bench
} // namespace cereal

#endif // CEREAL_BENCH_BENCH_UTIL_HH
