/**
 * @file
 * Ablation: operation-level parallelism — throughput of a batch of
 * concurrent S/D commands as the number of SUs/DUs scales from 1 to
 * 32 (Table I ships 8+8).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"
#include "cereal/api.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

namespace {

/** Single-operation latency/traffic measured by the one sweep point. */
struct OpProfile
{
    double serLat = 0, deLat = 0;
    double serBytes = 0, deBytes = 0;
    double peakBw = 0;
};

constexpr int kOps = 32;

/**
 * Schedule the batch greedily over the unit pool. The explicit
 * makespan model (max of unit occupancy and the DRAM bandwidth
 * ceiling) sidesteps the schedule-synchronous DRAM model's
 * cross-operation ordering artifact while keeping both physical
 * limits — unit count and shared bandwidth.
 */
double
makespan(const OpProfile &p, unsigned units, bool ser)
{
    double lat = ser ? p.serLat : p.deLat;
    double bytes = ser ? p.serBytes : p.deBytes;
    double unit_bound =
        std::ceil(static_cast<double>(kOps) / units) * lat;
    double bw_bound = kOps * bytes / p.peakBw;
    return std::max(unit_bound, bw_bound);
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 256, "abl_units");
    bench::banner("Ablation: SU/DU count sweep (operation-level "
                  "parallelism)",
                  "multiple units overlap independent S/D operations; "
                  "returns diminish once DRAM saturates");

    const std::vector<unsigned> unit_counts = {1, 2, 4, 8, 16, 32};
    OpProfile prof;
    runner::SweepRunner sweep("abl_units");

    // One measured point: single-op latency and memory traffic per
    // direction, in its own sim context. The unit sweep itself is
    // analytic and lands in the summary.
    const std::uint64_t scale = opts.scale;
    sweep.add("single-op", [&prof, scale](json::Writer &w) {
        KlassRegistry reg;
        MicroWorkloads micro(reg);
        Heap src(reg);
        Addr root = micro.build(src, MicroBench::TreeNarrow, scale, 42);
        EventQueue eq;
        Dram dram("dram", eq);
        prof.peakBw = dram.config().peakBandwidth();
        CerealContext ctx(dram, AccelConfig());
        ctx.registerAll(reg);
        auto ts = ctx.device().serialize(src, root, 0);
        prof.serLat = ts.latencySeconds;
        prof.serBytes = static_cast<double>(ts.bytes);
        auto stream = ctx.serializer().serializeToStream(src, root);
        Heap dst(reg, 0x9'0000'0000ULL);
        Addr base = ctx.serializer().deserializeStream(stream, dst);
        auto td = ctx.device().deserialize(stream, base, ts.done);
        prof.deLat = td.latencySeconds;
        prof.deBytes = static_cast<double>(td.bytes);
        w.kv("ops", kOps);
        w.kv("ser_op_seconds", prof.serLat);
        w.kv("deser_op_seconds", prof.deLat);
        w.kv("ser_op_bytes", prof.serBytes);
        w.kv("deser_op_bytes", prof.deBytes);
        w.kv("peak_bandwidth", prof.peakBw);
    });

    sweep.setSummary([&](json::Writer &w) {
        const double base_ser = makespan(prof, 1, true);
        const double base_de = makespan(prof, 1, false);
        w.key("units");
        w.beginArray();
        for (unsigned units : unit_counts) {
            double ser_s = makespan(prof, units, true);
            double de_s = makespan(prof, units, false);
            w.beginObject();
            w.kv("units", units);
            w.kv("ser_makespan_seconds", ser_s);
            w.kv("deser_makespan_seconds", de_s);
            w.kv("ser_speedup", base_ser / ser_s);
            w.kv("deser_speedup", base_de / de_s);
            w.endObject();
        }
        w.endArray();
    });

    bench::runSweep(sweep, opts);

    std::printf("%-6s | %14s %10s | %14s %10s\n", "units",
                "ser-makespan", "ser-x", "deser-makespan", "deser-x");
    const double base_ser = makespan(prof, 1, true) * 1e3;
    const double base_de = makespan(prof, 1, false) * 1e3;
    for (unsigned units : unit_counts) {
        double ser_ms = makespan(prof, units, true) * 1e3;
        double de_ms = makespan(prof, units, false) * 1e3;
        std::printf("%-6u | %11.3f ms %9.2fx | %11.3f ms %9.2fx\n",
                    units, ser_ms, base_ser / ser_ms, de_ms,
                    base_de / de_ms);
    }
    std::printf("(speedup saturates when the batch hits the %.1f GB/s "
                "DRAM ceiling)\n",
                prof.peakBw / 1e9);
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
