/**
 * @file
 * Ablation: operation-level parallelism — throughput of a batch of
 * concurrent S/D commands as the number of SUs/DUs scales from 1 to
 * 16 (Table I ships 8+8).
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"
#include "cereal/api.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    const std::uint64_t scale = bench::scaleFromArgs(argc, argv, 256);
    bench::banner("Ablation: SU/DU count sweep (operation-level "
                  "parallelism)",
                  "multiple units overlap independent S/D operations; "
                  "returns diminish once DRAM saturates");

    KlassRegistry reg;
    MicroWorkloads micro(reg);
    Heap src(reg);
    const int kOps = 32;
    std::vector<Addr> roots;
    for (int i = 0; i < kOps; ++i) {
        roots.push_back(
            micro.build(src, MicroBench::TreeNarrow, scale, 42 + i));
    }

    // Measure single-op latency and memory traffic per direction, then
    // schedule the batch greedily over the unit pool. The explicit
    // makespan model (max of unit occupancy and the DRAM bandwidth
    // ceiling) sidesteps the schedule-synchronous DRAM model's
    // cross-operation ordering artifact while keeping both physical
    // limits — unit count and shared bandwidth.
    double ser_lat, de_lat;
    double ser_bytes, de_bytes;
    double peak_bw;
    {
        EventQueue eq;
        Dram dram("dram", eq);
        peak_bw = dram.config().peakBandwidth();
        CerealContext ctx(dram, AccelConfig());
        ctx.registerAll(reg);
        auto ts = ctx.device().serialize(src, roots[0], 0);
        ser_lat = ts.latencySeconds;
        ser_bytes = static_cast<double>(ts.bytes);
        auto stream = ctx.serializer().serializeToStream(src, roots[0]);
        Heap dst(reg, 0x9'0000'0000ULL);
        Addr base = ctx.serializer().deserializeStream(stream, dst);
        auto td = ctx.device().deserialize(stream, base, ts.done);
        de_lat = td.latencySeconds;
        de_bytes = static_cast<double>(td.bytes);
    }

    std::printf("%-6s | %14s %10s | %14s %10s\n", "units",
                "ser-makespan", "ser-x", "deser-makespan", "deser-x");
    double base_ser = 0, base_de = 0;
    for (unsigned units : {1u, 2u, 4u, 8u, 16u, 32u}) {
        auto makespan = [&](double lat, double bytes) {
            double unit_bound =
                std::ceil(static_cast<double>(kOps) / units) * lat;
            double bw_bound = kOps * bytes / peak_bw;
            return std::max(unit_bound, bw_bound);
        };
        double ser_ms = makespan(ser_lat, ser_bytes) * 1e3;
        double de_ms = makespan(de_lat, de_bytes) * 1e3;
        if (units == 1) {
            base_ser = ser_ms;
            base_de = de_ms;
        }
        std::printf("%-6u | %11.3f ms %9.2fx | %11.3f ms %9.2fx\n",
                    units, ser_ms, base_ser / ser_ms, de_ms,
                    base_de / de_ms);
    }
    std::printf("(speedup saturates when the batch hits the %.1f GB/s "
                "DRAM ceiling)\n",
                peak_bw / 1e9);
    return 0;
}
