/**
 * @file
 * Ablation: why CPUs lose — software S/D time as the core's
 * outstanding-miss window (MLP limit) sweeps 1..64. The paper's
 * argument (Section III) is that instruction-window/LSQ limits cap a
 * CPU near ~10 overlapped misses, so even a perfectly tuned software
 * serializer cannot reach accelerator-class bandwidth.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "serde/kryo_serde.hh"
#include "workloads/harness.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    const std::uint64_t scale = bench::scaleFromArgs(argc, argv, 64);
    bench::banner("Ablation: CPU miss-window (MLP) sweep under Kryo",
                  "bounded MLP is the structural CPU limit; gains "
                  "saturate well below accelerator bandwidth");

    KlassRegistry reg;
    MicroWorkloads micro(reg);
    Heap src(reg);
    Addr root = micro.build(src, MicroBench::TreeWide, scale, 42);

    std::printf("%-8s | %10s %8s | %10s %8s\n", "window", "ser(ms)",
                "bw%", "deser(ms)", "bw%");
    for (unsigned w : {1u, 2u, 4u, 10u, 16u, 32u, 64u}) {
        CoreConfig cfg;
        cfg.missWindow = w;
        KryoSerializer kryo;
        kryo.registerAll(reg);
        auto m = measureSoftware(kryo, src, root, cfg);
        std::printf("%-8u | %10.3f %7.2f%% | %10.3f %7.2f%%\n", w,
                    m.serSeconds * 1e3, m.serBandwidth * 100,
                    m.deserSeconds * 1e3, m.deserBandwidth * 100);
    }
    std::printf("(Table I CPU sustains ~10; Cereal's MAI sustains "
                "64)\n");
    return 0;
}
