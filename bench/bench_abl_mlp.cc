/**
 * @file
 * Ablation: why CPUs lose — software S/D time as the core's
 * outstanding-miss window (MLP limit) sweeps 1..64. The paper's
 * argument (Section III) is that instruction-window/LSQ limits cap a
 * CPU near ~10 overlapped misses, so even a perfectly tuned software
 * serializer cannot reach accelerator-class bandwidth.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "serde/kryo_serde.hh"
#include "workloads/harness.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 64, "abl_mlp");
    bench::banner("Ablation: CPU miss-window (MLP) sweep under Kryo",
                  "bounded MLP is the structural CPU limit; gains "
                  "saturate well below accelerator bandwidth");

    const std::vector<unsigned> windows = {1, 2, 4, 10, 16, 32, 64};
    std::vector<SdMeasurement> rows(windows.size());
    runner::SweepRunner sweep("abl_mlp");

    for (std::size_t i = 0; i < windows.size(); ++i) {
        const unsigned w_entries = windows[i];
        const std::uint64_t scale = opts.scale;
        sweep.add(strfmt("window-%u", w_entries),
                  [&rows, i, w_entries, scale](json::Writer &w) {
                      KlassRegistry reg;
                      MicroWorkloads micro(reg);
                      Heap src(reg, 0x1'0000'0000ULL);
                      Addr root =
                          micro.build(src, MicroBench::TreeWide, scale, 42);
                      CoreConfig cfg;
                      cfg.missWindow = w_entries;
                      KryoSerializer kryo;
                      kryo.registerAll(reg);
                      rows[i] = measureSoftware(kryo, src, root, cfg);
                      w.kv("miss_window", w_entries);
                      rows[i].writeJson(w, "kryo");
                  });
    }

    bench::runSweep(sweep, opts);

    std::printf("%-8s | %10s %8s | %10s %8s\n", "window", "ser(ms)",
                "bw%", "deser(ms)", "bw%");
    for (std::size_t i = 0; i < windows.size(); ++i) {
        const auto &m = rows[i];
        std::printf("%-8u | %10.3f %7.2f%% | %10.3f %7.2f%%\n",
                    windows[i], m.serSeconds * 1e3,
                    m.serBandwidth * 100, m.deserSeconds * 1e3,
                    m.deserBandwidth * 100);
    }
    std::printf("(Table I CPU sustains ~10; Cereal's MAI sustains "
                "64)\n");
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
