/**
 * @file
 * End-to-end dataflow jobs (WordCount, TeraSort, PageRank) on the
 * cluster fabric, swept over the six serializer backends.
 *
 * The paper benchmarks serialization inside Spark jobs; this bench
 * transports that claim to the dataflow operator layer: the same job,
 * record-for-record, runs over every backend, so completion-time
 * differences are purely the serde cost on real operator boundaries.
 * Per backend the sweep runs the three jobs at a mild skew, plus a
 * PageRank skew pair (uniform vs hot-vertex) and a WordCount straggler
 * pair (one node serving 4x slower), giving per-backend
 * skew-sensitivity and straggler-stretch ratios.
 *
 * Cross-backend agreement is part of the output: every backend must
 * produce the identical result checksum for each job
 * (`checksum_agree_<job>`), and every run's job-specific invariants
 * must hold (`all_invariants_ok`) — the serializers are interchangeable
 * carriers, never allowed to change the answer.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "bench/summary.hh"
#include "dataflow/job.hh"
#include "serde/registry.hh"

using namespace cereal;
using namespace cereal::dataflow;

namespace {

constexpr unsigned kNodes = 4;
constexpr double kBaseSkew = 0.3;
constexpr double kHotSkew = 0.9;
constexpr double kStragglerFactor = 4.0;

const std::vector<const char *> kJobs = {"wordcount", "terasort",
                                         "pagerank"};

/** Row layout per backend: 3 base jobs, pagerank skew pair, straggler. */
enum RowKind : std::size_t {
    kWordcount = 0,
    kTerasort,
    kPagerank,
    kPagerankUniform,
    kPagerankHot,
    kWordcountStraggler,
    kRowsPerBackend,
};

struct Row
{
    std::string name;
    DataflowConfig cfg;
    DataflowResult r;
};

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 64, "dataflow");
    bench::banner(
        "Dataflow jobs end-to-end: WordCount/TeraSort/PageRank by "
        "serializer",
        "serialization cost on real operator boundaries separates the "
        "backends while every backend computes the identical result");

    const std::uint64_t records =
        std::max<std::uint64_t>(32, 8192 / opts.scale);
    const auto &backends = serde::availableBackends();

    std::vector<Row> rows(backends.size() * kRowsPerBackend);
    runner::SweepRunner sweep("dataflow");

    for (std::size_t b = 0; b < backends.size(); ++b) {
        const std::string &bname = backends[b];

        auto baseConfig = [&, bname](const char *job) {
            DataflowConfig cfg;
            cfg.nodes = kNodes;
            cfg.backend = bname;
            cfg.job = job;
            cfg.recordsPerNode = records;
            cfg.seed = 7;
            cfg.skew = kBaseSkew;
            cfg.profileScale = opts.scale;
            cfg.reqTrace.sampleRate = opts.traceSample;
            return cfg;
        };

        auto addRow = [&](std::size_t kind, std::string name,
                          DataflowConfig cfg) {
            Row &row = rows[b * kRowsPerBackend + kind];
            row.name = std::move(name);
            row.cfg = cfg;
            sweep.add(row.name, [&row](json::Writer &w) {
                row.r = runDataflow(row.cfg);
                w.kv("backend", row.cfg.backend);
                w.kv("job", row.r.job);
                w.kv("nodes", static_cast<std::uint64_t>(row.cfg.nodes));
                w.kv("records_per_node", row.cfg.recordsPerNode);
                w.kv("skew", row.cfg.skew);
                w.kv("straggler_factor", row.cfg.stragglerFactor);
                w.kv("completion_seconds", row.r.completionSeconds);
                w.kv("output_records", row.r.outputRecords);
                w.kv("result_checksum", row.r.resultChecksum);
                w.kv("invariants_ok",
                     static_cast<std::uint64_t>(row.r.invariantsOk));
                w.kv("skew_ratio", row.r.skewRatio);
                w.kv("wire_bytes", row.r.wireBytes);
                w.kv("fabric_batches", row.r.fabricBatches);
                w.key("stages");
                w.beginArray();
                for (const auto &s : row.r.stages) {
                    w.beginObject();
                    w.kv("name", s.name);
                    w.kv("start_seconds", s.startSeconds);
                    w.kv("end_seconds", s.endSeconds);
                    w.kv("batches", s.batches);
                    w.kv("payload_bytes", s.payloadBytes);
                    w.kv("stream_bytes", s.streamBytes);
                    w.kv("records_in", s.recordsIn);
                    w.kv("records_out", s.recordsOut);
                    w.kv("skew_ratio", s.skewRatio);
                    w.key("crit");
                    s.crit.writeJson(w);
                    w.endObject();
                }
                w.endArray();
            });
        };

        addRow(kWordcount, bname + "-wordcount",
               baseConfig("wordcount"));
        addRow(kTerasort, bname + "-terasort", baseConfig("terasort"));
        addRow(kPagerank, bname + "-pagerank", baseConfig("pagerank"));

        auto uniform = baseConfig("pagerank");
        uniform.skew = 0.0;
        addRow(kPagerankUniform, bname + "-pagerank-skew0", uniform);
        auto hot = baseConfig("pagerank");
        hot.skew = kHotSkew;
        addRow(kPagerankHot, bname + "-pagerank-skew90", hot);

        auto strag = baseConfig("wordcount");
        strag.stragglerFactor = kStragglerFactor;
        strag.stragglerNode = 1;
        addRow(kWordcountStraggler, bname + "-wordcount-strag4", strag);
    }

    auto row = [&](std::size_t b, std::size_t kind) -> const Row & {
        return rows[b * kRowsPerBackend + kind];
    };
    auto backendIndex = [&](const std::string &name) {
        for (std::size_t b = 0; b < backends.size(); ++b) {
            if (backends[b] == name) {
                return b;
            }
        }
        fatal("no backend '%s'", name.c_str());
    };

    bench::setSummary(sweep, [&](bench::Summary &s) {
        bool all_ok = true;
        bool all_crit = true;
        for (std::size_t b = 0; b < backends.size(); ++b) {
            for (std::size_t k = 0; k < kRowsPerBackend; ++k) {
                all_ok = all_ok && row(b, k).r.invariantsOk;
                for (const auto &st : row(b, k).r.stages) {
                    all_crit = all_crit &&
                               (!st.crit.valid || st.crit.conserves());
                }
            }
        }
        const std::size_t java = backendIndex("java");
        const std::size_t cer = backendIndex("cereal");
        for (std::size_t b = 0; b < backends.size(); ++b) {
            const std::string &n = backends[b];
            s.kv("wordcount_completion_s_" + n,
                 row(b, kWordcount).r.completionSeconds);
            s.kv("terasort_completion_s_" + n,
                 row(b, kTerasort).r.completionSeconds);
            s.kv("pagerank_completion_s_" + n,
                 row(b, kPagerank).r.completionSeconds);
            s.ratio("pagerank_skew_sensitivity_" + n,
                    row(b, kPagerankHot).r.completionSeconds,
                    row(b, kPagerankUniform).r.completionSeconds);
            s.ratio("wordcount_straggler_stretch_" + n,
                    row(b, kWordcountStraggler).r.completionSeconds,
                    row(b, kWordcount).r.completionSeconds);
            // Critical-path attribution for the straggler run: the
            // segment bounding the slowest exchanged stage, through
            // the shared key builder (same scheme as
            // bench_serving_knee's exemplar keys).
            const trace::StageCriticalPath *worst = nullptr;
            for (const auto &st : row(b, kWordcountStraggler).r.stages) {
                if (st.crit.valid &&
                    (worst == nullptr || st.crit.total > worst->total)) {
                    worst = &st.crit;
                }
            }
            if (worst != nullptr) {
                s.exemplar("crit", n, worst->dominant(),
                           worst->total > 0
                               ? static_cast<double>(std::max(
                                     {worst->mapQueue, worst->serialize,
                                      worst->wire, worst->rxQueue,
                                      worst->deserialize,
                                      worst->reduce})) /
                                     static_cast<double>(worst->total)
                               : 0.0);
                s.kv("crit_straggler_node_" + n,
                     static_cast<std::uint64_t>(worst->node));
            } else {
                s.exemplar("crit", n, "unresolved", 0.0);
                s.kv("crit_straggler_node_" + n, std::uint64_t{0});
            }
        }
        for (std::size_t j = 0; j < kJobs.size(); ++j) {
            bool agree = true;
            for (std::size_t b = 1; b < backends.size(); ++b) {
                agree = agree && row(b, j).r.resultChecksum ==
                                     row(0, j).r.resultChecksum;
            }
            s.flag(std::string("checksum_agree_") + kJobs[j], agree);
        }
        for (std::size_t j = 0; j < kJobs.size(); ++j) {
            s.ratio(std::string("cereal_speedup_vs_java_") + kJobs[j],
                    row(java, j).r.completionSeconds,
                    row(cer, j).r.completionSeconds);
        }
        s.flag("all_invariants_ok", all_ok);
        s.flag("all_crit_conserved", all_crit);
    });

    bench::runSweep(sweep, opts);

    std::printf("%-9s | %9s %9s %9s | %9s %9s\n", "backend", "wc(ms)",
                "ts(ms)", "pr(ms)", "skew-sens", "strag-x");
    for (std::size_t b = 0; b < backends.size(); ++b) {
        const double uni =
            row(b, kPagerankUniform).r.completionSeconds;
        const double base = row(b, kWordcount).r.completionSeconds;
        std::printf("%-9s | %9.3f %9.3f %9.3f | %9.2f %9.2f\n",
                    backends[b].c_str(),
                    row(b, kWordcount).r.completionSeconds * 1e3,
                    row(b, kTerasort).r.completionSeconds * 1e3,
                    row(b, kPagerank).r.completionSeconds * 1e3,
                    uni > 0 ? row(b, kPagerankHot).r.completionSeconds /
                                  uni
                            : 0.0,
                    base > 0 ?
                        row(b, kWordcountStraggler).r.completionSeconds /
                            base
                             : 0.0);
    }
    std::printf("(every backend must agree on each job's result "
                "checksum; completion separates the serializers, the "
                "answer never moves)\n");

    bench::writeBenchOutputs(sweep, opts,
                             {{"nodes", kNodes},
                              {"records_per_node", records}});
    return 0;
}
