/**
 * @file
 * Shared summary-key builder for the bench executables.
 *
 * Every sweep bench ends with a flat `summary` object of derived
 * headline keys — speedups, dominance flags, knees, skew ratios — that
 * the CI gates grep and bench_compare floors. Before this builder each
 * bench hand-rolled the emission (and the `static_cast<std::uint64_t>`
 * bool dance) inside its setSummary lambda; now they build entries
 * through one interface and the emission lives here. Keys are written
 * in insertion order, which keeps the JSON byte-identical for a fixed
 * build order and therefore safe for the determinism gate.
 */

#ifndef CEREAL_BENCH_SUMMARY_HH
#define CEREAL_BENCH_SUMMARY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "runner/sweep_runner.hh"
#include "sim/json.hh"

namespace cereal {
namespace bench {

/** Insertion-ordered builder for a bench's summary object. */
class Summary
{
  public:
    Summary &
    kv(std::string key, double v)
    {
        entries_.push_back({std::move(key), Tag::F64, 0, v, {}});
        return *this;
    }

    Summary &
    kv(std::string key, std::uint64_t v)
    {
        entries_.push_back({std::move(key), Tag::U64, v, 0, {}});
        return *this;
    }

    Summary &
    kv(std::string key, std::string v)
    {
        entries_.push_back(
            {std::move(key), Tag::Str, 0, 0, std::move(v)});
        return *this;
    }

    /** Booleans land as 0/1 so bench_compare can floor them. */
    Summary &
    flag(std::string key, bool v)
    {
        return kv(std::move(key), std::uint64_t{v ? 1u : 0u});
    }

    /** num/den with the standard zero-denominator guard (emits 0). */
    Summary &
    ratio(std::string key, double num, double den)
    {
        return kv(std::move(key), den > 0 ? num / den : 0.0);
    }

    /**
     * The shared exemplar-key pair for a tail quantile: which segment
     * dominated backend @p backend's @p what (e.g. "p99") exemplar and
     * that segment's fraction of the exemplar's latency. One builder
     * for both bench_serving_knee and bench_dataflow, so the key
     * scheme cannot drift between them:
     *
     *   exemplar_<what>_segment_<backend> = "<segment>"
     *   exemplar_<what>_fraction_<backend> = <fraction>
     */
    Summary &
    exemplar(const std::string &what, const std::string &backend,
             const std::string &segment, double fraction)
    {
        kv("exemplar_" + what + "_segment_" + backend, segment);
        return kv("exemplar_" + what + "_fraction_" + backend, fraction);
    }

    void
    writeJson(json::Writer &w) const
    {
        for (const auto &e : entries_) {
            switch (e.tag) {
            case Tag::F64:
                w.kv(e.key, e.f);
                break;
            case Tag::U64:
                w.kv(e.key, e.u);
                break;
            case Tag::Str:
                w.kv(e.key, e.s);
                break;
            }
        }
    }

  private:
    enum class Tag { U64, F64, Str };

    struct Entry
    {
        std::string key;
        Tag tag;
        std::uint64_t u;
        double f;
        std::string s;
    };

    std::vector<Entry> entries_;
};

/**
 * Install @p build as the sweep's summary: the callback fills a
 * Summary (running after all rows have executed) and the shared
 * emission path writes it.
 */
inline void
setSummary(runner::SweepRunner &sweep,
           std::function<void(Summary &)> build)
{
    sweep.setSummary([build = std::move(build)](json::Writer &w) {
        Summary s;
        build(s);
        s.writeJson(w);
    });
}

} // namespace bench
} // namespace cereal

#endif // CEREAL_BENCH_SUMMARY_HH
