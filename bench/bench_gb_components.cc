/**
 * @file
 * google-benchmark microbenchmarks of the host-side hot components:
 * the object packer/unpacker, the functional serializers, and graph
 * construction/traversal. These measure *simulator* throughput (wall
 * clock), complementing the simulated-time figure benches.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_util.hh"
#include "cereal/cereal_serializer.hh"
#include "cereal/format.hh"
#include "heap/walker.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "serde/registry.hh"
#include "serde/skyway_serde.hh"
#include "sim/rng.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

namespace {

void
BM_PackerValues(benchmark::State &state)
{
    Rng rng(1);
    std::vector<std::uint64_t> vals(4096);
    for (auto &v : vals) {
        v = rng.below(1 << 20);
    }
    for (auto _ : state) {
        ObjectPacker p;
        for (auto v : vals) {
            p.packValue(v);
        }
        benchmark::DoNotOptimize(p.buckets().data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            4096);
}
BENCHMARK(BM_PackerValues);

void
BM_UnpackerValues(benchmark::State &state)
{
    Rng rng(1);
    ObjectPacker p;
    for (int i = 0; i < 4096; ++i) {
        p.packValue(rng.below(1 << 20));
    }
    for (auto _ : state) {
        ObjectUnpacker u(p.buckets(), p.endMap());
        std::uint64_t sum = 0;
        while (!u.done()) {
            sum += u.nextValue();
        }
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            4096);
}
BENCHMARK(BM_UnpackerValues);

/** Shared workload fixture: tree of `state.range(0)` nodes. */
struct Graph
{
    Graph(std::uint64_t nodes)
        : micro(reg), heap(reg)
    {
        Rng rng(7);
        root = micro.buildTree(heap, 2, nodes, rng);
    }
    KlassRegistry reg;
    MicroWorkloads micro;
    Heap heap;
    Addr root;
};

void
BM_SerializeJava(benchmark::State &state)
{
    Graph g(static_cast<std::uint64_t>(state.range(0)));
    JavaSerializer ser;
    for (auto _ : state) {
        auto bytes = ser.serialize(g.heap, g.root);
        benchmark::DoNotOptimize(bytes.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerializeJava)->Arg(1023)->Arg(16383);

void
BM_SerializeKryo(benchmark::State &state)
{
    Graph g(static_cast<std::uint64_t>(state.range(0)));
    KryoSerializer ser;
    ser.registerAll(g.reg);
    for (auto _ : state) {
        auto bytes = ser.serialize(g.heap, g.root);
        benchmark::DoNotOptimize(bytes.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerializeKryo)->Arg(1023)->Arg(16383);

void
BM_SerializeSkyway(benchmark::State &state)
{
    Graph g(static_cast<std::uint64_t>(state.range(0)));
    SkywaySerializer ser;
    for (auto _ : state) {
        auto bytes = ser.serialize(g.heap, g.root);
        benchmark::DoNotOptimize(bytes.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerializeSkyway)->Arg(1023)->Arg(16383);

void
BM_SerializeCereal(benchmark::State &state)
{
    Graph g(static_cast<std::uint64_t>(state.range(0)));
    CerealSerializer ser;
    ser.registerAll(g.reg);
    for (auto _ : state) {
        auto bytes = ser.serialize(g.heap, g.root);
        benchmark::DoNotOptimize(bytes.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerializeCereal)->Arg(1023)->Arg(16383);

void
BM_RoundTripCereal(benchmark::State &state)
{
    Graph g(static_cast<std::uint64_t>(state.range(0)));
    CerealSerializer ser;
    ser.registerAll(g.reg);
    for (auto _ : state) {
        auto bytes = ser.serialize(g.heap, g.root);
        Heap dst(g.reg, 0x9'0000'0000ULL);
        Addr nr = ser.deserialize(bytes, dst);
        benchmark::DoNotOptimize(nr);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RoundTripCereal)->Arg(1023)->Arg(16383);

void
BM_GraphWalk(benchmark::State &state)
{
    Graph g(static_cast<std::uint64_t>(state.range(0)));
    GraphWalker w(g.heap);
    for (auto _ : state) {
        auto gs = w.stats(g.root);
        benchmark::DoNotOptimize(gs.objectCount);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GraphWalk)->Arg(1023)->Arg(16383);

/**
 * Deterministic sweep for the --json document: wall-clock timings vary
 * run to run, so the machine-readable output reports the simulator's
 * deterministic work metrics (stream bytes, bucket counts) for the
 * same components google-benchmark times.
 */
void
addComponentPoints(runner::SweepRunner &sweep, std::uint64_t nodes)
{
    sweep.add("packer", [](json::Writer &w) {
        Rng rng(1);
        ObjectPacker p;
        for (int i = 0; i < 4096; ++i) {
            p.packValue(rng.below(1 << 20));
        }
        w.kv("values", 4096);
        w.kv("bucket_bytes", static_cast<std::uint64_t>(p.buckets().size()));
        w.kv("end_map_bytes", static_cast<std::uint64_t>(p.endMap().size()));
    });
    for (const auto &name : serde::availableBackends()) {
        sweep.add("serialize-" + name, [name, nodes](json::Writer &w) {
            Graph g(nodes);
            auto ser = serde::makeSerializer(name, &g.reg);
            auto bytes = ser->serialize(g.heap, g.root);
            GraphWalker walker(g.heap);
            auto gs = walker.stats(g.root);
            w.kv("nodes", nodes);
            w.kv("objects", gs.objectCount);
            w.kv("stream_bytes",
                 static_cast<std::uint64_t>(bytes.size()));
        });
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the repo-common flags first; whatever remains goes to
    // google-benchmark's own parser.
    auto opts = cereal::bench::Options::parsePassthrough(
        argc, argv, 1023, "gb_components");
    if (!opts.jsonPath.empty() || !opts.tracePath.empty() ||
        opts.threads > 1) {
        runner::SweepRunner sweep("gb_components");
        addComponentPoints(sweep, opts.scale);
        cereal::bench::runSweep(sweep, opts);
        cereal::bench::writeBenchOutputs(sweep, opts);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
