# The fast-forward equivalence gate: runs a bench binary twice -- once
# cycle-accurate (the default) and once with --sim-mode fast -- and
# fails unless the two JSON documents are byte-identical. This is the
# enforcement of the fast-forward contract: every stat the mode claims
# to preserve IS preserved, exactly, not approximately. Invoked by
# ctest (see add_test in CMakeLists.txt) with:
#   -DBENCH=<path to bench binary> -DWORKDIR=<scratch dir> -DNAME=<id>

set(scale 256)
set(json_cycle ${WORKDIR}/${NAME}_cycle.json)
set(json_fast ${WORKDIR}/${NAME}_fast.json)

execute_process(
  COMMAND ${BENCH} ${scale} --json ${json_cycle}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "${BENCH} (cycle mode) failed (rc=${rc}):\n"
          "${stdout}\n${stderr}")
endif()

execute_process(
  COMMAND ${BENCH} ${scale} --sim-mode fast --json ${json_fast}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "${BENCH} (fast mode) failed (rc=${rc}):\n"
          "${stdout}\n${stderr}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${json_cycle} ${json_fast}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "--sim-mode fast changed the reported stats: ${json_cycle} "
          "vs ${json_fast} differ. Fast-forward must preserve every "
          "reported stat byte-identically; it may only drop "
          "observability (trace/metrics/stall attribution).")
endif()
