/**
 * @file
 * Reproduces Figure 3: CPU-side S/D process analysis on the
 * microbenchmarks — (a) IPC, (b) LLC miss rate, (c) DRAM bandwidth
 * utilisation, (d) Kryo speedup over Java S/D.
 *
 * Paper headline: average IPC ~1.01 (Java) and 0.96 (Kryo), high LLC
 * miss rates, and <5% bandwidth utilisation for both — the structural
 * CPU limits motivating the accelerator.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "workloads/harness.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    const std::uint64_t scale = bench::scaleFromArgs(argc, argv);
    bench::banner("Figure 3: S/D process analysis (Java S/D vs Kryo)",
                  "IPC ~1.0; high LLC miss rate; <5% DRAM bandwidth; "
                  "modest Kryo speedup");

    std::printf("%-13s | %5s %5s | %6s %6s | %6s %6s | %7s\n", "workload",
                "ipcJ", "ipcK", "llcJ", "llcK", "bwJ%", "bwK%",
                "kryoSpd");

    std::vector<double> ipcj, ipck, bwj, bwk;
    KlassRegistry reg;
    MicroWorkloads micro(reg);

    for (auto mb : allMicroBenches()) {
        Heap src(reg, 0x1'0000'0000ULL +
                          0x10'0000'0000ULL * static_cast<Addr>(mb));
        Addr root = micro.build(src, mb, scale, 42);
        JavaSerializer java;
        KryoSerializer kryo;
        kryo.registerAll(reg);
        auto mj = measureSoftware(java, src, root);
        auto mk = measureSoftware(kryo, src, root);

        // Weighted over both directions, as the figure reports the S/D
        // process as a whole.
        auto combine = [](double ser, double de, double ws, double wd) {
            return (ser * ws + de * wd) / (ws + wd);
        };
        double ipc_j = combine(mj.serIpc, mj.deserIpc, mj.serSeconds,
                               mj.deserSeconds);
        double ipc_k = combine(mk.serIpc, mk.deserIpc, mk.serSeconds,
                               mk.deserSeconds);
        double llc_j = combine(mj.serLlcMissRate, mj.deserLlcMissRate,
                               mj.serSeconds, mj.deserSeconds);
        double llc_k = combine(mk.serLlcMissRate, mk.deserLlcMissRate,
                               mk.serSeconds, mk.deserSeconds);
        double bw_j = combine(mj.serBandwidth, mj.deserBandwidth,
                              mj.serSeconds, mj.deserSeconds);
        double bw_k = combine(mk.serBandwidth, mk.deserBandwidth,
                              mk.serSeconds, mk.deserSeconds);
        double spd = (mj.serSeconds + mj.deserSeconds) /
                     (mk.serSeconds + mk.deserSeconds);

        ipcj.push_back(ipc_j);
        ipck.push_back(ipc_k);
        bwj.push_back(bw_j);
        bwk.push_back(bw_k);
        std::printf("%-13s | %5.2f %5.2f | %6.2f %6.2f | %6.2f %6.2f | "
                    "%7.2f\n",
                    microBenchName(mb), ipc_j, ipc_k, llc_j, llc_k,
                    bw_j * 100, bw_k * 100, spd);
    }

    auto avg = [](const std::vector<double> &x) {
        double s = 0;
        for (double v : x) {
            s += v;
        }
        return s / static_cast<double>(x.size());
    };
    std::printf("%-13s | %5.2f %5.2f |  (avg) | %6.2f %6.2f |\n",
                "average", avg(ipcj), avg(ipck), avg(bwj) * 100,
                avg(bwk) * 100);
    std::printf("(paper)       |  1.01  0.96 |  high  | "
                "~2.7-3.5 ~4.1-4.5 |\n");
    return 0;
}
