/**
 * @file
 * Reproduces Figure 3: CPU-side S/D process analysis on the
 * microbenchmarks — (a) IPC, (b) LLC miss rate, (c) DRAM bandwidth
 * utilisation, (d) Kryo speedup over Java S/D.
 *
 * Paper headline: average IPC ~1.01 (Java) and 0.96 (Kryo), high LLC
 * miss rates, and <5% bandwidth utilisation for both — the structural
 * CPU limits motivating the accelerator.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "workloads/harness.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

namespace {

struct Row
{
    double ipcJ, ipcK, llcJ, llcK, bwJ, bwK, spd;
};

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 64, "fig03_sd_analysis");
    bench::banner("Figure 3: S/D process analysis (Java S/D vs Kryo)",
                  "IPC ~1.0; high LLC miss rate; <5% DRAM bandwidth; "
                  "modest Kryo speedup");

    const auto &benches = allMicroBenches();
    std::vector<Row> rows(benches.size());
    runner::SweepRunner sweep("fig03_sd_analysis");

    for (std::size_t i = 0; i < benches.size(); ++i) {
        const MicroBench mb = benches[i];
        const std::uint64_t scale = opts.scale;
        sweep.add(microBenchName(mb), [&rows, i, mb,
                                       scale](json::Writer &w) {
            KlassRegistry reg;
            MicroWorkloads micro(reg);
            Heap src(reg, 0x1'0000'0000ULL);
            Addr root = micro.build(src, mb, scale, 42);
            JavaSerializer java;
            KryoSerializer kryo;
            kryo.registerAll(reg);
            auto mj = measureSoftware(java, src, root);
            auto mk = measureSoftware(kryo, src, root);

            // Weighted over both directions, as the figure reports the
            // S/D process as a whole.
            auto combine = [](double ser, double de, double ws,
                              double wd) {
                return (ser * ws + de * wd) / (ws + wd);
            };
            rows[i] = {combine(mj.serIpc, mj.deserIpc, mj.serSeconds,
                               mj.deserSeconds),
                       combine(mk.serIpc, mk.deserIpc, mk.serSeconds,
                               mk.deserSeconds),
                       combine(mj.serLlcMissRate, mj.deserLlcMissRate,
                               mj.serSeconds, mj.deserSeconds),
                       combine(mk.serLlcMissRate, mk.deserLlcMissRate,
                               mk.serSeconds, mk.deserSeconds),
                       combine(mj.serBandwidth, mj.deserBandwidth,
                               mj.serSeconds, mj.deserSeconds),
                       combine(mk.serBandwidth, mk.deserBandwidth,
                               mk.serSeconds, mk.deserSeconds),
                       (mj.serSeconds + mj.deserSeconds) /
                           (mk.serSeconds + mk.deserSeconds)};

            mj.writeJson(w, "java");
            mk.writeJson(w, "kryo");
            w.kv("ipc_java", rows[i].ipcJ);
            w.kv("ipc_kryo", rows[i].ipcK);
            w.kv("llc_miss_rate_java", rows[i].llcJ);
            w.kv("llc_miss_rate_kryo", rows[i].llcK);
            w.kv("bandwidth_java", rows[i].bwJ);
            w.kv("bandwidth_kryo", rows[i].bwK);
            w.kv("kryo_speedup", rows[i].spd);
        });
    }

    auto avg_of = [&rows](double Row::*m) {
        double s = 0;
        for (const auto &r : rows) {
            s += r.*m;
        }
        return s / static_cast<double>(rows.size());
    };
    sweep.setSummary([&](json::Writer &w) {
        w.kv("ipc_java_avg", avg_of(&Row::ipcJ));
        w.kv("ipc_kryo_avg", avg_of(&Row::ipcK));
        w.kv("bandwidth_java_avg", avg_of(&Row::bwJ));
        w.kv("bandwidth_kryo_avg", avg_of(&Row::bwK));
        w.kv("kryo_speedup_avg", avg_of(&Row::spd));
    });

    bench::runSweep(sweep, opts);

    std::printf("%-13s | %5s %5s | %6s %6s | %6s %6s | %7s\n", "workload",
                "ipcJ", "ipcK", "llcJ", "llcK", "bwJ%", "bwK%",
                "kryoSpd");
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const Row &r = rows[i];
        std::printf("%-13s | %5.2f %5.2f | %6.2f %6.2f | %6.2f %6.2f | "
                    "%7.2f\n",
                    microBenchName(benches[i]), r.ipcJ, r.ipcK, r.llcJ,
                    r.llcK, r.bwJ * 100, r.bwK * 100, r.spd);
    }
    std::printf("%-13s | %5.2f %5.2f |  (avg) | %6.2f %6.2f |\n",
                "average", avg_of(&Row::ipcJ), avg_of(&Row::ipcK),
                avg_of(&Row::bwJ) * 100, avg_of(&Row::bwK) * 100);
    std::printf("(paper)       |  1.01  0.96 |  high  | "
                "~2.7-3.5 ~4.1-4.5 |\n");
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
