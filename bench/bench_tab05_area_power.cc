/**
 * @file
 * Reproduces Table V: per-module area and power of Cereal, rebuilt
 * from the per-instance synthesis constants and the configured unit
 * counts.
 *
 * Paper headline: total 3.857 mm^2 and 1231.6 mW at 40 nm — 612.5x
 * less area and 113.7x less power than the host i7-7820X.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "cereal/area_power.hh"

using namespace cereal;

namespace {

void
printGroup(const char *title, const std::vector<ModuleSpec> &mods)
{
    std::printf("%s\n", title);
    double area = 0, power = 0;
    for (const auto &m : mods) {
        std::printf("  %-26s %8.3f mm2 %8.1f mW  x%-3u -> %8.3f mm2 "
                    "%8.1f mW\n",
                    m.name.c_str(), m.areaMm2, m.powerMw, m.count,
                    m.totalArea(), m.totalPower());
        area += m.totalArea();
        power += m.totalPower();
    }
    std::printf("  %-26s %35s %8.3f mm2 %8.1f mW\n", "subtotal", "",
                area, power);
}

void
jsonGroup(json::Writer &w, const char *key,
          const std::vector<ModuleSpec> &mods)
{
    w.key(key);
    w.beginArray();
    for (const auto &m : mods) {
        w.beginObject();
        w.kv("name", m.name);
        w.kv("area_mm2", m.areaMm2);
        w.kv("power_mw", m.powerMw);
        w.kv("count", m.count);
        w.kv("total_area_mm2", m.totalArea());
        w.kv("total_power_mw", m.totalPower());
        w.endObject();
    }
    w.endArray();
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 1, "tab05_area_power");
    bench::banner("Table V: area/power breakdown of Cereal (40 nm)",
                  "total 3.857 mm^2 / 1231.6 mW; 612.5x less area and "
                  "113.7x less power than the host CPU");

    // A single analytic point: the module table is rebuilt from the
    // synthesis constants, no timing simulation involved.
    runner::SweepRunner sweep("tab05_area_power");
    sweep.add("cereal", [](json::Writer &w) {
        AreaPowerModel m;
        jsonGroup(w, "serializer_modules", m.serializerModules());
        jsonGroup(w, "deserializer_modules", m.deserializerModules());
        jsonGroup(w, "system_modules", m.systemModules());
        w.kv("total_area_mm2", m.totalAreaMm2());
        w.kv("total_power_mw", m.totalPowerMw());
        w.kv("host_area_ratio",
             AreaPowerModel::kHostDieAreaMm2 / m.totalAreaMm2());
        w.kv("host_power_ratio",
             AreaPowerModel::kHostTdpWatts / (m.totalPowerMw() * 1e-3));
    });
    bench::runSweep(sweep, opts);

    AreaPowerModel m;
    printGroup("Serializer (per-unit modules):", m.serializerModules());
    printGroup("Deserializer (per-unit modules):",
               m.deserializerModules());
    printGroup("System:", m.systemModules());

    std::printf("------------------------------------------------------\n");
    std::printf("total: %.3f mm2, %.1f mW  (paper: 3.857 mm2, "
                "1231.6 mW)\n",
                m.totalAreaMm2(), m.totalPowerMw());
    std::printf("host-CPU area ratio:  %.1fx smaller (paper 612.5x)\n",
                AreaPowerModel::kHostDieAreaMm2 / m.totalAreaMm2());
    std::printf("host-CPU power ratio: %.1fx lower (paper 113.7x)\n",
                AreaPowerModel::kHostTdpWatts /
                    (m.totalPowerMw() * 1e-3));
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
