/**
 * @file
 * Reproduces Figure 14: whole-program speedups on the six Spark
 * applications when Cereal accelerates the S/D phase.
 *
 * Paper headline: 1.81x over Java S/D (up to 4.66x) and 1.69x over
 * Kryo (up to 4.53x).
 */

#include <cstdio>

#include "bench/spark_common.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    const std::uint64_t scale = bench::scaleFromArgs(argc, argv, 8);
    bench::banner("Figure 14: Spark whole-program speedups with Cereal",
                  "1.81x avg / 4.66x max over Java S/D; 1.69x avg / "
                  "4.53x max over Kryo");

    auto rows = bench::measureSparkApps(scale);

    std::printf("%-10s | %14s %14s\n", "app", "vs java-config",
                "vs kryo-config");
    std::vector<double> vj, vk;
    for (const auto &r : rows) {
        // Program with Java serializer -> program with Cereal.
        double s_vs_java =
            programSpeedup(r.spec.javaPhases, r.cerealSdSpeedup());
        // Program with Kryo: first derive the Kryo-config phase
        // breakdown, then accelerate its S/D phase by cereal/kryo.
        auto kryo_phases =
            scalePhases(r.spec.javaPhases, r.kryoSdSpeedup());
        double s_vs_kryo =
            programSpeedup(kryo_phases, r.cerealOverKryo());
        vj.push_back(s_vs_java);
        vk.push_back(s_vs_kryo);
        std::printf("%-10s | %13.2fx %13.2fx\n", r.spec.name.c_str(),
                    s_vs_java, s_vs_kryo);
    }
    auto avg = [](const std::vector<double> &x) {
        double s = 0;
        for (double v : x) {
            s += v;
        }
        return s / static_cast<double>(x.size());
    };
    auto mx = [](const std::vector<double> &x) {
        double m = 0;
        for (double v : x) {
            m = std::max(m, v);
        }
        return m;
    };
    std::printf("%-10s | %13.2fx %13.2fx\n", "average", avg(vj),
                avg(vk));
    std::printf("%-10s | %13.2fx %13.2fx\n", "max", mx(vj), mx(vk));
    std::printf("(paper)    |          1.81x          1.69x  (max "
                "4.66x / 4.53x)\n");
    return 0;
}
