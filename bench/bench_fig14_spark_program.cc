/**
 * @file
 * Reproduces Figure 14: whole-program speedups on the six Spark
 * applications when Cereal accelerates the S/D phase.
 *
 * Paper headline: 1.81x over Java S/D (up to 4.66x) and 1.69x over
 * Kryo (up to 4.53x).
 */

#include <algorithm>
#include <cstdio>

#include "bench/spark_common.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 8, "fig14_spark_program");
    bench::banner("Figure 14: Spark whole-program speedups with Cereal",
                  "1.81x avg / 4.66x max over Java S/D; 1.69x avg / "
                  "4.53x max over Kryo");

    std::vector<bench::SparkRow> rows;
    runner::SweepRunner sweep("fig14_spark_program");
    bench::addSparkPoints(sweep, opts.scale, rows);

    // Program with Java serializer -> program with Cereal; program
    // with Kryo: derive the Kryo-config phase breakdown, then
    // accelerate its S/D phase by cereal/kryo.
    auto vs_java = [](const bench::SparkRow &r) {
        return programSpeedup(r.spec.javaPhases, r.cerealSdSpeedup());
    };
    auto vs_kryo = [](const bench::SparkRow &r) {
        auto kryo_phases =
            scalePhases(r.spec.javaPhases, r.kryoSdSpeedup());
        return programSpeedup(kryo_phases, r.cerealOverKryo());
    };
    auto stats = [&rows](auto fn) {
        double sum = 0, mx = 0;
        for (const auto &r : rows) {
            double v = fn(r);
            sum += v;
            mx = std::max(mx, v);
        }
        return std::pair<double, double>(
            sum / static_cast<double>(rows.size()), mx);
    };

    sweep.setSummary([&](json::Writer &w) {
        auto [ja, jm] = stats(vs_java);
        auto [ka, km] = stats(vs_kryo);
        w.kv("program_speedup_vs_java_avg", ja);
        w.kv("program_speedup_vs_java_max", jm);
        w.kv("program_speedup_vs_kryo_avg", ka);
        w.kv("program_speedup_vs_kryo_max", km);
    });

    bench::runSweep(sweep, opts);

    std::printf("%-10s | %14s %14s\n", "app", "vs java-config",
                "vs kryo-config");
    for (const auto &r : rows) {
        std::printf("%-10s | %13.2fx %13.2fx\n", r.spec.name.c_str(),
                    vs_java(r), vs_kryo(r));
    }
    auto [ja, jm] = stats(vs_java);
    auto [ka, km] = stats(vs_kryo);
    std::printf("%-10s | %13.2fx %13.2fx\n", "average", ja, ka);
    std::printf("%-10s | %13.2fx %13.2fx\n", "max", jm, km);
    std::printf("(paper)    |          1.81x          1.69x  (max "
                "4.66x / 4.53x)\n");
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
