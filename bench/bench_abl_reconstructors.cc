/**
 * @file
 * Ablation: block-level parallelism — deserialization latency as the
 * per-DU block-reconstructor count sweeps 1..8 (the paper ships 4).
 */

#include <array>
#include <cstdio>

#include "bench/bench_util.hh"
#include "cereal/api.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

namespace {

constexpr std::array<unsigned, 4> kReconCounts = {1, 2, 4, 8};

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 64, "abl_reconstructors");
    bench::banner("Ablation: block reconstructors per DU",
                  "the decoupled format lets several 64 B blocks "
                  "rebuild in parallel (Section V-C)");

    const auto benches = allMicroBenches();
    // rows[workload][recon-config] = deserialize latency (seconds).
    std::vector<std::array<double, kReconCounts.size()>> rows(
        benches.size());
    runner::SweepRunner sweep("abl_reconstructors");

    for (std::size_t i = 0; i < benches.size(); ++i) {
        const auto mb = benches[i];
        const std::uint64_t scale = opts.scale;
        sweep.add(microBenchName(mb),
                  [&rows, i, mb, scale](json::Writer &w) {
                      KlassRegistry reg;
                      MicroWorkloads micro(reg);
                      Heap src(reg, 0x1'0000'0000ULL);
                      Addr root = micro.build(src, mb, scale, 42);
                      CerealSerializer ser;
                      ser.registerAll(reg);
                      auto stream = ser.serializeToStream(src, root);

                      w.key("reconstructors");
                      w.beginArray();
                      for (std::size_t j = 0; j < kReconCounts.size();
                           ++j) {
                          AccelConfig cfg;
                          cfg.blockReconstructors = kReconCounts[j];
                          EventQueue eq;
                          Dram dram("dram", eq);
                          CerealDevice dev(dram, cfg);
                          Heap dst(reg, 0x9'0000'0000ULL);
                          CerealSerializer de;
                          de.registerAll(reg);
                          Addr base = de.deserializeStream(stream, dst);
                          auto t = dev.deserialize(stream, base, 0);
                          rows[i][j] = t.latencySeconds;
                          w.beginObject();
                          w.kv("count", kReconCounts[j]);
                          w.kv("deser_seconds", t.latencySeconds);
                          w.endObject();
                      }
                      w.endArray();
                  });
    }

    bench::runSweep(sweep, opts);

    std::printf("%-13s |", "workload");
    for (unsigned r : kReconCounts) {
        std::printf(" %5u-br", r);
    }
    std::printf("   (ms per deserialize; lower is better)\n");
    for (std::size_t i = 0; i < benches.size(); ++i) {
        std::printf("%-13s |", microBenchName(benches[i]));
        for (double s : rows[i]) {
            std::printf(" %8.3f", s * 1e3);
        }
        std::printf("\n");
    }
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
