/**
 * @file
 * Ablation: block-level parallelism — deserialization latency as the
 * per-DU block-reconstructor count sweeps 1..8 (the paper ships 4).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "cereal/api.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    const std::uint64_t scale = bench::scaleFromArgs(argc, argv, 64);
    bench::banner("Ablation: block reconstructors per DU",
                  "the decoupled format lets several 64 B blocks "
                  "rebuild in parallel (Section V-C)");

    KlassRegistry reg;
    MicroWorkloads micro(reg);

    std::printf("%-13s |", "workload");
    for (unsigned r : {1u, 2u, 4u, 8u}) {
        std::printf(" %5u-br", r);
    }
    std::printf("   (ms per deserialize; lower is better)\n");

    for (auto mb : allMicroBenches()) {
        Heap src(reg, 0x1'0000'0000ULL +
                          0x10'0000'0000ULL * static_cast<Addr>(mb));
        Addr root = micro.build(src, mb, scale, 42);
        CerealSerializer ser;
        ser.registerAll(reg);
        auto stream = ser.serializeToStream(src, root);

        std::printf("%-13s |", microBenchName(mb));
        for (unsigned recon : {1u, 2u, 4u, 8u}) {
            AccelConfig cfg;
            cfg.blockReconstructors = recon;
            EventQueue eq;
            Dram dram("dram", eq);
            CerealDevice dev(dram, cfg);
            Heap dst(reg, 0x9'0000'0000ULL);
            CerealSerializer de;
            de.registerAll(reg);
            Addr base = de.deserializeStream(stream, dst);
            auto t = dev.deserialize(stream, base, 0);
            std::printf(" %8.3f", t.latencySeconds * 1e3);
        }
        std::printf("\n");
    }
    return 0;
}
