/**
 * @file
 * Simulator execution speed: how many simulated ticks (and events,
 * and DRAM bursts) the simulator itself retires per wall-clock second.
 *
 * This is the one bench whose subject is the simulator, not the
 * modeled hardware. Four measured points:
 *
 *  - event-kernel: the raw EventQueue dispatch loop — a self-
 *    rescheduling event chain with fan-out, events/second.
 *  - dram-stream: Dram::accessRange() streaming over a large span on
 *    the batched (non-observing) fast path, bursts/second.
 *  - cluster-serve-cycle / cluster-serve-fast: the full cluster
 *    serving experiment in cycle-accurate vs fast-forward mode,
 *    sim-ticks/second, with the fast/cycle wall-clock speedup in the
 *    summary.
 *
 * Wall-clock rates jitter run to run, so this bench is *not* part of
 * the json_determinism gates and its baseline is compared with
 * one-sided floors (`bench_compare --floor per_sec=0.5`): only a >2x
 * collapse fails. The simulated quantities (events, ticks, bursts,
 * requests) are deterministic and held to the normal tolerance.
 * Timed regions repeat until they exceed a minimum wall time so the
 * rates are not dominated by timer granularity; run it serially
 * (--threads 1, the default) — concurrent points would contend for
 * the cores being timed.
 */

#include <chrono>
#include <cstdio>

#include "bench/bench_util.hh"
#include "cluster/cluster.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"

using namespace cereal;
using namespace cereal::cluster;

namespace {

constexpr unsigned kNodes = 4;
constexpr std::uint64_t kRequestsPerNode = 200;
constexpr unsigned kServeLoadPct = 70;

/** Repeat a timed thunk until it has run at least this long. */
constexpr double kMinWallSeconds = 0.05;

using WallClock = std::chrono::steady_clock;

/**
 * Wall-time @p fn, repeating until kMinWallSeconds has elapsed.
 * Returns total wall seconds; @p repeats reports the iteration count.
 */
template <typename Fn>
double
timeLoop(Fn &&fn, std::uint64_t &repeats)
{
    repeats = 0;
    const auto t0 = WallClock::now();
    double elapsed = 0;
    do {
        fn();
        ++repeats;
        elapsed = std::chrono::duration<double>(WallClock::now() - t0)
                      .count();
    } while (elapsed < kMinWallSeconds);
    return elapsed;
}

/**
 * One pass of the event-kernel microbench: @p chains self-
 * rescheduling chains racing through the queue until @p total events
 * have executed. Returns the events executed.
 */
std::uint64_t
runEventKernel(std::uint64_t total, std::uint64_t chains)
{
    EventQueue eq;
    eq.reserve(chains + 16);
    std::uint64_t executed = 0;
    // Each chain re-arms itself at a chain-specific cadence so the
    // heap sees interleaved, non-trivial orderings, like real traffic.
    for (std::uint64_t c = 0; c < chains; ++c) {
        struct Chain
        {
            EventQueue *eq;
            std::uint64_t *executed;
            std::uint64_t total;
            Tick period;
            void
            operator()()
            {
                if (++*executed >= total) {
                    return;
                }
                auto self = *this;
                eq->scheduleIn(period, std::move(self));
            }
        };
        eq.scheduleIn(1 + c % 7, Chain{&eq, &executed, total, 1 + c % 7});
    }
    eq.runAll();
    return eq.executedCount();
}

struct Row
{
    std::string name;
    std::uint64_t units = 0;       // events / bursts / sim ticks
    std::uint64_t repeats = 0;
    double wallSeconds = 0;
    double perSec = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 64, "sim_speed");
    bench::banner(
        "Simulator speed: sim-ticks, events, and bursts per wall second",
        "infrastructure bench (no paper figure): the event-kernel & "
        "allocation overhaul must hold its measured speed");

    runner::SweepRunner sweep("sim_speed");
    Row kernel, dram, cycle, fast;

    kernel.name = "event-kernel";
    sweep.add(kernel.name, [&kernel](json::Writer &w) {
        constexpr std::uint64_t kEvents = 1'000'000;
        constexpr std::uint64_t kChains = 64;
        kernel.wallSeconds = timeLoop(
            [&] { runEventKernel(kEvents, kChains); }, kernel.repeats);
        kernel.units = kEvents;
        kernel.perSec = static_cast<double>(kEvents) *
                        static_cast<double>(kernel.repeats) /
                        kernel.wallSeconds;
        w.kv("events", kernel.units);
        w.kv("repeats", kernel.repeats);
        w.kv("wall_seconds", kernel.wallSeconds);
        w.kv("events_per_sec", kernel.perSec);
    });

    dram.name = "dram-stream";
    sweep.add(dram.name, [&dram](json::Writer &w) {
        DramConfig cfg;
        constexpr Addr kSpan = 64ULL << 20;
        const std::uint64_t bursts = kSpan / cfg.burstBytes;
        dram.wallSeconds = timeLoop(
            [&] {
                EventQueue eq;
                Dram mem("dram", eq, cfg);
                // Non-observing, so accessRange takes the batched
                // fast path; re-issue at the completion tick so bank
                // state stays live across calls.
                Tick t = 0;
                constexpr Addr kChunk = 1 << 16;
                for (Addr a = 0; a < kSpan; a += kChunk) {
                    t = mem.accessRange(a, kChunk, (a / kChunk) & 1, t);
                }
            },
            dram.repeats);
        dram.units = bursts;
        dram.perSec = static_cast<double>(bursts) *
                      static_cast<double>(dram.repeats) /
                      dram.wallSeconds;
        w.kv("bursts", dram.units);
        w.kv("repeats", dram.repeats);
        w.kv("wall_seconds", dram.wallSeconds);
        w.kv("bursts_per_sec", dram.perSec);
    });

    auto addServe = [&sweep, &opts](Row &r, SimMode mode) {
        r.name = std::string("cluster-serve-") + simModeName(mode);
        sweep.add(r.name, [&r, &opts, mode](json::Writer &w) {
            ClusterConfig cfg;
            cfg.nodes = kNodes;
            cfg.backend = Backend::Java;
            cfg.scale = opts.scale;
            cfg.mode = mode;
            ClusterSim sim(cfg);
            // Profile measurement happens in the ctor, outside the
            // timed region: this point times the event-driven run.
            ServingResult res;
            r.wallSeconds = timeLoop(
                [&] {
                    res = sim.runServing(kServeLoadPct / 100.0,
                                         kRequestsPerNode);
                },
                r.repeats);
            r.units = static_cast<std::uint64_t>(
                res.durationSeconds *
                static_cast<double>(kTicksPerSecond));
            r.perSec = static_cast<double>(r.units) *
                       static_cast<double>(r.repeats) / r.wallSeconds;
            w.kv("sim_ticks", r.units);
            w.kv("requests", res.requests);
            w.kv("completed", res.completed);
            w.kv("repeats", r.repeats);
            w.kv("wall_seconds", r.wallSeconds);
            w.kv("sim_ticks_per_sec", r.perSec);
        });
    };
    addServe(cycle, SimMode::CycleAccurate);
    addServe(fast, SimMode::FastForward);

    sweep.setSummary([&](json::Writer &w) {
        // Wall-per-iteration ratio: how much faster fast-forward
        // retires the same simulated interval.
        const double cycle_per_run =
            cycle.wallSeconds / static_cast<double>(cycle.repeats);
        const double fast_per_run =
            fast.wallSeconds / static_cast<double>(fast.repeats);
        w.kv("fast_speedup_vs_cycle",
             fast_per_run > 0 ? cycle_per_run / fast_per_run : 0.0);
        w.kv("event_kernel_events_per_sec", kernel.perSec);
        w.kv("dram_bursts_per_sec", dram.perSec);
        w.kv("cycle_sim_ticks_per_sec", cycle.perSec);
        w.kv("fast_sim_ticks_per_sec", fast.perSec);
    });

    bench::runSweep(sweep, opts);

    std::printf("%-20s | %14s %8s %12s %14s\n", "point", "units",
                "repeats", "wall(s)", "units/sec");
    for (const Row *r : {&kernel, &dram, &cycle, &fast}) {
        std::printf("%-20s | %14llu %8llu %12.4f %14.3e\n",
                    r->name.c_str(),
                    static_cast<unsigned long long>(r->units),
                    static_cast<unsigned long long>(r->repeats),
                    r->wallSeconds, r->perSec);
    }
    std::printf("(rates are wall-clock: gate with bench_compare"
                " --floor per_sec=0.5, not exact tolerances)\n");

    bench::writeBenchOutputs(sweep, opts,
                             {{"nodes", kNodes},
                              {"requests_per_node", kRequestsPerNode},
                              {"serve_load_pct", kServeLoadPct}});
    return 0;
}
