/**
 * @file
 * Ablation: MAI outstanding-entry sweep — serialization/deserialization
 * latency as the accelerator's memory-level parallelism budget sweeps
 * 4..256 entries (Table I ships 64).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "cereal/api.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    const std::uint64_t scale = bench::scaleFromArgs(argc, argv, 64);
    bench::banner("Ablation: MAI outstanding-entry sweep",
                  "the 64-entry MAI is the accelerator's MLP source; "
                  "small tables re-create the CPU's bottleneck");

    KlassRegistry reg;
    MicroWorkloads micro(reg);
    Heap src(reg);
    Addr root = micro.build(src, MicroBench::TreeWide, scale, 42);
    CerealSerializer ser;
    ser.registerAll(reg);
    auto stream = ser.serializeToStream(src, root);

    std::printf("%-8s | %10s | %10s\n", "entries", "ser(ms)",
                "deser(ms)");
    for (unsigned e : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
        AccelConfig cfg;
        cfg.maiEntries = e;
        // Serialize.
        EventQueue eq1;
        Dram d1("d1", eq1);
        CerealDevice dev1(d1, cfg);
        auto ts = dev1.serialize(src, root, 0);
        // Deserialize.
        EventQueue eq2;
        Dram d2("d2", eq2);
        CerealDevice dev2(d2, cfg);
        Heap dst(reg, 0x9'0000'0000ULL);
        CerealSerializer de;
        de.registerAll(reg);
        Addr base = de.deserializeStream(stream, dst);
        auto td = dev2.deserialize(stream, base, 0);
        std::printf("%-8u | %10.3f | %10.3f\n", e,
                    ts.latencySeconds * 1e3, td.latencySeconds * 1e3);
    }
    return 0;
}
