/**
 * @file
 * Ablation: MAI outstanding-entry sweep — serialization/deserialization
 * latency as the accelerator's memory-level parallelism budget sweeps
 * 4..256 entries (Table I ships 64).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "cereal/api.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 64, "abl_mai");
    bench::banner("Ablation: MAI outstanding-entry sweep",
                  "the 64-entry MAI is the accelerator's MLP source; "
                  "small tables re-create the CPU's bottleneck");

    const std::vector<unsigned> entries = {4, 8, 16, 32, 64, 128, 256};
    struct Row
    {
        double serMs, deserMs;
    };
    std::vector<Row> rows(entries.size());
    runner::SweepRunner sweep("abl_mai");

    for (std::size_t i = 0; i < entries.size(); ++i) {
        const unsigned e = entries[i];
        const std::uint64_t scale = opts.scale;
        sweep.add(strfmt("entries-%u", e),
                  [&rows, i, e, scale](json::Writer &w) {
                      KlassRegistry reg;
                      MicroWorkloads micro(reg);
                      Heap src(reg, 0x1'0000'0000ULL);
                      Addr root =
                          micro.build(src, MicroBench::TreeWide, scale, 42);
                      CerealSerializer ser;
                      ser.registerAll(reg);
                      auto stream = ser.serializeToStream(src, root);

                      AccelConfig cfg;
                      cfg.maiEntries = e;
                      // Serialize.
                      EventQueue eq1;
                      Dram d1("d1", eq1);
                      CerealDevice dev1(d1, cfg);
                      auto ts = dev1.serialize(src, root, 0);
                      // Deserialize.
                      EventQueue eq2;
                      Dram d2("d2", eq2);
                      CerealDevice dev2(d2, cfg);
                      Heap dst(reg, 0x9'0000'0000ULL);
                      CerealSerializer de;
                      de.registerAll(reg);
                      Addr base = de.deserializeStream(stream, dst);
                      auto td = dev2.deserialize(stream, base, 0);

                      rows[i] = {ts.latencySeconds * 1e3,
                                 td.latencySeconds * 1e3};
                      w.kv("mai_entries", e);
                      w.kv("ser_seconds", ts.latencySeconds);
                      w.kv("deser_seconds", td.latencySeconds);
                  });
    }

    bench::runSweep(sweep, opts);

    std::printf("%-8s | %10s | %10s\n", "entries", "ser(ms)",
                "deser(ms)");
    for (std::size_t i = 0; i < entries.size(); ++i) {
        std::printf("%-8u | %10.3f | %10.3f\n", entries[i],
                    rows[i].serMs, rows[i].deserMs);
    }
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
