/**
 * @file
 * Cluster-scale serving comparison of the six serializer backends.
 *
 * Drives the event-driven cluster simulator (src/cluster) through one
 * all-to-all shuffle plus an open-loop serving sweep at three load
 * points per backend, reporting all-to-all completion time and the
 * latency-throughput curve (p50/p95/p99 sojourn latency vs achieved
 * request rate). The paper's claim transported to cluster scale: the
 * accelerator's S/D speedups must show up as a dominating frontier —
 * at every load point Cereal sustains a higher request rate at lower
 * tail latency than the reflective software serializers the paper
 * measured (java/kryo/skyway): that is `cereal_dominates_frontier`.
 * The post-paper software backends are reported separately: the
 * generated plaincode serializer narrows the gap without closing it
 * (`cereal_dominates_plaincode_*`), while hps's zero-copy receive path
 * spends no decode work at all and is allowed to beat the accelerator
 * on this metric — `cereal_dominates_extended_frontier` records
 * honestly whether Cereal still dominates once hps joins the pool.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "bench/summary.hh"
#include "cluster/cluster.hh"

using namespace cereal;
using namespace cereal::cluster;

namespace {

constexpr unsigned kNodes = 4;
constexpr std::uint64_t kRequestsPerNode = 200;

/** Serving load points, percent of the node's measured capacity. */
const std::vector<unsigned> kLoadPct = {40, 70, 95};

struct Row
{
    std::string name;
    Backend backend = Backend::Java;
    bool serving = false;
    unsigned loadPct = 0;

    std::uint64_t streamBytes = 0;
    std::uint64_t frameBytes = 0;
    std::uint64_t objects = 0;
    double capacityRps = 0;
    ShuffleResult shuffle;
    ServingResult serve;
};

void
writeCommon(json::Writer &w, const Row &r)
{
    w.kv("backend", backendName(r.backend));
    w.kv("mode", r.serving ? "serving" : "shuffle");
    w.kv("nodes", static_cast<std::uint64_t>(kNodes));
    w.kv("stream_bytes", r.streamBytes);
    w.kv("frame_bytes", r.frameBytes);
    w.kv("objects", r.objects);
    w.kv("node_capacity_rps", r.capacityRps);
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 64, "cluster_shuffle");
    bench::banner(
        "Cluster shuffle + serving: latency-throughput by serializer",
        "Cereal's S/D speedups imply a dominating latency-throughput "
        "frontier at cluster scale");

    // Backend-major rows: [shuffle, serve@40, serve@70, serve@95] x 4.
    const std::size_t per_backend = 1 + kLoadPct.size();
    std::vector<Row> rows(allBackends().size() * per_backend);
    runner::SweepRunner sweep("cluster_shuffle");

    for (std::size_t b = 0; b < allBackends().size(); ++b) {
        const Backend backend = allBackends()[b];
        const std::string bname = backendName(backend);

        auto configFor = [&, backend] {
            ClusterConfig cfg;
            cfg.nodes = kNodes;
            cfg.backend = backend;
            cfg.scale = opts.scale;
            return cfg;
        };

        Row &sh = rows[b * per_backend];
        sh.name = bname + "-shuffle";
        sh.backend = backend;
        sweep.add(sh.name, [&sh, configFor](json::Writer &w) {
            ClusterSim sim(configFor());
            sh.streamBytes = sim.profile().streamBytes;
            sh.frameBytes = sim.frameBytes();
            sh.objects = sim.profile().objects;
            sh.capacityRps = sim.nodeCapacityRps();
            sh.shuffle = sim.runShuffle();
            writeCommon(w, sh);
            w.kv("frames", sh.shuffle.frames);
            w.kv("wire_bytes", sh.shuffle.wireBytes);
            w.kv("batches", sh.shuffle.batches);
            w.kv("completion_seconds", sh.shuffle.completionSeconds);
            w.kv("throughput_mbps", sh.shuffle.throughputMBps);
            sh.shuffle.latency.writeJson(w, "latency");
        });

        for (std::size_t li = 0; li < kLoadPct.size(); ++li) {
            const unsigned pct = kLoadPct[li];
            Row &sv = rows[b * per_backend + 1 + li];
            sv.name = bname + "-serve-u" + std::to_string(pct);
            sv.backend = backend;
            sv.serving = true;
            sv.loadPct = pct;
            sweep.add(sv.name, [&sv, configFor, pct](json::Writer &w) {
                ClusterSim sim(configFor());
                sv.streamBytes = sim.profile().streamBytes;
                sv.frameBytes = sim.frameBytes();
                sv.objects = sim.profile().objects;
                sv.capacityRps = sim.nodeCapacityRps();
                sv.serve = sim.runServing(pct / 100.0, kRequestsPerNode);
                writeCommon(w, sv);
                w.kv("utilization_pct",
                     static_cast<std::uint64_t>(pct));
                w.kv("offered_rps", sv.serve.offeredRps);
                w.kv("achieved_rps", sv.serve.achievedRps);
                w.kv("requests", sv.serve.requests);
                w.kv("completed", sv.serve.completed);
                w.kv("duration_seconds", sv.serve.durationSeconds);
                sv.serve.latency.writeJson(w, "latency");
            });
        }
    }

    auto row = [&](Backend b, std::size_t offset) -> const Row & {
        return rows[static_cast<std::size_t>(b) * per_backend + offset];
    };

    bench::setSummary(sweep, [&](bench::Summary &s) {
        const Row &csh = row(Backend::Cereal, 0);
        // `cereal_dominates_frontier` keeps its original meaning —
        // dominance over the paper's reflective software baselines —
        // so the CI gate stays comparable across PRs. The two
        // post-paper backends get their own per-load keys, and the
        // extended-frontier kv reports (without gating) whether the
        // claim survives the zero-copy challenger.
        bool dominates = true;
        bool dominates_ext = true;
        for (Backend b : allBackends()) {
            if (b == Backend::Cereal) {
                continue;
            }
            const std::string n = backendName(b);
            s.kv("cereal_completion_speedup_vs_" + n,
                 row(b, 0).shuffle.completionSeconds /
                     csh.shuffle.completionSeconds);
            for (std::size_t li = 0; li < kLoadPct.size(); ++li) {
                const ServingResult &sw = row(b, 1 + li).serve;
                const ServingResult &ce =
                    row(Backend::Cereal, 1 + li).serve;
                const bool dom = ce.achievedRps >= sw.achievedRps &&
                                 ce.latency.p99 <= sw.latency.p99;
                if (b == Backend::Java || b == Backend::Kryo ||
                    b == Backend::Skyway) {
                    dominates = dominates && dom;
                }
                dominates_ext = dominates_ext && dom;
                s.flag("cereal_dominates_" + n + "_u" +
                           std::to_string(kLoadPct[li]),
                       dom);
            }
        }
        s.flag("cereal_dominates_frontier", dominates);
        s.flag("cereal_dominates_extended_frontier", dominates_ext);
    });

    bench::runSweep(sweep, opts);

    std::printf("%-9s | %12s %12s | %12s %12s %12s\n", "backend",
                "cap(rps)", "a2a(ms)", "p99@40(ms)", "p99@70(ms)",
                "p99@95(ms)");
    for (Backend b : allBackends()) {
        std::printf("%-9s | %12.1f %12.3f | %12.3f %12.3f %12.3f\n",
                    backendName(b), row(b, 0).capacityRps,
                    row(b, 0).shuffle.completionSeconds * 1e3,
                    row(b, 1).serve.latency.p99 * 1e3,
                    row(b, 2).serve.latency.p99 * 1e3,
                    row(b, 3).serve.latency.p99 * 1e3);
    }
    std::printf("(cereal must dominate the paper's software frontier "
                "(java/kryo/skyway) at every load point; plaincode/hps "
                "are reported against it without gating)\n");

    bench::writeBenchOutputs(sweep, opts,
                          {{"nodes", kNodes},
                           {"requests_per_node", kRequestsPerNode}});
    return 0;
}
