/**
 * @file
 * Reproduces Figure 12: Cereal versus the Java Serialization Benchmark
 * Suite (88 software libraries) on the MediaContent object graph.
 *
 * Methodology mirrors the paper: every serializer round-trips the same
 * predefined objects 1,000 times; Cereal runs the ops through all its
 * units (operation-level parallelism), software libraries run
 * sequentially on a core. Three libraries are measured against this
 * repo's real implementations (java-built-in, kryo) and the remaining
 * profiles are calibrated relative to the measured java-built-in run.
 *
 * Paper headline: Cereal 43.4x the suite average, 15.1x over
 * kryo-manual (the fastest library), serialized size 46% below the
 * suite average.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hh"
#include "cereal/api.hh"
#include "heap/walker.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "workloads/harness.hh"
#include "workloads/jsbs.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    const std::uint64_t reps =
        bench::scaleFromArgs(argc, argv, 1000);
    bench::banner("Figure 12: JSBS comparison (88 S/D libraries)",
                  "Cereal 43.4x suite average; 15.1x over the fastest "
                  "(kryo-manual); size 46% below average");

    KlassRegistry reg;
    JsbsWorkload jsbs(reg);
    Heap src(reg);
    Addr mc = jsbs.buildMediaContent(src, 1);

    // Measured anchors.
    JavaSerializer java;
    KryoSerializer kryo;
    kryo.registerAll(reg);
    auto mj = measureSoftware(java, src, mc);
    auto mk = measureSoftware(kryo, src, mc);
    const double java_total = mj.serSeconds + mj.deserSeconds;
    const double kryo_total = mk.serSeconds + mk.deserSeconds;

    // Cereal: the suite's `reps` S/D repetitions are independent
    // commands spread over the 8 SUs and 8 DUs (operation-level
    // parallelism, Section V-D). One command occupies only a few
    // percent of DRAM bandwidth, so steady-state per-op time is the
    // single-op unit latency divided by the pool size — the ser and
    // deser pools run concurrently, so the slower pool sets the pace.
    double cereal_total;
    std::uint64_t cereal_size;
    {
        EventQueue eq;
        Dram dram("dram", eq);
        CerealContext ctx(dram);
        ctx.registerAll(reg);
        auto stream = ctx.serializer().serializeToStream(src, mc);
        cereal_size = stream.serializedBytes();
        Heap dst(reg, 0x9'0000'0000ULL);
        Addr base = ctx.serializer().deserializeStream(stream, dst);

        auto ser_op = ctx.device().serialize(src, mc, 0);
        double ser_lat = ser_op.latencySeconds;
        auto de_op = ctx.device().deserialize(stream, base, ser_op.done);
        double de_lat = de_op.latencySeconds;
        const auto &cfg = ctx.device().config();
        cereal_total = std::max(ser_lat / cfg.numSU,
                                de_lat / cfg.numDU);
        (void)reps;
    }

    std::printf("%-28s %12s %12s %10s\n", "library", "total(us)",
                "size(B)", "cereal-x");
    std::vector<double> speedups;
    std::vector<double> sizes;
    double fastest = 1e30;
    std::string fastest_name;

    for (const auto &lib : jsbsLibraries()) {
        double total;
        double size;
        if (lib.name == "java-built-in") {
            total = java_total;
            size = static_cast<double>(mj.streamBytes);
        } else if (lib.name == "kryo") {
            total = kryo_total;
            size = static_cast<double>(mk.streamBytes);
        } else {
            total = lib.serFactor * mj.serSeconds +
                    lib.deserFactor * mj.deserSeconds;
            size = lib.sizeFactor * static_cast<double>(mj.streamBytes);
        }
        double spd = total / cereal_total;
        speedups.push_back(spd);
        sizes.push_back(size);
        if (total < fastest) {
            fastest = total;
            fastest_name = lib.name;
        }
        std::printf("%-28s %12.3f %12.0f %10.1f%s\n", lib.name.c_str(),
                    total * 1e6, size, spd,
                    lib.measured ? "  [measured]" : "");
    }

    double avg_spd = 0;
    double avg_size = 0;
    for (std::size_t i = 0; i < speedups.size(); ++i) {
        avg_spd += speedups[i];
        avg_size += sizes[i];
    }
    avg_spd /= static_cast<double>(speedups.size());
    avg_size /= static_cast<double>(sizes.size());

    std::printf("--------------------------------------------------------\n");
    std::printf("libraries: %zu   cereal total: %.3f us   size: %llu B\n",
                jsbsLibraries().size(), cereal_total * 1e6,
                (unsigned long long)cereal_size);
    std::printf("cereal speedup vs average:  %.1fx   (paper: 43.4x)\n",
                avg_spd);
    std::printf("cereal speedup vs fastest:  %.1fx over %s (paper: "
                "15.1x over kryo-manual)\n",
                fastest / cereal_total, fastest_name.c_str());
    std::printf("cereal size vs average:     %+.0f%%  (paper: -46%%)\n",
                (static_cast<double>(cereal_size) - avg_size) /
                    avg_size * 100);
    return 0;
}
