/**
 * @file
 * Reproduces Figure 12: Cereal versus the Java Serialization Benchmark
 * Suite (88 software libraries) on the MediaContent object graph.
 *
 * Methodology mirrors the paper: every serializer round-trips the same
 * predefined objects 1,000 times; Cereal runs the ops through all its
 * units (operation-level parallelism), software libraries run
 * sequentially on a core. Four library rows are measured against this
 * repo's real implementations (java-built-in, kryo, and the two
 * post-paper backends plaincode and hps) and the remaining profiles
 * are calibrated relative to the measured java-built-in run.
 *
 * Paper headline: Cereal 43.4x the suite average, 15.1x over
 * kryo-manual (the fastest library), serialized size 46% below the
 * suite average.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hh"
#include "cereal/api.hh"
#include "heap/walker.hh"
#include "serde/registry.hh"
#include "workloads/harness.hh"
#include "workloads/jsbs.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 1000, "fig12_jsbs");
    bench::banner("Figure 12: JSBS comparison (88 S/D libraries "
                  "+ plaincode/hps)",
                  "Cereal 43.4x suite average; 15.1x over the fastest "
                  "(kryo-manual); size 46% below average");

    // Measured anchors, each in its own sim context; the calibrated
    // library rows derive from the java-built-in anchor post-run.
    SdMeasurement mj, mk, mp, mh;
    double cereal_total = 0;
    std::uint64_t cereal_size = 0;

    auto measureBackend = [](const std::string &name,
                             SdMeasurement &out) {
        return [name, &out](json::Writer &w) {
            KlassRegistry reg;
            JsbsWorkload jsbs(reg);
            Heap src(reg, 0x1'0000'0000ULL);
            Addr mc = jsbs.buildMediaContent(src, 1);
            auto ser = serde::makeSerializer(name, &reg);
            out = measureSoftware(*ser, src, mc);
            out.writeJson(w, "measurement");
        };
    };

    runner::SweepRunner sweep("fig12_jsbs");
    sweep.add("java-built-in", measureBackend("java", mj));
    sweep.add("kryo", measureBackend("kryo", mk));
    sweep.add("plaincode", measureBackend("plaincode", mp));
    sweep.add("hps", measureBackend("hps", mh));
    sweep.add("cereal", [&cereal_total, &cereal_size](json::Writer &w) {
        // Cereal: the suite's S/D repetitions are independent commands
        // spread over the 8 SUs and 8 DUs (operation-level
        // parallelism, Section V-D). One command occupies only a few
        // percent of DRAM bandwidth, so steady-state per-op time is
        // the single-op unit latency divided by the pool size — the
        // ser and deser pools run concurrently, so the slower pool
        // sets the pace.
        KlassRegistry reg;
        JsbsWorkload jsbs(reg);
        Heap src(reg, 0x1'0000'0000ULL);
        Addr mc = jsbs.buildMediaContent(src, 1);
        EventQueue eq;
        Dram dram("dram", eq);
        CerealContext ctx(dram);
        ctx.registerAll(reg);
        auto stream = ctx.serializer().serializeToStream(src, mc);
        cereal_size = stream.serializedBytes();
        Heap dst(reg, 0x9'0000'0000ULL);
        Addr base = ctx.serializer().deserializeStream(stream, dst);

        auto ser_op = ctx.device().serialize(src, mc, 0);
        double ser_lat = ser_op.latencySeconds;
        auto de_op = ctx.device().deserialize(stream, base, ser_op.done);
        double de_lat = de_op.latencySeconds;
        const auto &cfg = ctx.device().config();
        cereal_total =
            std::max(ser_lat / cfg.numSU, de_lat / cfg.numDU);
        w.kv("per_op_seconds", cereal_total);
        w.kv("stream_bytes", cereal_size);
        w.kv("ser_unit_latency_seconds", ser_lat);
        w.kv("deser_unit_latency_seconds", de_lat);
    });

    sweep.setSummary([&](json::Writer &w) {
        const double java_total = mj.serSeconds + mj.deserSeconds;
        const double kryo_total = mk.serSeconds + mk.deserSeconds;
        double avg_spd = 0, avg_size = 0, fastest = 1e30;
        double fastest_suite = 1e30;
        std::string fastest_name, fastest_suite_name;
        w.key("libraries");
        w.beginArray();
        for (const auto &lib : jsbsLibraries()) {
            double total, size;
            if (lib.name == "java-built-in") {
                total = java_total;
                size = static_cast<double>(mj.streamBytes);
            } else if (lib.name == "kryo") {
                total = kryo_total;
                size = static_cast<double>(mk.streamBytes);
            } else if (lib.name == "plaincode") {
                total = mp.serSeconds + mp.deserSeconds;
                size = static_cast<double>(mp.streamBytes);
            } else if (lib.name == "hps") {
                total = mh.serSeconds + mh.deserSeconds;
                size = static_cast<double>(mh.streamBytes);
            } else {
                total = lib.serFactor * mj.serSeconds +
                        lib.deserFactor * mj.deserSeconds;
                size = lib.sizeFactor *
                       static_cast<double>(mj.streamBytes);
            }
            avg_spd += total / cereal_total;
            avg_size += size;
            if (total < fastest) {
                fastest = total;
                fastest_name = lib.name;
            }
            // Paper comparability: the suite's fastest excludes the
            // two post-paper backends.
            if (lib.name != "plaincode" && lib.name != "hps" &&
                total < fastest_suite) {
                fastest_suite = total;
                fastest_suite_name = lib.name;
            }
            w.beginObject();
            w.kv("name", lib.name);
            w.kv("total_seconds", total);
            w.kv("size_bytes", size);
            w.kv("cereal_speedup", total / cereal_total);
            w.kv("measured", lib.measured);
            w.endObject();
        }
        w.endArray();
        const double n =
            static_cast<double>(jsbsLibraries().size());
        avg_spd /= n;
        avg_size /= n;
        w.kv("cereal_speedup_vs_average", avg_spd);
        w.kv("cereal_speedup_vs_fastest", fastest / cereal_total);
        w.kv("fastest_library", fastest_name);
        w.kv("cereal_speedup_vs_fastest_suite",
             fastest_suite / cereal_total);
        w.kv("fastest_suite_library", fastest_suite_name);
        w.kv("cereal_size_vs_average_pct",
             (static_cast<double>(cereal_size) - avg_size) / avg_size *
                 100);
    });

    bench::runSweep(sweep, opts);

    std::printf("%-28s %12s %12s %10s\n", "library", "total(us)",
                "size(B)", "cereal-x");
    const double java_total = mj.serSeconds + mj.deserSeconds;
    const double kryo_total = mk.serSeconds + mk.deserSeconds;
    double avg_spd = 0, avg_size = 0, fastest = 1e30;
    double fastest_suite = 1e30;
    std::string fastest_name, fastest_suite_name;
    for (const auto &lib : jsbsLibraries()) {
        double total, size;
        if (lib.name == "java-built-in") {
            total = java_total;
            size = static_cast<double>(mj.streamBytes);
        } else if (lib.name == "kryo") {
            total = kryo_total;
            size = static_cast<double>(mk.streamBytes);
        } else if (lib.name == "plaincode") {
            total = mp.serSeconds + mp.deserSeconds;
            size = static_cast<double>(mp.streamBytes);
        } else if (lib.name == "hps") {
            total = mh.serSeconds + mh.deserSeconds;
            size = static_cast<double>(mh.streamBytes);
        } else {
            total = lib.serFactor * mj.serSeconds +
                    lib.deserFactor * mj.deserSeconds;
            size = lib.sizeFactor * static_cast<double>(mj.streamBytes);
        }
        double spd = total / cereal_total;
        avg_spd += spd;
        avg_size += size;
        if (total < fastest) {
            fastest = total;
            fastest_name = lib.name;
        }
        if (lib.name != "plaincode" && lib.name != "hps" &&
            total < fastest_suite) {
            fastest_suite = total;
            fastest_suite_name = lib.name;
        }
        std::printf("%-28s %12.3f %12.0f %10.1f%s\n", lib.name.c_str(),
                    total * 1e6, size, spd,
                    lib.measured ? "  [measured]" : "");
    }
    avg_spd /= static_cast<double>(jsbsLibraries().size());
    avg_size /= static_cast<double>(jsbsLibraries().size());

    std::printf("--------------------------------------------------------\n");
    std::printf("libraries: %zu   cereal total: %.3f us   size: %llu B\n",
                jsbsLibraries().size(), cereal_total * 1e6,
                (unsigned long long)cereal_size);
    std::printf("cereal speedup vs average:  %.1fx   (paper: 43.4x)\n",
                avg_spd);
    std::printf("cereal speedup vs fastest:  %.1fx over %s (paper: "
                "15.1x over kryo-manual)\n",
                fastest / cereal_total, fastest_name.c_str());
    std::printf("cereal speedup vs fastest suite library: %.1fx over "
                "%s (excludes the post-paper plaincode/hps rows)\n",
                fastest_suite / cereal_total,
                fastest_suite_name.c_str());
    std::printf("cereal size vs average:     %+.0f%%  (paper: -46%%)\n",
                (static_cast<double>(cereal_size) - avg_size) /
                    avg_size * 100);
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
