# Dataflow regression gate: runs bench_dataflow and compares its JSON
# against the committed baseline. Every emitted quantity is a
# deterministic simulated one, so the default tolerance band catches
# behavioural drift (including checksum_agree_* or all_invariants_ok
# flipping to 0); the accelerator's per-job speedup over java gets a
# ONE-SIDED floor so an improvement never fails while a collapse of
# the headline advantage past 10% does.
# Invoked by ctest with:
#   -DBENCH=<bench_dataflow> -DCOMPARE=<bench_compare>
#   -DBASELINE=<tests/baselines/BENCH_dataflow.json> -DWORKDIR=<dir>
# Re-record the baseline with CEREAL_UPDATE_BASELINES=1 in the
# environment after an intentional behaviour change.

set(fresh ${WORKDIR}/BENCH_dataflow_fresh.json)

execute_process(
  COMMAND ${BENCH} --json ${fresh}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "${BENCH} failed (rc=${rc}):\n${stdout}\n${stderr}")
endif()

execute_process(
  COMMAND ${COMPARE} ${fresh} ${BASELINE}
          --floor cereal_speedup_vs_java=0.9
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
message(STATUS "bench_compare:\n${stdout}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "dataflow jobs drifted from the baseline (rc=${rc}):\n"
          "${stdout}\n${stderr}")
endif()
