/**
 * @file
 * Reproduces Figure 11: DRAM bandwidth utilisation of Java S/D, Kryo
 * and Cereal on the microbenchmarks, for both directions.
 *
 * Paper headline: serialization — Java 2.71%, Kryo 4.12%, Cereal 20.9%
 * average (up to 74.5%); deserialization — Java 3.48%, Kryo 4.50%,
 * Cereal 31.1% average (up to 83.3%).
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "workloads/harness.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

namespace {

struct Row
{
    double sj, sk, sc, dj, dk, dc;
};

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 64, "fig11_micro_bandwidth");
    bench::banner("Figure 11: DRAM bandwidth utilisation (%) on "
                  "microbenchmarks",
                  "ser avg: Java 2.71 / Kryo 4.12 / Cereal 20.9 (max "
                  "74.5); deser avg: 3.48 / 4.50 / 31.1 (max 83.3)");

    const auto &benches = allMicroBenches();
    std::vector<Row> rows(benches.size());
    runner::SweepRunner sweep("fig11_micro_bandwidth");

    for (std::size_t i = 0; i < benches.size(); ++i) {
        const MicroBench mb = benches[i];
        const std::uint64_t scale = opts.scale;
        sweep.add(microBenchName(mb), [&rows, i, mb,
                                       scale](json::Writer &w) {
            KlassRegistry reg;
            MicroWorkloads micro(reg);
            Heap src(reg, 0x1'0000'0000ULL);
            Addr root = micro.build(src, mb, scale, 42);
            JavaSerializer java;
            KryoSerializer kryo;
            kryo.registerAll(reg);
            auto mj = measureSoftware(java, src, root);
            auto mk = measureSoftware(kryo, src, root);
            auto mc = measureCereal(src, root);

            rows[i] = {mj.serBandwidth,   mk.serBandwidth,
                       mc.serBandwidth,   mj.deserBandwidth,
                       mk.deserBandwidth, mc.deserBandwidth};
            mj.writeJson(w, "java");
            mk.writeJson(w, "kryo");
            mc.writeJson(w, "cereal");
        });
    }

    auto avg_of = [&rows](double Row::*m) {
        double s = 0;
        for (const auto &r : rows) {
            s += r.*m;
        }
        return 100 * s / static_cast<double>(rows.size());
    };
    auto max_of = [&rows](double Row::*m) {
        double v = 0;
        for (const auto &r : rows) {
            v = std::max(v, r.*m);
        }
        return 100 * v;
    };
    sweep.setSummary([&](json::Writer &w) {
        w.kv("ser_bandwidth_java_avg_pct", avg_of(&Row::sj));
        w.kv("ser_bandwidth_kryo_avg_pct", avg_of(&Row::sk));
        w.kv("ser_bandwidth_cereal_avg_pct", avg_of(&Row::sc));
        w.kv("ser_bandwidth_cereal_max_pct", max_of(&Row::sc));
        w.kv("deser_bandwidth_java_avg_pct", avg_of(&Row::dj));
        w.kv("deser_bandwidth_kryo_avg_pct", avg_of(&Row::dk));
        w.kv("deser_bandwidth_cereal_avg_pct", avg_of(&Row::dc));
        w.kv("deser_bandwidth_cereal_max_pct", max_of(&Row::dc));
    });

    bench::runSweep(sweep, opts);

    std::printf("%-13s | %7s %7s %7s | %7s %7s %7s\n", "workload",
                "serJ%", "serK%", "serC%", "deJ%", "deK%", "deC%");
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const Row &r = rows[i];
        std::printf("%-13s | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f\n",
                    microBenchName(benches[i]), r.sj * 100, r.sk * 100,
                    r.sc * 100, r.dj * 100, r.dk * 100, r.dc * 100);
    }
    std::printf("%-13s | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f\n",
                "average", avg_of(&Row::sj), avg_of(&Row::sk),
                avg_of(&Row::sc), avg_of(&Row::dj), avg_of(&Row::dk),
                avg_of(&Row::dc));
    std::printf("%-13s | %7s %7s %7.2f | %7s %7s %7.2f\n", "max", "",
                "", max_of(&Row::sc), "", "", max_of(&Row::dc));
    std::printf("(paper avg)   |    2.71    4.12   20.90 |    3.48    "
                "4.50   31.10\n");
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
