/**
 * @file
 * Reproduces Figure 11: DRAM bandwidth utilisation of Java S/D, Kryo
 * and Cereal on the microbenchmarks, for both directions.
 *
 * Paper headline: serialization — Java 2.71%, Kryo 4.12%, Cereal 20.9%
 * average (up to 74.5%); deserialization — Java 3.48%, Kryo 4.50%,
 * Cereal 31.1% average (up to 83.3%).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "workloads/harness.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    const std::uint64_t scale = bench::scaleFromArgs(argc, argv);
    bench::banner("Figure 11: DRAM bandwidth utilisation (%) on "
                  "microbenchmarks",
                  "ser avg: Java 2.71 / Kryo 4.12 / Cereal 20.9 (max "
                  "74.5); deser avg: 3.48 / 4.50 / 31.1 (max 83.3)");

    std::printf("%-13s | %7s %7s %7s | %7s %7s %7s\n", "workload",
                "serJ%", "serK%", "serC%", "deJ%", "deK%", "deC%");

    std::vector<double> sj, sk, sc, dj, dk, dc;
    KlassRegistry reg;
    MicroWorkloads micro(reg);

    for (auto mb : allMicroBenches()) {
        Heap src(reg, 0x1'0000'0000ULL +
                          0x10'0000'0000ULL * static_cast<Addr>(mb));
        Addr root = micro.build(src, mb, scale, 42);
        JavaSerializer java;
        KryoSerializer kryo;
        kryo.registerAll(reg);
        auto mj = measureSoftware(java, src, root);
        auto mk = measureSoftware(kryo, src, root);
        auto mc = measureCereal(src, root);

        sj.push_back(mj.serBandwidth);
        sk.push_back(mk.serBandwidth);
        sc.push_back(mc.serBandwidth);
        dj.push_back(mj.deserBandwidth);
        dk.push_back(mk.deserBandwidth);
        dc.push_back(mc.deserBandwidth);
        std::printf("%-13s | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f\n",
                    microBenchName(mb), mj.serBandwidth * 100,
                    mk.serBandwidth * 100, mc.serBandwidth * 100,
                    mj.deserBandwidth * 100, mk.deserBandwidth * 100,
                    mc.deserBandwidth * 100);
    }

    auto avg = [](const std::vector<double> &x) {
        double s = 0;
        for (double v : x) {
            s += v;
        }
        return 100 * s / static_cast<double>(x.size());
    };
    auto mx = [](const std::vector<double> &x) {
        double m = 0;
        for (double v : x) {
            m = std::max(m, v);
        }
        return 100 * m;
    };
    std::printf("%-13s | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f\n",
                "average", avg(sj), avg(sk), avg(sc), avg(dj), avg(dk),
                avg(dc));
    std::printf("%-13s | %7s %7s %7.2f | %7s %7s %7.2f\n", "max", "",
                "", mx(sc), "", "", mx(dc));
    std::printf("(paper avg)   |    2.71    4.12   20.90 |    3.48    "
                "4.50   31.10\n");
    return 0;
}
