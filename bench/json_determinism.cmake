# Runs a bench binary twice -- serial and with 8 worker threads -- and
# fails unless the two JSON documents, the two Chrome trace documents,
# AND the two Prometheus metrics documents are byte-identical. Invoked
# by ctest (see add_test in CMakeLists.txt) with:
#   -DBENCH=<path to bench binary> -DWORKDIR=<scratch dir> -DNAME=<id>
# A large scale divisor keeps the runtime in seconds while still
# executing every sweep point.

set(scale 256)
set(json1 ${WORKDIR}/${NAME}_t1.json)
set(json8 ${WORKDIR}/${NAME}_t8.json)
set(trace1 ${WORKDIR}/${NAME}_t1.trace.json)
set(trace8 ${WORKDIR}/${NAME}_t8.trace.json)
set(prom1 ${WORKDIR}/${NAME}_t1.prom)
set(prom8 ${WORKDIR}/${NAME}_t8.prom)

foreach(cfg "1;${json1};${trace1};${prom1}" "8;${json8};${trace8};${prom8}")
  list(GET cfg 0 threads)
  list(GET cfg 1 out)
  list(GET cfg 2 trace_out)
  list(GET cfg 3 prom_out)
  execute_process(
    COMMAND ${BENCH} ${scale} --threads ${threads} --json ${out}
            --trace ${trace_out} --metrics ${prom_out}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "${BENCH} --threads ${threads} failed (rc=${rc}):\n"
            "${stdout}\n${stderr}")
  endif()
endforeach()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${json1} ${json8}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "JSON output differs between --threads 1 and --threads 8: "
          "${json1} vs ${json8}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${trace1} ${trace8}
                RESULT_VARIABLE trace_diff)
if(NOT trace_diff EQUAL 0)
  message(FATAL_ERROR
          "trace output differs between --threads 1 and --threads 8: "
          "${trace1} vs ${trace8}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${prom1} ${prom8}
                RESULT_VARIABLE prom_diff)
if(NOT prom_diff EQUAL 0)
  message(FATAL_ERROR
          "metrics output differs between --threads 1 and --threads 8: "
          "${prom1} vs ${prom8}")
endif()
