# Wall-clock smoke for simulator speed: runs bench_sim_speed and
# gates its measured rates against the committed baseline with
# ONE-SIDED floors -- only a >2x collapse in any units-per-second rate
# (or a >4x collapse in the fast/cycle speedup) fails. Wall seconds
# and repeat counts jitter with machine load, so they get an
# effectively-unbounded tolerance; the simulated quantities (events,
# bursts, sim ticks, requests) stay on the default exact-ish band.
# Invoked by ctest with:
#   -DBENCH=<bench_sim_speed> -DCOMPARE=<bench_compare>
#   -DBASELINE=<tests/baselines/BENCH_sim_speed.json> -DWORKDIR=<dir>
# Re-record the baseline with CEREAL_UPDATE_BASELINES=1 in the
# environment (on a quiet machine).

set(fresh ${WORKDIR}/BENCH_sim_speed_fresh.json)

execute_process(
  COMMAND ${BENCH} --json ${fresh}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "${BENCH} failed (rc=${rc}):\n${stdout}\n${stderr}")
endif()

execute_process(
  COMMAND ${COMPARE} ${fresh} ${BASELINE}
          --floor per_sec=0.5
          --floor speedup=0.25
          --tolerance wall_seconds=1e18
          --tolerance repeats=1e18
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
message(STATUS "bench_compare:\n${stdout}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "simulator speed regressed past the floor (rc=${rc}):\n"
          "${stdout}\n${stderr}")
endif()
