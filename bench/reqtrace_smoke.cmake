# Request-tracing gate: runs the knee sweep and the dataflow sweep at
# a reduced scale, feeds both JSON documents through tools/trace_query
# (which re-verifies every conservation invariant from the raw numbers
# — each reqtrace report conserved, each resolved p99/p999 exemplar's
# segments summing exactly to its recorded end-to-end latency, each
# stage critical path summing to its total — and exits nonzero on any
# violation), and asserts the trace output is byte-identical across
# --threads 1 and --threads 4.
# Invoked by ctest with:
#   -DBENCH=<bench_serving_knee> -DDATAFLOW=<bench_dataflow>
#   -DQUERY=<trace_query> -DWORKDIR=<dir>

set(fresh ${WORKDIR}/BENCH_serving_knee_reqtrace.json)
set(threaded ${WORKDIR}/BENCH_serving_knee_reqtrace_t4.json)
set(df ${WORKDIR}/BENCH_dataflow_reqtrace.json)

execute_process(
  COMMAND ${BENCH} 256 --json ${fresh}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "${BENCH} failed (rc=${rc}):\n${stdout}\n${stderr}")
endif()

execute_process(
  COMMAND ${BENCH} 256 --threads 4 --json ${threaded}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "${BENCH} --threads 4 failed (rc=${rc}):\n${stdout}\n${stderr}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${fresh} ${threaded}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "trace output differs across --threads: ${fresh} vs"
          " ${threaded}")
endif()

execute_process(
  COMMAND ${QUERY} ${fresh} --top 7
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
message(STATUS "trace_query (serving):\n${stdout}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "trace_query found conservation violations in the knee"
          " sweep (rc=${rc}):\n${stdout}\n${stderr}")
endif()

execute_process(
  COMMAND ${DATAFLOW} 256 --json ${df}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "${DATAFLOW} failed (rc=${rc}):\n${stdout}\n${stderr}")
endif()

execute_process(
  COMMAND ${QUERY} ${df}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
message(STATUS "trace_query (dataflow):\n${stdout}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "trace_query found critical-path violations in the dataflow"
          " sweep (rc=${rc}):\n${stdout}\n${stderr}")
endif()
