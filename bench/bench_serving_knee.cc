/**
 * @file
 * Saturation-knee sweep of the serving front end for all six backends.
 *
 * The paper's serving claim (Cereal dominance at fixed 40/70/95%
 * utilization) restated as the datacenter question: where is each
 * backend's saturation knee, and what happens to the p99/p999 tail and
 * goodput *past* it? Offered load sweeps 10%-200% of the per-backend
 * measured capacity under two front ends:
 *
 *  - open: the open loop — no admission control, no flow control.
 *    Past the knee the queues (and the tail) diverge.
 *  - ctl:  bounded admission (tail-drop) + credit-based flow control.
 *    Goodput saturates at capacity, the drop rate absorbs the excess,
 *    and p99 stays bounded: at 2x overload it must sit within 10x of
 *    the 50%-load p99 for every backend (`all_tails_bounded`).
 *
 * A per-backend flash-crowd row (4x spike on a 70% base) reports the
 * time-to-recover after the spike window closes.
 *
 * Knee definition: the largest swept load with goodput >= 90% of
 * offered. The knee curve is the Cereal-dominance claim at scale — a
 * faster serializer moves the knee right and holds a lower tail at
 * every shared load point.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "bench/summary.hh"
#include "cluster/cluster.hh"
#include "cluster/serving.hh"
#include "load/load_shape.hh"

using namespace cereal;
using namespace cereal::cluster;

namespace {

constexpr unsigned kNodes = 4;
constexpr std::uint64_t kRequestsPerNode = 300;
constexpr unsigned kQueueBound = 8;
constexpr unsigned kCreditWindow = 2;

/** Offered load points, percent of the node's measured capacity. */
const std::vector<unsigned> kLoadPct = {10,  25,  40,  50,  70,  85, 95,
                                        105, 120, 135, 150, 175, 200};

/** Goodput must stay within this fraction of offered to count as
 *  pre-knee. */
constexpr double kKneeGoodputFraction = 0.9;

struct Row
{
    std::string name;
    Backend backend = Backend::Java;
    bool controlled = false;
    bool flash = false;
    unsigned loadPct = 0;
    double capacityRps = 0;
    ServingFrontendResult r;
};

ServingConfig
servingConfig(bool controlled, unsigned pct, double trace_sample)
{
    ServingConfig cfg;
    cfg.utilization = pct / 100.0;
    cfg.requestsPerNode = kRequestsPerNode;
    cfg.reqTrace.sampleRate = trace_sample;
    if (controlled) {
        cfg.admission.policy = AdmissionPolicy::Drop;
        cfg.admission.queueBound = kQueueBound;
        cfg.flow.enabled = true;
        cfg.flow.window = kCreditWindow;
    } else {
        cfg.admission.policy = AdmissionPolicy::None;
        cfg.flow.enabled = false;
    }
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 64, "serving_knee");
    bench::banner(
        "Serving saturation knee: offered load 10%-200% by serializer",
        "admission control + credit flow control hold the p99 tail "
        "bounded at 2x overload where the open loop collapses");

    // Backend-major rows: [open x loads, ctl x loads, flash] per
    // backend, all in registration order for byte-identical JSON
    // across --threads.
    const std::size_t per_backend = 2 * kLoadPct.size() + 1;
    std::vector<Row> rows(allBackends().size() * per_backend);
    runner::SweepRunner sweep("serving_knee");

    for (std::size_t b = 0; b < allBackends().size(); ++b) {
        const Backend backend = allBackends()[b];
        const std::string bname = backendName(backend);

        auto configFor = [&, backend] {
            ClusterConfig cfg;
            cfg.nodes = kNodes;
            cfg.backend = backend;
            cfg.scale = opts.scale;
            return cfg;
        };

        for (int ctl = 0; ctl < 2; ++ctl) {
            for (std::size_t li = 0; li < kLoadPct.size(); ++li) {
                const unsigned pct = kLoadPct[li];
                Row &row = rows[b * per_backend +
                                static_cast<std::size_t>(ctl) *
                                    kLoadPct.size() +
                                li];
                row.name = bname + (ctl ? "-ctl-u" : "-open-u") +
                           std::to_string(pct);
                row.backend = backend;
                row.controlled = ctl != 0;
                row.loadPct = pct;
                sweep.add(row.name,
                          [&row, &opts, configFor, ctl,
                           pct](json::Writer &w) {
                    ClusterSim sim(configFor());
                    row.capacityRps = sim.nodeCapacityRps();
                    row.r = runServingFrontend(
                        sim,
                        servingConfig(ctl != 0, pct, opts.traceSample));
                    w.kv("backend", backendName(row.backend));
                    w.kv("frontend", ctl ? "ctl" : "open");
                    w.kv("shape", "steady");
                    w.kv("nodes", static_cast<std::uint64_t>(kNodes));
                    w.kv("utilization_pct",
                         static_cast<std::uint64_t>(pct));
                    w.kv("node_capacity_rps", row.capacityRps);
                    w.kv("offered_rps", row.r.offeredRps);
                    w.kv("goodput_rps", row.r.goodputRps);
                    w.kv("requests", row.r.requests);
                    w.kv("completed", row.r.completed);
                    w.kv("dropped", row.r.dropped);
                    w.kv("drop_rate", row.r.dropRate);
                    w.kv("duration_seconds", row.r.durationSeconds);
                    w.kv("credits_issued", row.r.creditsIssued);
                    w.kv("credits_returned", row.r.creditsReturned);
                    w.kv("credits_conserved",
                         static_cast<std::uint64_t>(
                             row.r.creditsConserved ? 1 : 0));
                    w.kv("max_admission_occupancy",
                         row.r.maxAdmissionOccupancy);
                    w.kv("max_worker_queue", row.r.maxWorkerQueue);
                    row.r.latency.writeJson(w, "latency");
                    w.key("reqtrace");
                    row.r.reqTrace.writeJson(w);
                });
            }
        }

        Row &fl = rows[b * per_backend + 2 * kLoadPct.size()];
        fl.name = bname + "-ctl-flash";
        fl.backend = backend;
        fl.controlled = true;
        fl.flash = true;
        fl.loadPct = 70;
        sweep.add(fl.name, [&fl, &opts, configFor](json::Writer &w) {
            ClusterSim sim(configFor());
            fl.capacityRps = sim.nodeCapacityRps();
            ServingConfig cfg =
                servingConfig(true, fl.loadPct, opts.traceSample);
            cfg.shape = load::LoadShape::flashCrowd(4.0, 0.5, 0.1);
            fl.r = runServingFrontend(sim, cfg);
            w.kv("backend", backendName(fl.backend));
            w.kv("frontend", "ctl");
            w.kv("shape", cfg.shape.describe());
            w.kv("nodes", static_cast<std::uint64_t>(kNodes));
            w.kv("utilization_pct",
                 static_cast<std::uint64_t>(fl.loadPct));
            w.kv("node_capacity_rps", fl.capacityRps);
            w.kv("offered_rps", fl.r.offeredRps);
            w.kv("goodput_rps", fl.r.goodputRps);
            w.kv("requests", fl.r.requests);
            w.kv("completed", fl.r.completed);
            w.kv("dropped", fl.r.dropped);
            w.kv("drop_rate", fl.r.dropRate);
            w.kv("duration_seconds", fl.r.durationSeconds);
            w.kv("recover_seconds", fl.r.recoverSeconds);
            w.kv("credits_conserved",
                 static_cast<std::uint64_t>(
                     fl.r.creditsConserved ? 1 : 0));
            fl.r.latency.writeJson(w, "latency");
            w.key("reqtrace");
            fl.r.reqTrace.writeJson(w);
        });
    }

    auto row = [&](Backend b, bool ctl, std::size_t li) -> const Row & {
        return rows[static_cast<std::size_t>(b) * per_backend +
                    (ctl ? kLoadPct.size() : 0) + li];
    };
    auto flashRow = [&](Backend b) -> const Row & {
        return rows[static_cast<std::size_t>(b) * per_backend +
                    2 * kLoadPct.size()];
    };
    auto kneePct = [&](Backend b, bool ctl) {
        unsigned knee = 0;
        for (std::size_t li = 0; li < kLoadPct.size(); ++li) {
            const Row &r = row(b, ctl, li);
            if (r.r.goodputRps >=
                kKneeGoodputFraction * r.r.offeredRps) {
                knee = kLoadPct[li];
            }
        }
        return knee;
    };
    // Index of the 50% and 200% load points in kLoadPct.
    const std::size_t i50 = 3, i200 = kLoadPct.size() - 1;

    bench::setSummary(sweep, [&](bench::Summary &s) {
        bool all_bounded = true;
        bool all_conserved = true;
        for (Backend b : allBackends()) {
            const std::string n = backendName(b);
            const double ctl50 = row(b, true, i50).r.latency.p99;
            const double ctl200 = row(b, true, i200).r.latency.p99;
            const double open50 = row(b, false, i50).r.latency.p99;
            const double open200 = row(b, false, i200).r.latency.p99;
            const bool bounded =
                ctl50 > 0 && ctl200 < 10.0 * ctl50;
            all_bounded = all_bounded && bounded;
            s.kv("knee_u_open_pct_" + n,
                 static_cast<std::uint64_t>(kneePct(b, false)));
            s.kv("knee_u_ctl_pct_" + n,
                 static_cast<std::uint64_t>(kneePct(b, true)));
            s.ratio("p99_ratio_2x_ctl_" + n, ctl200, ctl50);
            s.ratio("p99_ratio_2x_open_" + n, open200, open50);
            s.flag("tail_bounded_under_overload_" + n, bounded);
            s.kv("goodput_2x_ctl_rps_" + n,
                 row(b, true, i200).r.goodputRps);
            s.kv("drop_rate_2x_ctl_" + n,
                 row(b, true, i200).r.dropRate);
            s.kv("flash_recover_seconds_" + n,
                 flashRow(b).r.recoverSeconds);
            // Tail attribution at 2x overload under control: the p99
            // exemplar's dominant causal segment, through the shared
            // key builder (same scheme as bench_dataflow).
            const auto &rt = row(b, true, i200).r.reqTrace;
            if (rt.p99Resolved) {
                const auto &t = rt.p99;
                const trace::Segment dom = t.dominant();
                const Tick e2e = t.endToEnd();
                s.exemplar("p99", n, trace::segmentName(dom),
                           e2e > 0 ? static_cast<double>(
                                         t.segment(dom)) /
                                         static_cast<double>(e2e)
                                   : 0.0);
            } else {
                s.exemplar("p99", n, "unresolved", 0.0);
            }
            for (int ctl = 0; ctl < 2; ++ctl) {
                for (std::size_t li = 0; li < kLoadPct.size(); ++li) {
                    all_conserved = all_conserved &&
                                    row(b, ctl != 0, li).r.reqTrace
                                        .conserved;
                }
            }
            all_conserved =
                all_conserved && flashRow(b).r.reqTrace.conserved;
        }
        s.flag("all_tails_bounded", all_bounded);
        s.flag("all_traces_conserved", all_conserved);
    });

    bench::runSweep(sweep, opts);

    std::printf("%-9s | %9s %9s | %11s %11s | %12s %12s\n", "backend",
                "knee-open", "knee-ctl", "p99x2x-open", "p99x2x-ctl",
                "goodput@2x", "recover(ms)");
    for (Backend b : allBackends()) {
        const double ctl50 = row(b, true, i50).r.latency.p99;
        const double ctl200 = row(b, true, i200).r.latency.p99;
        const double open50 = row(b, false, i50).r.latency.p99;
        const double open200 = row(b, false, i200).r.latency.p99;
        std::printf("%-9s | %8u%% %8u%% | %11.1f %11.1f | %12.1f"
                    " %12.3f\n",
                    backendName(b), kneePct(b, false), kneePct(b, true),
                    open50 > 0 ? open200 / open50 : 0.0,
                    ctl50 > 0 ? ctl200 / ctl50 : 0.0,
                    row(b, true, i200).r.goodputRps,
                    flashRow(b).r.recoverSeconds * 1e3);
    }
    std::printf("(ctl = tail-drop admission, bound %u, credit window %u;"
                " every backend's ctl p99 at 2x overload must stay"
                " within 10x of its 50%%-load p99)\n",
                kQueueBound, kCreditWindow);

    bench::writeBenchOutputs(sweep, opts,
                             {{"nodes", kNodes},
                              {"requests_per_node", kRequestsPerNode},
                              {"queue_bound", kQueueBound},
                              {"credit_window", kCreditWindow}});
    return 0;
}
