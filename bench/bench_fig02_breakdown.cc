/**
 * @file
 * Reproduces Figure 2: runtime breakdown (computation / GC / IO / S-D)
 * of the six Spark applications under (a) Java S/D and (b) Kryo.
 *
 * The Java-side phase fractions are the workload model's calibrated
 * inputs (the paper measured them on real Spark); the Kryo-side panel
 * is *derived* by rescaling each app's S/D phase with the Kryo S/D
 * speedup measured on this repo's timing models.
 *
 * Paper headline: S/D averages 39.5% of runtime under Java S/D (up to
 * 90.9% for SVM) and 28.3% under Kryo (up to 83.4%).
 */

#include <algorithm>
#include <cstdio>

#include "bench/spark_common.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 8, "fig02_breakdown");
    bench::banner("Figure 2: Spark runtime breakdown by serializer",
                  "S/D share avg 39.5% (Java, max 90.9%) and 28.3% "
                  "(Kryo, max 83.4%)");

    std::vector<bench::SparkRow> rows;
    runner::SweepRunner sweep("fig02_breakdown");
    bench::addSparkPoints(sweep, opts.scale, rows);

    sweep.setSummary([&rows](json::Writer &w) {
        double java_sd_avg = 0, kryo_sd_avg = 0, kryo_sd_max = 0;
        for (const auto &r : rows) {
            java_sd_avg += r.spec.javaPhases.sd;
            auto p = scalePhases(r.spec.javaPhases, r.kryoSdSpeedup());
            kryo_sd_avg += p.sd;
            kryo_sd_max = std::max(kryo_sd_max, p.sd);
        }
        java_sd_avg /= static_cast<double>(rows.size());
        kryo_sd_avg /= static_cast<double>(rows.size());
        w.kv("java_sd_share_avg", java_sd_avg);
        w.kv("kryo_sd_share_avg", kryo_sd_avg);
        w.kv("kryo_sd_share_max", kryo_sd_max);
    });

    bench::runSweep(sweep, opts);

    std::printf("(a) Java S/D\n");
    std::printf("%-10s | %8s %6s %6s %6s\n", "app", "compute", "gc",
                "io", "sd");
    double java_sd_avg = 0;
    for (const auto &r : rows) {
        const auto &p = r.spec.javaPhases;
        std::printf("%-10s | %7.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
                    r.spec.name.c_str(), p.compute * 100, p.gc * 100,
                    p.io * 100, p.sd * 100);
        java_sd_avg += p.sd;
    }
    java_sd_avg /= static_cast<double>(rows.size());

    std::printf("\n(b) Kryo (S/D rescaled by measured per-app Kryo "
                "speedup)\n");
    std::printf("%-10s | %8s %6s %6s %6s | %9s\n", "app", "compute",
                "gc", "io", "sd", "kryo-spd");
    double kryo_sd_avg = 0;
    double kryo_sd_max = 0;
    for (const auto &r : rows) {
        double spd = r.kryoSdSpeedup();
        auto p = scalePhases(r.spec.javaPhases, spd);
        std::printf("%-10s | %7.1f%% %5.1f%% %5.1f%% %5.1f%% | %8.2fx\n",
                    r.spec.name.c_str(), p.compute * 100, p.gc * 100,
                    p.io * 100, p.sd * 100, spd);
        kryo_sd_avg += p.sd;
        kryo_sd_max = std::max(kryo_sd_max, p.sd);
    }
    kryo_sd_avg /= static_cast<double>(rows.size());

    std::printf("\nS/D share: java avg %.1f%% (paper 39.5%%), kryo avg "
                "%.1f%% max %.1f%% (paper 28.3%% / 83.4%%)\n",
                java_sd_avg * 100, kryo_sd_avg * 100, kryo_sd_max * 100);
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
