/**
 * @file
 * Shared Spark-application measurement used by the Figure 2 and
 * Figure 13-17 benches: runs Java S/D, Kryo, and Cereal over each
 * app's representative shuffle batch and derives Spark-level S/D
 * times (codec + stream handling; see bench_util.hh).
 */

#ifndef CEREAL_BENCH_SPARK_COMMON_HH
#define CEREAL_BENCH_SPARK_COMMON_HH

#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "shuffle/shuffle.hh"
#include "workloads/harness.hh"
#include "workloads/spark.hh"

namespace cereal {
namespace bench {

/** Everything the Spark figures need for one application. */
struct SparkRow
{
    workloads::SparkAppSpec spec;
    workloads::SdMeasurement java;
    workloads::SdMeasurement kryo;
    workloads::SdMeasurement cereal;
    /** Measured shuffle-stage times (write+read), per serializer. */
    double javaShuffle = 0;
    double kryoShuffle = 0;
    double cerealShuffle = 0;

    /** Spark-level S/D seconds: codec + measured shuffle stage. */
    double
    javaSd() const
    {
        return java.serSeconds + java.deserSeconds + javaShuffle;
    }
    double
    kryoSd() const
    {
        return kryo.serSeconds + kryo.deserSeconds + kryoShuffle;
    }
    double
    cerealSd() const
    {
        return cereal.serSeconds + cereal.deserSeconds + cerealShuffle;
    }

    double kryoSdSpeedup() const { return javaSd() / kryoSd(); }
    double cerealSdSpeedup() const { return javaSd() / cerealSd(); }
    double
    cerealOverKryo() const
    {
        return kryoSd() / cerealSd();
    }
};

/** Measure all six applications at the given scale divisor. */
inline std::vector<SparkRow>
measureSparkApps(std::uint64_t scale)
{
    std::vector<SparkRow> rows;
    KlassRegistry reg;
    workloads::SparkWorkloads spark(reg);
    ShuffleStage shuffle;
    Addr base = 0x1'0000'0000ULL;
    for (const auto &spec : workloads::sparkApps()) {
        Heap src(reg, base);
        base += 0x10'0000'0000ULL;
        Addr root = spark.build(src, spec.name, scale, 42);

        JavaSerializer java;
        KryoSerializer kryo;
        kryo.registerAll(reg);

        SparkRow row{spec,
                     workloads::measureSoftware(java, src, root),
                     workloads::measureSoftware(kryo, src, root),
                     workloads::measureCereal(src, root),
                     0,
                     0,
                     0};

        // Shuffle stage: software compresses + copies; Cereal's driver
        // hands the packed stream off with a bulk copy.
        auto java_stream = java.serialize(src, root);
        row.javaShuffle = shuffle.softwareWrite(java_stream).seconds +
                          shuffle.softwareRead(java_stream).seconds;
        auto kryo_stream = kryo.serialize(src, root);
        row.kryoShuffle = shuffle.softwareWrite(kryo_stream).seconds +
                          shuffle.softwareRead(kryo_stream).seconds;
        row.cerealShuffle =
            2 * shuffle.cerealHandoff(row.cereal.streamBytes).seconds;

        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace bench
} // namespace cereal

#endif // CEREAL_BENCH_SPARK_COMMON_HH
