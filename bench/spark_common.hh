/**
 * @file
 * Shared Spark-application measurement used by the Figure 2 and
 * Figure 13-17 benches: runs Java S/D, Kryo, and Cereal over each
 * app's representative shuffle batch and derives Spark-level S/D
 * times (codec + stream handling; see bench_util.hh).
 *
 * Each application is measured in a fully isolated simulation context
 * (its own klass registry, workload builder, heap, shuffle stage and
 * per-measurement DDR4/core instances), so the six apps are
 * independent sweep points for the parallel runner.
 */

#ifndef CEREAL_BENCH_SPARK_COMMON_HH
#define CEREAL_BENCH_SPARK_COMMON_HH

#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "shuffle/shuffle.hh"
#include "workloads/harness.hh"
#include "workloads/spark.hh"

namespace cereal {
namespace bench {

/** Everything the Spark figures need for one application. */
struct SparkRow
{
    workloads::SparkAppSpec spec;
    workloads::SdMeasurement java;
    workloads::SdMeasurement kryo;
    workloads::SdMeasurement cereal;
    /** Measured shuffle-stage times (write+read), per serializer. */
    double javaShuffle = 0;
    double kryoShuffle = 0;
    double cerealShuffle = 0;

    /** Spark-level S/D seconds: codec + measured shuffle stage. */
    double
    javaSd() const
    {
        return java.serSeconds + java.deserSeconds + javaShuffle;
    }
    double
    kryoSd() const
    {
        return kryo.serSeconds + kryo.deserSeconds + kryoShuffle;
    }
    double
    cerealSd() const
    {
        return cereal.serSeconds + cereal.deserSeconds + cerealShuffle;
    }

    double kryoSdSpeedup() const { return javaSd() / kryoSd(); }
    double cerealSdSpeedup() const { return javaSd() / cerealSd(); }
    double
    cerealOverKryo() const
    {
        return kryoSd() / cerealSd();
    }
};

/** Measure one application in its own simulation context. */
inline SparkRow
measureSparkApp(const workloads::SparkAppSpec &spec, std::uint64_t scale)
{
    KlassRegistry reg;
    workloads::SparkWorkloads spark(reg);
    ShuffleStage shuffle;
    Heap src(reg, 0x1'0000'0000ULL);
    Addr root = spark.build(src, spec.name, scale, 42);

    JavaSerializer java;
    KryoSerializer kryo;
    kryo.registerAll(reg);

    SparkRow row{spec,
                 workloads::measureSoftware(java, src, root),
                 workloads::measureSoftware(kryo, src, root),
                 workloads::measureCereal(src, root),
                 0,
                 0,
                 0};

    // Shuffle stage: software compresses + copies; Cereal's driver
    // hands the packed stream off with a bulk copy.
    auto java_stream = java.serialize(src, root);
    row.javaShuffle = shuffle.softwareWrite(java_stream).seconds +
                      shuffle.softwareRead(java_stream).seconds;
    auto kryo_stream = kryo.serialize(src, root);
    row.kryoShuffle = shuffle.softwareWrite(kryo_stream).seconds +
                      shuffle.softwareRead(kryo_stream).seconds;
    row.cerealShuffle =
        2 * shuffle.cerealHandoff(row.cereal.streamBytes).seconds;
    return row;
}

/**
 * Register one sweep point per Spark application. @p rows is resized
 * to the app count; rows[i] is valid once sweep.run() returns. Every
 * point also emits the three SdMeasurements, shuffle times and derived
 * speedups into the JSON document.
 */
inline void
addSparkPoints(runner::SweepRunner &sweep, std::uint64_t scale,
               std::vector<SparkRow> &rows)
{
    const auto &apps = workloads::sparkApps();
    rows.resize(apps.size());
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &spec = apps[i];
        sweep.add(spec.name, [&rows, i, spec, scale](json::Writer &w) {
            rows[i] = measureSparkApp(spec, scale);
            const SparkRow &r = rows[i];
            r.java.writeJson(w, "java");
            r.kryo.writeJson(w, "kryo");
            r.cereal.writeJson(w, "cereal");
            w.kv("java_shuffle_seconds", r.javaShuffle);
            w.kv("kryo_shuffle_seconds", r.kryoShuffle);
            w.kv("cereal_shuffle_seconds", r.cerealShuffle);
            w.kv("java_sd_seconds", r.javaSd());
            w.kv("kryo_sd_seconds", r.kryoSd());
            w.kv("cereal_sd_seconds", r.cerealSd());
            w.kv("kryo_sd_speedup", r.kryoSdSpeedup());
            w.kv("cereal_sd_speedup", r.cerealSdSpeedup());
            w.kv("cereal_over_kryo", r.cerealOverKryo());
        });
    }
}

/** Serial convenience: measure all apps at @p scale. */
inline std::vector<SparkRow>
measureSparkApps(std::uint64_t scale)
{
    std::vector<SparkRow> rows;
    for (const auto &spec : workloads::sparkApps()) {
        rows.push_back(measureSparkApp(spec, scale));
    }
    return rows;
}

} // namespace bench
} // namespace cereal

#endif // CEREAL_BENCH_SPARK_COMMON_HH
