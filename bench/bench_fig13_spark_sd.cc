/**
 * @file
 * Reproduces Figure 13: S/D speedups on the six Spark applications.
 *
 * Paper headline: Kryo 1.67x over Java S/D; Cereal 7.97x over Java S/D
 * and 4.81x over Kryo.
 */

#include <cstdio>

#include "bench/spark_common.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    const std::uint64_t scale = bench::scaleFromArgs(argc, argv, 8);
    bench::banner("Figure 13: Spark S/D speedups",
                  "Kryo 1.67x vs Java; Cereal 7.97x vs Java, 4.81x vs "
                  "Kryo (averages)");

    auto rows = bench::measureSparkApps(scale);

    std::printf("%-10s | %10s %12s %12s | %10s %10s %10s\n", "app",
                "kryo/java", "cereal/java", "cereal/kryo", "sdJ(ms)",
                "sdK(ms)", "sdC(ms)");
    std::vector<double> kj, cj, ck;
    for (const auto &r : rows) {
        kj.push_back(r.kryoSdSpeedup());
        cj.push_back(r.cerealSdSpeedup());
        ck.push_back(r.cerealOverKryo());
        std::printf("%-10s | %10.2f %12.2f %12.2f | %10.3f %10.3f "
                    "%10.3f\n",
                    r.spec.name.c_str(), kj.back(), cj.back(),
                    ck.back(), r.javaSd() * 1e3, r.kryoSd() * 1e3,
                    r.cerealSd() * 1e3);
    }
    auto avg = [](const std::vector<double> &x) {
        double s = 0;
        for (double v : x) {
            s += v;
        }
        return s / static_cast<double>(x.size());
    };
    std::printf("%-10s | %10.2f %12.2f %12.2f |\n", "average", avg(kj),
                avg(cj), avg(ck));
    std::printf("(paper)    |       1.67         7.97         4.81 |\n");
    return 0;
}
