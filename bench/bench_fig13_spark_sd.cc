/**
 * @file
 * Reproduces Figure 13: S/D speedups on the six Spark applications.
 *
 * Paper headline: Kryo 1.67x over Java S/D; Cereal 7.97x over Java S/D
 * and 4.81x over Kryo.
 */

#include <cstdio>

#include "bench/spark_common.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 8, "fig13_spark_sd");
    bench::banner("Figure 13: Spark S/D speedups",
                  "Kryo 1.67x vs Java; Cereal 7.97x vs Java, 4.81x vs "
                  "Kryo (averages)");

    std::vector<bench::SparkRow> rows;
    runner::SweepRunner sweep("fig13_spark_sd");
    bench::addSparkPoints(sweep, opts.scale, rows);

    auto avg = [&rows](double (bench::SparkRow::*m)() const) {
        double s = 0;
        for (const auto &r : rows) {
            s += (r.*m)();
        }
        return s / static_cast<double>(rows.size());
    };
    sweep.setSummary([&](json::Writer &w) {
        w.kv("kryo_sd_speedup_avg", avg(&bench::SparkRow::kryoSdSpeedup));
        w.kv("cereal_sd_speedup_avg",
             avg(&bench::SparkRow::cerealSdSpeedup));
        w.kv("cereal_over_kryo_avg",
             avg(&bench::SparkRow::cerealOverKryo));
    });

    bench::runSweep(sweep, opts);

    std::printf("%-10s | %10s %12s %12s | %10s %10s %10s\n", "app",
                "kryo/java", "cereal/java", "cereal/kryo", "sdJ(ms)",
                "sdK(ms)", "sdC(ms)");
    for (const auto &r : rows) {
        std::printf("%-10s | %10.2f %12.2f %12.2f | %10.3f %10.3f "
                    "%10.3f\n",
                    r.spec.name.c_str(), r.kryoSdSpeedup(),
                    r.cerealSdSpeedup(), r.cerealOverKryo(),
                    r.javaSd() * 1e3, r.kryoSd() * 1e3,
                    r.cerealSd() * 1e3);
    }
    std::printf("%-10s | %10.2f %12.2f %12.2f |\n", "average",
                avg(&bench::SparkRow::kryoSdSpeedup),
                avg(&bench::SparkRow::cerealSdSpeedup),
                avg(&bench::SparkRow::cerealOverKryo));
    std::printf("(paper)    |       1.67         7.97         4.81 |\n");
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
