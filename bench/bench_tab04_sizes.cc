/**
 * @file
 * Reproduces Table IV: serialized object sizes across the
 * microbenchmarks for Java S/D, Kryo and Cereal.
 *
 * Paper headline (MB at paper scale): Cereal sits between Java and
 * Kryo on value-dominated shapes (Tree, List) because its format
 * carries reference offsets and bitmaps, but wins dramatically on the
 * reference-dominated Graph benchmarks thanks to object packing.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "cereal/cereal_serializer.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

namespace {

struct Row
{
    std::uint64_t java, kryo, crl;
};

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 64, "tab04_sizes");
    bench::banner("Table IV: serialized sizes across microbenchmarks",
                  "paper (MB): tree-narrow 23.0/12.0/16.1, tree-wide "
                  "148.6/48.0/80.0, list-small 8.0/2.5/16.0, list-large "
                  "59.4/10.0/47.8, graph-sparse 22.1/10.8/2.4, "
                  "graph-dense 115.5/51.1/2.4");

    const auto &benches = allMicroBenches();
    std::vector<Row> rows(benches.size());
    runner::SweepRunner sweep("tab04_sizes");

    for (std::size_t i = 0; i < benches.size(); ++i) {
        const MicroBench mb = benches[i];
        const std::uint64_t scale = opts.scale;
        sweep.add(microBenchName(mb), [&rows, i, mb,
                                       scale](json::Writer &w) {
            KlassRegistry reg;
            MicroWorkloads micro(reg);
            Heap src(reg, 0x1'0000'0000ULL);
            Addr root = micro.build(src, mb, scale, 42);
            JavaSerializer java;
            KryoSerializer kryo;
            kryo.registerAll(reg);
            CerealSerializer crl;
            crl.registerAll(reg);

            rows[i] = {java.serialize(src, root).size(),
                       kryo.serialize(src, root).size(),
                       crl.serializeToStream(src, root).serializedBytes()};
            w.kv("java_bytes", rows[i].java);
            w.kv("kryo_bytes", rows[i].kryo);
            w.kv("cereal_bytes", rows[i].crl);
            w.kv("cereal_over_java_ratio",
                 static_cast<double>(rows[i].crl) /
                     static_cast<double>(rows[i].java));
        });
    }

    bench::runSweep(sweep, opts);

    std::printf("%-13s | %10s %10s %10s | %8s\n", "workload",
                "java(MB)", "kryo(MB)", "cereal(MB)",
                "C/J ratio");
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const Row &r = rows[i];
        // Scale measured bytes back up to paper-size graphs for the
        // apples-to-apples column (sizes scale linearly in objects).
        const double f = static_cast<double>(opts.scale) / 1e6;
        std::printf("%-13s | %10.1f %10.1f %10.1f | %8.2f\n",
                    microBenchName(benches[i]), r.java * f, r.kryo * f,
                    r.crl * f,
                    static_cast<double>(r.crl) /
                        static_cast<double>(r.java));
    }
    std::printf("scale divisor: %llu; MB columns are extrapolated to "
                "paper-scale graphs\n",
                (unsigned long long)opts.scale);
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
