/**
 * @file
 * Reproduces Table IV: serialized object sizes across the
 * microbenchmarks for Java S/D, Kryo and Cereal.
 *
 * Paper headline (MB at paper scale): Cereal sits between Java and
 * Kryo on value-dominated shapes (Tree, List) because its format
 * carries reference offsets and bitmaps, but wins dramatically on the
 * reference-dominated Graph benchmarks thanks to object packing.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "cereal/cereal_serializer.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "workloads/micro.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    const std::uint64_t scale = bench::scaleFromArgs(argc, argv);
    bench::banner("Table IV: serialized sizes across microbenchmarks",
                  "paper (MB): tree-narrow 23.0/12.0/16.1, tree-wide "
                  "148.6/48.0/80.0, list-small 8.0/2.5/16.0, list-large "
                  "59.4/10.0/47.8, graph-sparse 22.1/10.8/2.4, "
                  "graph-dense 115.5/51.1/2.4");

    std::printf("%-13s | %10s %10s %10s | %8s\n", "workload",
                "java(MB)", "kryo(MB)", "cereal(MB)",
                "C/J ratio");

    KlassRegistry reg;
    MicroWorkloads micro(reg);

    for (auto mb : allMicroBenches()) {
        Heap src(reg, 0x1'0000'0000ULL +
                          0x10'0000'0000ULL * static_cast<Addr>(mb));
        Addr root = micro.build(src, mb, scale, 42);
        JavaSerializer java;
        KryoSerializer kryo;
        kryo.registerAll(reg);
        CerealSerializer crl;
        crl.registerAll(reg);

        auto j = java.serialize(src, root).size();
        auto k = kryo.serialize(src, root).size();
        auto c = crl.serializeToStream(src, root).serializedBytes();

        // Scale measured bytes back up to paper-size graphs for the
        // apples-to-apples column (sizes scale linearly in objects).
        const double f = static_cast<double>(scale) / 1e6;
        std::printf("%-13s | %10.1f %10.1f %10.1f | %8.2f\n",
                    microBenchName(mb), j * f, k * f, c * f,
                    static_cast<double>(c) / static_cast<double>(j));
    }
    std::printf("scale divisor: %llu; MB columns are extrapolated to "
                "paper-scale graphs\n",
                (unsigned long long)scale);
    return 0;
}
