/**
 * @file
 * Reproduces Figure 17: S/D energy on the Spark applications,
 * normalised to Java S/D. Software serializers burn host-CPU TDP for
 * their runtime; Cereal burns the Table V module power for its busy
 * time.
 *
 * Paper headline: Cereal uses 313.6x (ser) / 165.4x (deser) less
 * energy than Java S/D, 225.5x / 82.3x less than Kryo; overall
 * 227.75x (vs Java) and 136.28x (vs Kryo).
 */

#include <cstdio>

#include "bench/spark_common.hh"
#include "cereal/area_power.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 8, "fig17_energy");
    bench::banner("Figure 17: normalized S/D energy on Spark "
                  "applications",
                  "Cereal saves 227.75x vs Java and 136.28x vs Kryo "
                  "overall (geomean ser 313.6x/225.5x, deser "
                  "165.4x/82.3x)");

    std::vector<bench::SparkRow> rows;
    runner::SweepRunner sweep("fig17_energy");
    bench::addSparkPoints(sweep, opts.scale, rows);

    // Accounting (documented in EXPERIMENTS.md): software S/D burns the
    // host TDP for the Spark-level S/D duration (codec + measured
    // shuffle stage). Cereal burns one core's TDP share for the
    // driver's measured handoff time plus the Table V direction power
    // for the accelerator's busy time.
    AreaPowerModel power;
    constexpr double kCoreShareW = AreaPowerModel::kHostTdpWatts / 8;
    auto sw_energy = [](double codec_s, double shuffle_s) {
        return AreaPowerModel::kHostTdpWatts * (codec_s + shuffle_s);
    };
    auto cereal_energy = [&](double accel_s, double driver_s, bool ser) {
        double device_w = (ser ? power.serializerPowerMw()
                               : power.deserializerPowerMw()) *
                          1e-3;
        return kCoreShareW * driver_s + device_w * accel_s;
    };
    struct Ratios
    {
        double js, jd, ks, kd;
    };
    auto ratios = [&](const bench::SparkRow &r) {
        // Shuffle/driver time split evenly between directions.
        double c_ser = cereal_energy(r.cereal.serSeconds,
                                     r.cerealShuffle / 2, true);
        double c_de = cereal_energy(r.cereal.deserSeconds,
                                    r.cerealShuffle / 2, false);
        return Ratios{
            sw_energy(r.java.serSeconds, r.javaShuffle / 2) / c_ser,
            sw_energy(r.java.deserSeconds, r.javaShuffle / 2) / c_de,
            sw_energy(r.kryo.serSeconds, r.kryoShuffle / 2) / c_ser,
            sw_energy(r.kryo.deserSeconds, r.kryoShuffle / 2) / c_de};
    };
    auto totals = [&]() {
        double j = 0, k = 0, c = 0;
        for (const auto &r : rows) {
            j += sw_energy(r.java.serSeconds + r.java.deserSeconds,
                           r.javaShuffle);
            k += sw_energy(r.kryo.serSeconds + r.kryo.deserSeconds,
                           r.kryoShuffle);
            c += cereal_energy(r.cereal.serSeconds, r.cerealShuffle / 2,
                               true) +
                 cereal_energy(r.cereal.deserSeconds,
                               r.cerealShuffle / 2, false);
        }
        return std::pair<double, double>(j / c, k / c);
    };

    sweep.setSummary([&](json::Writer &w) {
        std::vector<double> js, jd, ks, kd;
        for (const auto &r : rows) {
            auto x = ratios(r);
            js.push_back(x.js);
            jd.push_back(x.jd);
            ks.push_back(x.ks);
            kd.push_back(x.kd);
        }
        w.kv("java_over_cereal_ser_geomean", geomean(js));
        w.kv("java_over_cereal_deser_geomean", geomean(jd));
        w.kv("kryo_over_cereal_ser_geomean", geomean(ks));
        w.kv("kryo_over_cereal_deser_geomean", geomean(kd));
        auto [vs_java, vs_kryo] = totals();
        w.kv("overall_saving_vs_java", vs_java);
        w.kv("overall_saving_vs_kryo", vs_kryo);
    });

    bench::runSweep(sweep, opts);

    std::printf("%-10s | %12s %12s | %12s %12s\n", "app",
                "J/C ser", "J/C deser", "K/C ser", "K/C deser");
    std::vector<double> js, jd, ks, kd;
    for (const auto &r : rows) {
        auto x = ratios(r);
        js.push_back(x.js);
        jd.push_back(x.jd);
        ks.push_back(x.ks);
        kd.push_back(x.kd);
        std::printf("%-10s | %11.1fx %11.1fx | %11.1fx %11.1fx\n",
                    r.spec.name.c_str(), x.js, x.jd, x.ks, x.kd);
    }
    std::printf("%-10s | %11.1fx %11.1fx | %11.1fx %11.1fx\n",
                "geomean", geomean(js), geomean(jd), geomean(ks),
                geomean(kd));
    std::printf("(paper)    |      313.6x       165.4x |      225.5x  "
                "      82.3x\n");

    auto [vs_java, vs_kryo] = totals();
    std::printf("overall S/D energy saving: %.1fx vs Java (paper "
                "227.75x), %.1fx vs Kryo (paper 136.28x)\n",
                vs_java, vs_kryo);
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
