/**
 * @file
 * Ablation: the object packing scheme (Section IV-B) — packed versus
 * baseline (Section IV-A) stream sizes across every workload family,
 * plus the packing/unpacking footprint on DU input traffic.
 */

#include <cstdio>
#include <functional>

#include "bench/bench_util.hh"
#include "cereal/cereal_serializer.hh"
#include "workloads/jsbs.hh"
#include "workloads/micro.hh"
#include "workloads/spark.hh"

using namespace cereal;
using namespace cereal::workloads;

namespace {

/** One workload row: packed vs baseline stream footprint. */
struct Row
{
    double baselineBytes = 0;
    double packedBytes = 0;
    double refSharePct = 0;

    double savedPct() const
    {
        return (baselineBytes - packedBytes) / baselineBytes * 100;
    }
};

Row
measure(const CerealStream &s)
{
    Row r;
    r.packedBytes = static_cast<double>(s.serializedBytes());
    r.baselineBytes = static_cast<double>(s.baselineBytes());
    r.refSharePct =
        static_cast<double>(s.refBuckets.size() + s.refEndMap.size()) /
        r.packedBytes * 100;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 64, "abl_packing");
    bench::banner("Ablation: object packing on vs off",
                  "packing compresses reference offsets + bitmaps; "
                  "value-heavy workloads see little change, "
                  "reference-heavy ones shrink dramatically");

    // 13 points: 6 micro benches, the JSBS media graph, 6 Spark apps.
    // Each builds its graph in a private registry/heap.
    struct PointSpec
    {
        std::string name;
        std::function<Addr(KlassRegistry &, Heap &, std::uint64_t)> build;
    };
    std::vector<PointSpec> specs;
    for (auto mb : allMicroBenches()) {
        specs.push_back({microBenchName(mb),
                         [mb](KlassRegistry &reg, Heap &src,
                              std::uint64_t scale) {
                             MicroWorkloads micro(reg);
                             return micro.build(src, mb, scale, 42);
                         }});
    }
    specs.push_back({"jsbs-media",
                     [](KlassRegistry &reg, Heap &src, std::uint64_t) {
                         JsbsWorkload jsbs(reg);
                         return jsbs.buildMediaContent(src, 1);
                     }});
    for (const auto &app : sparkApps()) {
        specs.push_back({app.name,
                         [name = app.name](KlassRegistry &reg, Heap &src,
                                           std::uint64_t scale) {
                             SparkWorkloads spark(reg);
                             return spark.build(src, name, scale, 42);
                         }});
    }

    std::vector<Row> rows(specs.size());
    runner::SweepRunner sweep("abl_packing");
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto &spec = specs[i];
        const std::uint64_t scale = opts.scale;
        sweep.add(spec.name, [&rows, i, &spec, scale](json::Writer &w) {
            KlassRegistry reg;
            Heap src(reg, 0x1'0000'0000ULL);
            Addr root = spec.build(reg, src, scale);
            CerealSerializer ser;
            ser.registerAll(reg);
            rows[i] = measure(ser.serializeToStream(src, root));
            w.kv("baseline_bytes", rows[i].baselineBytes);
            w.kv("packed_bytes", rows[i].packedBytes);
            w.kv("saved_pct", rows[i].savedPct());
            w.kv("ref_share_pct", rows[i].refSharePct);
        });
    }

    bench::runSweep(sweep, opts);

    std::printf("%-14s | %10s %10s | %9s | %8s\n", "workload",
                "base(KB)", "packed(KB)", "saved", "ref-share");
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const Row &r = rows[i];
        std::printf("%-14s | %10.1f %10.1f | %8.1f%% | %7.1f%%\n",
                    specs[i].name.c_str(), r.baselineBytes / 1024,
                    r.packedBytes / 1024, r.savedPct(), r.refSharePct);
    }
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
