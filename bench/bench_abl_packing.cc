/**
 * @file
 * Ablation: the object packing scheme (Section IV-B) — packed versus
 * baseline (Section IV-A) stream sizes across every workload family,
 * plus the packing/unpacking footprint on DU input traffic.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "cereal/cereal_serializer.hh"
#include "workloads/jsbs.hh"
#include "workloads/micro.hh"
#include "workloads/spark.hh"

using namespace cereal;
using namespace cereal::workloads;

namespace {

void
row(const char *name, const CerealStream &s)
{
    const double packed = static_cast<double>(s.serializedBytes());
    const double baseline = static_cast<double>(s.baselineBytes());
    const double ref_share =
        static_cast<double>(s.refBuckets.size() + s.refEndMap.size()) /
        packed * 100;
    std::printf("%-14s | %10.1f %10.1f | %8.1f%% | %7.1f%%\n", name,
                baseline / 1024, packed / 1024,
                (baseline - packed) / baseline * 100, ref_share);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t scale = bench::scaleFromArgs(argc, argv, 64);
    bench::banner("Ablation: object packing on vs off",
                  "packing compresses reference offsets + bitmaps; "
                  "value-heavy workloads see little change, "
                  "reference-heavy ones shrink dramatically");

    std::printf("%-14s | %10s %10s | %9s | %8s\n", "workload",
                "base(KB)", "packed(KB)", "saved", "ref-share");

    KlassRegistry reg;
    MicroWorkloads micro(reg);
    JsbsWorkload jsbs(reg);
    SparkWorkloads spark(reg);
    CerealSerializer ser;
    ser.registerAll(reg);

    Addr base = 0x1'0000'0000ULL;
    auto fresh = [&]() {
        Addr b = base;
        base += 0x10'0000'0000ULL;
        return b;
    };

    for (auto mb : allMicroBenches()) {
        Heap src(reg, fresh());
        Addr root = micro.build(src, mb, scale, 42);
        row(microBenchName(mb), ser.serializeToStream(src, root));
    }
    {
        Heap src(reg, fresh());
        row("jsbs-media", ser.serializeToStream(
                              src, jsbs.buildMediaContent(src, 1)));
    }
    for (const auto &spec : sparkApps()) {
        Heap src(reg, fresh());
        Addr root = spark.build(src, spec.name, scale, 42);
        row(spec.name.c_str(), ser.serializeToStream(src, root));
    }
    return 0;
}
