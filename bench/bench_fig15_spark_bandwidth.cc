/**
 * @file
 * Reproduces Figure 15: DRAM bandwidth utilisation on the Spark
 * applications — Cereal uses substantially more bandwidth than the
 * software serializers, and deserialization more than serialization.
 */

#include <cstdio>

#include "bench/spark_common.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 8, "fig15_spark_bandwidth");
    bench::banner("Figure 15: DRAM bandwidth utilisation (%) on Spark "
                  "applications",
                  "Cereal >> software; deserialization > serialization");

    std::vector<bench::SparkRow> rows;
    runner::SweepRunner sweep("fig15_spark_bandwidth");
    bench::addSparkPoints(sweep, opts.scale, rows);

    sweep.setSummary([&rows](json::Writer &w) {
        double sc = 0, dc = 0;
        for (const auto &r : rows) {
            sc += r.cereal.serBandwidth;
            dc += r.cereal.deserBandwidth;
        }
        w.kv("cereal_ser_bandwidth_avg",
             sc / static_cast<double>(rows.size()));
        w.kv("cereal_deser_bandwidth_avg",
             dc / static_cast<double>(rows.size()));
    });

    bench::runSweep(sweep, opts);

    std::printf("%-10s | %6s %6s %6s | %6s %6s %6s\n", "app", "serJ%",
                "serK%", "serC%", "deJ%", "deK%", "deC%");
    double sc = 0, dc = 0;
    for (const auto &r : rows) {
        std::printf("%-10s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
                    r.spec.name.c_str(), r.java.serBandwidth * 100,
                    r.kryo.serBandwidth * 100,
                    r.cereal.serBandwidth * 100,
                    r.java.deserBandwidth * 100,
                    r.kryo.deserBandwidth * 100,
                    r.cereal.deserBandwidth * 100);
        sc += r.cereal.serBandwidth;
        dc += r.cereal.deserBandwidth;
    }
    std::printf("cereal averages: ser %.1f%%, deser %.1f%% "
                "(deser > ser, both >> software, as in the paper)\n",
                sc / rows.size() * 100, dc / rows.size() * 100);
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
