/**
 * @file
 * Reproduces Figure 16: compression delivered by Cereal's object
 * packing scheme (and the additional mark-word stripping variant) on
 * the Spark applications.
 *
 * Paper headline: packing averages 28.3% size reduction; it is very
 * effective on reference-rich NWeight and nearly irrelevant for
 * SVM/Bayes/LR whose objects carry few references.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "cereal/cereal_serializer.hh"
#include "workloads/spark.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    const std::uint64_t scale = bench::scaleFromArgs(argc, argv, 8);
    bench::banner("Figure 16: Cereal object-packing compression on "
                  "Spark applications",
                  "packing avg 28.3% reduction; strongest on NWeight, "
                  "weak on SVM/Bayes/LR");

    KlassRegistry reg;
    SparkWorkloads spark(reg);

    std::printf("%-10s | %12s %12s %12s | %9s %9s\n", "app",
                "unpacked(KB)", "packed(KB)", "+strip(KB)", "packing%",
                "strip%");
    double avg_packing = 0;
    Addr base = 0x1'0000'0000ULL;
    for (const auto &spec : sparkApps()) {
        Heap src(reg, base);
        base += 0x10'0000'0000ULL;
        Addr root = spark.build(src, spec.name, scale, 42);

        CerealSerializer plain;
        plain.registerAll(reg);
        CerealSerializer strip(CerealOptions{/*headerStrip=*/true});
        strip.registerAll(reg);

        auto s = plain.serializeToStream(src, root);
        auto st = strip.serializeToStream(src, root);

        const double unpacked =
            static_cast<double>(s.baselineBytes());
        const double packed =
            static_cast<double>(s.serializedBytes());
        const double stripped =
            static_cast<double>(st.serializedBytes());
        const double packing = (unpacked - packed) / unpacked * 100;
        const double strip_more =
            (packed - stripped) / unpacked * 100;
        avg_packing += packing;
        std::printf("%-10s | %12.1f %12.1f %12.1f | %8.1f%% %8.1f%%\n",
                    spec.name.c_str(), unpacked / 1024, packed / 1024,
                    stripped / 1024, packing, strip_more);
    }
    std::printf("average packing reduction: %.1f%% (paper: 28.3%%)\n",
                avg_packing / sparkApps().size());
    return 0;
}
