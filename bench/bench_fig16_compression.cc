/**
 * @file
 * Reproduces Figure 16: compression delivered by Cereal's object
 * packing scheme (and the additional mark-word stripping variant) on
 * the Spark applications.
 *
 * Paper headline: packing averages 28.3% size reduction; it is very
 * effective on reference-rich NWeight and nearly irrelevant for
 * SVM/Bayes/LR whose objects carry few references.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "cereal/cereal_serializer.hh"
#include "workloads/spark.hh"

using namespace cereal;
using namespace cereal::workloads;

namespace {

struct Row
{
    double unpacked, packed, stripped;
};

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::Options::parse(argc, argv, 8, "fig16_compression");
    bench::banner("Figure 16: Cereal object-packing compression on "
                  "Spark applications",
                  "packing avg 28.3% reduction; strongest on NWeight, "
                  "weak on SVM/Bayes/LR");

    const auto &apps = sparkApps();
    std::vector<Row> rows(apps.size());
    runner::SweepRunner sweep("fig16_compression");

    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &spec = apps[i];
        const std::uint64_t scale = opts.scale;
        sweep.add(spec.name, [&rows, i, spec, scale](json::Writer &w) {
            KlassRegistry reg;
            SparkWorkloads spark(reg);
            Heap src(reg, 0x1'0000'0000ULL);
            Addr root = spark.build(src, spec.name, scale, 42);

            CerealSerializer plain;
            plain.registerAll(reg);
            CerealSerializer strip(CerealOptions{/*headerStrip=*/true});
            strip.registerAll(reg);

            auto s = plain.serializeToStream(src, root);
            auto st = strip.serializeToStream(src, root);
            rows[i] = {static_cast<double>(s.baselineBytes()),
                       static_cast<double>(s.serializedBytes()),
                       static_cast<double>(st.serializedBytes())};
            w.kv("unpacked_bytes", s.baselineBytes());
            w.kv("packed_bytes", s.serializedBytes());
            w.kv("stripped_bytes", st.serializedBytes());
            w.kv("packing_reduction_pct",
                 (rows[i].unpacked - rows[i].packed) / rows[i].unpacked *
                     100);
            w.kv("strip_reduction_pct",
                 (rows[i].packed - rows[i].stripped) / rows[i].unpacked *
                     100);
        });
    }

    sweep.setSummary([&rows](json::Writer &w) {
        double avg_packing = 0;
        for (const auto &r : rows) {
            avg_packing += (r.unpacked - r.packed) / r.unpacked * 100;
        }
        w.kv("packing_reduction_avg_pct",
             avg_packing / static_cast<double>(rows.size()));
    });

    bench::runSweep(sweep, opts);

    std::printf("%-10s | %12s %12s %12s | %9s %9s\n", "app",
                "unpacked(KB)", "packed(KB)", "+strip(KB)", "packing%",
                "strip%");
    double avg_packing = 0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const Row &r = rows[i];
        const double packing = (r.unpacked - r.packed) / r.unpacked * 100;
        const double strip_more =
            (r.packed - r.stripped) / r.unpacked * 100;
        avg_packing += packing;
        std::printf("%-10s | %12.1f %12.1f %12.1f | %8.1f%% %8.1f%%\n",
                    apps[i].name.c_str(), r.unpacked / 1024,
                    r.packed / 1024, r.stripped / 1024, packing,
                    strip_more);
    }
    std::printf("average packing reduction: %.1f%% (paper: 28.3%%)\n",
                avg_packing / apps.size());
    bench::writeBenchOutputs(sweep, opts);
    return 0;
}
