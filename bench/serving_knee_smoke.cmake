# Serving-knee regression gate: runs bench_serving_knee and compares
# its JSON against the committed baseline. Everything the bench emits
# is a deterministic simulated quantity, so the default tolerance band
# catches any behavioural drift (including all_tails_bounded flipping
# to 0); goodput additionally gets ONE-SIDED floors so an improvement
# never fails while a collapse past 10% does.
# Invoked by ctest with:
#   -DBENCH=<bench_serving_knee> -DCOMPARE=<bench_compare>
#   -DBASELINE=<tests/baselines/BENCH_serving_knee.json> -DWORKDIR=<dir>
# Re-record the baseline with CEREAL_UPDATE_BASELINES=1 in the
# environment after an intentional behaviour change.

set(fresh ${WORKDIR}/BENCH_serving_knee_fresh.json)

execute_process(
  COMMAND ${BENCH} --json ${fresh}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "${BENCH} failed (rc=${rc}):\n${stdout}\n${stderr}")
endif()

execute_process(
  COMMAND ${COMPARE} ${fresh} ${BASELINE}
          --floor goodput=0.9
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
message(STATUS "bench_compare:\n${stdout}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "serving knee drifted from the baseline (rc=${rc}):\n"
          "${stdout}\n${stderr}")
endif()
