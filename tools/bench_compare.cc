/**
 * @file
 * CLI perf-regression gate: diff a fresh `BENCH_<name>.json` against a
 * committed baseline.
 *
 *   bench_compare <fresh.json> <baseline.json>
 *                 [--tolerance X] [--tolerance <path-substr>=Y]
 *                 [--floor <path-substr>=R] ...
 *
 * Exit status 0 when every numeric leaf is within tolerance, 1 on any
 * drift / missing / extra metric, 2 on usage or I/O errors. With
 * CEREAL_UPDATE_BASELINES=1 in the environment the fresh document is
 * copied over the baseline instead of compared (the golden-file regen
 * convention), which is how baselines are recorded in the first place.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "runner/baseline.hh"

namespace {

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return false;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <fresh.json> <baseline.json>"
                 " [--tolerance X] [--tolerance <path-substr>=Y]...\n"
                 "  --tolerance X             default relative tolerance"
                 " (default 0.05)\n"
                 "  --tolerance substr=Y      override for paths"
                 " containing substr (longest match wins)\n"
                 "  --floor substr=R          one-sided gate for paths"
                 " containing substr: fresh >= R * baseline\n"
                 "                            (improvements always pass;"
                 " replaces the symmetric tolerance)\n"
                 "  CEREAL_UPDATE_BASELINES=1 rewrite the baseline from"
                 " the fresh document\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string fresh_path, base_path;
    cereal::runner::Tolerance tol;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0) {
            usage(argv[0]);
            return 0;
        }
        if (std::strcmp(arg, "--tolerance") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--tolerance needs a value\n");
                return 2;
            }
            const std::string spec = argv[++i];
            const auto eq = spec.find('=');
            char *end = nullptr;
            if (eq == std::string::npos) {
                tol.defaultRel = std::strtod(spec.c_str(), &end);
                if (end != spec.c_str() + spec.size() ||
                    tol.defaultRel < 0) {
                    std::fprintf(stderr, "bad tolerance '%s'\n",
                                 spec.c_str());
                    return 2;
                }
            } else {
                const std::string key = spec.substr(0, eq);
                const std::string val = spec.substr(eq + 1);
                const double rel = std::strtod(val.c_str(), &end);
                if (key.empty() || end != val.c_str() + val.size() ||
                    rel < 0) {
                    std::fprintf(stderr, "bad tolerance '%s'\n",
                                 spec.c_str());
                    return 2;
                }
                tol.overrides.emplace_back(key, rel);
            }
            continue;
        }
        if (std::strcmp(arg, "--floor") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--floor needs substr=R\n");
                return 2;
            }
            const std::string spec = argv[++i];
            const auto eq = spec.find('=');
            char *end = nullptr;
            if (eq == std::string::npos) {
                std::fprintf(stderr, "bad floor '%s' (want substr=R)\n",
                             spec.c_str());
                return 2;
            }
            const std::string key = spec.substr(0, eq);
            const std::string val = spec.substr(eq + 1);
            const double ratio = std::strtod(val.c_str(), &end);
            if (key.empty() || end != val.c_str() + val.size() ||
                ratio <= 0) {
                std::fprintf(stderr, "bad floor '%s'\n", spec.c_str());
                return 2;
            }
            tol.floors.emplace_back(key, ratio);
            continue;
        }
        if (arg[0] == '-') {
            std::fprintf(stderr, "unknown flag '%s'\n", arg);
            usage(argv[0]);
            return 2;
        }
        if (fresh_path.empty()) {
            fresh_path = arg;
        } else if (base_path.empty()) {
            base_path = arg;
        } else {
            std::fprintf(stderr, "too many positional arguments\n");
            usage(argv[0]);
            return 2;
        }
    }
    if (fresh_path.empty() || base_path.empty()) {
        usage(argv[0]);
        return 2;
    }

    std::string fresh;
    if (!readFile(fresh_path, fresh)) {
        std::fprintf(stderr, "cannot read %s\n", fresh_path.c_str());
        return 2;
    }

    const char *update = std::getenv("CEREAL_UPDATE_BASELINES");
    if (update != nullptr && std::strcmp(update, "1") == 0) {
        std::ofstream os(base_path, std::ios::binary);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", base_path.c_str());
            return 2;
        }
        os << fresh;
        os.flush();
        if (!os) {
            std::fprintf(stderr, "write to %s failed\n",
                         base_path.c_str());
            return 2;
        }
        std::printf("baseline updated: %s\n", base_path.c_str());
        return 0;
    }

    std::string base;
    if (!readFile(base_path, base)) {
        std::fprintf(stderr,
                     "cannot read %s (run with"
                     " CEREAL_UPDATE_BASELINES=1 to record it)\n",
                     base_path.c_str());
        return 2;
    }

    const auto res =
        cereal::runner::compareBenchJson(fresh, base, tol);
    std::fputs(res.report().c_str(), stdout);
    if (!res.error.empty()) {
        return 2;
    }
    return res.pass ? 0 : 1;
}
