/**
 * @file
 * CLI tail-attribution report over a bench trace dump.
 *
 *   trace_query <BENCH_*.json> [--top K] [--point <name-substr>]
 *
 * Reads a `BENCH_serving_knee.json` / `BENCH_dataflow.json` document
 * (any bench that embeds per-point "reqtrace" reports or per-stage
 * "crit" critical paths) and aggregates the causal trace data into the
 * report an operator actually wants:
 *
 *  - Top-K segments by contribution to the p99 tail cohort, summed
 *    across the selected points: which causal segment (admission wait,
 *    credit stall, serialize, wire, deserialize, ...) the slowest 1%
 *    of requests spend their time in.
 *  - Straggler nodes per dataflow stage: how often each node's reduce
 *    bounded a stage barrier, and which segment held it up.
 *
 * While aggregating, every conservation invariant in the document is
 * re-verified from the raw numbers (not trusted from the flags): each
 * reqtrace report must be marked conserved, each resolved p99/p999
 * exemplar's segments must sum exactly to its recorded end-to-end
 * latency, and each valid stage critical path's segments must sum
 * exactly to its total. Tick values fit in 2^53, so the JSON doubles
 * are exact. Exit status 0 on a clean report, 1 on any violation, 2
 * on usage or I/O errors — CI runs this as the reqtrace gate.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/json_parse.hh"

namespace {

using cereal::json::Value;

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return false;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <BENCH_*.json> [--top K]"
                 " [--point <name-substr>]\n"
                 "  --top K              segments listed in the"
                 " attribution table (default 5)\n"
                 "  --point substr       only points whose name contains"
                 " substr\n"
                 "exit: 0 clean, 1 conservation violation, 2 usage/IO\n",
                 argv0);
}

std::uint64_t
asTicks(const Value &v)
{
    return static_cast<std::uint64_t>(v.number);
}

/** Violations found while re-verifying the document's invariants. */
struct Violations
{
    std::vector<std::string> lines;

    void
    add(const std::string &point, const std::string &what)
    {
        lines.push_back(point + ": " + what);
    }
};

/**
 * Re-check one exemplar timeline: segments_ticks must sum exactly to
 * end_to_end_ticks. Null exemplars (unresolved under sampling) pass.
 */
void
checkExemplar(const std::string &point, const char *which,
              const Value *ex, Violations &bad)
{
    if (ex == nullptr || ex->isNull()) {
        return;
    }
    const Value *segs = ex->find("segments_ticks");
    const Value *e2e = ex->find("end_to_end_ticks");
    if (segs == nullptr || !segs->isObject() || e2e == nullptr) {
        bad.add(point, std::string(which) + " exemplar missing"
                                            " segments/end_to_end");
        return;
    }
    std::uint64_t sum = 0;
    for (const auto &kv : segs->object) {
        sum += asTicks(kv.second);
    }
    if (sum != asTicks(*e2e)) {
        bad.add(point, std::string(which) + " exemplar segments sum to " +
                           std::to_string(sum) + " ticks, end-to-end is " +
                           std::to_string(asTicks(*e2e)));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path, point_filter;
    std::size_t top_k = 5;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0) {
            usage(argv[0]);
            return 0;
        }
        if (std::strcmp(arg, "--top") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--top needs a count\n");
                return 2;
            }
            char *end = nullptr;
            top_k = std::strtoul(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || top_k == 0) {
                std::fprintf(stderr, "bad --top '%s'\n", argv[i]);
                return 2;
            }
            continue;
        }
        if (std::strcmp(arg, "--point") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--point needs a substring\n");
                return 2;
            }
            point_filter = argv[++i];
            continue;
        }
        if (arg[0] == '-') {
            std::fprintf(stderr, "unknown flag '%s'\n", arg);
            usage(argv[0]);
            return 2;
        }
        if (!path.empty()) {
            std::fprintf(stderr, "too many positional arguments\n");
            return 2;
        }
        path = arg;
    }
    if (path.empty()) {
        usage(argv[0]);
        return 2;
    }

    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 2;
    }
    const auto parsed = cereal::json::parse(text);
    if (!parsed.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     parsed.error.c_str());
        return 2;
    }
    const Value *points = parsed.value.find("points");
    if (points == nullptr || !points->isArray()) {
        std::fprintf(stderr, "%s: no \"points\" array\n", path.c_str());
        return 2;
    }

    Violations bad;
    // segment -> (tail-cohort ticks, end-to-end cohort ticks weight).
    std::map<std::string, std::uint64_t> tail_ticks;
    std::uint64_t tail_total = 0;
    std::uint64_t traced_points = 0, requests = 0, sampled = 0;
    // (stage name, node) -> times that node bounded the barrier, and
    // per-stage dominant-segment counts.
    std::map<std::string, std::map<std::uint64_t, std::uint64_t>>
        stragglers;
    std::map<std::string, std::map<std::string, std::uint64_t>>
        stage_dominant;
    std::uint64_t crit_stages = 0;

    for (const Value &pt : points->array) {
        const Value *namev = pt.find("name");
        const std::string name =
            namev != nullptr && namev->isString() ? namev->str : "?";
        if (!point_filter.empty() &&
            name.find(point_filter) == std::string::npos) {
            continue;
        }

        if (const Value *rt = pt.find("reqtrace")) {
            ++traced_points;
            if (const Value *rq = rt->find("requests")) {
                requests += asTicks(*rq);
            }
            if (const Value *sm = rt->find("sampled")) {
                sampled += asTicks(*sm);
            }
            const Value *cons = rt->find("conserved");
            if (cons == nullptr || asTicks(*cons) != 1) {
                bad.add(name, "reqtrace not conserved");
            }
            checkExemplar(name, "p99", rt->find("p99_exemplar"), bad);
            checkExemplar(name, "p999", rt->find("p999_exemplar"), bad);
            if (const Value *tail = rt->find("tail_attribution")) {
                for (const Value &share : tail->array) {
                    const Value *seg = share.find("segment");
                    const Value *ticks = share.find("total_ticks");
                    if (seg == nullptr || ticks == nullptr) {
                        continue;
                    }
                    tail_ticks[seg->str] += asTicks(*ticks);
                    tail_total += asTicks(*ticks);
                }
            }
        }

        const Value *stages = pt.find("stages");
        if (stages != nullptr && stages->isArray()) {
            for (const Value &st : stages->array) {
                const Value *crit = st.find("crit");
                const Value *sname = st.find("name");
                if (crit == nullptr ||
                    asTicks(*crit->find("valid")) != 1) {
                    continue;
                }
                ++crit_stages;
                const std::string stage =
                    sname != nullptr ? sname->str : "?";
                // Re-verify conservation from the raw segments.
                static const char *kSegs[] = {
                    "map_queue_ticks", "serialize_ticks", "wire_ticks",
                    "rx_queue_ticks", "deserialize_ticks",
                    "reduce_ticks"};
                std::uint64_t sum = 0;
                for (const char *s : kSegs) {
                    sum += asTicks(*crit->find(s));
                }
                if (sum != asTicks(*crit->find("total_ticks"))) {
                    bad.add(name, "stage '" + stage +
                                      "' critical path does not"
                                      " conserve");
                }
                stragglers[stage][asTicks(*crit->find("node"))] += 1;
                stage_dominant[stage]
                              [crit->find("dominant_segment")->str] += 1;
            }
        }
    }

    std::printf("trace_query: %s\n", path.c_str());
    std::printf("points with reqtrace: %llu (requests %llu, sampled"
                " %llu)\n",
                static_cast<unsigned long long>(traced_points),
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(sampled));

    if (tail_total > 0) {
        std::vector<std::pair<std::string, std::uint64_t>> ranked(
            tail_ticks.begin(), tail_ticks.end());
        std::stable_sort(ranked.begin(), ranked.end(),
                         [](const auto &a, const auto &b) {
                             return a.second > b.second;
                         });
        std::printf("\ntop segments by p99-cohort contribution:\n");
        std::printf("  %-12s %18s %9s\n", "segment", "ticks", "share");
        for (std::size_t i = 0; i < ranked.size() && i < top_k; ++i) {
            std::printf("  %-12s %18llu %8.2f%%\n",
                        ranked[i].first.c_str(),
                        static_cast<unsigned long long>(
                            ranked[i].second),
                        100.0 * static_cast<double>(ranked[i].second) /
                            static_cast<double>(tail_total));
        }
    }

    if (crit_stages > 0) {
        std::printf("\nstraggler nodes per stage (%llu bounded"
                    " barriers):\n",
                    static_cast<unsigned long long>(crit_stages));
        for (const auto &st : stragglers) {
            std::printf("  %-24s", st.first.c_str());
            for (const auto &nc : st.second) {
                std::printf(" node%llu:%llu",
                            static_cast<unsigned long long>(nc.first),
                            static_cast<unsigned long long>(nc.second));
            }
            std::printf(" |");
            for (const auto &dc : stage_dominant[st.first]) {
                std::printf(" %s:%llu", dc.first.c_str(),
                            static_cast<unsigned long long>(dc.second));
            }
            std::printf("\n");
        }
    }

    if (traced_points == 0 && crit_stages == 0) {
        std::fprintf(stderr,
                     "no reqtrace/crit data found (filter '%s')\n",
                     point_filter.c_str());
        return 1;
    }

    if (!bad.lines.empty()) {
        std::printf("\nCONSERVATION VIOLATIONS (%zu):\n",
                    bad.lines.size());
        for (const auto &l : bad.lines) {
            std::printf("  %s\n", l.c_str());
        }
        return 1;
    }
    std::printf("\nall conservation invariants hold\n");
    return 0;
}
