/**
 * @file
 * Quickstart: the smallest end-to-end Cereal session.
 *
 * Builds a little object graph in a simulated JVM heap, serializes it
 * through the Cereal API (functional bytes + accelerator timing),
 * reconstructs it in a second heap, and verifies the two graphs are
 * isomorphic.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "cereal/api.hh"
#include "heap/object.hh"
#include "heap/walker.hh"

using namespace cereal;

int
main()
{
    // 1. A simulated JVM: class registry (with the Cereal header
    //    extension) and a heap.
    KlassRegistry registry;
    KlassId point = registry.add("Point", {{"x", FieldType::Long},
                                           {"y", FieldType::Long}});
    KlassId segment = registry.add(
        "Segment", {{"from", FieldType::Reference},
                    {"to", FieldType::Reference},
                    {"length", FieldType::Double}});

    Heap heap(registry);
    Addr a = heap.allocateInstance(point);
    ObjectView(heap, a).setLong(0, 3);
    ObjectView(heap, a).setLong(1, 4);
    Addr b = heap.allocateInstance(point);
    ObjectView(heap, b).setLong(0, 6);
    ObjectView(heap, b).setLong(1, 8);
    Addr seg = heap.allocateInstance(segment);
    ObjectView sv(heap, seg);
    sv.setRef(0, a);
    sv.setRef(1, b);
    sv.setDouble(2, 5.0);

    // 2. Initialize Cereal: memory system + device + RegisterClass.
    EventQueue eq;
    Dram dram("dram", eq);
    CerealContext cereal(dram);
    cereal.registerClass(point);
    cereal.registerClass(segment);

    // 3. WriteObject: serialize the graph rooted at `seg`.
    ObjectOutputStream oos;
    auto w = cereal.writeObject(oos, heap, seg);
    std::printf("serialized %u objects into %llu bytes "
                "(%.0f ns on the accelerator)\n",
                w.stream.objectCount,
                (unsigned long long)w.stream.serializedBytes(),
                w.timing.latencySeconds * 1e9);

    // 4. ReadObject: reconstruct into a receiver heap.
    Heap receiver(registry, 0x9'0000'0000ULL);
    ObjectInputStream ois(oos.bytes());
    auto r = cereal.readObject(ois, receiver);
    std::printf("deserialized at %#llx (%.0f ns on the accelerator)\n",
                (unsigned long long)r.root,
                r.timing.latencySeconds * 1e9);

    // 5. Verify: the received graph is isomorphic to the sent one.
    std::string why;
    if (!graphEquals(heap, seg, receiver, r.root, &why)) {
        std::printf("MISMATCH: %s\n", why.c_str());
        return 1;
    }
    ObjectView rv(receiver, r.root);
    std::printf("round trip OK: length=%.1f, from=(%lld,%lld), "
                "to=(%lld,%lld)\n",
                rv.getDouble(2),
                (long long)ObjectView(receiver, rv.getRef(0)).getLong(0),
                (long long)ObjectView(receiver, rv.getRef(0)).getLong(1),
                (long long)ObjectView(receiver, rv.getRef(1)).getLong(0),
                (long long)ObjectView(receiver, rv.getRef(1)).getLong(1));
    return 0;
}
