/**
 * @file
 * Example: an RPC message pipeline on the accelerator.
 *
 * Models the paper's motivating "datacenter tax" use case: a stream of
 * small request/response payloads (JSBS MediaContent messages) is
 * serialized for the wire and the replies deserialized, continuously.
 * The example drives the device with many concurrent commands and
 * reports sustained message throughput, per-message latency, and how
 * busy the unit pools are — alongside the software baselines.
 *
 *   $ ./examples/rpc_pipeline [messages]
 */

#include <cstdio>
#include <cstdlib>

#include "cereal/api.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "workloads/harness.hh"
#include "workloads/jsbs.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    const std::uint64_t messages =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;

    KlassRegistry registry;
    JsbsWorkload jsbs(registry);
    Heap heap(registry);

    std::vector<Addr> payloads;
    for (std::uint64_t i = 0; i < messages; ++i) {
        payloads.push_back(jsbs.buildMediaContent(heap, i + 1));
    }
    std::printf("RPC pipeline: %llu MediaContent messages\n",
                (unsigned long long)messages);

    // Software baselines (per-message, sequential on one core).
    JavaSerializer java;
    KryoSerializer kryo;
    kryo.registerAll(registry);
    auto mj = measureSoftware(java, heap, payloads[0]);
    auto mk = measureSoftware(kryo, heap, payloads[0]);
    std::printf("%-8s : %8.2f us/msg  (%7.0f msg/s per core)\n", "java",
                (mj.serSeconds + mj.deserSeconds) * 1e6,
                1.0 / (mj.serSeconds + mj.deserSeconds));
    std::printf("%-8s : %8.2f us/msg  (%7.0f msg/s per core)\n", "kryo",
                (mk.serSeconds + mk.deserSeconds) * 1e6,
                1.0 / (mk.serSeconds + mk.deserSeconds));

    // Cereal: pipeline every message through the device.
    EventQueue eq;
    Dram dram("dram", eq);
    CerealContext ctx(dram);
    ctx.registerAll(registry);

    ObjectOutputStream oos;
    Tick ser_end = 0;
    double first_latency = 0;
    std::vector<CerealStream> streams;
    for (std::uint64_t i = 0; i < messages; ++i) {
        auto w = ctx.writeObject(oos, heap, payloads[i]);
        ser_end = std::max(ser_end, w.timing.done);
        if (i == 0) {
            first_latency = w.timing.latencySeconds;
        }
        streams.push_back(std::move(w.stream));
    }

    Heap replies(registry, 0x9'0000'0000ULL);
    ObjectInputStream ois(oos.bytes());
    Tick de_end = ser_end;
    for (std::uint64_t i = 0; i < messages; ++i) {
        auto r = ctx.readObject(ois, replies, ser_end);
        de_end = std::max(de_end, r.timing.done);
    }

    const double total_s = ticksToSeconds(de_end);
    std::printf("%-8s : %8.2f us/msg  (%7.0f msg/s through %u SU + %u "
                "DU)\n",
                "cereal", total_s / messages * 1e6, messages / total_s,
                ctx.device().config().numSU,
                ctx.device().config().numDU);
    std::printf("single-message accelerator latency: %.2f us\n",
                first_latency * 1e6);
    std::printf("SU busy: %.2f us, DU busy: %.2f us (aggregate across "
                "units)\n",
                ticksToSeconds(ctx.device().suBusyTicks()) * 1e6,
                ticksToSeconds(ctx.device().duBusyTicks()) * 1e6);
    std::printf("speedup vs java: %.1fx, vs kryo: %.1fx (per-message "
                "wall time)\n",
                (mj.serSeconds + mj.deserSeconds) /
                    (total_s / messages),
                (mk.serSeconds + mk.deserSeconds) /
                    (total_s / messages));
    return 0;
}
