/**
 * @file
 * Example: inspect the Cereal serialization format byte by byte.
 *
 * Serializes the object graph from the paper's Figure 4 (four objects;
 * objA referencing objB and objD, objB referencing objC) and dumps the
 * three decoupled structures — value array, packed reference array,
 * packed layout bitmaps — with their end maps, annotated. A compact
 * way to *see* Sections IV-A/IV-B.
 *
 *   $ ./examples/format_inspector
 */

#include <cstdio>

#include "cereal/cereal_serializer.hh"
#include "heap/object.hh"

using namespace cereal;

namespace {

void
hexdump(const char *title, const std::vector<std::uint8_t> &bytes)
{
    std::printf("%s (%zu bytes):", title, bytes.size());
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        if (i % 16 == 0) {
            std::printf("\n  %04zx:", i);
        }
        std::printf(" %02x", bytes[i]);
    }
    std::printf("\n");
}

void
bindump(const char *title, const std::vector<std::uint8_t> &bytes)
{
    std::printf("%s:", title);
    for (std::uint8_t b : bytes) {
        std::printf(" ");
        for (int i = 7; i >= 0; --i) {
            std::printf("%d", (b >> i) & 1);
        }
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    KlassRegistry registry;
    // Figure 4's shapes: a holder with two references and a payload,
    // plus small leaf objects.
    KlassId holder = registry.add("ObjA", {{"refB", FieldType::Reference},
                                           {"val", FieldType::Long},
                                           {"refD", FieldType::Reference}});
    KlassId node = registry.add("ObjB", {{"refC", FieldType::Reference},
                                         {"val", FieldType::Long}});
    KlassId leaf = registry.add("Leaf", {{"val", FieldType::Long}});

    Heap heap(registry);
    Addr obj_c = heap.allocateInstance(leaf);
    ObjectView(heap, obj_c).setLong(0, 0xCC);
    Addr obj_d = heap.allocateInstance(leaf);
    ObjectView(heap, obj_d).setLong(0, 0xDD);
    Addr obj_b = heap.allocateInstance(node);
    ObjectView(heap, obj_b).setRef(0, obj_c);
    ObjectView(heap, obj_b).setLong(1, 0xBB);
    Addr obj_a = heap.allocateInstance(holder);
    ObjectView(heap, obj_a).setRef(0, obj_b);
    ObjectView(heap, obj_a).setLong(1, 0xAA);
    ObjectView(heap, obj_a).setRef(2, obj_d);

    CerealSerializer ser;
    ser.registerAll(registry);
    CerealStream s = ser.serializeToStream(heap, obj_a);

    std::printf("== Cereal stream for the Figure-4 style graph ==\n");
    std::printf("objects: %u   total deserialized image: %u bytes\n",
                s.objectCount, s.totalGraphBytes);
    std::printf("reference slots: %llu   bitmap bits: %llu\n\n",
                (unsigned long long)s.refEntries,
                (unsigned long long)s.bitmapBits);

    std::printf("value array (%zu x 8B slots: mark word, class ID, "
                "cleared ext slot, then primitive fields):\n",
                s.valueArray.size());
    for (std::size_t i = 0; i < s.valueArray.size(); ++i) {
        std::printf("  [%2zu] %016llx\n", i,
                    (unsigned long long)s.valueArray[i]);
    }
    std::printf("\n");

    hexdump("packed reference array buckets", s.refBuckets);
    bindump("reference end map  (bit i set = bucket i ends an entry)",
            s.refEndMap);
    std::printf("  entries decode as (relative address / 8) + 1; "
                "0 = null\n\n");

    hexdump("packed layout bitmap buckets", s.bitmapBuckets);
    bindump("bitmap end map", s.bitmapEndMap);
    std::printf("  each entry: marker bit, then one bit per 8 B slot "
                "(1 = reference)\n\n");

    std::printf("sizes: packed stream %llu B vs unpacked baseline %llu "
                "B (Section IV-A) -> %.1f%% saved by object packing\n",
                (unsigned long long)s.serializedBytes(),
                (unsigned long long)s.baselineBytes(),
                (1.0 - static_cast<double>(s.serializedBytes()) /
                           static_cast<double>(s.baselineBytes())) *
                    100);

    // Round-trip proof.
    Heap dst(registry, 0x9'0000'0000ULL);
    Addr root = ser.deserializeStream(s, dst);
    std::printf("\nreconstructed at %#llx: objA.val=%#llx, "
                "objA.refB->val=%#llx, objA.refB->refC->val=%#llx, "
                "objA.refD->val=%#llx\n",
                (unsigned long long)root,
                (unsigned long long)ObjectView(dst, root).getLong(1),
                (unsigned long long)ObjectView(
                    dst, ObjectView(dst, root).getRef(0))
                    .getLong(1),
                (unsigned long long)ObjectView(
                    dst, ObjectView(dst, ObjectView(dst, root).getRef(0))
                             .getRef(0))
                    .getLong(0),
                (unsigned long long)ObjectView(
                    dst, ObjectView(dst, root).getRef(2))
                    .getLong(0));
    return 0;
}
