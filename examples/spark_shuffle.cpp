/**
 * @file
 * Example: a Spark-style shuffle stage with pluggable serializers.
 *
 * Four "map tasks" each produce a partition of labeled feature
 * vectors; every partition is serialized (shuffle write), conceptually
 * moved, and deserialized on the reduce side (shuffle read). The same
 * shuffle runs under Java S/D, Kryo, Skyway and Cereal, printing the
 * simulated S/D time of each — a miniature of the paper's Figure 13
 * experiment built directly on the public API.
 *
 *   $ ./examples/spark_shuffle [points-per-partition]
 */

#include <cstdio>
#include <cstdlib>

#include "cereal/api.hh"
#include "heap/walker.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "serde/skyway_serde.hh"
#include "workloads/harness.hh"
#include "workloads/spark.hh"

using namespace cereal;
using namespace cereal::workloads;

int
main(int argc, char **argv)
{
    const std::uint64_t points =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
    const unsigned kPartitions = 4;

    KlassRegistry registry;
    SparkWorkloads spark(registry);

    // Map side: build the partitions.
    Heap map_heap(registry);
    std::vector<Addr> partitions;
    for (unsigned p = 0; p < kPartitions; ++p) {
        partitions.push_back(
            spark.buildLabeledPoints(map_heap, points, 16, 7 + p));
    }
    std::printf("shuffle: %u partitions x %llu LabeledPoint(dim=16)\n",
                kPartitions, (unsigned long long)points);

    std::printf("%-8s | %12s %12s | %10s\n", "codec", "write(ms)",
                "read(ms)", "bytes/part");

    // Software codecs through the CPU timing model.
    auto run_software = [&](Serializer &ser) {
        double write_s = 0, read_s = 0;
        std::uint64_t bytes = 0;
        for (Addr part : partitions) {
            auto m = measureSoftware(ser, map_heap, part);
            write_s += m.serSeconds;
            read_s += m.deserSeconds;
            bytes = m.streamBytes;
        }
        std::printf("%-8s | %12.3f %12.3f | %10llu\n",
                    ser.name().c_str(), write_s * 1e3, read_s * 1e3,
                    (unsigned long long)bytes);
    };
    JavaSerializer java;
    run_software(java);
    KryoSerializer kryo;
    kryo.registerAll(registry);
    run_software(kryo);
    SkywaySerializer skyway;
    run_software(skyway);

    // Cereal: all partitions submitted to the device at once; the
    // request scheduler spreads them over the SU/DU pools.
    {
        EventQueue eq;
        Dram dram("dram", eq);
        CerealContext ctx(dram);
        ctx.registerAll(registry);

        ObjectOutputStream oos;
        Tick write_end = 0;
        std::vector<CerealStream> streams;
        for (Addr part : partitions) {
            auto w = ctx.writeObject(oos, map_heap, part);
            write_end = std::max(write_end, w.timing.done);
            streams.push_back(std::move(w.stream));
        }

        Heap reduce_heap(registry, 0x9'0000'0000ULL);
        ObjectInputStream ois(oos.bytes());
        Tick read_end = write_end;
        Addr first_root = 0;
        for (unsigned p = 0; p < kPartitions; ++p) {
            auto r = ctx.readObject(ois, reduce_heap, write_end);
            read_end = std::max(read_end, r.timing.done);
            if (p == 0) {
                first_root = r.root;
            }
        }
        std::printf("%-8s | %12.3f %12.3f | %10llu\n", "cereal",
                    ticksToSeconds(write_end) * 1e3,
                    ticksToSeconds(read_end - write_end) * 1e3,
                    (unsigned long long)streams[0].serializedBytes());

        std::string why;
        if (!graphEquals(map_heap, partitions[0], reduce_heap,
                         first_root, &why)) {
            std::printf("shuffle corrupted a partition: %s\n",
                        why.c_str());
            return 1;
        }
        std::printf("reduce-side verification OK\n");
    }
    return 0;
}
