# Empty dependencies file for bench_abl_reconstructors.
# This may be replaced when dependencies are built.
