file(REMOVE_RECURSE
  "../bench/bench_abl_reconstructors"
  "../bench/bench_abl_reconstructors.pdb"
  "CMakeFiles/bench_abl_reconstructors.dir/bench_abl_reconstructors.cc.o"
  "CMakeFiles/bench_abl_reconstructors.dir/bench_abl_reconstructors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_reconstructors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
