file(REMOVE_RECURSE
  "../bench/bench_fig16_compression"
  "../bench/bench_fig16_compression.pdb"
  "CMakeFiles/bench_fig16_compression.dir/bench_fig16_compression.cc.o"
  "CMakeFiles/bench_fig16_compression.dir/bench_fig16_compression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
