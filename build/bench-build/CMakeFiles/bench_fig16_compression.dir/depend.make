# Empty dependencies file for bench_fig16_compression.
# This may be replaced when dependencies are built.
