file(REMOVE_RECURSE
  "../bench/bench_abl_units"
  "../bench/bench_abl_units.pdb"
  "CMakeFiles/bench_abl_units.dir/bench_abl_units.cc.o"
  "CMakeFiles/bench_abl_units.dir/bench_abl_units.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
