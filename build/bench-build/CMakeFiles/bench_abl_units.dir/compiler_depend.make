# Empty compiler generated dependencies file for bench_abl_units.
# This may be replaced when dependencies are built.
