# Empty dependencies file for bench_abl_mlp.
# This may be replaced when dependencies are built.
