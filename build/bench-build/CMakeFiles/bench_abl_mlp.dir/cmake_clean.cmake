file(REMOVE_RECURSE
  "../bench/bench_abl_mlp"
  "../bench/bench_abl_mlp.pdb"
  "CMakeFiles/bench_abl_mlp.dir/bench_abl_mlp.cc.o"
  "CMakeFiles/bench_abl_mlp.dir/bench_abl_mlp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
