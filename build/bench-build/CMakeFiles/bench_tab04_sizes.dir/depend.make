# Empty dependencies file for bench_tab04_sizes.
# This may be replaced when dependencies are built.
