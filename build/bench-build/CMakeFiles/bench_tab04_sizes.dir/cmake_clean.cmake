file(REMOVE_RECURSE
  "../bench/bench_tab04_sizes"
  "../bench/bench_tab04_sizes.pdb"
  "CMakeFiles/bench_tab04_sizes.dir/bench_tab04_sizes.cc.o"
  "CMakeFiles/bench_tab04_sizes.dir/bench_tab04_sizes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
