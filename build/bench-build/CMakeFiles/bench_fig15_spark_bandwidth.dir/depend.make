# Empty dependencies file for bench_fig15_spark_bandwidth.
# This may be replaced when dependencies are built.
