# Empty compiler generated dependencies file for bench_gb_components.
# This may be replaced when dependencies are built.
