file(REMOVE_RECURSE
  "../bench/bench_gb_components"
  "../bench/bench_gb_components.pdb"
  "CMakeFiles/bench_gb_components.dir/bench_gb_components.cc.o"
  "CMakeFiles/bench_gb_components.dir/bench_gb_components.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gb_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
