file(REMOVE_RECURSE
  "../bench/bench_fig14_spark_program"
  "../bench/bench_fig14_spark_program.pdb"
  "CMakeFiles/bench_fig14_spark_program.dir/bench_fig14_spark_program.cc.o"
  "CMakeFiles/bench_fig14_spark_program.dir/bench_fig14_spark_program.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_spark_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
