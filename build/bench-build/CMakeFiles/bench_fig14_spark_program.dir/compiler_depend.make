# Empty compiler generated dependencies file for bench_fig14_spark_program.
# This may be replaced when dependencies are built.
