file(REMOVE_RECURSE
  "../bench/bench_fig13_spark_sd"
  "../bench/bench_fig13_spark_sd.pdb"
  "CMakeFiles/bench_fig13_spark_sd.dir/bench_fig13_spark_sd.cc.o"
  "CMakeFiles/bench_fig13_spark_sd.dir/bench_fig13_spark_sd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_spark_sd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
