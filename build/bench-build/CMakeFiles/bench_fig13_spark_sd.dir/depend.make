# Empty dependencies file for bench_fig13_spark_sd.
# This may be replaced when dependencies are built.
