# Empty dependencies file for bench_fig17_energy.
# This may be replaced when dependencies are built.
