file(REMOVE_RECURSE
  "../bench/bench_fig11_micro_bandwidth"
  "../bench/bench_fig11_micro_bandwidth.pdb"
  "CMakeFiles/bench_fig11_micro_bandwidth.dir/bench_fig11_micro_bandwidth.cc.o"
  "CMakeFiles/bench_fig11_micro_bandwidth.dir/bench_fig11_micro_bandwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_micro_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
