# Empty compiler generated dependencies file for bench_fig11_micro_bandwidth.
# This may be replaced when dependencies are built.
