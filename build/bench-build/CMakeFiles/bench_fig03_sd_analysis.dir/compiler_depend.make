# Empty compiler generated dependencies file for bench_fig03_sd_analysis.
# This may be replaced when dependencies are built.
