file(REMOVE_RECURSE
  "../bench/bench_fig03_sd_analysis"
  "../bench/bench_fig03_sd_analysis.pdb"
  "CMakeFiles/bench_fig03_sd_analysis.dir/bench_fig03_sd_analysis.cc.o"
  "CMakeFiles/bench_fig03_sd_analysis.dir/bench_fig03_sd_analysis.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_sd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
