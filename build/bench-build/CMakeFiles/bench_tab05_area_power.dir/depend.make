# Empty dependencies file for bench_tab05_area_power.
# This may be replaced when dependencies are built.
