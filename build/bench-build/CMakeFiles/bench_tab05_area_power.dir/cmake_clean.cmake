file(REMOVE_RECURSE
  "../bench/bench_tab05_area_power"
  "../bench/bench_tab05_area_power.pdb"
  "CMakeFiles/bench_tab05_area_power.dir/bench_tab05_area_power.cc.o"
  "CMakeFiles/bench_tab05_area_power.dir/bench_tab05_area_power.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab05_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
