file(REMOVE_RECURSE
  "../bench/bench_fig12_jsbs"
  "../bench/bench_fig12_jsbs.pdb"
  "CMakeFiles/bench_fig12_jsbs.dir/bench_fig12_jsbs.cc.o"
  "CMakeFiles/bench_fig12_jsbs.dir/bench_fig12_jsbs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_jsbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
