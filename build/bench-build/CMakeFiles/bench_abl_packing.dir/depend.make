# Empty dependencies file for bench_abl_packing.
# This may be replaced when dependencies are built.
