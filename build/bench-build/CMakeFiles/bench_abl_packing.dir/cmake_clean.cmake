file(REMOVE_RECURSE
  "../bench/bench_abl_packing"
  "../bench/bench_abl_packing.pdb"
  "CMakeFiles/bench_abl_packing.dir/bench_abl_packing.cc.o"
  "CMakeFiles/bench_abl_packing.dir/bench_abl_packing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
