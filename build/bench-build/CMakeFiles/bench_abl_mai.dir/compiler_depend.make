# Empty compiler generated dependencies file for bench_abl_mai.
# This may be replaced when dependencies are built.
