file(REMOVE_RECURSE
  "../bench/bench_abl_mai"
  "../bench/bench_abl_mai.pdb"
  "CMakeFiles/bench_abl_mai.dir/bench_abl_mai.cc.o"
  "CMakeFiles/bench_abl_mai.dir/bench_abl_mai.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_mai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
