# Empty compiler generated dependencies file for rpc_pipeline.
# This may be replaced when dependencies are built.
