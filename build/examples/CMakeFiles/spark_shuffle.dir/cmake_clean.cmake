file(REMOVE_RECURSE
  "CMakeFiles/spark_shuffle.dir/spark_shuffle.cpp.o"
  "CMakeFiles/spark_shuffle.dir/spark_shuffle.cpp.o.d"
  "spark_shuffle"
  "spark_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spark_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
