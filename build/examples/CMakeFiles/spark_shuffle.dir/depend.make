# Empty dependencies file for spark_shuffle.
# This may be replaced when dependencies are built.
