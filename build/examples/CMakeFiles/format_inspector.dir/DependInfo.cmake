
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/format_inspector.cpp" "examples/CMakeFiles/format_inspector.dir/format_inspector.cpp.o" "gcc" "examples/CMakeFiles/format_inspector.dir/format_inspector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/cereal_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cereal/CMakeFiles/cereal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/cereal_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/cereal_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/cereal_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cereal_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cereal_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
