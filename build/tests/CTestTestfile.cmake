# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_heap[1]_include.cmake")
include("/root/repo/build/tests/test_walker[1]_include.cmake")
include("/root/repo/build/tests/test_serde_roundtrip[1]_include.cmake")
include("/root/repo/build/tests/test_cereal_format[1]_include.cmake")
include("/root/repo/build/tests/test_accel[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_roundtrip[1]_include.cmake")
include("/root/repo/build/tests/test_shuffle[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_model_consistency[1]_include.cmake")
