# Empty dependencies file for test_fuzz_roundtrip.
# This may be replaced when dependencies are built.
