file(REMOVE_RECURSE
  "CMakeFiles/test_model_consistency.dir/test_model_consistency.cc.o"
  "CMakeFiles/test_model_consistency.dir/test_model_consistency.cc.o.d"
  "test_model_consistency"
  "test_model_consistency.pdb"
  "test_model_consistency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
