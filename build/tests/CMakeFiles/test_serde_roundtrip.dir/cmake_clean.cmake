file(REMOVE_RECURSE
  "CMakeFiles/test_serde_roundtrip.dir/test_serde_roundtrip.cc.o"
  "CMakeFiles/test_serde_roundtrip.dir/test_serde_roundtrip.cc.o.d"
  "test_serde_roundtrip"
  "test_serde_roundtrip.pdb"
  "test_serde_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serde_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
