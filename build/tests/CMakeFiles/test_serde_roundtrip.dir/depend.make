# Empty dependencies file for test_serde_roundtrip.
# This may be replaced when dependencies are built.
