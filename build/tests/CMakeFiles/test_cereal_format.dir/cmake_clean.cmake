file(REMOVE_RECURSE
  "CMakeFiles/test_cereal_format.dir/test_cereal_format.cc.o"
  "CMakeFiles/test_cereal_format.dir/test_cereal_format.cc.o.d"
  "test_cereal_format"
  "test_cereal_format.pdb"
  "test_cereal_format[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cereal_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
