# Empty compiler generated dependencies file for test_cereal_format.
# This may be replaced when dependencies are built.
