# Empty dependencies file for cereal_core.
# This may be replaced when dependencies are built.
