file(REMOVE_RECURSE
  "CMakeFiles/cereal_core.dir/accel/device.cc.o"
  "CMakeFiles/cereal_core.dir/accel/device.cc.o.d"
  "CMakeFiles/cereal_core.dir/accel/du.cc.o"
  "CMakeFiles/cereal_core.dir/accel/du.cc.o.d"
  "CMakeFiles/cereal_core.dir/accel/mai.cc.o"
  "CMakeFiles/cereal_core.dir/accel/mai.cc.o.d"
  "CMakeFiles/cereal_core.dir/accel/su.cc.o"
  "CMakeFiles/cereal_core.dir/accel/su.cc.o.d"
  "CMakeFiles/cereal_core.dir/api.cc.o"
  "CMakeFiles/cereal_core.dir/api.cc.o.d"
  "CMakeFiles/cereal_core.dir/area_power.cc.o"
  "CMakeFiles/cereal_core.dir/area_power.cc.o.d"
  "CMakeFiles/cereal_core.dir/cereal_serializer.cc.o"
  "CMakeFiles/cereal_core.dir/cereal_serializer.cc.o.d"
  "CMakeFiles/cereal_core.dir/format.cc.o"
  "CMakeFiles/cereal_core.dir/format.cc.o.d"
  "libcereal_core.a"
  "libcereal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cereal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
