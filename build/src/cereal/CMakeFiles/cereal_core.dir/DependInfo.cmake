
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cereal/accel/device.cc" "src/cereal/CMakeFiles/cereal_core.dir/accel/device.cc.o" "gcc" "src/cereal/CMakeFiles/cereal_core.dir/accel/device.cc.o.d"
  "/root/repo/src/cereal/accel/du.cc" "src/cereal/CMakeFiles/cereal_core.dir/accel/du.cc.o" "gcc" "src/cereal/CMakeFiles/cereal_core.dir/accel/du.cc.o.d"
  "/root/repo/src/cereal/accel/mai.cc" "src/cereal/CMakeFiles/cereal_core.dir/accel/mai.cc.o" "gcc" "src/cereal/CMakeFiles/cereal_core.dir/accel/mai.cc.o.d"
  "/root/repo/src/cereal/accel/su.cc" "src/cereal/CMakeFiles/cereal_core.dir/accel/su.cc.o" "gcc" "src/cereal/CMakeFiles/cereal_core.dir/accel/su.cc.o.d"
  "/root/repo/src/cereal/api.cc" "src/cereal/CMakeFiles/cereal_core.dir/api.cc.o" "gcc" "src/cereal/CMakeFiles/cereal_core.dir/api.cc.o.d"
  "/root/repo/src/cereal/area_power.cc" "src/cereal/CMakeFiles/cereal_core.dir/area_power.cc.o" "gcc" "src/cereal/CMakeFiles/cereal_core.dir/area_power.cc.o.d"
  "/root/repo/src/cereal/cereal_serializer.cc" "src/cereal/CMakeFiles/cereal_core.dir/cereal_serializer.cc.o" "gcc" "src/cereal/CMakeFiles/cereal_core.dir/cereal_serializer.cc.o.d"
  "/root/repo/src/cereal/format.cc" "src/cereal/CMakeFiles/cereal_core.dir/format.cc.o" "gcc" "src/cereal/CMakeFiles/cereal_core.dir/format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/heap/CMakeFiles/cereal_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/cereal_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cereal_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/cereal_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cereal_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
