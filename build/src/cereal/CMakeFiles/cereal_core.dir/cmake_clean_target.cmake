file(REMOVE_RECURSE
  "libcereal_core.a"
)
