file(REMOVE_RECURSE
  "libcereal_shuffle.a"
)
