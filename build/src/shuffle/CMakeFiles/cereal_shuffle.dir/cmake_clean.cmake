file(REMOVE_RECURSE
  "CMakeFiles/cereal_shuffle.dir/lz.cc.o"
  "CMakeFiles/cereal_shuffle.dir/lz.cc.o.d"
  "CMakeFiles/cereal_shuffle.dir/shuffle.cc.o"
  "CMakeFiles/cereal_shuffle.dir/shuffle.cc.o.d"
  "libcereal_shuffle.a"
  "libcereal_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cereal_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
