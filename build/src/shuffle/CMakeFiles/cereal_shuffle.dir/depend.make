# Empty dependencies file for cereal_shuffle.
# This may be replaced when dependencies are built.
