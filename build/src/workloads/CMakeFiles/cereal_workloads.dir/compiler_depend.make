# Empty compiler generated dependencies file for cereal_workloads.
# This may be replaced when dependencies are built.
