file(REMOVE_RECURSE
  "libcereal_workloads.a"
)
