file(REMOVE_RECURSE
  "CMakeFiles/cereal_workloads.dir/harness.cc.o"
  "CMakeFiles/cereal_workloads.dir/harness.cc.o.d"
  "CMakeFiles/cereal_workloads.dir/jsbs.cc.o"
  "CMakeFiles/cereal_workloads.dir/jsbs.cc.o.d"
  "CMakeFiles/cereal_workloads.dir/micro.cc.o"
  "CMakeFiles/cereal_workloads.dir/micro.cc.o.d"
  "CMakeFiles/cereal_workloads.dir/spark.cc.o"
  "CMakeFiles/cereal_workloads.dir/spark.cc.o.d"
  "libcereal_workloads.a"
  "libcereal_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cereal_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
