file(REMOVE_RECURSE
  "libcereal_heap.a"
)
