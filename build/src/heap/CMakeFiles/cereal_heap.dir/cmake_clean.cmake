file(REMOVE_RECURSE
  "CMakeFiles/cereal_heap.dir/heap.cc.o"
  "CMakeFiles/cereal_heap.dir/heap.cc.o.d"
  "CMakeFiles/cereal_heap.dir/klass.cc.o"
  "CMakeFiles/cereal_heap.dir/klass.cc.o.d"
  "CMakeFiles/cereal_heap.dir/walker.cc.o"
  "CMakeFiles/cereal_heap.dir/walker.cc.o.d"
  "libcereal_heap.a"
  "libcereal_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cereal_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
