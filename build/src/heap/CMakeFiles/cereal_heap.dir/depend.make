# Empty dependencies file for cereal_heap.
# This may be replaced when dependencies are built.
