# Empty dependencies file for cereal_serde.
# This may be replaced when dependencies are built.
