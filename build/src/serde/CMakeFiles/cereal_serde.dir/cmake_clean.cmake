file(REMOVE_RECURSE
  "CMakeFiles/cereal_serde.dir/java_serde.cc.o"
  "CMakeFiles/cereal_serde.dir/java_serde.cc.o.d"
  "CMakeFiles/cereal_serde.dir/kryo_serde.cc.o"
  "CMakeFiles/cereal_serde.dir/kryo_serde.cc.o.d"
  "CMakeFiles/cereal_serde.dir/skyway_serde.cc.o"
  "CMakeFiles/cereal_serde.dir/skyway_serde.cc.o.d"
  "libcereal_serde.a"
  "libcereal_serde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cereal_serde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
