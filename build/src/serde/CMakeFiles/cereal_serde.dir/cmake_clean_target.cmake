file(REMOVE_RECURSE
  "libcereal_serde.a"
)
