file(REMOVE_RECURSE
  "libcereal_cpu.a"
)
