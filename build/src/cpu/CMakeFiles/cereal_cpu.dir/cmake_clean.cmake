file(REMOVE_RECURSE
  "CMakeFiles/cereal_cpu.dir/core_model.cc.o"
  "CMakeFiles/cereal_cpu.dir/core_model.cc.o.d"
  "libcereal_cpu.a"
  "libcereal_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cereal_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
