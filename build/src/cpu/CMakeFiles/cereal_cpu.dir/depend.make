# Empty dependencies file for cereal_cpu.
# This may be replaced when dependencies are built.
