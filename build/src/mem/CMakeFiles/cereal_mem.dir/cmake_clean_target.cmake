file(REMOVE_RECURSE
  "libcereal_mem.a"
)
