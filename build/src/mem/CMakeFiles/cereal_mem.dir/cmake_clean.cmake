file(REMOVE_RECURSE
  "CMakeFiles/cereal_mem.dir/cache.cc.o"
  "CMakeFiles/cereal_mem.dir/cache.cc.o.d"
  "CMakeFiles/cereal_mem.dir/dram.cc.o"
  "CMakeFiles/cereal_mem.dir/dram.cc.o.d"
  "libcereal_mem.a"
  "libcereal_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cereal_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
