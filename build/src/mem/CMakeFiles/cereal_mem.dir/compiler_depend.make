# Empty compiler generated dependencies file for cereal_mem.
# This may be replaced when dependencies are built.
