# Empty compiler generated dependencies file for cereal_sim.
# This may be replaced when dependencies are built.
