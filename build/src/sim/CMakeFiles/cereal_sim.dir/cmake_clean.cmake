file(REMOVE_RECURSE
  "CMakeFiles/cereal_sim.dir/logging.cc.o"
  "CMakeFiles/cereal_sim.dir/logging.cc.o.d"
  "CMakeFiles/cereal_sim.dir/stats.cc.o"
  "CMakeFiles/cereal_sim.dir/stats.cc.o.d"
  "libcereal_sim.a"
  "libcereal_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cereal_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
