file(REMOVE_RECURSE
  "libcereal_sim.a"
)
