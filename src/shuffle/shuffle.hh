/**
 * @file
 * Shuffle-stage substrate: what happens to serialized bytes between
 * the codec and the wire/disk in a Spark-like framework.
 *
 * Software serializers emit through a stream stack that block-
 * compresses (LZ4-style) and buffer-copies the stream; the reverse
 * path decompresses. Cereal's output is already written to memory by
 * the accelerator in its packed format, so the driver's job is a bulk
 * handoff copy into the shuffle buffer, with compression disabled (the
 * packed format plays that role). Both paths are *measured* on the CPU
 * timing model — no assumed per-byte constants.
 */

#ifndef CEREAL_SHUFFLE_SHUFFLE_HH
#define CEREAL_SHUFFLE_SHUFFLE_HH

#include <cstdint>
#include <vector>

#include "cpu/core_model.hh"
#include "metrics/metrics.hh"
#include "shuffle/lz.hh"

namespace cereal {

/** Result of pushing one serialized stream through the shuffle stage. */
struct ShuffleTiming
{
    /** Bytes that actually hit the shuffle file/wire. */
    std::uint64_t wireBytes = 0;
    /** CPU time spent in the stage, seconds. */
    double seconds = 0;
};

/** Models one executor's shuffle write/read paths. */
class ShuffleStage
{
  public:
    ShuffleStage(CoreConfig core_cfg = CoreConfig(),
                 LzCosts lz_costs = LzCosts());

    /**
     * Software shuffle write: block-compress the serialized stream and
     * buffer-copy the result toward the file.
     */
    ShuffleTiming softwareWrite(
        const std::vector<std::uint8_t> &serialized) const;

    /**
     * Software shuffle read: fetch + decompress back into the form the
     * deserializer consumes.
     */
    ShuffleTiming softwareRead(
        const std::vector<std::uint8_t> &serialized) const;

    /**
     * Cereal driver handoff: a bulk copy of the accelerator-written
     * stream into the shuffle buffer (no re-compression — the packed
     * format already did that work).
     */
    ShuffleTiming cerealHandoff(std::uint64_t stream_bytes) const;

    const LzCodec &codec() const { return codec_; }

  private:
    /** Charge @p t's bytes/seconds to the stage-level time series. */
    void account(const ShuffleTiming &t) const;

    CoreConfig coreCfg_;
    LzCodec codec_;

    /**
     * Stage-level throughput series. The stage has no clock of its own
     * (each call runs a private CoreModel from tick 0), so the series'
     * time base is cumulative busy time across calls. mutable: the
     * const methods measure, they don't mutate the model.
     */
    mutable metrics::Group metrics_;
    mutable std::uint64_t cumWireBytes_ = 0;
    mutable double cumBusySeconds_ = 0;
};

} // namespace cereal

#endif // CEREAL_SHUFFLE_SHUFFLE_HH
