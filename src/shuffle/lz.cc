#include "shuffle/lz.hh"

#include <cstring>

#include "sim/logging.hh"

namespace cereal {

namespace {

/** Simulated address of the compressed output buffer. */
constexpr Addr kCompressedBase = kStreamBase + 0x8'0000'0000ULL;

constexpr unsigned kHashBits = 14;
constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;
constexpr std::size_t kMaxOffset = 0xffff;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 127 + kMinMatch;

std::uint32_t
read32(const std::vector<std::uint8_t> &v, std::size_t at)
{
    std::uint32_t x;
    std::memcpy(&x, v.data() + at, 4);
    return x;
}

std::uint32_t
hash4(std::uint32_t x)
{
    return (x * 2654435761u) >> (32 - kHashBits);
}

/** Narrate a sequential access of @p n bytes in 64 B chunks. */
void
touch(MemSink *sink, Addr base, std::size_t at, std::size_t n, bool write)
{
    if (!sink) {
        return;
    }
    Addr lo = base + at;
    Addr hi = lo + n;
    for (Addr a = roundDown(lo, 64); a < hi; a += 64) {
        if (write) {
            sink->store(a, 64);
        } else {
            sink->load(a, 64);
        }
    }
}

} // namespace

std::vector<std::uint8_t>
LzCodec::compress(const std::vector<std::uint8_t> &input,
                  MemSink *sink) const
{
    const std::size_t n = input.size();
    std::vector<std::uint8_t> out;
    out.reserve(n / 2 + 16);
    auto raw = static_cast<std::uint32_t>(n);
    out.insert(out.end(), reinterpret_cast<std::uint8_t *>(&raw),
               reinterpret_cast<std::uint8_t *>(&raw) + 4);

    if (sink) {
        sink->compute(costs_.perInputByte * n);
    }

    std::vector<std::int64_t> table(kHashSize, -1);
    std::size_t pos = 0;
    std::size_t literal_start = 0;

    auto flush_literals = [&](std::size_t end) {
        std::size_t at = literal_start;
        while (at < end) {
            std::size_t run = std::min<std::size_t>(end - at, 127);
            if (sink) {
                sink->compute(costs_.perToken);
            }
            out.push_back(static_cast<std::uint8_t>(run));
            std::size_t out_at = out.size();
            out.insert(out.end(), input.begin() +
                                      static_cast<std::ptrdiff_t>(at),
                       input.begin() +
                           static_cast<std::ptrdiff_t>(at + run));
            touch(sink, kStreamBase, at, run, false);
            touch(sink, kCompressedBase, out_at, run, true);
            at += run;
        }
        literal_start = end;
    };

    while (pos + kMinMatch <= n) {
        std::uint32_t h = hash4(read32(input, pos));
        std::int64_t cand = table[h];
        table[h] = static_cast<std::int64_t>(pos);
        if (sink) {
            sink->compute(costs_.perProbe);
            sink->load(kScratchBase + Addr{h} * 8, 8);
            sink->store(kScratchBase + Addr{h} * 8, 8);
        }

        if (cand >= 0 &&
            pos - static_cast<std::size_t>(cand) <= kMaxOffset &&
            read32(input, static_cast<std::size_t>(cand)) ==
                read32(input, pos)) {
            // Extend the match.
            std::size_t len = kMinMatch;
            const auto cpos = static_cast<std::size_t>(cand);
            while (pos + len < n && len < kMaxMatch &&
                   input[cpos + len] == input[pos + len]) {
                ++len;
            }
            flush_literals(pos);
            if (sink) {
                sink->compute(costs_.perToken);
                sink->store(kCompressedBase + out.size(), 3);
            }
            out.push_back(static_cast<std::uint8_t>(
                0x80 | (len - kMinMatch)));
            auto off = static_cast<std::uint16_t>(pos - cpos);
            out.push_back(static_cast<std::uint8_t>(off & 0xff));
            out.push_back(static_cast<std::uint8_t>(off >> 8));
            pos += len;
            literal_start = pos;
        } else {
            ++pos;
        }
    }
    flush_literals(n);
    return out;
}

std::vector<std::uint8_t>
LzCodec::decompress(const std::vector<std::uint8_t> &compressed,
                    MemSink *sink) const
{
    panic_if(compressed.size() < 4, "truncated LZ stream");
    std::uint32_t raw;
    std::memcpy(&raw, compressed.data(), 4);
    std::vector<std::uint8_t> out;
    out.reserve(raw);

    if (sink) {
        sink->compute(costs_.perOutputByte * raw);
        touch(sink, kCompressedBase, 0, compressed.size(), false);
    }

    std::size_t at = 4;
    while (at < compressed.size()) {
        std::uint8_t tag = compressed[at++];
        if (tag & 0x80) {
            panic_if(at + 2 > compressed.size(), "truncated copy token");
            std::size_t len = (tag & 0x7f) + kMinMatch;
            std::size_t off = compressed[at] |
                              (std::size_t{compressed[at + 1]} << 8);
            at += 2;
            panic_if(off == 0 || off > out.size(),
                     "bad LZ back-reference");
            // Byte-wise copy: overlapping references are well defined.
            std::size_t src = out.size() - off;
            for (std::size_t i = 0; i < len; ++i) {
                out.push_back(out[src + i]);
            }
            touch(sink, kStreamBase, out.size() - len, len, true);
        } else {
            std::size_t run = tag;
            panic_if(run == 0, "zero literal run");
            panic_if(at + run > compressed.size(),
                     "truncated literal run");
            out.insert(out.end(),
                       compressed.begin() + static_cast<std::ptrdiff_t>(at),
                       compressed.begin() +
                           static_cast<std::ptrdiff_t>(at + run));
            touch(sink, kStreamBase, out.size() - run, run, true);
            at += run;
        }
    }
    panic_if(out.size() != raw, "LZ stream length mismatch (%zu vs %u)",
             out.size(), raw);
    return out;
}

} // namespace cereal
