/**
 * @file
 * LZ77-class block compressor used by the shuffle substrate.
 *
 * Spark compresses every shuffle stream (LZ4 by default); the paper's
 * Spark-level S/D times therefore include a per-byte compression
 * component that dwarfs Kryo's codec advantage (Figure 13: 1.67x vs
 * the 30x+ seen on raw microbenchmarks). This is a real, working
 * compressor — greedy hash-chain match finder over a 64 KB window,
 * emitting literal runs and (offset, length) copies — so that the
 * shuffle component of the Spark figures is *measured* through the CPU
 * timing model rather than assumed.
 *
 * Format (little-endian):
 *   stream  := u32 rawSize, token*
 *   token   := u8 tag
 *              tag & 0x80 ? copy : literal-run
 *   literal := tag (= count 1..127), count raw bytes
 *   copy    := tag (= 0x80 | lenCode), u16 offset; length = lenCode + 4
 *
 * Like the serializers, both directions narrate their work to an
 * optional MemSink (input loads, hash-table probes in scratch memory,
 * output stores) for the core timing model.
 */

#ifndef CEREAL_SHUFFLE_LZ_HH
#define CEREAL_SHUFFLE_LZ_HH

#include <cstdint>
#include <vector>

#include "serde/sink.hh"

namespace cereal {

/**
 * Tunable compute-cost constants for the compressor (op units).
 *
 * Defaults are calibrated to the *JVM* compression stack Spark really
 * runs (LZ4BlockOutputStream + XXHash checksum + BufferedOutputStream
 * copies + JNI crossings), which sustains ~60-130 MB/s per task in
 * published Spark shuffle studies — an order of magnitude slower than
 * a bare C LZ4 kernel.
 */
struct LzCosts
{
    /** Per input byte: hashing, match extension, checksum, buffer
     *  copies through the stream stack. */
    std::uint64_t perInputByte = 40;
    /** Per hash-table probe (candidate lookup). */
    std::uint64_t perProbe = 10;
    /** Per emitted token. */
    std::uint64_t perToken = 12;
    /** Decompression: per output byte copied (incl. checksum). */
    std::uint64_t perOutputByte = 16;
};

/** LZ77 block codec. */
class LzCodec
{
  public:
    explicit LzCodec(LzCosts costs = LzCosts()) : costs_(costs) {}

    /**
     * Compress @p input.
     * @param sink optional timing narration
     */
    std::vector<std::uint8_t>
    compress(const std::vector<std::uint8_t> &input,
             MemSink *sink = nullptr) const;

    /** Decompress a stream produced by compress(). */
    std::vector<std::uint8_t>
    decompress(const std::vector<std::uint8_t> &compressed,
               MemSink *sink = nullptr) const;

  private:
    LzCosts costs_;
};

} // namespace cereal

#endif // CEREAL_SHUFFLE_LZ_HH
