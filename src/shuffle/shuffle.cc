#include "shuffle/shuffle.hh"

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace cereal {

namespace {

/** Bulk memcpy narration: load + store per 64 B chunk plus loop ops. */
void
narrateCopy(MemSink &sink, Addr src, Addr dst, std::uint64_t bytes)
{
    for (std::uint64_t off = 0; off < bytes; off += 64) {
        auto chunk =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(
                64, bytes - off));
        sink.load(src + off, chunk);
        sink.store(dst + off, chunk);
        sink.compute(2);
    }
}

} // namespace

ShuffleStage::ShuffleStage(CoreConfig core_cfg, LzCosts lz_costs)
    : coreCfg_(core_cfg), codec_(lz_costs)
{
    metrics_ = metrics::Group(metrics::current(), "shuffle");
    if (metrics_.enabled()) {
        metrics_.rate("throughput_mbps",
                      "wire bytes per second of stage busy time, MB/s",
                      [this] {
                          return static_cast<double>(cumWireBytes_);
                      },
                      static_cast<double>(kTicksPerSecond) / 1e6);
    }
}

void
ShuffleStage::account(const ShuffleTiming &t) const
{
    cumWireBytes_ += t.wireBytes;
    cumBusySeconds_ += t.seconds;
    metrics_.tick(static_cast<Tick>(cumBusySeconds_ *
                                    static_cast<double>(kTicksPerSecond)));
}

ShuffleTiming
ShuffleStage::softwareWrite(
    const std::vector<std::uint8_t> &serialized) const
{
    EventQueue eq;
    Dram dram("dram.shuffle.w", eq);
    CoreModel core(dram, coreCfg_);
    core.setTrace(trace::current().sub("shuffle.write"));

    core.phase("compress");
    auto compressed = codec_.compress(serialized, &core);
    // Buffer copy of the compressed block into the shuffle file buffer.
    core.phase("copy");
    narrateCopy(core, kStreamBase + 0x8'0000'0000ULL,
                kStreamBase + 0xc'0000'0000ULL, compressed.size());

    auto st = core.finish();
    ShuffleTiming out{compressed.size(), st.seconds};
    account(out);
    return out;
}

ShuffleTiming
ShuffleStage::softwareRead(
    const std::vector<std::uint8_t> &serialized) const
{
    EventQueue eq;
    Dram dram("dram.shuffle.r", eq);
    CoreModel core(dram, coreCfg_);
    core.setTrace(trace::current().sub("shuffle.read"));

    // The read side sees the compressed block (what the writer made).
    auto compressed = codec_.compress(serialized, nullptr);
    core.phase("decompress");
    auto raw = codec_.decompress(compressed, &core);
    panic_if(raw.size() != serialized.size(), "shuffle read corrupted");

    auto st = core.finish();
    ShuffleTiming out{compressed.size(), st.seconds};
    account(out);
    return out;
}

ShuffleTiming
ShuffleStage::cerealHandoff(std::uint64_t stream_bytes) const
{
    EventQueue eq;
    Dram dram("dram.shuffle.c", eq);
    CoreModel core(dram, coreCfg_);
    core.setTrace(trace::current().sub("shuffle.handoff"));
    core.phase("copy");
    narrateCopy(core, kStreamBase, kStreamBase + 0xc'0000'0000ULL,
                stream_bytes);
    // Spark checksums every shuffle block regardless of codec; the
    // driver pays that pass over the (uncompressed) packed stream.
    // lighter-weight xxhash-style pass (no buffer-copy layers).
    core.phase("checksum");
    core.compute(3 * stream_bytes);
    auto st = core.finish();
    ShuffleTiming out{stream_bytes, st.seconds};
    account(out);
    return out;
}

} // namespace cereal
