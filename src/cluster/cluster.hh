/**
 * @file
 * Event-driven multi-node cluster simulator.
 *
 * N executors, each with one serializer worker (a FIFO queue serving
 * both serialize and deserialize jobs at the measured per-partition
 * cost) and one full-duplex link into the switch fabric. Two drive
 * modes:
 *
 *  - runShuffle(): the Spark all-to-all — every node serializes one
 *    partition for each peer at t=0, frames cross the fabric, and the
 *    receivers deserialize. Reports completion time, throughput, and
 *    the per-partition latency distribution (serialize-enqueue to
 *    deserialize-done), where the tail comes from worker queueing and
 *    ingress incast.
 *
 *  - runServing(): an open-loop serving experiment — Poisson request
 *    arrivals at a chosen fraction of the node's measured capacity,
 *    each request serializing on its origin, crossing the fabric, and
 *    deserializing on a uniformly chosen peer. Reports offered vs
 *    achieved throughput and p50/p95/p99 sojourn latency, mapping the
 *    latency-throughput curve the paper's serving claim rests on.
 *
 * Every frame on the wire is a real encoded partition frame; the
 * receive path decodes it (frame.hh) before queueing the deserialize
 * job, so the codec sits on the simulated hot path exactly where it
 * would in deployment.
 */

#ifndef CEREAL_CLUSTER_CLUSTER_HH
#define CEREAL_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <string>

#include "cluster/cost_model.hh"
#include "cluster/fabric.hh"
#include "cluster/node.hh"
#include "sim/json.hh"
#include "sim/sim_mode.hh"
#include "sim/stats.hh"

namespace cereal {
namespace cluster {

/** Whole-cluster experiment parameters. */
struct ClusterConfig
{
    unsigned nodes = 4;
    Backend backend = Backend::Java;
    /** Spark application supplying partition payloads. */
    std::string app = "Terasort";
    /** Scale divisor for the per-partition object count. */
    std::uint64_t scale = 64;
    std::uint64_t seed = 1;
    /**
     * Fidelity mode (defaults to the ambient global). FastForward
     * preserves every reported stat byte-identically with
     * observability off; Sampled additionally simulates only a prefix
     * of each serving run's arrivals (see runServing()).
     */
    SimMode mode = globalSimMode();
    NetConfig net;
};

/** Percentile summary of a latency population, for JSON reporting. */
struct LatencySummary
{
    std::uint64_t count = 0;
    double mean = 0;
    double min = 0;
    double max = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    double p999 = 0;

    static LatencySummary of(const stats::Distribution &d);

    /**
     * Emit as members "<prefix>_count", "<prefix>_mean", ...,
     * "<prefix>_p999" of the currently open object (schema-stable).
     */
    void writeJson(json::Writer &w, const std::string &prefix) const;
};

/** Outcome of one all-to-all shuffle. */
struct ShuffleResult
{
    double completionSeconds = 0;
    /** Partitions exchanged = nodes * (nodes - 1). */
    std::uint64_t frames = 0;
    std::uint64_t wireBytes = 0;
    std::uint64_t batches = 0;
    /** Wire bytes / completion seconds. */
    double throughputMBps = 0;
    /** Per-partition serialize-enqueue to deserialize-done seconds. */
    LatencySummary latency;
};

/** Outcome of one open-loop serving run. */
struct ServingResult
{
    /** Requested arrival rate, requests/second across the cluster. */
    double offeredRps = 0;
    /** Completions / makespan. */
    double achievedRps = 0;
    std::uint64_t requests = 0;
    std::uint64_t completed = 0;
    double durationSeconds = 0;
    /** Per-request arrival to deserialize-done seconds. */
    LatencySummary latency;
};

/** One simulated cluster; profile measured once, replayed per run. */
class ClusterSim
{
  public:
    explicit ClusterSim(ClusterConfig cfg);

    /** The configuration this cluster was built from. */
    const ClusterConfig &config() const { return cfg_; }

    /** The measured per-partition serializer profile (shared). */
    const NodeProfile &profile() const { return cost_.profile(); }

    /**
     * The cost model every timing consumer charges through (shuffle,
     * serving, dataflow operators). profile() remains available for
     * reading the measured facts; timing goes through this interface.
     */
    const BackendCostModel &costModel() const { return cost_; }

    /** Wire bytes of one encoded partition frame. */
    std::uint64_t frameBytes() const { return frameBytes_; }

    /**
     * FNV-1a-64 of the profiled payload, computed once at construction.
     * The send path stamps it into every frame and the receive path
     * verifies delivered frames against it, so per-frame integrity
     * checking costs a comparison instead of an O(payload) rehash.
     */
    std::uint64_t payloadChecksum() const { return payloadChecksum_; }

    /**
     * Sustainable per-node request rate: one request costs the node
     * worker serSeconds (as origin) plus, at uniform destinations,
     * deserSeconds (as target), and the frame must fit down the link.
     */
    double nodeCapacityRps() const;

    ShuffleResult runShuffle() const;

    /**
     * @param utilization offered load as a fraction of
     *        nodeCapacityRps() (must be > 0; stable below 1)
     * @param requests_per_node arrivals generated per node
     *
     * In Sampled mode only the first quarter (rounded up) of each
     * node's arrival process is simulated; the reported request count
     * reflects the sample and percentiles are estimates whose error
     * the differential suite bounds.
     */
    ServingResult runServing(double utilization,
                             std::uint64_t requests_per_node = 200) const;

  private:
    ClusterConfig cfg_;
    BackendCostModel cost_;
    std::uint64_t frameBytes_ = 0;
    std::uint64_t payloadChecksum_ = 0;
};

} // namespace cluster
} // namespace cereal

#endif // CEREAL_CLUSTER_CLUSTER_HH
