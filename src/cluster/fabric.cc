#include "cluster/fabric.hh"

#include <cmath>
#include <string>
#include <utility>

#include "sim/logging.hh"

namespace cereal {

Fabric::Fabric(EventQueue &eq, unsigned nodes, NetConfig cfg,
               Deliver deliver)
    : eq_(&eq), cfg_(cfg), deliver_(std::move(deliver)), ports_(nodes)
{
    panic_if(nodes < 2, "fabric needs at least 2 nodes");
    panic_if(cfg_.bandwidthGbps <= 0, "non-positive link bandwidth");
    panic_if(cfg_.batchBytes == 0, "zero batch size");
    for (auto &p : ports_) {
        p.flows.resize(nodes);
    }

    metrics_ = metrics::Group(metrics::current(), "cluster.fabric");
    if (metrics_.enabled()) {
        for (unsigned i = 0; i < nodes; ++i) {
            const std::string n = "n" + std::to_string(i);
            metrics_.rate((n + ".tx_util").c_str(),
                          "egress-link busy fraction of this node",
                          [this, i] {
                              return static_cast<double>(
                                  ports_[i].txBusyTicks);
                          },
                          1.0);
            metrics_.gauge((n + ".queued_frames").c_str(),
                           "frames backlogged across egress flows",
                           [this, i](Tick) {
                               return static_cast<double>(
                                   ports_[i].queuedFrames);
                           });
        }
    }
}

void
Fabric::setTrace(const trace::TraceEmitter &em)
{
    txTrace_.clear();
    rxTrace_.clear();
    if (!em.enabled()) {
        return;
    }
    txTrace_.reserve(ports_.size());
    rxTrace_.reserve(ports_.size());
    for (std::size_t i = 0; i < ports_.size(); ++i) {
        const std::string n = "n" + std::to_string(i);
        txTrace_.push_back(em.sub((n + ".tx").c_str()));
        rxTrace_.push_back(em.sub((n + ".rx").c_str()));
    }
}

Tick
Fabric::txTicks(std::uint64_t bytes) const
{
    // 1 tick = 1 ps: ps/byte = 8 bits / (Gbps * 1e9 bit/s) * 1e12.
    const double ps = static_cast<double>(bytes) * 8000.0 /
                      cfg_.bandwidthGbps;
    return static_cast<Tick>(std::ceil(ps));
}

Tick
Fabric::propagationTicks() const
{
    return static_cast<Tick>(cfg_.latencyUs * 1e6);
}

void
Fabric::send(std::uint32_t src, std::uint32_t dst,
             std::vector<std::uint8_t> frame)
{
    panic_if(src >= ports_.size() || dst >= ports_.size(),
             "fabric send %u -> %u outside %zu-node cluster", src, dst,
             ports_.size());
    panic_if(src == dst, "fabric does not loop back node %u", src);
    wireBytes_ += frame.size();
    ports_[src].flows[dst].push_back(std::move(frame));
    ++ports_[src].queuedFrames;
    if (!txTrace_.empty()) {
        txTrace_[src].counter(
            "queued_frames", eq_->now(),
            static_cast<double>(ports_[src].queuedFrames));
    }
    metrics_.tick(eq_->now());
    if (!ports_[src].busy) {
        kickEgress(src);
    }
}

void
Fabric::kickEgress(std::uint32_t src)
{
    Port &port = ports_[src];
    const auto n = static_cast<std::uint32_t>(port.flows.size());

    // Round-robin over destinations: take the next non-empty flow.
    std::uint32_t dst = n;
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t cand = (port.rrNext + i) % n;
        if (!port.flows[cand].empty()) {
            dst = cand;
            break;
        }
    }
    if (dst == n) {
        port.busy = false;
        return;
    }
    port.rrNext = (dst + 1) % n;

    // Form one batch for this destination: whole frames up to
    // batchBytes, but always at least one frame.
    std::vector<std::vector<std::uint8_t>> batch;
    std::uint64_t batch_bytes = 0;
    auto &flow = port.flows[dst];
    batch.reserve(flow.size());
    while (!flow.empty() &&
           (batch.empty() ||
            batch_bytes + flow.front().size() <= cfg_.batchBytes)) {
        batch_bytes += flow.front().size();
        batch.push_back(std::move(flow.front()));
        flow.pop_front();
    }
    ++batches_;
    port.queuedFrames -= batch.size();

    const Tick tx = txTicks(batch_bytes);
    port.busy = true;
    // Schedule-synchronous attribution: the whole batch occupancy is
    // charged at batch start.
    port.txBusyTicks += tx;
    metrics_.tick(eq_->now());
    if (!txTrace_.empty()) {
        txTrace_[src].span("tx_batch", eq_->now(), eq_->now() + tx);
        txTrace_[src].counter("queued_frames", eq_->now(),
                              static_cast<double>(port.queuedFrames));
    }

    // Egress link frees after the batch's serialization time.
    eq_->scheduleIn(tx, [this, src] { kickEgress(src); });

    // The batch reaches the destination's ingress port after
    // propagation, then occupies that link for the same serialization
    // time; concurrent senders queue behind each other here (incast).
    eq_->scheduleIn(tx + propagationTicks(),
                    [this, dst, tx,
                     frames = std::move(batch)]() mutable {
        Port &in = ports_[dst];
        const Tick start = std::max(eq_->now(), in.rxBusyUntil);
        const Tick done = start + tx;
        in.rxBusyUntil = done;
        metrics_.tick(eq_->now());
        if (!rxTrace_.empty()) {
            rxTrace_[dst].span("rx_batch", start, done);
        }
        eq_->schedule(done, [this, dst,
                             fs = std::move(frames)]() mutable {
            for (auto &f : fs) {
                deliver_(dst, std::move(f));
            }
        });
    });
}

} // namespace cereal
