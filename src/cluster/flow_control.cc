#include "cluster/flow_control.hh"

#include "sim/logging.hh"

namespace cereal {
namespace cluster {

CreditManager::CreditManager(unsigned nodes, FlowControlConfig cfg)
    : cfg_(cfg), nodes_(nodes)
{
    panic_if(nodes_ < 2, "credit manager needs at least 2 nodes");
    panic_if(cfg_.enabled && cfg_.window == 0,
             "flow control needs a positive credit window");
    available_.assign(static_cast<std::size_t>(nodes_) * nodes_,
                      cfg_.window);
}

std::size_t
CreditManager::index(std::uint32_t src, std::uint32_t dst) const
{
    panic_if(src >= nodes_ || dst >= nodes_ || src == dst,
             "bad credit pair %u -> %u", src, dst);
    return static_cast<std::size_t>(src) * nodes_ + dst;
}

unsigned
CreditManager::available(std::uint32_t src, std::uint32_t dst) const
{
    return available_[index(src, dst)];
}

bool
CreditManager::tryConsume(std::uint32_t src, std::uint32_t dst)
{
    if (!cfg_.enabled) {
        return true;
    }
    unsigned &avail = available_[index(src, dst)];
    if (avail == 0) {
        return false;
    }
    --avail;
    ++issued_;
    return true;
}

void
CreditManager::refund(std::uint32_t src, std::uint32_t dst)
{
    if (!cfg_.enabled) {
        return;
    }
    unsigned &avail = available_[index(src, dst)];
    panic_if(avail >= cfg_.window,
             "credit overflow on pair %u -> %u (window %u)", src, dst,
             cfg_.window);
    ++avail;
    ++returned_;
}

bool
CreditManager::allWindowsFull() const
{
    if (!cfg_.enabled) {
        return true;
    }
    for (unsigned src = 0; src < nodes_; ++src) {
        for (unsigned dst = 0; dst < nodes_; ++dst) {
            if (src == dst) {
                continue;
            }
            if (available_[static_cast<std::size_t>(src) * nodes_ +
                           dst] != cfg_.window) {
                return false;
            }
        }
    }
    return true;
}

} // namespace cluster
} // namespace cereal
