/**
 * @file
 * The one interface the cluster layers charge serializer costs
 * through.
 *
 * A BackendCostModel wraps the measured per-partition NodeProfile and
 * is the single entry point for "what does this backend cost on this
 * path": serialize (origin side), deserialize (receive side), operator
 * consume (post-receive compute), and the wire-relevant facts (payload
 * bytes, compressed-on-wire). Shuffle, serving, and the dataflow
 * operators all charge through it; none of them reads NodeProfile's
 * raw fields for timing, and none of them switches on backend
 * identity — behaviour differences live in the serde registry traits
 * the profiler dispatches on.
 *
 * Dataflow batches are not the profiled partition, so the model also
 * exposes bytes-proportional scaling: cost(bytes) = measured cost *
 * bytes / measured stream bytes. That is a deliberate linearization —
 * per-object constants are averaged into the per-byte rate — and it
 * keeps operator timing a pure function of the one measured profile,
 * which is what makes cached profiles and the fast-mode equivalence
 * contract carry over to the dataflow engine unchanged.
 */

#ifndef CEREAL_CLUSTER_COST_MODEL_HH
#define CEREAL_CLUSTER_COST_MODEL_HH

#include <utility>

#include "cluster/node.hh"

namespace cereal {
namespace cluster {

/** Per-path serializer costs for one backend on one node. */
class BackendCostModel
{
  public:
    BackendCostModel() = default;

    explicit BackendCostModel(NodeProfile profile)
        : profile_(std::move(profile))
    {
    }

    /** Measure a profile for @p cfg (cached; see profileNode()). */
    static BackendCostModel
    measure(const NodeConfig &cfg)
    {
        return BackendCostModel(profileNode(cfg));
    }

    /** The underlying measured per-partition profile. */
    const NodeProfile &profile() const { return profile_; }

    // --- full-partition path costs --------------------------------------

    /** Serialize + shuffle-write seconds per profiled partition. */
    double serializeSeconds() const { return profile_.serSeconds; }

    /** Shuffle-read + deserialize seconds per profiled partition. */
    double deserializeSeconds() const { return profile_.deserSeconds; }

    /** Operator compute on one received partition (views or walk). */
    double consumeSeconds() const { return profile_.consumeSeconds; }

    /** Receive-side total: deserialize then consume. */
    double
    receiveSeconds() const
    {
        return profile_.deserSeconds + profile_.consumeSeconds;
    }

    // --- bytes-scaled costs for operator batches ------------------------

    double
    serializeSecondsFor(std::uint64_t stream_bytes) const
    {
        return scale(profile_.serSeconds, stream_bytes);
    }

    double
    deserializeSecondsFor(std::uint64_t stream_bytes) const
    {
        return scale(profile_.deserSeconds, stream_bytes);
    }

    double
    consumeSecondsFor(std::uint64_t stream_bytes) const
    {
        return scale(profile_.consumeSeconds, stream_bytes);
    }

    // --- wire facts ------------------------------------------------------

    /** True when payloads travel through the LZ shuffle codec. */
    bool compressedOnWire() const { return profile_.compressed; }

    /** Serialized stream bytes of the profiled partition. */
    std::uint64_t streamBytes() const { return profile_.streamBytes; }

  private:
    double
    scale(double per_partition, std::uint64_t stream_bytes) const
    {
        if (profile_.streamBytes == 0) {
            return 0;
        }
        return per_partition * static_cast<double>(stream_bytes) /
               static_cast<double>(profile_.streamBytes);
    }

    NodeProfile profile_;
};

} // namespace cluster
} // namespace cereal

#endif // CEREAL_CLUSTER_COST_MODEL_HH
