/**
 * @file
 * Partition-frame wire format for the cluster shuffle fabric.
 *
 * Every serialized partition a node pushes onto the wire is wrapped in
 * one frame so the receiver can route it (source, destination,
 * partition id), pick the right deserializer (format id), and detect
 * corruption before handing the payload to a decoder (FNV-1a-64
 * checksum). Like the serializer formats, the decoder treats the input
 * as hostile: every violation is a typed DecodeError, never an abort.
 *
 * Layout (little-endian, 36-byte header):
 *
 *   u32 magic      'C' 'F' 'R' 'M'
 *   u8  version    kFrameVersion
 *   u8  format     serializer id (0=java 1=kryo 2=skyway 3=cereal)
 *   u16 flags      bit0 = payload is LZ-compressed; others reserved
 *   u32 srcNode
 *   u32 dstNode
 *   u32 partition
 *   u64 payloadLen
 *   u64 checksum   FNV-1a-64 over the payload bytes
 *   payloadLen payload bytes (the frame ends exactly here)
 */

#ifndef CEREAL_CLUSTER_FRAME_HH
#define CEREAL_CLUSTER_FRAME_HH

#include <cstdint>
#include <vector>

#include "serde/decode_error.hh"

namespace cereal {

/** 'CFRM' as read back by a little-endian u32 load. */
constexpr std::uint32_t kFrameMagic = 0x4D524643;

constexpr std::uint8_t kFrameVersion = 1;

/** Number of serializer format ids (valid ids are [0, count)). */
constexpr std::uint8_t kFrameFormatCount = 4;

/** flags bit0: payload went through the LZ shuffle codec. */
constexpr std::uint16_t kFrameFlagCompressed = 0x0001;

/** Header bytes preceding the payload. */
constexpr std::size_t kFrameHeaderBytes = 36;

/** One framed partition. */
struct Frame
{
    std::uint8_t format = 0;
    std::uint16_t flags = 0;
    std::uint32_t srcNode = 0;
    std::uint32_t dstNode = 0;
    std::uint32_t partition = 0;
    std::vector<std::uint8_t> payload;
};

/** Printable serializer name of frame format id @p id ("?" if bad). */
const char *frameFormatName(std::uint8_t id);

/** FNV-1a 64-bit hash of @p data (the frame payload checksum). */
std::uint64_t fnv1a64(const std::uint8_t *data, std::size_t n);

/** Encode @p f; a decoded frame re-encodes to identical bytes. */
std::vector<std::uint8_t> encodeFrame(const Frame &f);

/**
 * Decode one frame occupying the whole of @p bytes.
 *
 * Trailing bytes after the declared payload are an error (BadLength):
 * the fabric delivers exact frames, so slack means corruption.
 *
 * @throws DecodeError on any malformed input
 */
Frame decodeFrame(const std::vector<std::uint8_t> &bytes);

/** Exception-free decodeFrame(). */
DecodeResult<Frame> tryDecodeFrame(const std::vector<std::uint8_t> &bytes);

} // namespace cereal

#endif // CEREAL_CLUSTER_FRAME_HH
