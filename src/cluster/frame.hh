/**
 * @file
 * Partition-frame wire format for the cluster shuffle fabric.
 *
 * Every serialized partition a node pushes onto the wire is wrapped in
 * one frame so the receiver can route it (source, destination,
 * partition id), pick the right deserializer (format id), and detect
 * corruption before handing the payload to a decoder (FNV-1a-64
 * checksum). Like the serializer formats, the decoder treats the input
 * as hostile: every violation is a typed DecodeError, never an abort.
 *
 * Layout (little-endian, 36-byte header):
 *
 *   u32 magic      'C' 'F' 'R' 'M'
 *   u8  version    kFrameVersion
 *   u8  format     serializer id (0=java 1=kryo 2=skyway 3=cereal
 *                  4=plaincode 5=hps)
 *   u16 flags      bit0 = payload is LZ-compressed; others reserved
 *   u32 srcNode
 *   u32 dstNode
 *   u32 partition
 *   u64 payloadLen
 *   u64 checksum   FNV-1a-64 over the payload bytes
 *   [trace-context extension, 16 bytes, iff flags bit1:
 *      u64 traceId   nonzero request/batch trace id
 *      u32 spanId    request class / dataflow stage index
 *      u32 reserved  must be zero]
 *   payloadLen payload bytes (the frame ends exactly here)
 *
 * The trace extension rides between the fixed header and the payload so
 * a traced frame is 16 bytes longer on the wire — tracing overhead is
 * modeled, not free. It is covered by the same hardened-decoder
 * contract as the rest of the header: truncated extensions are
 * Truncated, a nonzero reserved word is Malformed, and a decoded frame
 * re-encodes to identical bytes.
 */

#ifndef CEREAL_CLUSTER_FRAME_HH
#define CEREAL_CLUSTER_FRAME_HH

#include <cstdint>
#include <vector>

#include "serde/decode_error.hh"

namespace cereal {

/** 'CFRM' as read back by a little-endian u32 load. */
constexpr std::uint32_t kFrameMagic = 0x4D524643;

constexpr std::uint8_t kFrameVersion = 1;

/** Number of serializer format ids (valid ids are [0, count)). */
constexpr std::uint8_t kFrameFormatCount = 6;

/** flags bit0: payload went through the LZ shuffle codec. */
constexpr std::uint16_t kFrameFlagCompressed = 0x0001;

/** flags bit1: a 16-byte trace-context extension follows the header. */
constexpr std::uint16_t kFrameFlagTraced = 0x0002;

/** Header bytes preceding the payload (or the trace extension). */
constexpr std::size_t kFrameHeaderBytes = 36;

/** Trace-context extension bytes (present iff kFrameFlagTraced). */
constexpr std::size_t kFrameTraceExtBytes = 16;

/** One framed partition. */
struct Frame
{
    std::uint8_t format = 0;
    std::uint16_t flags = 0;
    std::uint32_t srcNode = 0;
    std::uint32_t dstNode = 0;
    std::uint32_t partition = 0;
    /** Trace context (meaningful iff flags has kFrameFlagTraced). */
    std::uint64_t traceId = 0;
    std::uint32_t spanId = 0;
    std::vector<std::uint8_t> payload;

    bool hasTrace() const { return (flags & kFrameFlagTraced) != 0; }
};

/**
 * A frame whose payload bytes are owned elsewhere (zero-copy encode).
 *
 * The cluster simulator sends the same profiled partition payload
 * thousands of times per run; FrameRef lets the send path reference it
 * in place instead of copying it into a Frame first.
 */
struct FrameRef
{
    std::uint8_t format = 0;
    std::uint16_t flags = 0;
    std::uint32_t srcNode = 0;
    std::uint32_t dstNode = 0;
    std::uint32_t partition = 0;
    /** Trace context (meaningful iff flags has kFrameFlagTraced). */
    std::uint64_t traceId = 0;
    std::uint32_t spanId = 0;
    const std::uint8_t *payload = nullptr;
    std::uint64_t payloadLen = 0;

    bool hasTrace() const { return (flags & kFrameFlagTraced) != 0; }
};

/**
 * Header view of a validated frame (zero-copy decode): all header
 * fields plus a pointer into the caller's buffer. The stored checksum
 * is NOT recomputed — callers that already know the expected payload
 * checksum compare against it; hostile input goes through decodeFrame.
 */
struct FrameInfo
{
    std::uint8_t format = 0;
    std::uint16_t flags = 0;
    std::uint32_t srcNode = 0;
    std::uint32_t dstNode = 0;
    std::uint32_t partition = 0;
    /** Trace context (meaningful iff flags has kFrameFlagTraced). */
    std::uint64_t traceId = 0;
    std::uint32_t spanId = 0;
    /** Payload bytes, pointing into the decoded buffer. */
    const std::uint8_t *payload = nullptr;
    std::uint64_t payloadLen = 0;
    /** Checksum as stored in the header (not recomputed). */
    std::uint64_t checksum = 0;

    bool hasTrace() const { return (flags & kFrameFlagTraced) != 0; }
};

/** Printable serializer name of frame format id @p id ("?" if bad). */
const char *frameFormatName(std::uint8_t id);

/** FNV-1a 64-bit hash of @p data (the frame payload checksum). */
std::uint64_t fnv1a64(const std::uint8_t *data, std::size_t n);

/** Encode @p f; a decoded frame re-encodes to identical bytes. */
std::vector<std::uint8_t> encodeFrame(const Frame &f);

/**
 * Encode @p f into @p out (cleared first; its capacity is reused, so
 * pooled buffers make steady-state sends allocation-free). @p checksum
 * must be fnv1a64 over the payload — callers cache it once per payload
 * instead of re-hashing hundreds of kilobytes per send. Produces bytes
 * identical to encodeFrame().
 */
void encodeFrameInto(const FrameRef &f, std::uint64_t checksum,
                     std::vector<std::uint8_t> &out);

/**
 * Decode one frame occupying the whole of @p bytes.
 *
 * Trailing bytes after the declared payload are an error (BadLength):
 * the fabric delivers exact frames, so slack means corruption.
 *
 * @throws DecodeError on any malformed input
 */
Frame decodeFrame(const std::vector<std::uint8_t> &bytes);

/** Exception-free decodeFrame(). */
DecodeResult<Frame> tryDecodeFrame(const std::vector<std::uint8_t> &bytes);

/**
 * Validate the frame header of @p bytes and return a zero-copy view.
 *
 * Performs every structural check decodeFrame() does (magic, version,
 * format id, reserved flags, exact payload length) but neither copies
 * the payload nor recomputes its checksum; FrameInfo::checksum is the
 * stored value for the caller to compare against a known-good hash.
 * The view borrows @p bytes and dies with it.
 */
DecodeResult<FrameInfo>
tryDecodeFrameInfo(const std::vector<std::uint8_t> &bytes);

} // namespace cereal

#endif // CEREAL_CLUSTER_FRAME_HH
