#include "cluster/cluster.hh"

#include <cmath>
#include <deque>
#include <unordered_map>
#include <utility>

#include "cluster/frame.hh"
#include "cluster/worker.hh"
#include "metrics/metrics.hh"
#include "sim/arena.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "trace/trace.hh"

namespace cereal {
namespace cluster {

namespace {

Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(
        std::ceil(s * static_cast<double>(kTicksPerSecond)));
}

} // namespace

LatencySummary
LatencySummary::of(const stats::Distribution &d)
{
    LatencySummary s;
    s.count = d.count();
    s.mean = d.mean();
    s.min = d.min();
    s.max = d.max();
    s.p50 = d.p50();
    s.p95 = d.p95();
    s.p99 = d.p99();
    s.p999 = d.p999();
    return s;
}

void
LatencySummary::writeJson(json::Writer &w,
                          const std::string &prefix) const
{
    w.kv(prefix + "_count", count);
    w.kv(prefix + "_mean_s", mean);
    w.kv(prefix + "_min_s", min);
    w.kv(prefix + "_max_s", max);
    w.kv(prefix + "_p50_s", p50);
    w.kv(prefix + "_p95_s", p95);
    w.kv(prefix + "_p99_s", p99);
    w.kv(prefix + "_p999_s", p999);
}

ClusterSim::ClusterSim(ClusterConfig cfg) : cfg_(std::move(cfg))
{
    panic_if(cfg_.nodes < 2, "cluster needs at least 2 nodes");
    NodeConfig nc;
    nc.backend = cfg_.backend;
    nc.app = cfg_.app;
    nc.scale = cfg_.scale;
    nc.seed = cfg_.seed;
    nc.mode = cfg_.mode;
    cost_ = BackendCostModel::measure(nc);

    // Hash the payload once; every frame this cluster sends carries the
    // same profiled partition, so the send path stamps this cached
    // checksum and the receive path verifies against it by equality.
    const NodeProfile &prof = cost_.profile();
    payloadChecksum_ = fnv1a64(prof.payload.data(), prof.payload.size());
    frameBytes_ = kFrameHeaderBytes + prof.payload.size();
}

double
ClusterSim::nodeCapacityRps() const
{
    // Worker budget: as origin the node pays the serialize cost per
    // request; with uniform destinations it receives one partition per
    // sent one in expectation, paying the deserialize cost. Each link
    // (egress and ingress) carries one frame per request.
    const double worker =
        cost_.serializeSeconds() + cost_.deserializeSeconds();
    const double wire = static_cast<double>(frameBytes_) * 8.0 /
                        (cfg_.net.bandwidthGbps * 1e9);
    const double bottleneck = std::max(worker, wire);
    panic_if(bottleneck <= 0, "degenerate node profile");
    return 1.0 / bottleneck;
}

ShuffleResult
ClusterSim::runShuffle() const
{
    const unsigned n = cfg_.nodes;
    const NodeProfile &prof = cost_.profile();
    const Tick ser = secondsToTicks(cost_.serializeSeconds());
    const Tick deser = secondsToTicks(cost_.deserializeSeconds());

    EventQueue eq;
    const bool observe = simModeObserves(cfg_.mode);
    const auto em = observe ? trace::current() : trace::TraceEmitter();
    std::vector<Worker> workers(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        workers[i].eq = &eq;
        if (observe) {
            workers[i].initMetrics(i);
        }
        if (em.enabled()) {
            workers[i].trace =
                em.sub(("node" + std::to_string(i)).c_str());
        }
    }

    stats::Distribution latency;
    latency.reserve(static_cast<std::size_t>(n) * (n - 1));
    std::unordered_map<std::uint32_t, Tick> start;
    Tick last_done = 0;
    sim::BufferPool pool;

    Fabric fabric(eq, n, cfg_.net,
                  [&](std::uint32_t dst, std::vector<std::uint8_t> bytes) {
        auto res = tryDecodeFrameInfo(bytes);
        panic_if(!res.ok(), "fabric delivered a corrupt frame: %s",
                 res.error().what());
        const FrameInfo &info = res.value();
        // Integrity check by equality against the cached payload hash:
        // same corruption coverage as rehashing, at O(1) per frame.
        panic_if(info.checksum != payloadChecksum_ ||
                     info.payloadLen != prof.payload.size(),
                 "fabric delivered a corrupt frame (payload digest"
                 " mismatch on partition %u)", info.partition);
        const std::uint32_t partition = info.partition;
        pool.release(std::move(bytes));
        workers[dst].enqueue(deser, "deser", [&, partition] {
            latency.sample(ticksToSeconds(eq.now() - start.at(partition)));
            last_done = eq.now();
        });
    });
    fabric.setTrace(em.sub("fabric"));

    // t = 0: every node enqueues one serialize job per peer.
    for (std::uint32_t src = 0; src < n; ++src) {
        for (std::uint32_t dst = 0; dst < n; ++dst) {
            if (dst == src) {
                continue;
            }
            const std::uint32_t partition = src * n + dst;
            start[partition] = 0;
            workers[src].enqueue(ser, "ser", [&, src, dst, partition] {
                FrameRef f;
                f.format = backendFormatId(cfg_.backend);
                f.flags =
                    prof.compressed ? kFrameFlagCompressed : 0;
                f.srcNode = src;
                f.dstNode = dst;
                f.partition = partition;
                f.payload = prof.payload.data();
                f.payloadLen = prof.payload.size();
                auto bytes = pool.acquire();
                encodeFrameInto(f, payloadChecksum_, bytes);
                fabric.send(src, dst, std::move(bytes));
            });
        }
    }

    eq.runAll();

    ShuffleResult out;
    out.completionSeconds = ticksToSeconds(last_done);
    out.frames = static_cast<std::uint64_t>(n) * (n - 1);
    out.wireBytes = fabric.wireBytes();
    out.batches = fabric.batches();
    out.throughputMBps = out.completionSeconds > 0
        ? static_cast<double>(out.wireBytes) /
              out.completionSeconds / 1e6
        : 0;
    out.latency = LatencySummary::of(latency);
    panic_if(out.latency.count != out.frames,
             "shuffle lost partitions (%llu of %llu finished)",
             (unsigned long long)out.latency.count,
             (unsigned long long)out.frames);
    return out;
}

ServingResult
ClusterSim::runServing(double utilization,
                       std::uint64_t requests_per_node) const
{
    panic_if(utilization <= 0, "serving utilization must be > 0");
    panic_if(requests_per_node == 0 || requests_per_node > 0xffff,
             "requests per node out of range");

    const unsigned n = cfg_.nodes;
    const NodeProfile &prof = cost_.profile();
    const Tick ser = secondsToTicks(cost_.serializeSeconds());
    const Tick deser = secondsToTicks(cost_.deserializeSeconds());
    const double lambda = utilization * nodeCapacityRps();

    EventQueue eq;
    const bool observe = simModeObserves(cfg_.mode);
    const auto em = observe ? trace::current() : trace::TraceEmitter();
    std::vector<Worker> workers(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        workers[i].eq = &eq;
        if (observe) {
            workers[i].initMetrics(i);
        }
        if (em.enabled()) {
            workers[i].trace =
                em.sub(("node" + std::to_string(i)).c_str());
        }
    }

    stats::Distribution latency;
    std::unordered_map<std::uint32_t, Tick> arrival;
    std::uint64_t completed = 0;
    Tick last_done = 0;
    sim::BufferPool pool;

    Fabric fabric(eq, n, cfg_.net,
                  [&](std::uint32_t dst, std::vector<std::uint8_t> bytes) {
        auto res = tryDecodeFrameInfo(bytes);
        panic_if(!res.ok(), "fabric delivered a corrupt frame: %s",
                 res.error().what());
        const FrameInfo &info = res.value();
        panic_if(info.checksum != payloadChecksum_ ||
                     info.payloadLen != prof.payload.size(),
                 "fabric delivered a corrupt frame (payload digest"
                 " mismatch on request %u)", info.partition);
        const std::uint32_t request = info.partition;
        pool.release(std::move(bytes));
        workers[dst].enqueue(deser, "deser", [&, request] {
            latency.sample(ticksToSeconds(eq.now() - arrival.at(request)));
            ++completed;
            last_done = eq.now();
        });
    });
    fabric.setTrace(em.sub("fabric"));

    // Sampled mode simulates only the first quarter (rounded up) of
    // each node's arrival process. The sample is a prefix of the same
    // per-node Poisson draw, so its arrivals coincide with the full
    // run's early arrivals and the queueing dynamics stay faithful.
    const std::uint64_t sim_rpn =
        cfg_.mode == SimMode::Sampled ? (requests_per_node + 3) / 4
                                      : requests_per_node;

    latency.reserve(static_cast<std::size_t>(n) * sim_rpn);
    arrival.reserve(static_cast<std::size_t>(n) * sim_rpn);
    eq.reserve(static_cast<std::size_t>(n) * sim_rpn + 16);

    // Open loop: pre-draw every node's Poisson arrival process and the
    // uniform peer destinations from the per-node seeded Rng.
    for (std::uint32_t origin = 0; origin < n; ++origin) {
        Rng rng(cfg_.seed * 0x51ed2701ULL + origin);
        double t = 0;
        for (std::uint64_t k = 0; k < sim_rpn; ++k) {
            t += -std::log(1.0 - rng.uniform()) / lambda;
            std::uint32_t dst =
                static_cast<std::uint32_t>(rng.below(n - 1));
            if (dst >= origin) {
                ++dst; // uniform over the n-1 peers
            }
            const std::uint32_t request =
                origin * 0x10000u + static_cast<std::uint32_t>(k);
            const Tick at = secondsToTicks(t);
            arrival[request] = at;
            eq.schedule(at, [&, origin, dst, request] {
                workers[origin].enqueue(ser, "ser",
                                        [&, origin, dst, request] {
                    FrameRef f;
                    f.format = backendFormatId(cfg_.backend);
                    f.flags = prof.compressed
                        ? kFrameFlagCompressed : 0;
                    f.srcNode = origin;
                    f.dstNode = dst;
                    f.partition = request;
                    f.payload = prof.payload.data();
                    f.payloadLen = prof.payload.size();
                    auto bytes = pool.acquire();
                    encodeFrameInto(f, payloadChecksum_, bytes);
                    fabric.send(origin, dst, std::move(bytes));
                });
            });
        }
    }

    // Functional warm-up: jump straight to the first arrival instead
    // of entering the run through the idle gap before it. Safe under
    // observation too — no pending event is skipped, so every trace
    // span and metrics sample lands on the same tick either way.
    if (!eq.empty()) {
        eq.fastForward(eq.nextEventTick());
    }

    eq.runAll();

    ServingResult out;
    out.offeredRps = lambda * static_cast<double>(n);
    out.requests = static_cast<std::uint64_t>(n) * sim_rpn;
    out.completed = completed;
    out.durationSeconds = ticksToSeconds(last_done);
    out.achievedRps = out.durationSeconds > 0
        ? static_cast<double>(completed) / out.durationSeconds
        : 0;
    out.latency = LatencySummary::of(latency);
    panic_if(out.completed != out.requests,
             "serving lost requests (%llu of %llu finished)",
             (unsigned long long)out.completed,
             (unsigned long long)out.requests);
    return out;
}

} // namespace cluster
} // namespace cereal
