/**
 * @file
 * Serving front-end for the cluster simulator: shaped load, admission
 * control, and credit-based flow control in front of the per-node
 * serializer workers.
 *
 * runServing() (cluster.hh) models the textbook open loop: Poisson
 * arrivals are all admitted, queues are unbounded, and past the
 * saturation knee the tail latency diverges. This layer models what a
 * production front end actually does with the same serializer stack:
 *
 *  - Arrivals come from a LoadGenerator (src/load): a large simulated
 *    client population whose aggregate rate follows a composable
 *    LoadShape (steady / diurnal / bursty / flash crowd), each request
 *    carrying a client-derived class (gold / silver / bronze).
 *
 *  - An admission controller in front of each node's worker bounds the
 *    number of requests admitted but not yet on the wire. Over the
 *    bound it can tail-Drop the newcomer, ShedByClass (evict the
 *    newest waiting lower-class request in favour of a better-class
 *    arrival), or RejectEarly on an estimated-sojourn budget.
 *    Occupancy counts credit-stalled frames too, so downstream
 *    backpressure propagates into admission decisions.
 *
 *  - Credit-based flow control (flow_control.hh) gates the fabric: a
 *    frame needs a (src, dst) credit to launch, and the credit returns
 *    only after the receiver has deserialized *and consumed* the
 *    frame. Out-of-credit frames park in per-destination stall
 *    buffers, so ingress incast turns into sender-side stalls instead
 *    of unbounded receiver queues.
 *
 *  - The deserialize job charges deserSeconds + consumeSeconds: the
 *    operator computes on the received partition, on hps directly on
 *    the zero-copy views (NodeProfile::consumeSeconds).
 *
 * Determinism matches the rest of the simulator: per-node seeded
 * generators, EventQueue FIFO tie-breaking, results byte-identical
 * across host thread counts.
 */

#ifndef CEREAL_CLUSTER_SERVING_HH
#define CEREAL_CLUSTER_SERVING_HH

#include <cstdint>

#include "cluster/cluster.hh"
#include "cluster/flow_control.hh"
#include "load/load_gen.hh"
#include "trace/request_trace.hh"

namespace cereal {
namespace cluster {

/** What the admission controller does with an over-bound arrival. */
enum class AdmissionPolicy
{
    /** Open loop: everything is admitted, queues are unbounded. */
    None,
    /** Tail-drop the incoming request. */
    Drop,
    /**
     * Evict the newest waiting request of a worse class to make room;
     * tail-drop the newcomer when no worse victim is waiting.
     */
    ShedByClass,
    /**
     * Refuse the newcomer as soon as its estimated sojourn
     * (occupancy x serialize service) exceeds the budget — the
     * "fail fast, retry elsewhere" front-end idiom.
     */
    RejectEarly,
};

/** "none" / "drop" / "shed" / "reject". */
const char *admissionPolicyName(AdmissionPolicy p);

/** Per-node admission controller parameters. */
struct AdmissionConfig
{
    AdmissionPolicy policy = AdmissionPolicy::None;
    /**
     * Bound on requests admitted but not yet handed to the fabric
     * (waiting + in serialize + credit-stalled).
     */
    unsigned queueBound = 16;
    /**
     * RejectEarly sojourn budget as a fraction of a full queue's worth
     * of serialize service (rejects earlier than the hard bound).
     */
    double rejectBudgetFactor = 0.75;
};

/** One serving-front-end experiment. */
struct ServingConfig
{
    /** Base offered load as a fraction of nodeCapacityRps(). */
    double utilization = 0.5;
    std::uint64_t requestsPerNode = 300;
    /** Simulated client population per node. */
    std::uint64_t clientsPerNode = 1'000'000;
    load::LoadShape shape = load::LoadShape::steady();
    /**
     * Fraction of the horizon treated as warm-up: completions of
     * requests arriving before it are excluded from the latency
     * percentiles (they still count toward goodput).
     */
    double warmupFraction = 0.1;
    AdmissionConfig admission;
    FlowControlConfig flow;
    /**
     * Test hook: when >= 0, every request from other nodes targets
     * this node — the deliberate-incast configuration the
     * no-unbounded-queue invariant is pinned against.
     */
    int fixedDst = -1;
    /**
     * Request tracing: every request gets a trace id; sampled ones
     * (head-based, seeded) carry it across the fabric in the frame's
     * trace extension and leave a conservation-checked timeline in the
     * result's RequestTraceReport. Part of the reported stats — NOT
     * gated on sim mode, byte-identical cycle vs fast.
     */
    trace::RequestTraceConfig reqTrace;
};

/** Outcome of one serving-front-end run. */
struct ServingFrontendResult
{
    /** Mean offered arrival rate across the cluster, requests/s. */
    double offeredRps = 0;
    /** Completions / duration — the goodput the knee curve plots. */
    double goodputRps = 0;
    std::uint64_t requests = 0;
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    /** Tail-dropped at admission (Drop, or ShedByClass with no victim). */
    std::uint64_t dropped = 0;
    /** Victims evicted by ShedByClass after admission. */
    std::uint64_t shed = 0;
    /** Refused by RejectEarly. */
    std::uint64_t rejected = 0;
    /** (requests - completed) / requests. */
    double dropRate = 0;
    double durationSeconds = 0;
    /** Sojourn (arrival to consume-done) of post-warm-up completions. */
    LatencySummary latency;
    /**
     * Seconds from the end of the flash-crowd window until the last
     * in-spike arrival completed (0 when the shape has no spike).
     */
    double recoverSeconds = 0;
    std::uint64_t creditsIssued = 0;
    std::uint64_t creditsReturned = 0;
    /** issued == returned and every window refilled after drain. */
    bool creditsConserved = false;
    /** Peak admitted-but-unsent occupancy across nodes. */
    std::uint64_t maxAdmissionOccupancy = 0;
    /** Peak worker FIFO backlog across nodes (incast shows up here). */
    std::uint64_t maxWorkerQueue = 0;
    /** Peak credit-stalled frames parked at any one node. */
    std::uint64_t maxStalledFrames = 0;
    /** Sampled request timelines, tail exemplars, and attribution. */
    trace::RequestTraceReport reqTrace;
};

/**
 * Run the serving front-end experiment on @p sim. Deterministic in
 * (sim config, cfg); in Sampled mode only the first quarter of each
 * node's arrival stream is simulated (the runServing() convention).
 */
ServingFrontendResult runServingFrontend(const ClusterSim &sim,
                                         const ServingConfig &cfg);

} // namespace cluster
} // namespace cereal

#endif // CEREAL_CLUSTER_SERVING_HH
