/**
 * @file
 * Network fabric model for the cluster simulator.
 *
 * Each node owns one full-duplex link into a non-blocking switch.
 * Frames queued for transmission are organised per destination; the
 * egress port serves those flows round-robin at batch granularity
 * (per-flow fair sharing), so one large shuffle partition cannot
 * starve traffic to other destinations. A batch occupies the egress
 * link for size/bandwidth, crosses the switch after a fixed
 * propagation latency, then occupies the *ingress* link of the
 * destination for the same serialization time — which is where incast
 * contention (N-1 senders converging on one receiver during an
 * all-to-all) shows up as queueing delay.
 *
 * Everything is scheduled on the shared EventQueue; the queue's
 * sequence-numbered FIFO tie-breaking makes concurrent flows
 * deterministic.
 */

#ifndef CEREAL_CLUSTER_FABRIC_HH
#define CEREAL_CLUSTER_FABRIC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "metrics/metrics.hh"
#include "sim/event_queue.hh"
#include "trace/trace.hh"

namespace cereal {

/** Link/batching parameters of the fabric (uniform across nodes). */
struct NetConfig
{
    /** Per-link bandwidth, gigabits per second. */
    double bandwidthGbps = 10.0;
    /** One-way propagation latency through the switch, microseconds. */
    double latencyUs = 5.0;
    /** Target bytes per transmission batch (>= 1 frame always goes). */
    std::uint64_t batchBytes = 64 * 1024;
};

/** N-node switch model; delivers whole frames to the destination. */
class Fabric
{
  public:
    /** Called at delivery time, on the destination's ingress side. */
    using Deliver =
        std::function<void(std::uint32_t dst,
                           std::vector<std::uint8_t> frame)>;

    Fabric(EventQueue &eq, unsigned nodes, NetConfig cfg,
           Deliver deliver);

    /** Queue @p frame for transmission from @p src to @p dst. */
    void send(std::uint32_t src, std::uint32_t dst,
              std::vector<std::uint8_t> frame);

    /** Link occupancy of @p bytes at the configured bandwidth. */
    Tick txTicks(std::uint64_t bytes) const;

    /** One-way propagation latency in ticks. */
    Tick propagationTicks() const;

    /** Total frame bytes handed to send(). */
    std::uint64_t wireBytes() const { return wireBytes_; }

    /** Transmission batches formed so far. */
    std::uint64_t batches() const { return batches_; }

    /**
     * Attach a trace emitter. Each node's link pair gets child tracks
     * "n{i}.tx" ("tx_batch" spans = egress occupancy, "queued_frames"
     * counter = egress backlog) and "n{i}.rx" ("rx_batch" spans =
     * ingress occupancy, where incast queueing shows up).
     */
    void setTrace(const trace::TraceEmitter &em);

  private:
    struct Port
    {
        /** Per-destination FIFO flows awaiting transmission. */
        std::vector<std::deque<std::vector<std::uint8_t>>> flows;
        /** Next flow the round-robin scheduler inspects. */
        std::uint32_t rrNext = 0;
        bool busy = false;
        /** Ingress side: link occupied until this tick. */
        Tick rxBusyUntil = 0;
        /** Frames queued across this port's egress flows. */
        std::uint64_t queuedFrames = 0;
        /** Cumulative egress-link occupancy, ticks (never reset). */
        Tick txBusyTicks = 0;
    };

    void kickEgress(std::uint32_t src);

    EventQueue *eq_;
    NetConfig cfg_;
    Deliver deliver_;
    std::vector<Port> ports_;
    /** Per-node link trace tracks (empty when tracing is off). */
    std::vector<trace::TraceEmitter> txTrace_;
    std::vector<trace::TraceEmitter> rxTrace_;
    /**
     * Time-series registration with the ambient metrics recorder:
     * per-node egress-link utilization and queued-frame backlog.
     */
    metrics::Group metrics_;
    std::uint64_t wireBytes_ = 0;
    std::uint64_t batches_ = 0;
};

} // namespace cereal

#endif // CEREAL_CLUSTER_FABRIC_HH
