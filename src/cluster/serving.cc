#include "cluster/serving.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "cluster/frame.hh"
#include "cluster/worker.hh"
#include "metrics/metrics.hh"
#include "sim/arena.hh"
#include "sim/logging.hh"
#include "trace/request_trace.hh"
#include "trace/trace.hh"

namespace cereal {
namespace cluster {

namespace {

Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(
        std::ceil(s * static_cast<double>(kTicksPerSecond)));
}

/** Admission/flow state of one node's front end. */
struct NodeCtl
{
    /** Admitted requests waiting for the serializer (request idx). */
    std::deque<std::uint32_t> pend;
    /** One serialize job at a time sits in the shared worker FIFO. */
    bool serInWorker = false;
    /** Credit-stalled encoded-but-unsent requests, per destination. */
    std::vector<std::deque<std::uint32_t>> stalled;
    std::uint64_t stalledCount = 0;
    /** Admitted but not yet handed to the fabric. */
    std::uint64_t occupancy = 0;
    /** Admission/credit time series (enabled when observing). */
    metrics::Group metrics;
};

} // namespace

const char *
admissionPolicyName(AdmissionPolicy p)
{
    switch (p) {
      case AdmissionPolicy::None:
        return "none";
      case AdmissionPolicy::Drop:
        return "drop";
      case AdmissionPolicy::ShedByClass:
        return "shed";
      case AdmissionPolicy::RejectEarly:
        return "reject";
    }
    panic("bad admission policy");
}

ServingFrontendResult
runServingFrontend(const ClusterSim &sim, const ServingConfig &cfg)
{
    const ClusterConfig &cc = sim.config();
    const unsigned n = cc.nodes;
    const BackendCostModel &cost = sim.costModel();
    const NodeProfile &prof = cost.profile();

    panic_if(cfg.utilization <= 0, "serving utilization must be > 0");
    panic_if(cfg.requestsPerNode == 0 || cfg.requestsPerNode > 0xffff,
             "requests per node out of range");
    panic_if(cfg.warmupFraction < 0 || cfg.warmupFraction >= 1,
             "warm-up fraction must be in [0, 1)");
    panic_if(cfg.admission.policy != AdmissionPolicy::None &&
                 cfg.admission.queueBound == 0,
             "admission control needs a positive queue bound");
    panic_if(cfg.fixedDst >= static_cast<int>(n),
             "fixed destination out of range");

    const Tick ser = secondsToTicks(cost.serializeSeconds());
    // The receive side deserializes and then computes on the result;
    // zero-copy backends profile the consume leg on their wire views.
    const Tick deser = secondsToTicks(cost.receiveSeconds());
    // Decode share of the receive job; the remainder is consume.
    // ceil is monotone, so deserOnly <= deser always holds.
    const Tick deserOnly = secondsToTicks(cost.deserializeSeconds());
    const double lambda = cfg.utilization * sim.nodeCapacityRps();

    load::LoadGenConfig lg;
    lg.nodes = n;
    lg.lambdaBase = lambda;
    lg.requestsPerNode = cfg.requestsPerNode;
    lg.clientsPerNode = cfg.clientsPerNode;
    lg.shape = cfg.shape;
    lg.seed = cc.seed;
    load::LoadGenerator gen(lg);

    const double horizon = gen.horizonSeconds();
    const double warmup = cfg.warmupFraction * horizon;
    const load::ShapeComponent *flash = cfg.shape.flashComponent();
    const double flashStart = flash ? flash->start * horizon : 0;
    const double flashEnd =
        flash ? (flash->start + flash->duration) * horizon : 0;

    // Sampled mode simulates a prefix of each node's stream (the
    // runServing() convention); the generator's draw is unchanged, so
    // the sampled arrivals coincide with the full run's early ones.
    const std::uint64_t sim_rpn = cc.mode == SimMode::Sampled
        ? (cfg.requestsPerNode + 3) / 4
        : cfg.requestsPerNode;
    const std::uint64_t total = static_cast<std::uint64_t>(n) * sim_rpn;

    EventQueue eq;
    const bool observe = simModeObserves(cc.mode);
    const auto em = observe ? trace::current() : trace::TraceEmitter();
    std::vector<Worker> workers(n);
    std::vector<NodeCtl> ctl(n);
    CreditManager credits(n, cfg.flow);
    for (std::uint32_t i = 0; i < n; ++i) {
        workers[i].eq = &eq;
        ctl[i].stalled.resize(n);
        if (observe) {
            workers[i].initMetrics(i);
            ctl[i].metrics = metrics::Group(
                metrics::current(), "serving.n" + std::to_string(i));
            if (ctl[i].metrics.enabled()) {
                NodeCtl *c = &ctl[i];
                ctl[i].metrics.gauge(
                    "admission_occupancy",
                    "requests admitted but not yet on the wire",
                    [c](Tick) {
                        return static_cast<double>(c->occupancy);
                    });
                ctl[i].metrics.gauge(
                    "stalled_frames",
                    "encoded frames parked awaiting credits",
                    [c](Tick) {
                        return static_cast<double>(c->stalledCount);
                    });
                ctl[i].metrics.gauge(
                    "credits_avail",
                    "send credits available across peers",
                    [&credits, i, n](Tick) {
                        double sum = 0;
                        for (std::uint32_t d = 0; d < n; ++d) {
                            if (d != i) {
                                sum += credits.available(i, d);
                            }
                        }
                        return sum;
                    });
            }
        }
        if (em.enabled()) {
            workers[i].trace =
                em.sub(("node" + std::to_string(i)).c_str());
        }
    }

    // Per-request state, indexed origin * sim_rpn + k.
    std::vector<Tick> arrivalTick(total, 0);
    std::vector<double> arrivalSec(total, 0);
    std::vector<std::uint32_t> reqDst(total, 0);
    std::vector<std::uint8_t> reqCls(total, 0);

    // Request tracing: trace id = idx + 1 (ids are nonzero), with the
    // causal stamps of sampled requests kept per index. The layer is
    // deliberately NOT gated on `observe` — timelines feed the
    // *reported* RequestTraceReport, so they must be byte-identical in
    // fast-forward mode too.
    trace::RequestTraceRecorder reqTrace(cfg.reqTrace);
    const auto traceIdOf = [](std::uint32_t idx) {
        return static_cast<std::uint64_t>(idx) + 1;
    };
    std::vector<Tick> serStartT(total, 0);
    std::vector<Tick> serEndT(total, 0);
    std::vector<Tick> sendT(total, 0);
    std::vector<Tick> deliverT(total, 0);

    ServingFrontendResult out;
    stats::Distribution latency;
    latency.reserve(total);
    Tick last_done = 0;
    Tick last_flash_done = 0;
    sim::BufferPool pool;

    const auto wireId = [sim_rpn](std::uint32_t idx) {
        return static_cast<std::uint32_t>(idx / sim_rpn) * 0x10000u +
               static_cast<std::uint32_t>(idx % sim_rpn);
    };

    // Stamp the frame fields shared by the immediate and unparked send
    // paths; sampled requests carry their trace context on the wire
    // (16 extra bytes — tracing overhead is modeled, not free).
    const auto makeFrame = [&](std::uint32_t src, std::uint32_t dst,
                               std::uint32_t idx) {
        FrameRef f;
        f.format = backendFormatId(cc.backend);
        f.flags = prof.compressed ? kFrameFlagCompressed : 0;
        f.srcNode = src;
        f.dstNode = dst;
        f.partition = wireId(idx);
        if (reqTrace.sampled(traceIdOf(idx))) {
            f.flags |= kFrameFlagTraced;
            f.traceId = traceIdOf(idx);
            f.spanId = reqCls[idx];
        }
        f.payload = prof.payload.data();
        f.payloadLen = prof.payload.size();
        return f;
    };
    const auto reqEm = em.enabled() ? em.sub("requests")
                                    : trace::TraceEmitter();

    Fabric fabric(eq, n, cc.net,
                  [&](std::uint32_t dst, std::vector<std::uint8_t> bytes) {
        auto res = tryDecodeFrameInfo(bytes);
        panic_if(!res.ok(), "fabric delivered a corrupt frame: %s",
                 res.error().what());
        const FrameInfo &info = res.value();
        panic_if(info.checksum != sim.payloadChecksum() ||
                     info.payloadLen != prof.payload.size(),
                 "fabric delivered a corrupt frame (payload digest"
                 " mismatch on request %u)", info.partition);
        const std::uint32_t idx =
            (info.partition >> 16) * static_cast<std::uint32_t>(sim_rpn) +
            (info.partition & 0xffffu);
        const std::uint32_t src = info.srcNode;
        // Context propagation check: a traced frame must carry exactly
        // the trace id its request was assigned at the origin.
        panic_if(info.hasTrace() && info.traceId != traceIdOf(idx),
                 "frame for request %u arrived with foreign trace id"
                 " %llu", idx, (unsigned long long)info.traceId);
        panic_if(info.hasTrace() != reqTrace.sampled(traceIdOf(idx)),
                 "trace sampling decision changed in flight for"
                 " request %u", idx);
        deliverT[idx] = eq.now();
        pool.release(std::move(bytes));
        workers[dst].enqueue(deser, "deser", [&, idx, src, dst] {
            const double arr = arrivalSec[idx];
            if (arr >= warmup) {
                latency.sample(
                    ticksToSeconds(eq.now() - arrivalTick[idx]),
                    traceIdOf(idx));
            }
            ++out.completed;
            reqTrace.countRequest();
            if (reqTrace.sampled(traceIdOf(idx))) {
                trace::RequestTimeline t;
                t.traceId = traceIdOf(idx);
                t.origin = src;
                t.dst = dst;
                t.cls = reqCls[idx];
                t.arrival = arrivalTick[idx];
                t.serStart = serStartT[idx];
                t.serEnd = serEndT[idx];
                t.send = sendT[idx];
                t.deliver = deliverT[idx];
                t.deserStart = eq.now() - deser;
                t.done = eq.now();
                t.deserTicks = deserOnly;
                reqTrace.record(t);
                if (reqEm.enabled()) {
                    Tick seg[trace::kSegmentCount];
                    t.segments(seg);
                    Tick at = t.arrival;
                    for (unsigned s = 0; s < trace::kSegmentCount;
                         ++s) {
                        if (seg[s] > 0) {
                            reqEm.span(trace::segmentName(
                                           static_cast<trace::Segment>(
                                               s)),
                                       at, at + seg[s]);
                        }
                        at += seg[s];
                    }
                }
            }
            last_done = eq.now();
            if (flash && arr >= flashStart && arr < flashEnd) {
                last_flash_done = eq.now();
            }
            if (cfg.flow.enabled) {
                // The frame is consumed: its credit travels back to
                // the sender (one propagation delay).
                eq.scheduleIn(fabric.propagationTicks(), [&, src, dst] {
                    credits.refund(src, dst);
                    NodeCtl &c = ctl[src];
                    auto &q = c.stalled[dst];
                    while (!q.empty() &&
                           credits.tryConsume(src, dst)) {
                        const std::uint32_t sidx = q.front();
                        q.pop_front();
                        --c.stalledCount;
                        --c.occupancy;
                        c.metrics.tick(eq.now());
                        // Unpark: the credit-stall span of sidx ends
                        // here — send > serEnd by exactly the parked
                        // interval.
                        sendT[sidx] = eq.now();
                        auto b = pool.acquire();
                        encodeFrameInto(makeFrame(src, dst, sidx),
                                        sim.payloadChecksum(), b);
                        fabric.send(src, dst, std::move(b));
                    }
                });
            }
        });
        out.maxWorkerQueue = std::max(
            out.maxWorkerQueue,
            static_cast<std::uint64_t>(workers[dst].q.size()));
    });
    fabric.setTrace(em.sub("fabric"));

    // Hand the worker one serialize job at a time, so waiting requests
    // stay in the admission queue where shed-by-class can still reach
    // them (the worker FIFO itself only ever holds work in progress).
    std::function<void(std::uint32_t)> feedWorker =
        [&](std::uint32_t origin) {
        NodeCtl &c = ctl[origin];
        if (c.serInWorker || c.pend.empty()) {
            return;
        }
        c.serInWorker = true;
        const std::uint32_t idx = c.pend.front();
        c.pend.pop_front();
        workers[origin].enqueue(ser, "ser", [&, origin, idx] {
            NodeCtl &cn = ctl[origin];
            cn.serInWorker = false;
            // The worker is non-preemptive: this job's service started
            // exactly `ser` ticks before its completion fires.
            serStartT[idx] = eq.now() - ser;
            serEndT[idx] = eq.now();
            const std::uint32_t dst = reqDst[idx];
            if (credits.tryConsume(origin, dst)) {
                sendT[idx] = eq.now();
                auto bytes = pool.acquire();
                encodeFrameInto(makeFrame(origin, dst, idx),
                                sim.payloadChecksum(), bytes);
                fabric.send(origin, dst, std::move(bytes));
                --cn.occupancy;
            } else {
                cn.stalled[dst].push_back(idx);
                ++cn.stalledCount;
                out.maxStalledFrames =
                    std::max(out.maxStalledFrames, cn.stalledCount);
            }
            cn.metrics.tick(eq.now());
            feedWorker(origin);
        });
        out.maxWorkerQueue = std::max(
            out.maxWorkerQueue,
            static_cast<std::uint64_t>(workers[origin].q.size()));
    };

    // Draw every node's shaped arrival stream and schedule admission.
    eq.reserve(total + 16);
    for (std::uint32_t origin = 0; origin < n; ++origin) {
        const auto arrivals = gen.arrivalsFor(origin);
        for (std::uint64_t k = 0; k < sim_rpn; ++k) {
            const load::Arrival &a = arrivals[k];
            const std::uint32_t idx = static_cast<std::uint32_t>(
                origin * sim_rpn + k);
            arrivalSec[idx] = a.t;
            arrivalTick[idx] = secondsToTicks(a.t);
            reqDst[idx] = (cfg.fixedDst >= 0 &&
                           origin != static_cast<std::uint32_t>(
                                         cfg.fixedDst))
                ? static_cast<std::uint32_t>(cfg.fixedDst)
                : a.dst;
            reqCls[idx] = a.cls;
            eq.schedule(arrivalTick[idx], [&, origin, idx] {
                NodeCtl &c = ctl[origin];
                const AdmissionConfig &adm = cfg.admission;
                bool admit = true;
                switch (adm.policy) {
                  case AdmissionPolicy::None:
                    break;
                  case AdmissionPolicy::Drop:
                    if (c.occupancy >= adm.queueBound) {
                        admit = false;
                        ++out.dropped;
                    }
                    break;
                  case AdmissionPolicy::ShedByClass:
                    if (c.occupancy >= adm.queueBound) {
                        // Evict the newest waiting request of a worse
                        // class; with no worse victim the newcomer is
                        // the lowest-value work and tail-drops.
                        auto victim = c.pend.rend();
                        for (auto it = c.pend.rbegin();
                             it != c.pend.rend(); ++it) {
                            if (reqCls[*it] > reqCls[idx]) {
                                victim = it;
                                break;
                            }
                        }
                        if (victim == c.pend.rend()) {
                            admit = false;
                            ++out.dropped;
                        } else {
                            c.pend.erase(std::next(victim).base());
                            --c.occupancy;
                            ++out.shed;
                        }
                    }
                    break;
                  case AdmissionPolicy::RejectEarly: {
                    const double est_wait =
                        static_cast<double>(c.occupancy) *
                        cost.serializeSeconds();
                    const double budget = adm.rejectBudgetFactor *
                        static_cast<double>(adm.queueBound) *
                        cost.serializeSeconds();
                    if (est_wait > budget) {
                        admit = false;
                        ++out.rejected;
                    }
                    break;
                  }
                }
                if (!admit) {
                    c.metrics.tick(eq.now());
                    return;
                }
                ++out.admitted;
                c.pend.push_back(idx);
                ++c.occupancy;
                out.maxAdmissionOccupancy = std::max(
                    out.maxAdmissionOccupancy, c.occupancy);
                c.metrics.tick(eq.now());
                feedWorker(origin);
            });
        }
    }

    // Warm-up fast path: jump straight to the first arrival instead of
    // stepping through the idle gap before it.
    if (!eq.empty()) {
        eq.fastForward(eq.nextEventTick());
    }

    eq.runAll();

    out.offeredRps = lambda * static_cast<double>(n);
    out.requests = total;
    out.durationSeconds = ticksToSeconds(last_done);
    out.goodputRps = out.durationSeconds > 0
        ? static_cast<double>(out.completed) / out.durationSeconds
        : 0;
    out.dropRate = total > 0
        ? static_cast<double>(total - out.completed) /
              static_cast<double>(total)
        : 0;
    out.latency = LatencySummary::of(latency);
    out.recoverSeconds = flash
        ? std::max(0.0, ticksToSeconds(last_flash_done) - flashEnd)
        : 0;
    out.creditsIssued = credits.issued();
    out.creditsReturned = credits.returned();
    out.creditsConserved = credits.issued() == credits.returned() &&
                           credits.allWindowsFull();
    out.reqTrace = reqTrace.report(latency);
    if (observe && metrics::current() != nullptr) {
        metrics::current()->recordHistogram(
            "serving.latency_seconds",
            "end-to-end request latency, log-bucketed", latency);
    }

    panic_if(out.completed != out.admitted - out.shed,
             "serving front end lost requests (%llu of %llu admitted"
             " finished, %llu shed)",
             (unsigned long long)out.completed,
             (unsigned long long)out.admitted,
             (unsigned long long)out.shed);
    for (const NodeCtl &c : ctl) {
        panic_if(c.occupancy != 0 || c.stalledCount != 0 ||
                     !c.pend.empty(),
                 "serving front end drained with work still queued");
    }
    return out;
}

} // namespace cluster
} // namespace cereal
