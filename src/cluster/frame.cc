#include "cluster/frame.hh"

#include "serde/bytes.hh"
#include "serde/registry.hh"

namespace cereal {

const char *
frameFormatName(std::uint8_t id)
{
    const auto *b = serde::findBackendByFormat(id);
    return b != nullptr ? b->name : "?";
}

std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t n)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::vector<std::uint8_t>
encodeFrame(const Frame &f)
{
    ByteWriter w;
    w.u32(kFrameMagic);
    w.u8(kFrameVersion);
    w.u8(f.format);
    w.u16(f.flags);
    w.u32(f.srcNode);
    w.u32(f.dstNode);
    w.u32(f.partition);
    w.u64(f.payload.size());
    w.u64(fnv1a64(f.payload.data(), f.payload.size()));
    w.raw(f.payload.data(), f.payload.size());
    return w.take();
}

Frame
decodeFrame(const std::vector<std::uint8_t> &bytes)
{
    ByteReader r(bytes);

    const std::uint32_t magic = r.u32();
    decode_check(magic == kFrameMagic, DecodeStatus::BadMagic, 0,
                 "not a partition frame (magic 0x%08x)", magic);

    const std::uint8_t version = r.u8();
    decode_check(version == kFrameVersion, DecodeStatus::BadTag, 4,
                 "unsupported frame version %u", version);

    Frame f;
    f.format = r.u8();
    decode_check(f.format < kFrameFormatCount, DecodeStatus::BadClass, 5,
                 "unknown serializer format id %u", f.format);

    f.flags = r.u16();
    decode_check((f.flags & ~kFrameFlagCompressed) == 0,
                 DecodeStatus::Malformed, 6,
                 "reserved frame flags set (0x%04x)", f.flags);

    f.srcNode = r.u32();
    f.dstNode = r.u32();
    f.partition = r.u32();

    const std::uint64_t payload_len = r.u64();
    const std::size_t checksum_at = r.pos();
    const std::uint64_t checksum = r.u64();

    decode_check(payload_len <= r.remaining(), DecodeStatus::Truncated,
                 r.pos(), "payload declares %llu bytes, %zu remain",
                 (unsigned long long)payload_len, r.remaining());
    decode_check(payload_len == r.remaining(), DecodeStatus::BadLength,
                 r.pos(),
                 "%zu trailing bytes after declared payload",
                 r.remaining() - static_cast<std::size_t>(payload_len));

    f.payload.resize(static_cast<std::size_t>(payload_len));
    r.raw(f.payload.data(), f.payload.size());

    const std::uint64_t computed =
        fnv1a64(f.payload.data(), f.payload.size());
    decode_check(computed == checksum, DecodeStatus::Malformed,
                 checksum_at,
                 "payload checksum mismatch (stored %016llx, computed "
                 "%016llx)",
                 (unsigned long long)checksum,
                 (unsigned long long)computed);
    return f;
}

DecodeResult<Frame>
tryDecodeFrame(const std::vector<std::uint8_t> &bytes)
{
    try {
        return decodeFrame(bytes);
    } catch (const DecodeError &e) {
        return e;
    }
}

} // namespace cereal
