#include "cluster/frame.hh"

#include "serde/bytes.hh"
#include "serde/registry.hh"

namespace cereal {

const char *
frameFormatName(std::uint8_t id)
{
    const auto *b = serde::findBackendByFormat(id);
    return b != nullptr ? b->name : "?";
}

std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t n)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

namespace {

inline void
put16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void
put32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

inline void
put64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

/** Shared header validation; throws DecodeError like decodeFrame(). */
FrameInfo
decodeFrameInfoOrThrow(const std::vector<std::uint8_t> &bytes)
{
    ByteReader r(bytes);

    const std::uint32_t magic = r.u32();
    decode_check(magic == kFrameMagic, DecodeStatus::BadMagic, 0,
                 "not a partition frame (magic 0x%08x)", magic);

    const std::uint8_t version = r.u8();
    decode_check(version == kFrameVersion, DecodeStatus::BadTag, 4,
                 "unsupported frame version %u", version);

    FrameInfo f;
    f.format = r.u8();
    decode_check(f.format < kFrameFormatCount, DecodeStatus::BadClass, 5,
                 "unknown serializer format id %u", f.format);

    f.flags = r.u16();
    decode_check(
        (f.flags & ~(kFrameFlagCompressed | kFrameFlagTraced)) == 0,
        DecodeStatus::Malformed, 6,
        "reserved frame flags set (0x%04x)", f.flags);

    f.srcNode = r.u32();
    f.dstNode = r.u32();
    f.partition = r.u32();

    f.payloadLen = r.u64();
    f.checksum = r.u64();

    std::size_t payloadOff = kFrameHeaderBytes;
    if (f.hasTrace()) {
        f.traceId = r.u64();
        f.spanId = r.u32();
        const std::uint32_t reserved = r.u32();
        decode_check(f.traceId != 0, DecodeStatus::Malformed,
                     kFrameHeaderBytes,
                     "traced frame carries the null trace id");
        decode_check(reserved == 0, DecodeStatus::Malformed,
                     kFrameHeaderBytes + 12,
                     "nonzero reserved word in trace extension (0x%08x)",
                     reserved);
        payloadOff += kFrameTraceExtBytes;
    }

    decode_check(f.payloadLen <= r.remaining(), DecodeStatus::Truncated,
                 r.pos(), "payload declares %llu bytes, %zu remain",
                 (unsigned long long)f.payloadLen, r.remaining());
    decode_check(f.payloadLen == r.remaining(), DecodeStatus::BadLength,
                 r.pos(),
                 "%zu trailing bytes after declared payload",
                 r.remaining() - static_cast<std::size_t>(f.payloadLen));

    f.payload = bytes.data() + payloadOff;
    return f;
}

} // namespace

void
encodeFrameInto(const FrameRef &f, std::uint64_t checksum,
                std::vector<std::uint8_t> &out)
{
    out.clear();
    out.reserve(kFrameHeaderBytes +
                (f.hasTrace() ? kFrameTraceExtBytes : 0) +
                static_cast<std::size_t>(f.payloadLen));
    put32(out, kFrameMagic);
    out.push_back(kFrameVersion);
    out.push_back(f.format);
    put16(out, f.flags);
    put32(out, f.srcNode);
    put32(out, f.dstNode);
    put32(out, f.partition);
    put64(out, f.payloadLen);
    put64(out, checksum);
    if (f.hasTrace()) {
        put64(out, f.traceId);
        put32(out, f.spanId);
        put32(out, 0); // reserved, must be zero
    }
    out.insert(out.end(), f.payload, f.payload + f.payloadLen);
}

std::vector<std::uint8_t>
encodeFrame(const Frame &f)
{
    FrameRef ref;
    ref.format = f.format;
    ref.flags = f.flags;
    ref.srcNode = f.srcNode;
    ref.dstNode = f.dstNode;
    ref.partition = f.partition;
    ref.traceId = f.traceId;
    ref.spanId = f.spanId;
    ref.payload = f.payload.data();
    ref.payloadLen = f.payload.size();
    std::vector<std::uint8_t> out;
    encodeFrameInto(ref, fnv1a64(f.payload.data(), f.payload.size()),
                    out);
    return out;
}

Frame
decodeFrame(const std::vector<std::uint8_t> &bytes)
{
    const FrameInfo info = decodeFrameInfoOrThrow(bytes);

    Frame f;
    f.format = info.format;
    f.flags = info.flags;
    f.srcNode = info.srcNode;
    f.dstNode = info.dstNode;
    f.partition = info.partition;
    f.traceId = info.traceId;
    f.spanId = info.spanId;
    f.payload.assign(info.payload, info.payload + info.payloadLen);

    const std::uint64_t computed =
        fnv1a64(f.payload.data(), f.payload.size());
    decode_check(computed == info.checksum, DecodeStatus::Malformed,
                 kFrameHeaderBytes - 8,
                 "payload checksum mismatch (stored %016llx, computed "
                 "%016llx)",
                 (unsigned long long)info.checksum,
                 (unsigned long long)computed);
    return f;
}

DecodeResult<FrameInfo>
tryDecodeFrameInfo(const std::vector<std::uint8_t> &bytes)
{
    try {
        return decodeFrameInfoOrThrow(bytes);
    } catch (const DecodeError &e) {
        return e;
    }
}

DecodeResult<Frame>
tryDecodeFrame(const std::vector<std::uint8_t> &bytes)
{
    try {
        return decodeFrame(bytes);
    } catch (const DecodeError &e) {
        return e;
    }
}

} // namespace cereal
