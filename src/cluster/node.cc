#include "cluster/node.hh"

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cpu/core_model.hh"
#include "heap/walker.hh"
#include "metrics/metrics.hh"
#include "serde/hps_serde.hh"
#include "serde/registry.hh"
#include "shuffle/shuffle.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"
#include "workloads/harness.hh"
#include "workloads/spark.hh"

namespace cereal {
namespace cluster {

const std::vector<Backend> &
allBackends()
{
    static const std::vector<Backend> kAll = {
        Backend::Java,   Backend::Kryo,      Backend::Skyway,
        Backend::Cereal, Backend::Plaincode, Backend::Hps};
    return kAll;
}

const char *
backendName(Backend b)
{
    // Backend values are the on-wire format ids; the registry owns the
    // name mapping.
    const auto *info = serde::findBackendByFormat(backendFormatId(b));
    panic_if(info == nullptr, "backend %u missing from serde registry",
             unsigned(backendFormatId(b)));
    return info->name;
}

std::uint8_t
backendFormatId(Backend b)
{
    return static_cast<std::uint8_t>(b);
}

namespace {

/** ALU/branch ops the operator spends per object it projects over. */
constexpr std::uint64_t kConsumeOpsPerObject = 6;

/**
 * Time the serving operator's per-request compute on a *materialized*
 * partition: a projection touching every object once. Graph traversal
 * is a chain of dependent loads — the Section III pointer-chasing
 * cost the deserialize phase paid once shows up again on every
 * operator pass.
 */
double
measureConsumeGraph(const std::string &label, Heap &heap, Addr root,
                    const CoreConfig &cc)
{
    EventQueue eq;
    Dram dram("dram.consume", eq);
    CoreModel core(dram, cc);
    core.setTrace(trace::current().sub((label + ".consume").c_str()));
    core.phase("walk");
    GraphWalker(heap).walk(root, [&](Addr a) {
        core.loadDep(a, 8);
        core.compute(kConsumeOpsPerObject);
    });
    return core.finish().seconds;
}

/**
 * Time the same projection on hps zero-copy views: the operator reads
 * packed fields straight out of the validated wire buffer in segment
 * order — independent streaming loads, no pointer chasing and no
 * materialized copy.
 */
double
measureConsumeHpsViews(const std::string &label,
                       const std::vector<std::uint8_t> &stream,
                       const KlassRegistry &reg, const CoreConfig &cc)
{
    HpsSerializer hps;
    HpsImage img = hps.attach(stream, reg);
    EventQueue eq;
    Dram dram("dram.consume", eq);
    CoreModel core(dram, cc);
    core.setTrace(trace::current().sub((label + ".consume").c_str()));
    core.phase("views");
    for (const auto &seg : img.segments()) {
        // One packed field per segment, in place: 16-byte stream
        // header, then the u32 length prefix + u32 type id ahead of
        // the segment body.
        core.load(kStreamBase + 16 + seg.offset + 8, 8);
        core.compute(kConsumeOpsPerObject);
    }
    return core.finish().seconds;
}

/**
 * Measure one partition (the uncached path). Deterministic in the
 * NodeConfig: same inputs always produce byte-identical profiles,
 * which is what makes the cache below sound.
 *
 * All behaviour differences between backends come from the serde
 * registry traits (accelerated / zeroCopy / lzOnWire): this function
 * never names a backend.
 */
NodeProfile
profileNodeUncached(const NodeConfig &cfg)
{
    KlassRegistry reg;
    workloads::SparkWorkloads apps(reg);
    Heap heap(reg);
    Addr root = apps.build(heap, cfg.app, cfg.scale, cfg.seed);

    const char *name = backendName(cfg.backend);
    const auto *info = serde::findBackend(name);
    panic_if(info == nullptr, "backend '%s' missing from registry", name);

    ShuffleStage stage;
    NodeProfile out;
    auto ser = serde::makeSerializer(name, &reg);

    CoreConfig cc;
    cc.mode = cfg.mode;

    workloads::SdMeasurement m;
    if (info->accelerated) {
        AccelConfig ac;
        ac.mode = cfg.mode;
        m = workloads::measureCereal(heap, root, ac);
    } else {
        m = workloads::measureSoftware(*ser, heap, root, cc);
    }
    out.streamBytes = m.streamBytes;
    out.objects = m.objects;

    // The functional serializer produces the real wire bytes in every
    // case (for the accelerated backend they are the packed bytes the
    // device writes).
    auto stream = ser->serialize(heap, root);

    if (info->lzOnWire) {
        auto write = stage.softwareWrite(stream);
        auto read = stage.softwareRead(stream);
        out.payload = stage.codec().compress(stream);
        out.compressed = true;
        out.serSeconds = m.serSeconds + write.seconds;
        out.deserSeconds = read.seconds + m.deserSeconds;
    } else {
        // Packed formats travel verbatim (the packing already plays
        // the codec's role; for zero-copy views a decompress would
        // force the copy the format avoids). The bytes still move
        // between serializer buffer and shuffle file/wire — the bulk
        // handoff.
        out.payload = stream;
        out.compressed = false;
        auto handoff = stage.cerealHandoff(stream.size());
        out.serSeconds = m.serSeconds + handoff.seconds;
        out.deserSeconds = handoff.seconds + m.deserSeconds;
    }

    if (info->zeroCopy) {
        // The operator reads packed fields straight out of the
        // validated wire buffer — no materialized graph to walk.
        out.consumeSeconds = measureConsumeHpsViews(name, stream, reg, cc);
    } else {
        // Materializing backends (software or accelerated) hand the
        // operator a heap graph; it pays the host-CPU pointer chase.
        Heap dst(reg, 0x9'0000'0000ULL);
        Addr nr = ser->deserialize(stream, dst);
        out.consumeSeconds = measureConsumeGraph(name, dst, nr, cc);
    }
    return out;
}

} // namespace

NodeProfile
profileNode(const NodeConfig &cfg)
{
    // Profiling narrates its memory traffic into the *ambient*
    // trace/metrics sinks; serving a cached profile would silently drop
    // those emissions and break the byte-identical determinism gates
    // that run with --trace/--metrics. Observing runs always measure.
    if (trace::current().enabled() || metrics::current() != nullptr) {
        return profileNodeUncached(cfg);
    }

    // Sweep warm-up measures under FastForward by default: the
    // cycle-vs-fast equivalence contract (test_sim_speed pins it at
    // the measureSoftware/measureCereal level) makes the profiles
    // byte-identical, so a cycle-accurate caller loses nothing and the
    // cycle/fast cache entries collapse into one. Sampled keeps its
    // own key: the differential suite compares it against full runs.
    NodeConfig eff = cfg;
    if (eff.mode == SimMode::CycleAccurate) {
        eff.mode = SimMode::FastForward;
    }

    // The measurement is a pure function of the config, so identical
    // sweep points (a shuffle point and three serving points share one
    // backend config in bench_cluster_shuffle) reuse one measurement.
    // Keyed per mode: the differential suite must compare profiles
    // measured under each mode, not one cached under another.
    std::string key = eff.app;
    key += '|';
    key += std::to_string(backendFormatId(eff.backend));
    key += '|';
    key += std::to_string(eff.scale);
    key += '|';
    key += std::to_string(eff.seed);
    key += '|';
    key += simModeName(eff.mode);

    static std::mutex mu;
    static std::unordered_map<std::string, NodeProfile> cache;

    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = cache.find(key);
        if (it != cache.end()) {
            return it->second;
        }
    }
    NodeProfile fresh = profileNodeUncached(eff);
    {
        std::lock_guard<std::mutex> lock(mu);
        cache.emplace(key, fresh);
    }
    return fresh;
}

} // namespace cluster
} // namespace cereal
