#include "cluster/node.hh"

#include <memory>

#include "cereal/cereal_serializer.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "serde/skyway_serde.hh"
#include "shuffle/shuffle.hh"
#include "sim/logging.hh"
#include "workloads/harness.hh"
#include "workloads/spark.hh"

namespace cereal {
namespace cluster {

const std::vector<Backend> &
allBackends()
{
    static const std::vector<Backend> kAll = {
        Backend::Java, Backend::Kryo, Backend::Skyway, Backend::Cereal};
    return kAll;
}

const char *
backendName(Backend b)
{
    switch (b) {
      case Backend::Java: return "java";
      case Backend::Kryo: return "kryo";
      case Backend::Skyway: return "skyway";
      case Backend::Cereal: return "cereal";
    }
    return "?";
}

std::uint8_t
backendFormatId(Backend b)
{
    return static_cast<std::uint8_t>(b);
}

NodeProfile
profileNode(const NodeConfig &cfg)
{
    KlassRegistry reg;
    workloads::SparkWorkloads apps(reg);
    Heap heap(reg);
    Addr root = apps.build(heap, cfg.app, cfg.scale, cfg.seed);

    ShuffleStage stage;
    NodeProfile out;

    if (cfg.backend == Backend::Cereal) {
        auto m = workloads::measureCereal(heap, root);
        // The functional serializer produces the packed bytes the
        // accelerator writes; they travel uncompressed (the packed
        // format already plays the codec's role).
        CerealSerializer ser;
        ser.registerAll(reg);
        out.payload = ser.serialize(heap, root);
        out.compressed = false;
        auto handoff = stage.cerealHandoff(out.payload.size());
        out.serSeconds = m.serSeconds + handoff.seconds;
        out.deserSeconds = handoff.seconds + m.deserSeconds;
        out.streamBytes = m.streamBytes;
        out.objects = m.objects;
        return out;
    }

    std::unique_ptr<Serializer> ser;
    switch (cfg.backend) {
      case Backend::Java:
        ser = std::make_unique<JavaSerializer>();
        break;
      case Backend::Kryo: {
        auto kryo = std::make_unique<KryoSerializer>();
        kryo->registerAll(reg);
        ser = std::move(kryo);
        break;
      }
      case Backend::Skyway:
        ser = std::make_unique<SkywaySerializer>();
        break;
      default:
        panic("unhandled backend");
    }

    auto m = workloads::measureSoftware(*ser, heap, root);
    auto stream = ser->serialize(heap, root);
    auto write = stage.softwareWrite(stream);
    auto read = stage.softwareRead(stream);
    out.payload = stage.codec().compress(stream);
    out.compressed = true;
    out.serSeconds = m.serSeconds + write.seconds;
    out.deserSeconds = read.seconds + m.deserSeconds;
    out.streamBytes = m.streamBytes;
    out.objects = m.objects;
    return out;
}

} // namespace cluster
} // namespace cereal
