#include "cluster/node.hh"

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "metrics/metrics.hh"
#include "serde/registry.hh"
#include "shuffle/shuffle.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"
#include "workloads/harness.hh"
#include "workloads/spark.hh"

namespace cereal {
namespace cluster {

const std::vector<Backend> &
allBackends()
{
    static const std::vector<Backend> kAll = {
        Backend::Java,   Backend::Kryo,      Backend::Skyway,
        Backend::Cereal, Backend::Plaincode, Backend::Hps};
    return kAll;
}

const char *
backendName(Backend b)
{
    // Backend values are the on-wire format ids; the registry owns the
    // name mapping.
    const auto *info = serde::findBackendByFormat(backendFormatId(b));
    panic_if(info == nullptr, "backend %u missing from serde registry",
             unsigned(backendFormatId(b)));
    return info->name;
}

std::uint8_t
backendFormatId(Backend b)
{
    return static_cast<std::uint8_t>(b);
}

namespace {

/**
 * Measure one partition (the uncached path). Deterministic in the
 * NodeConfig: same inputs always produce byte-identical profiles,
 * which is what makes the cache below sound.
 */
NodeProfile
profileNodeUncached(const NodeConfig &cfg)
{
    KlassRegistry reg;
    workloads::SparkWorkloads apps(reg);
    Heap heap(reg);
    Addr root = apps.build(heap, cfg.app, cfg.scale, cfg.seed);

    ShuffleStage stage;
    NodeProfile out;

    if (cfg.backend == Backend::Cereal) {
        AccelConfig ac;
        ac.mode = cfg.mode;
        auto m = workloads::measureCereal(heap, root, ac);
        // The functional serializer produces the packed bytes the
        // accelerator writes; they travel uncompressed (the packed
        // format already plays the codec's role).
        auto ser = serde::makeSerializer(backendName(cfg.backend), &reg);
        out.payload = ser->serialize(heap, root);
        out.compressed = false;
        auto handoff = stage.cerealHandoff(out.payload.size());
        out.serSeconds = m.serSeconds + handoff.seconds;
        out.deserSeconds = handoff.seconds + m.deserSeconds;
        out.streamBytes = m.streamBytes;
        out.objects = m.objects;
        return out;
    }

    auto ser = serde::makeSerializer(backendName(cfg.backend), &reg);

    CoreConfig cc;
    cc.mode = cfg.mode;
    auto m = workloads::measureSoftware(*ser, heap, root, cc);
    auto stream = ser->serialize(heap, root);
    if (cfg.backend == Backend::Hps) {
        // Zero-copy payloads travel verbatim: the receiver reads views
        // into the wire buffer, so the LZ codec (which would force a
        // decompress-into-a-copy) is skipped on both sides. The bytes
        // still have to move between serializer buffer and shuffle
        // file/wire — the same bulk handoff the Cereal driver pays.
        out.payload = stream;
        out.compressed = false;
        auto handoff = stage.cerealHandoff(stream.size());
        out.serSeconds = m.serSeconds + handoff.seconds;
        out.deserSeconds = handoff.seconds + m.deserSeconds;
        out.streamBytes = m.streamBytes;
        out.objects = m.objects;
        return out;
    }
    auto write = stage.softwareWrite(stream);
    auto read = stage.softwareRead(stream);
    out.payload = stage.codec().compress(stream);
    out.compressed = true;
    out.serSeconds = m.serSeconds + write.seconds;
    out.deserSeconds = read.seconds + m.deserSeconds;
    out.streamBytes = m.streamBytes;
    out.objects = m.objects;
    return out;
}

} // namespace

NodeProfile
profileNode(const NodeConfig &cfg)
{
    // Profiling narrates its memory traffic into the *ambient*
    // trace/metrics sinks; serving a cached profile would silently drop
    // those emissions and break the byte-identical determinism gates
    // that run with --trace/--metrics. Observing runs always measure.
    if (trace::current().enabled() || metrics::current() != nullptr) {
        return profileNodeUncached(cfg);
    }

    // The measurement is a pure function of the config, so identical
    // sweep points (a shuffle point and three serving points share one
    // backend config in bench_cluster_shuffle) reuse one measurement.
    // Keyed per mode: the differential suite must compare profiles
    // measured under each mode, not one cached under another.
    std::string key = cfg.app;
    key += '|';
    key += std::to_string(backendFormatId(cfg.backend));
    key += '|';
    key += std::to_string(cfg.scale);
    key += '|';
    key += std::to_string(cfg.seed);
    key += '|';
    key += simModeName(cfg.mode);

    static std::mutex mu;
    static std::unordered_map<std::string, NodeProfile> cache;

    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = cache.find(key);
        if (it != cache.end()) {
            return it->second;
        }
    }
    NodeProfile fresh = profileNodeUncached(cfg);
    {
        std::lock_guard<std::mutex> lock(mu);
        cache.emplace(key, fresh);
    }
    return fresh;
}

} // namespace cluster
} // namespace cereal
