#include "cluster/node.hh"

#include <memory>

#include "serde/registry.hh"
#include "shuffle/shuffle.hh"
#include "sim/logging.hh"
#include "workloads/harness.hh"
#include "workloads/spark.hh"

namespace cereal {
namespace cluster {

const std::vector<Backend> &
allBackends()
{
    static const std::vector<Backend> kAll = {
        Backend::Java, Backend::Kryo, Backend::Skyway, Backend::Cereal};
    return kAll;
}

const char *
backendName(Backend b)
{
    // Backend values are the on-wire format ids; the registry owns the
    // name mapping.
    const auto *info = serde::findBackendByFormat(backendFormatId(b));
    panic_if(info == nullptr, "backend %u missing from serde registry",
             unsigned(backendFormatId(b)));
    return info->name;
}

std::uint8_t
backendFormatId(Backend b)
{
    return static_cast<std::uint8_t>(b);
}

NodeProfile
profileNode(const NodeConfig &cfg)
{
    KlassRegistry reg;
    workloads::SparkWorkloads apps(reg);
    Heap heap(reg);
    Addr root = apps.build(heap, cfg.app, cfg.scale, cfg.seed);

    ShuffleStage stage;
    NodeProfile out;

    if (cfg.backend == Backend::Cereal) {
        auto m = workloads::measureCereal(heap, root);
        // The functional serializer produces the packed bytes the
        // accelerator writes; they travel uncompressed (the packed
        // format already plays the codec's role).
        auto ser = serde::makeSerializer(backendName(cfg.backend), &reg);
        out.payload = ser->serialize(heap, root);
        out.compressed = false;
        auto handoff = stage.cerealHandoff(out.payload.size());
        out.serSeconds = m.serSeconds + handoff.seconds;
        out.deserSeconds = handoff.seconds + m.deserSeconds;
        out.streamBytes = m.streamBytes;
        out.objects = m.objects;
        return out;
    }

    auto ser = serde::makeSerializer(backendName(cfg.backend), &reg);

    auto m = workloads::measureSoftware(*ser, heap, root);
    auto stream = ser->serialize(heap, root);
    auto write = stage.softwareWrite(stream);
    auto read = stage.softwareRead(stream);
    out.payload = stage.codec().compress(stream);
    out.compressed = true;
    out.serSeconds = m.serSeconds + write.seconds;
    out.deserSeconds = read.seconds + m.deserSeconds;
    out.streamBytes = m.streamBytes;
    out.objects = m.objects;
    return out;
}

} // namespace cluster
} // namespace cereal
