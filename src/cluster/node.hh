/**
 * @file
 * Per-node serializer profiling for the cluster simulator.
 *
 * A cluster node's compute cost is measured, not assumed: one
 * representative shuffle partition is built with the Spark workload
 * generators and pushed through the existing single-executor timing
 * models — the CPU core model for the software serializers (java,
 * kryo, skyway, plaincode, hps) plus the LZ shuffle codec, or the
 * Cereal accelerator device model plus the bulk-handoff path. The
 * hps payload skips the codec: compressing it would destroy the
 * in-place view property the format exists for. The resulting
 * per-partition
 * service times and actual wire payload feed the event-driven cluster
 * simulation, which replays them under queueing and network
 * contention.
 */

#ifndef CEREAL_CLUSTER_NODE_HH
#define CEREAL_CLUSTER_NODE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sim_mode.hh"

namespace cereal {
namespace cluster {

/** Serializer stack a node runs (values are the wire format ids). */
enum class Backend { Java, Kryo, Skyway, Cereal, Plaincode, Hps };

/** All backends in frame-format-id order. */
const std::vector<Backend> &allBackends();

/** "java" / "kryo" / "skyway" / "cereal" / "plaincode" / "hps". */
const char *backendName(Backend b);

/** Wire format id stored in partition frames (matches frame.hh). */
std::uint8_t backendFormatId(Backend b);

/** What one node's serializer stack costs per shuffle partition. */
struct NodeProfile
{
    /** Serialize + shuffle-write seconds per partition. */
    double serSeconds = 0;
    /** Shuffle-read + deserialize seconds per partition. */
    double deserSeconds = 0;
    /**
     * Operator compute on the received partition, seconds: a
     * projection that touches every object once. Materializing
     * backends pay a dependent-load graph walk; hps reads its
     * zero-copy views straight out of the wire buffer (streaming
     * loads over the validated segment table).
     */
    double consumeSeconds = 0;
    /** Serialized stream size before the shuffle codec, bytes. */
    std::uint64_t streamBytes = 0;
    /** Objects per partition graph. */
    std::uint64_t objects = 0;
    /** Bytes that go on the wire inside one frame. */
    std::vector<std::uint8_t> payload;
    /** True when payload went through the LZ shuffle codec. */
    bool compressed = false;
};

/** Workload/backend selection for profileNode(). */
struct NodeConfig
{
    Backend backend = Backend::Java;
    /** Spark application supplying the partition graph (Table III). */
    std::string app = "Terasort";
    /** Scale divisor for the per-partition object count. */
    std::uint64_t scale = 64;
    std::uint64_t seed = 1;
    /** Fidelity mode forwarded into the timing models. */
    SimMode mode = globalSimMode();
};

/**
 * Measure one partition's serializer + shuffle costs under
 * @p cfg.backend. Builds a private registry/heap/timing context, so
 * concurrent sweep points stay independent.
 */
NodeProfile profileNode(const NodeConfig &cfg);

} // namespace cluster
} // namespace cereal

#endif // CEREAL_CLUSTER_NODE_HH
