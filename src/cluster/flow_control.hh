/**
 * @file
 * Credit-based flow control for the cluster fabric (thrill-style).
 *
 * Each (source, destination) pair owns a fixed window of credits. A
 * sender consumes one credit per frame it hands to the fabric; the
 * credit travels back (one propagation delay) only after the receiver
 * has *consumed* the frame — deserialized it and handed it to the
 * operator — not merely received it. A sender out of credits parks
 * frames in a per-destination stall buffer instead of loading the
 * fabric.
 *
 * The effect is the classic bounded-buffer guarantee: a receiver can
 * have at most (nodes - 1) * window frames outstanding against it, so
 * ingress incast degrades into sender-side stalls (visible to
 * admission control as occupancy) instead of unbounded receiver
 * queues.
 *
 * Conservation is a checked invariant: every credit consumed is
 * eventually refunded, and the manager can audit that all windows are
 * full again once traffic drains.
 */

#ifndef CEREAL_CLUSTER_FLOW_CONTROL_HH
#define CEREAL_CLUSTER_FLOW_CONTROL_HH

#include <cstdint>
#include <vector>

namespace cereal {
namespace cluster {

/** Flow-control parameters (uniform across node pairs). */
struct FlowControlConfig
{
    /** False = open loop: senders never stall, receivers queue. */
    bool enabled = true;
    /** Credits per (src, dst) pair: frames in flight toward one peer. */
    unsigned window = 4;
};

/** Per-pair credit windows plus conservation accounting. */
class CreditManager
{
  public:
    CreditManager(unsigned nodes, FlowControlConfig cfg);

    const FlowControlConfig &config() const { return cfg_; }

    /** Credits currently available from @p src toward @p dst. */
    unsigned available(std::uint32_t src, std::uint32_t dst) const;

    /**
     * Consume one credit for a frame src -> dst.
     * @return false when the window is exhausted (caller must stall);
     *         always true when flow control is disabled.
     */
    bool tryConsume(std::uint32_t src, std::uint32_t dst);

    /** Return one credit to @p src's window toward @p dst. */
    void refund(std::uint32_t src, std::uint32_t dst);

    /** Credits consumed so far (0 when disabled). */
    std::uint64_t issued() const { return issued_; }

    /** Credits refunded so far (0 when disabled). */
    std::uint64_t returned() const { return returned_; }

    /**
     * True when every window is back at its configured size — i.e.
     * traffic has drained and credit conservation held.
     */
    bool allWindowsFull() const;

  private:
    std::size_t index(std::uint32_t src, std::uint32_t dst) const;

    FlowControlConfig cfg_;
    unsigned nodes_;
    /** available_[src * nodes + dst]; diagonal entries unused. */
    std::vector<unsigned> available_;
    std::uint64_t issued_ = 0;
    std::uint64_t returned_ = 0;
};

} // namespace cluster
} // namespace cereal

#endif // CEREAL_CLUSTER_FLOW_CONTROL_HH
