/**
 * @file
 * The per-node serializer worker shared by the cluster drive modes.
 *
 * One node owns one worker: a single server draining a FIFO of jobs
 * (serialize or deserialize — both contend for the same CPU or
 * accelerator) at the profiled per-partition cost. runShuffle() and
 * runServing() feed it directly; the serving front-end (serving.hh)
 * puts an admission queue in front of it.
 */

#ifndef CEREAL_CLUSTER_WORKER_HH
#define CEREAL_CLUSTER_WORKER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "metrics/metrics.hh"
#include "sim/event_queue.hh"
#include "trace/trace.hh"

namespace cereal {
namespace cluster {

/** One node's serializer worker: a single FIFO server. */
struct Worker
{
    struct Job
    {
        Tick service;
        /** Span label ("ser"/"deser"); must be a string literal. */
        const char *label;
        /** Small-buffer callable: no heap allocation per job. */
        EventQueue::Callback done;
    };

    EventQueue *eq = nullptr;
    /** This worker's trace track (disabled when tracing is off). */
    trace::TraceEmitter trace;
    /** This worker's queue-length time series. */
    metrics::Group metrics;
    std::deque<Job> q;
    bool busy = false;

    void
    initMetrics(std::uint32_t node)
    {
        metrics = metrics::Group(metrics::current(),
                                 "cluster.n" + std::to_string(node));
        if (metrics.enabled()) {
            metrics.gauge("queue_len",
                          "jobs waiting at this node's worker",
                          [this](Tick) {
                              return static_cast<double>(q.size());
                          });
        }
    }

    void
    enqueue(Tick service, const char *label, EventQueue::Callback done)
    {
        q.push_back({service, label, std::move(done)});
        trace.counter("queue", eq->now(),
                      static_cast<double>(q.size()));
        metrics.tick(eq->now());
        if (!busy) {
            startNext();
        }
    }

    void
    startNext()
    {
        if (q.empty()) {
            busy = false;
            return;
        }
        busy = true;
        // The in-service job parks in `cur` rather than riding inside
        // the scheduled closure: the completion event then captures
        // only {this, start} and stays within the EventCallback inline
        // buffer. Safe because a worker serves one job at a time
        // (busy stays true until this event fires).
        cur = std::move(q.front());
        q.pop_front();
        trace.counter("queue", eq->now(),
                      static_cast<double>(q.size()));
        metrics.tick(eq->now());
        const Tick start = eq->now();
        eq->scheduleIn(cur.service, [this, start] {
            trace.span(cur.label, start, eq->now());
            EventQueue::Callback done = std::move(cur.done);
            done();
            startNext();
        });
    }

    /** The job currently in service (valid while busy). */
    Job cur{};
};

} // namespace cluster
} // namespace cereal

#endif // CEREAL_CLUSTER_WORKER_HH
