#include "runner/sweep_runner.hh"

#include <fstream>
#include <iostream>
#include <sstream>

#include "runner/thread_pool.hh"
#include "sim/logging.hh"

namespace cereal {
namespace runner {

namespace {

/** Depth of a point fragment inside the final document. */
constexpr std::size_t kPointDepth = 2;

} // namespace

void
SweepRunner::run(unsigned threads)
{
    panic_if(ran_, "SweepRunner::run() called twice");
    ran_ = true;
    pointJson_.resize(points_.size());
    if (traceEnabled_) {
        pointTrace_.resize(points_.size());
    }
    if (metricsEnabled_) {
        pointMetrics_.resize(points_.size());
    }

    auto run_point = [this](std::size_t i) {
        std::unique_ptr<trace::ScopedTrace> scope;
        if (traceEnabled_) {
            pointTrace_[i] = std::make_unique<trace::ChromeTraceSink>();
            scope = std::make_unique<trace::ScopedTrace>(*pointTrace_[i]);
        }
        std::unique_ptr<metrics::ScopedMetrics> mscope;
        if (metricsEnabled_) {
            pointMetrics_[i] = std::make_unique<metrics::MetricsRecorder>(
                metricsInterval_ ? metricsInterval_
                                 : metrics::MetricsRecorder::kDefaultInterval);
            mscope =
                std::make_unique<metrics::ScopedMetrics>(*pointMetrics_[i]);
        }
        std::ostringstream ss;
        json::Writer w(ss, 2, kPointDepth);
        w.beginObject();
        w.kv("name", points_[i].name);
        points_[i].fn(w);
        if (metricsEnabled_) {
            pointMetrics_[i]->writeJson(w);
        }
        w.endObject();
        panic_if(!w.balanced(),
                 "sweep point '%s' left the JSON writer unbalanced",
                 points_[i].name.c_str());
        pointJson_[i] = ss.str();
    };

    if (threads <= 1 || points_.size() <= 1) {
        for (std::size_t i = 0; i < points_.size(); ++i) {
            run_point(i);
        }
        return;
    }

    ThreadPool pool(threads);
    for (std::size_t i = 0; i < points_.size(); ++i) {
        pool.submit([&run_point, i] { run_point(i); });
    }
    pool.wait();
}

const std::string &
SweepRunner::pointJson(std::size_t i) const
{
    panic_if(!ran_, "pointJson() before run()");
    panic_if(i >= pointJson_.size(), "pointJson(%zu): only %zu points",
             i, pointJson_.size());
    return pointJson_[i];
}

void
SweepRunner::writeJson(std::ostream &os,
                       const std::vector<ConfigKv> &config) const
{
    panic_if(!ran_, "writeJson() before run()");
    json::Writer w(os, 2);
    w.beginObject();
    w.kv("schema", "cereal-bench-v1");
    w.kv("bench", benchName_);
    w.key("config");
    w.beginObject();
    for (const auto &kv : config) {
        w.kv(kv.key, kv.value);
    }
    w.endObject();
    w.key("points");
    w.beginArray();
    for (const auto &frag : pointJson_) {
        w.raw(frag);
    }
    w.endArray();
    if (summary_) {
        w.key("summary");
        w.beginObject();
        summary_(w);
        w.endObject();
    }
    w.endObject();
    panic_if(!w.balanced(), "summary writer left document unbalanced");
    os << "\n";
}

const trace::ChromeTraceSink &
SweepRunner::pointTrace(std::size_t i) const
{
    panic_if(!ran_ || !traceEnabled_,
             "pointTrace() needs enableTrace() before run()");
    panic_if(i >= pointTrace_.size(), "pointTrace(%zu): only %zu points",
             i, pointTrace_.size());
    return *pointTrace_[i];
}

std::vector<trace::TracePoint>
SweepRunner::tracePoints() const
{
    panic_if(!ran_ || !traceEnabled_,
             "trace output needs enableTrace() before run()");
    std::vector<trace::TracePoint> pts;
    pts.reserve(points_.size());
    for (std::size_t i = 0; i < points_.size(); ++i) {
        pts.push_back({points_[i].name, pointTrace_[i].get()});
    }
    return pts;
}

void
SweepRunner::writeTrace(std::ostream &os) const
{
    trace::writeChromeTrace(os, tracePoints());
}

std::string
SweepRunner::writeTraceFile(const std::string &path) const
{
    if (path.empty()) {
        return "";
    }
    if (path == "-") {
        writeTrace(std::cout);
        return path;
    }
    std::ofstream os(path, std::ios::binary);
    fatal_if(!os, "cannot open %s for writing", path.c_str());
    writeTrace(os);
    os.flush();
    fatal_if(!os, "write to %s failed", path.c_str());
    return path;
}

void
SweepRunner::writeTraceSummary(std::ostream &os) const
{
    trace::writeSelfTimeSummary(os, tracePoints());
}

void
SweepRunner::enableMetrics(Tick interval)
{
    panic_if(ran_, "enableMetrics() after run()");
    metricsEnabled_ = true;
    metricsInterval_ = interval;
}

const metrics::MetricsRecorder &
SweepRunner::pointMetrics(std::size_t i) const
{
    panic_if(!ran_ || !metricsEnabled_,
             "pointMetrics() needs enableMetrics() before run()");
    panic_if(i >= pointMetrics_.size(),
             "pointMetrics(%zu): only %zu points", i,
             pointMetrics_.size());
    return *pointMetrics_[i];
}

std::vector<metrics::MetricsPoint>
SweepRunner::metricsPoints() const
{
    panic_if(!ran_ || !metricsEnabled_,
             "metrics output needs enableMetrics() before run()");
    std::vector<metrics::MetricsPoint> pts;
    pts.reserve(points_.size());
    for (std::size_t i = 0; i < points_.size(); ++i) {
        pts.push_back({points_[i].name, pointMetrics_[i].get()});
    }
    return pts;
}

void
SweepRunner::writeMetricsCsv(std::ostream &os) const
{
    metrics::writeCsv(os, metricsPoints());
}

void
SweepRunner::writeMetricsProm(std::ostream &os) const
{
    metrics::writeProm(os, metricsPoints());
}

std::string
SweepRunner::writeMetricsFile(const std::string &path) const
{
    if (path.empty()) {
        return "";
    }
    const bool csv = path.size() >= 4 &&
                     path.compare(path.size() - 4, 4, ".csv") == 0;
    if (path == "-") {
        writeMetricsProm(std::cout);
        return path;
    }
    std::ofstream os(path, std::ios::binary);
    fatal_if(!os, "cannot open %s for writing", path.c_str());
    if (csv) {
        writeMetricsCsv(os);
    } else {
        writeMetricsProm(os);
    }
    os.flush();
    fatal_if(!os, "write to %s failed", path.c_str());
    return path;
}

std::string
SweepRunner::writeJsonFile(const std::string &path,
                           const std::vector<ConfigKv> &config) const
{
    if (path.empty()) {
        return "";
    }
    if (path == "-") {
        writeJson(std::cout, config);
        return path;
    }
    std::ofstream os(path, std::ios::binary);
    fatal_if(!os, "cannot open %s for writing", path.c_str());
    writeJson(os, config);
    os.flush();
    fatal_if(!os, "write to %s failed", path.c_str());
    return path;
}

} // namespace runner
} // namespace cereal
