/**
 * @file
 * Benchmark baseline comparison engine (the perf-regression gate).
 *
 * Compares a freshly produced `BENCH_<name>.json` document against a
 * committed baseline from tests/baselines/. The policy:
 *
 *  - "schema" and "bench" must match exactly — different schema or
 *    bench means the comparison is meaningless, not a drift.
 *  - Every "config" member must match exactly: a config difference is
 *    a different experiment, and comparing it as a drift would hide
 *    that.
 *  - Points are matched by their "name" member (order-insensitive),
 *    and every numeric leaf inside a point is flattened to a dotted
 *    path ("points.tree-narrow.cereal_speedup") and compared with a
 *    relative tolerance. Missing or extra points/leaves fail.
 *  - The "summary" object is flattened and compared the same way.
 *  - Embedded "metrics" subtrees are excluded: time-series samples are
 *    compared byte-exactly by the determinism tests, not with
 *    tolerances (and baselines are recorded without --metrics).
 *
 * Tolerances: a default relative tolerance plus per-metric overrides
 * matched by substring against the dotted path; the longest matching
 * override wins. The relative difference is |fresh - base| divided by
 * max(|base|, 1e-12), so a baseline of exactly 0 requires an exact 0.
 *
 * The engine is pure (strings in, verdict out) so tests can drive it
 * without touching the filesystem; tools/bench_compare is the thin CLI
 * over it.
 */

#ifndef CEREAL_RUNNER_BASELINE_HH
#define CEREAL_RUNNER_BASELINE_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace cereal {
namespace runner {

/** Relative-tolerance policy for compareBenchJson(). */
struct Tolerance
{
    /** Applied to every numeric leaf without a matching override. */
    double defaultRel = 0.05;
    /**
     * (path substring, relative tolerance) overrides. The longest
     * substring that occurs in a leaf's dotted path wins.
     */
    std::vector<std::pair<std::string, double>> overrides;
    /**
     * (path substring, minimum ratio) one-sided floors. A leaf whose
     * dotted path contains the substring (longest match wins) is held
     * to `fresh >= ratio * baseline` *instead of* the symmetric
     * relative tolerance: any improvement passes, and a drop only
     * fails once it crosses the ratio. This is how wall-clock metrics
     * (sim-ticks/sec and friends) are gated — they jitter too much for
     * a 5% band, but a 2x collapse (ratio 0.5) is a real regression.
     * Meaningful for positive throughput-like baselines.
     */
    std::vector<std::pair<std::string, double>> floors;

    /** Tolerance in effect for the leaf at @p path. */
    double relFor(const std::string &path) const;

    /** Floor ratio for the leaf at @p path, or 0 when none applies. */
    double floorFor(const std::string &path) const;
};

/** One comparison failure. */
struct Finding
{
    /** Dotted path of the offending leaf ("" for document issues). */
    std::string path;
    /** Human-readable description of the failure. */
    std::string message;
};

/** Verdict of one document comparison. */
struct CompareResult
{
    /** True when every check passed. */
    bool pass = false;
    /** Set when a document failed to parse or had the wrong shape. */
    std::string error;
    /** Individual failures (empty on pass). */
    std::vector<Finding> findings;
    /** Numeric leaves compared. */
    std::size_t comparedLeaves = 0;

    /** Multi-line report (one line per finding; "OK ..." on pass). */
    std::string report() const;
};

/**
 * Compare fresh bench output @p fresh_text against @p baseline_text
 * (both full `BENCH_*.json` documents) under @p tol.
 */
CompareResult compareBenchJson(const std::string &fresh_text,
                               const std::string &baseline_text,
                               const Tolerance &tol = Tolerance());

} // namespace runner
} // namespace cereal

#endif // CEREAL_RUNNER_BASELINE_HH
