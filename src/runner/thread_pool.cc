#include "runner/thread_pool.hh"

#include "sim/logging.hh"

namespace cereal {
namespace runner {

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0) {
        num_threads = hardwareThreads();
    }
    queues_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i) {
        queues_.push_back(std::make_unique<WorkQueue>());
    }
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this, i] { workerLoop(i); });
    }
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lk(sleepMutex_);
        stop_.store(true);
    }
    sleepCv_.notify_all();
    for (auto &t : workers_) {
        t.join();
    }
}

void
ThreadPool::submit(Task task)
{
    panic_if(stop_.load(), "submit() on a stopped ThreadPool");
    inflight_.fetch_add(1);
    unsigned q = nextQueue_.fetch_add(1) % queues_.size();
    {
        std::lock_guard<std::mutex> lk(queues_[q]->mutex);
        queues_[q]->tasks.push_back(std::move(task));
    }
    sleepCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(sleepMutex_);
    idleCv_.wait(lk, [this] { return inflight_.load() == 0; });
}

bool
ThreadPool::tryPop(unsigned self, Task &out)
{
    auto &q = *queues_[self];
    std::lock_guard<std::mutex> lk(q.mutex);
    if (q.tasks.empty()) {
        return false;
    }
    out = std::move(q.tasks.back());
    q.tasks.pop_back();
    return true;
}

bool
ThreadPool::trySteal(unsigned self, Task &out)
{
    const unsigned n = static_cast<unsigned>(queues_.size());
    for (unsigned i = 1; i < n; ++i) {
        auto &victim = *queues_[(self + i) % n];
        std::lock_guard<std::mutex> lk(victim.mutex);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            steals_.fetch_add(1);
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        Task task;
        if (tryPop(self, task) || trySteal(self, task)) {
            task();
            if (inflight_.fetch_sub(1) == 1) {
                // Last task: wake any wait()ers.
                std::lock_guard<std::mutex> lk(sleepMutex_);
                idleCv_.notify_all();
            }
            continue;
        }
        std::unique_lock<std::mutex> lk(sleepMutex_);
        if (stop_.load()) {
            return;
        }
        // Re-check under the lock: a submit() between our empty scan
        // and here would otherwise be slept through.
        bool any = false;
        for (auto &q : queues_) {
            std::lock_guard<std::mutex> qlk(q->mutex);
            if (!q->tasks.empty()) {
                any = true;
                break;
            }
        }
        if (any) {
            continue;
        }
        sleepCv_.wait(lk);
    }
}

} // namespace runner
} // namespace cereal
