/**
 * @file
 * A work-stealing thread pool for embarrassingly parallel host work.
 *
 * Each worker owns a deque: it pushes/pops its own work LIFO (cache
 * warmth) and steals FIFO from a victim when empty (oldest task, the
 * classic Chase-Lev discipline, here with per-deque locks — the tasks
 * this pool runs are whole simulator sweep points, so per-task
 * synchronisation cost is noise). Tasks submitted from outside are
 * dealt round-robin across the deques.
 *
 * The pool makes no ordering promises; callers that need deterministic
 * output (SweepRunner) write results into pre-assigned slots.
 */

#ifndef CEREAL_RUNNER_THREAD_POOL_HH
#define CEREAL_RUNNER_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cereal {
namespace runner {

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** Spawn @p num_threads workers (0 -> hardwareThreads()). */
    explicit ThreadPool(unsigned num_threads);

    /** Drains remaining work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task; runnable immediately. */
    void submit(Task task);

    /** Block until every submitted task has finished executing. */
    void wait();

    unsigned numThreads() const { return static_cast<unsigned>(workers_.size()); }

    /** Tasks executed via steals (not from the worker's own deque). */
    std::uint64_t steals() const { return steals_.load(); }

    static unsigned hardwareThreads();

  private:
    /** One worker's lock-protected deque. */
    struct WorkQueue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void workerLoop(unsigned self);
    bool tryPop(unsigned self, Task &out);
    bool trySteal(unsigned self, Task &out);

    std::vector<std::unique_ptr<WorkQueue>> queues_;
    std::vector<std::thread> workers_;

    /** Wakes idle workers; also guards stop_ transitions. */
    std::mutex sleepMutex_;
    std::condition_variable sleepCv_;

    /** Signals wait() when inflight_ hits zero. */
    std::condition_variable idleCv_;

    std::atomic<std::uint64_t> inflight_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<unsigned> nextQueue_{0};
    std::atomic<bool> stop_{false};
};

} // namespace runner
} // namespace cereal

#endif // CEREAL_RUNNER_THREAD_POOL_HH
