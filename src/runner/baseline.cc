#include "runner/baseline.hh"

#include <cmath>
#include <sstream>

#include "sim/json.hh"
#include "sim/json_parse.hh"

namespace cereal {
namespace runner {

namespace {

/** Flattened numeric leaves of one subtree, in document order. */
using Leaves = std::vector<std::pair<std::string, double>>;

void
flatten(const json::Value &v, const std::string &prefix, Leaves &out)
{
    switch (v.type) {
      case json::Value::Type::Number:
        out.emplace_back(prefix, v.number);
        break;
      case json::Value::Type::Object:
        for (const auto &kv : v.object) {
            if (kv.first == "metrics") {
                continue; // compared byte-exactly elsewhere, not here
            }
            flatten(kv.second, prefix + "." + kv.first, out);
        }
        break;
      case json::Value::Type::Array:
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            flatten(v.array[i], prefix + "[" + std::to_string(i) + "]",
                    out);
        }
        break;
      default:
        break; // strings/bools/nulls are schema, not measurements
    }
}

/** Leaf maps keyed by path; insertion order preserved via Leaves. */
const double *
findLeaf(const Leaves &leaves, const std::string &path)
{
    for (const auto &kv : leaves) {
        if (kv.first == path) {
            return &kv.second;
        }
    }
    return nullptr;
}

void
compareLeaves(const Leaves &fresh, const Leaves &base,
              const Tolerance &tol, CompareResult &out)
{
    for (const auto &b : base) {
        const double *f = findLeaf(fresh, b.first);
        if (f == nullptr) {
            out.findings.push_back(
                {b.first, "missing from fresh output"});
            continue;
        }
        ++out.comparedLeaves;
        const double floor = tol.floorFor(b.first);
        if (floor > 0) {
            // One-sided: improvements always pass, drops fail only
            // past the ratio.
            if (*f < floor * b.second) {
                std::ostringstream ss;
                ss << "below floor: " << json::formatDouble(*f)
                   << " < " << json::formatDouble(floor) << " * "
                   << json::formatDouble(b.second);
                out.findings.push_back({b.first, ss.str()});
            }
            continue;
        }
        const double denom = std::max(std::fabs(b.second), 1e-12);
        const double rel = std::fabs(*f - b.second) / denom;
        const double allowed = tol.relFor(b.first);
        if (rel > allowed) {
            std::ostringstream ss;
            ss << "drift " << json::formatDouble(b.second) << " -> "
               << json::formatDouble(*f) << " (rel "
               << json::formatDouble(rel) << " > tol "
               << json::formatDouble(allowed) << ")";
            out.findings.push_back({b.first, ss.str()});
        }
    }
    for (const auto &f : fresh) {
        if (findLeaf(base, f.first) == nullptr) {
            out.findings.push_back(
                {f.first, "not present in baseline (run with "
                          "CEREAL_UPDATE_BASELINES=1 to record)"});
        }
    }
}

const json::Value *
pointByName(const json::Value &points, const std::string &name)
{
    for (const auto &p : points.array) {
        const json::Value *n = p.find("name");
        if (n != nullptr && n->isString() && n->str == name) {
            return &p;
        }
    }
    return nullptr;
}

} // namespace

double
Tolerance::relFor(const std::string &path) const
{
    double rel = defaultRel;
    std::size_t best = 0;
    for (const auto &ov : overrides) {
        if (ov.first.size() >= best &&
            path.find(ov.first) != std::string::npos) {
            best = ov.first.size();
            rel = ov.second;
        }
    }
    return rel;
}

double
Tolerance::floorFor(const std::string &path) const
{
    double ratio = 0;
    std::size_t best = 0;
    for (const auto &fl : floors) {
        if (fl.first.size() >= best &&
            path.find(fl.first) != std::string::npos) {
            best = fl.first.size();
            ratio = fl.second;
        }
    }
    return ratio;
}

std::string
CompareResult::report() const
{
    std::ostringstream ss;
    if (!error.empty()) {
        ss << "ERROR: " << error << "\n";
        return ss.str();
    }
    if (pass) {
        ss << "OK: " << comparedLeaves << " metrics within tolerance\n";
        return ss.str();
    }
    for (const auto &f : findings) {
        ss << "FAIL";
        if (!f.path.empty()) {
            ss << " " << f.path;
        }
        ss << ": " << f.message << "\n";
    }
    ss << findings.size() << " failure(s), " << comparedLeaves
       << " metrics compared\n";
    return ss.str();
}

CompareResult
compareBenchJson(const std::string &fresh_text,
                 const std::string &baseline_text, const Tolerance &tol)
{
    CompareResult out;

    auto fres = json::parse(fresh_text);
    if (!fres.ok()) {
        out.error = "fresh document: " + fres.error;
        return out;
    }
    auto bres = json::parse(baseline_text);
    if (!bres.ok()) {
        out.error = "baseline document: " + bres.error;
        return out;
    }
    const json::Value &fresh = fres.value;
    const json::Value &base = bres.value;

    // Identity members must match exactly.
    for (const char *key : {"schema", "bench"}) {
        const json::Value *fv = fresh.find(key);
        const json::Value *bv = base.find(key);
        if (fv == nullptr || bv == nullptr || !fv->isString() ||
            !bv->isString()) {
            out.error = std::string("missing '") + key + "' member";
            return out;
        }
        if (fv->str != bv->str) {
            out.error = std::string("'") + key + "' mismatch: fresh '" +
                        fv->str + "' vs baseline '" + bv->str + "'";
            return out;
        }
    }

    // Config members must match exactly: a different config is a
    // different experiment, not a regression.
    const json::Value *fcfg = fresh.find("config");
    const json::Value *bcfg = base.find("config");
    if (fcfg != nullptr && bcfg != nullptr) {
        Leaves fl, bl;
        flatten(*fcfg, "config", fl);
        flatten(*bcfg, "config", bl);
        for (const auto &b : bl) {
            const double *f = findLeaf(fl, b.first);
            if (f == nullptr) {
                out.findings.push_back({b.first, "config key missing"});
            } else if (*f != b.second) {
                out.findings.push_back(
                    {b.first,
                     "config mismatch: fresh " + json::formatDouble(*f) +
                         " vs baseline " + json::formatDouble(b.second)});
            }
        }
        for (const auto &f : fl) {
            if (findLeaf(bl, f.first) == nullptr) {
                out.findings.push_back(
                    {f.first, "config key not in baseline"});
            }
        }
    }

    // Points matched by name; every numeric leaf compared.
    const json::Value *fpts = fresh.find("points");
    const json::Value *bpts = base.find("points");
    if (fpts == nullptr || bpts == nullptr || !fpts->isArray() ||
        !bpts->isArray()) {
        out.error = "missing 'points' array";
        return out;
    }
    for (const auto &bp : bpts->array) {
        const json::Value *n = bp.find("name");
        if (n == nullptr || !n->isString()) {
            out.error = "baseline point without a name";
            return out;
        }
        const json::Value *fp = pointByName(*fpts, n->str);
        if (fp == nullptr) {
            out.findings.push_back(
                {"points." + n->str, "point missing from fresh output"});
            continue;
        }
        Leaves fl, bl;
        flatten(*fp, "points." + n->str, fl);
        flatten(bp, "points." + n->str, bl);
        compareLeaves(fl, bl, tol, out);
    }
    for (const auto &fp : fpts->array) {
        const json::Value *n = fp.find("name");
        if (n != nullptr && n->isString() &&
            pointByName(*bpts, n->str) == nullptr) {
            out.findings.push_back(
                {"points." + n->str, "point not present in baseline"});
        }
    }

    // Cross-point summary, when both documents have one.
    const json::Value *fsum = fresh.find("summary");
    const json::Value *bsum = base.find("summary");
    if ((fsum != nullptr) != (bsum != nullptr)) {
        out.findings.push_back(
            {"summary", fsum != nullptr
                            ? "summary not present in baseline"
                            : "summary missing from fresh output"});
    } else if (fsum != nullptr && bsum != nullptr) {
        Leaves fl, bl;
        flatten(*fsum, "summary", fl);
        flatten(*bsum, "summary", bl);
        compareLeaves(fl, bl, tol, out);
    }

    out.pass = out.findings.empty();
    return out;
}

} // namespace runner
} // namespace cereal
