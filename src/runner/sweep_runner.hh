/**
 * @file
 * Parallel experiment-sweep execution with deterministic output.
 *
 * A SweepRunner holds an ordered list of named experiment points. Each
 * point is a closure that builds its *own* simulation context (klass
 * registry, heap, DDR4, cores, accelerator — nothing shared) from
 * explicit seeds, so points are independent and can execute on any
 * thread in any order. Results — both the numbers a bench prints and
 * the JSON fragment a point emits — land in slots indexed by
 * registration order, so an N-thread run is bit-identical to a serial
 * run (tested in test_runner.cc and by the bench-level ctest
 * comparisons).
 *
 * writeJson() renders the stable `BENCH_<name>.json` document:
 *
 *   {
 *     "schema": "cereal-bench-v1",
 *     "bench": "<name>",
 *     "config": { ...header kv... },
 *     "points": [ {"name": ..., <point fields>}, ... ],
 *     "summary": { ...optional cross-point aggregates... }
 *   }
 *
 * Deliberately absent: thread count, timestamps, host info — anything
 * that would make equal experiments produce unequal bytes.
 */

#ifndef CEREAL_RUNNER_SWEEP_RUNNER_HH
#define CEREAL_RUNNER_SWEEP_RUNNER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "metrics/metrics.hh"
#include "sim/json.hh"
#include "trace/chrome_trace.hh"

namespace cereal {
namespace runner {

/** One member of the top-level "config" object. */
struct ConfigKv
{
    std::string key;
    std::uint64_t value;
};

class SweepRunner
{
  public:
    /**
     * A point writes its JSON fields into an already-open object (the
     * runner supplies the "name" member; the point must leave the
     * writer balanced at the same depth it got it).
     */
    using PointFn = std::function<void(json::Writer &)>;

    explicit SweepRunner(std::string bench_name)
        : benchName_(std::move(bench_name))
    {
    }

    /** Register one point; executes in registration order slots. */
    void
    add(std::string point_name, PointFn fn)
    {
        points_.push_back({std::move(point_name), std::move(fn)});
    }

    std::size_t numPoints() const { return points_.size(); }
    const std::string &benchName() const { return benchName_; }

    /**
     * Execute every point. @p threads <= 1 runs serially on the
     * calling thread (the reference behaviour); otherwise a
     * work-stealing pool of @p threads workers runs the points
     * concurrently. A point that panics/throws aborts the run with the
     * point's name attached.
     *
     * May be called once per runner instance.
     */
    void run(unsigned threads);

    /**
     * Record a trace of every point. Must be called before run():
     * each point gets its own trace::ChromeTraceSink installed as the
     * ambient trace root (trace::ScopedTrace) for the point's
     * duration, so every instrumented component under the point emits
     * into the point's own sink. Sinks live in registration-order
     * slots; the merged document is therefore byte-identical across
     * thread counts, like the JSON.
     */
    void enableTrace() { traceEnabled_ = true; }
    bool traceEnabled() const { return traceEnabled_; }

    /** Trace sink of point @p i (enableTrace() + run() required). */
    const trace::ChromeTraceSink &pointTrace(std::size_t i) const;

    /**
     * Record time-series metrics for every point. Must be called
     * before run(): each point gets its own metrics::MetricsRecorder
     * installed as the ambient recorder (metrics::ScopedMetrics) for
     * the point's duration, and the recorded series are embedded as a
     * "metrics" member of the point's JSON object. Recorders live in
     * registration-order slots, so all metrics documents are
     * byte-identical across thread counts, like the JSON and traces.
     *
     * @param interval sampling interval in ticks (0 -> the recorder
     *        default of 1 us simulated time)
     */
    void enableMetrics(Tick interval = 0);
    bool metricsEnabled() const { return metricsEnabled_; }

    /** Metrics recorder of point @p i (enableMetrics() + run()). */
    const metrics::MetricsRecorder &pointMetrics(std::size_t i) const;

    /** Merged long-form CSV document over all points. */
    void writeMetricsCsv(std::ostream &os) const;

    /** Merged Prometheus text exposition over all points. */
    void writeMetricsProm(std::ostream &os) const;

    /**
     * Write the merged metrics to @p path ("" -> no-op, "-" -> stdout
     * as Prometheus text). A ".csv" suffix selects CSV, anything else
     * the Prometheus exposition. Returns the path written.
     */
    std::string writeMetricsFile(const std::string &path) const;

    /** Render the merged Chrome trace_event document. */
    void writeTrace(std::ostream &os) const;

    /**
     * Write the Chrome trace to @p path ("" -> no-op, "-" -> stdout).
     * Returns the path written.
     */
    std::string writeTraceFile(const std::string &path) const;

    /** Compact per-point self-time summary (see trace::selfTimes). */
    void writeTraceSummary(std::ostream &os) const;

    /**
     * Install a closure that writes cross-point aggregate members into
     * the top-level "summary" object. Runs after all points, on the
     * calling thread.
     */
    void
    setSummary(PointFn fn)
    {
        summary_ = std::move(fn);
    }

    /** Rendered JSON fragment of point @p i (run() must be done). */
    const std::string &pointJson(std::size_t i) const;

    /** Render the whole document to @p os. */
    void writeJson(std::ostream &os,
                   const std::vector<ConfigKv> &config = {}) const;

    /**
     * Write `BENCH_<bench>.json` to @p path ("" -> no-op, "-" ->
     * stdout). Returns the resolved path actually written.
     */
    std::string writeJsonFile(const std::string &path,
                              const std::vector<ConfigKv> &config = {}) const;

  private:
    struct Point
    {
        std::string name;
        PointFn fn;
    };

    std::vector<trace::TracePoint> tracePoints() const;
    std::vector<metrics::MetricsPoint> metricsPoints() const;

    std::string benchName_;
    std::vector<Point> points_;
    std::vector<std::string> pointJson_;
    std::vector<std::unique_ptr<trace::ChromeTraceSink>> pointTrace_;
    std::vector<std::unique_ptr<metrics::MetricsRecorder>> pointMetrics_;
    PointFn summary_;
    bool traceEnabled_ = false;
    bool metricsEnabled_ = false;
    Tick metricsInterval_ = 0;
    bool ran_ = false;
};

} // namespace runner
} // namespace cereal

#endif // CEREAL_RUNNER_SWEEP_RUNNER_HH
