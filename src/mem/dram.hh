/**
 * @file
 * Cycle-level DDR4 main-memory model.
 *
 * Models the organisation from the paper's Table I: DDR4-2400 with four
 * channels (19.2 GB/s each, 76.8 GB/s aggregate) and ~40 ns zero-load
 * latency. Each channel has a set of banks with open-row (row-buffer)
 * state; an access is a single 64 B burst. The model resolves each
 * request to a completion tick by serialising on (a) the target bank's
 * command readiness and (b) the channel data bus, charging tRP/tRCD on
 * row-buffer misses and tCAS plus the burst on every access.
 *
 * The model is *schedule-synchronous*: callers present an issue tick and
 * receive the completion tick immediately. Front ends (the CPU cache
 * hierarchy and the Cereal MAI) enforce their own outstanding-request
 * limits, which is where memory-level-parallelism differences between a
 * CPU and the accelerator come from.
 */

#ifndef CEREAL_MEM_DRAM_HH
#define CEREAL_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "metrics/metrics.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"
#include "trace/trace.hh"

namespace cereal {

/** Configuration for the DDR4 model (defaults: Table I organisation). */
struct DramConfig
{
    /** Number of independent channels. */
    unsigned numChannels = 4;
    /** Banks per channel (bank groups flattened). */
    unsigned banksPerChannel = 16;
    /** Row-buffer (page) size per bank, bytes. */
    Addr rowBytes = 8192;
    /** Transfer granule: one burst of 64 B. */
    Addr burstBytes = 64;

    /** Activate-to-read delay (row miss component), ns. */
    double tRCDns = 14.16;
    /** Read CAS latency, ns. */
    double tCASns = 14.16;
    /** Precharge delay (row conflict component), ns. */
    double tRPns = 14.16;
    /** Data burst duration for 64 B on one channel, ns.
     *  19.2 GB/s per channel -> 64 B in ~3.33 ns. */
    double tBURSTns = 3.33;
    /** Fixed controller + interconnect overhead per request, ns.
     *  Chosen so zero-load row-hit latency lands near 40 ns:
     *  tCAS + tBURST + overhead ~= 40 ns. */
    double tCtrlNs = 22.5;

    /** Peak bandwidth across all channels, bytes/second. */
    double
    peakBandwidth() const
    {
        return static_cast<double>(burstBytes) / (tBURSTns * 1e-9) *
               numChannels;
    }
};

/** Result of one DRAM access. */
struct DramResult
{
    /** Tick at which the data is available (read) or committed (write). */
    Tick completeTick;
    /** Whether the access hit in the row buffer. */
    bool rowHit;
};

/**
 * The DDR4 memory model.
 *
 * Thread-unsafe by design: the simulator is single-threaded and event
 * ordering is deterministic.
 */
class Dram : public SimObject
{
  public:
    Dram(const std::string &name, EventQueue &eq,
         const DramConfig &cfg = DramConfig());

    /** The configuration this model was built with. */
    const DramConfig &config() const { return cfg_; }

    /**
     * Perform one 64 B-granule access.
     *
     * Requests larger than one burst should be split by the caller.
     *
     * @param addr   physical address (any alignment; the containing
     *               burst granule is accessed)
     * @param write  true for a write access
     * @param issue  earliest tick the request may start
     * @return completion tick and row-hit flag
     */
    DramResult access(Addr addr, bool write, Tick issue);

    /**
     * Access a byte range, splitting into bursts.
     * @return completion tick of the final burst.
     */
    Tick accessRange(Addr addr, Addr bytes, bool write, Tick issue);

    /** Reset bandwidth/latency accounting (not bank state). */
    void resetStats();

    /** Bytes read since the last resetStats(). */
    std::uint64_t bytesRead() const { return bytesRead_; }
    /** Bytes written since the last resetStats(). */
    std::uint64_t bytesWritten() const { return bytesWritten_; }
    /** Bytes moved on channel @p ch since construction. */
    std::uint64_t channelBytes(unsigned ch) const { return chBytes_[ch]; }
    /** Total accesses since the last resetStats(). */
    std::uint64_t accesses() const { return accesses_; }
    /** Row-buffer hits since the last resetStats(). */
    std::uint64_t rowHits() const { return rowHits_; }

    /**
     * Achieved bandwidth over [window_start, window_end] as a fraction
     * of the configured peak.
     */
    double utilization(Tick window_start, Tick window_end) const;

    /** Mean access latency (issue to completion), ns. */
    double avgLatencyNs() const;

    /**
     * Emit per-channel data-bus busy spans ("rd_burst"/"wr_burst" on
     * child tracks ch0..chN) under @p em. Channel spans never overlap
     * (the bus serialises bursts), so a channel's total span time is
     * its bus occupancy.
     */
    void setTrace(const trace::TraceEmitter &em);

  private:
    struct Bank
    {
        /** Currently open row (kBadAddr when closed). */
        Addr openRow = kBadAddr;
        /** Earliest tick the bank can accept a new command. */
        Tick readyAt = 0;
    };

    struct Channel
    {
        std::vector<Bank> banks;
        /** Earliest tick the data bus is free. */
        Tick busFreeAt = 0;
    };

    /** Map an address to (channel, bank, row). */
    void decode(Addr addr, unsigned &channel, unsigned &bank,
                Addr &row) const;

    DramConfig cfg_;
    std::vector<Channel> channels_;
    /** One emitter per channel; empty when tracing is off. */
    std::vector<trace::TraceEmitter> chTrace_;
    /**
     * Time-series registration with the ambient metrics recorder:
     * per-channel bandwidth utilization and queue depth, plus row-hit
     * rate and the cumulative counters bridged from stats().
     */
    metrics::Group metrics_;
    /** Cumulative bytes moved per channel (metrics never reset). */
    std::vector<std::uint64_t> chBytes_;
    /** Cumulative accesses/row-hits (unaffected by resetStats()). */
    std::uint64_t cumAccesses_ = 0;
    std::uint64_t cumRowHits_ = 0;

    Tick tRCD_, tCAS_, tRP_, tBURST_, tCtrl_;

    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t rowHits_ = 0;
    double latencySumNs_ = 0;

    stats::Scalar statReads_;
    stats::Scalar statWrites_;
    stats::Scalar statRowHits_;
    stats::Scalar statRowMisses_;
};

} // namespace cereal

#endif // CEREAL_MEM_DRAM_HH
