#include "mem/cache.hh"

#include "sim/logging.hh"

namespace cereal {

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    panic_if(!isPowerOf2(cfg_.lineBytes), "line size must be 2^n");
    panic_if(cfg_.ways == 0, "cache needs at least one way");
    numSets_ = cfg_.sizeBytes / (cfg_.lineBytes * cfg_.ways);
    panic_if(numSets_ == 0, "cache smaller than one set");
    lines_.resize(numSets_ * cfg_.ways);
}

std::size_t
Cache::setIndex(Addr line_addr) const
{
    return static_cast<std::size_t>((line_addr / cfg_.lineBytes) % numSets_);
}

Addr
Cache::tagOf(Addr line_addr) const
{
    return line_addr / cfg_.lineBytes / numSets_;
}

CacheAccessResult
Cache::access(Addr addr, bool write)
{
    ++clock_;
    const Addr la = lineAddr(addr);
    const std::size_t set = setIndex(la);
    const Addr tag = tagOf(la);
    Line *base = &lines_[set * cfg_.ways];

    // Hit path.
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Line &ln = base[w];
        if (ln.valid && ln.tag == tag) {
            ln.lastUse = clock_;
            ln.dirty = ln.dirty || write;
            ++hits_;
            return {true, false, kBadAddr};
        }
    }

    // Miss: pick an invalid way, else the LRU way.
    ++misses_;
    Line *victim = base;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Line &ln = base[w];
        if (!ln.valid) {
            victim = &ln;
            break;
        }
        if (ln.lastUse < victim->lastUse) {
            victim = &ln;
        }
    }

    CacheAccessResult res{false, false, kBadAddr};
    if (victim->valid && victim->dirty) {
        res.writeback = true;
        // Reconstruct the victim's line address from its tag + this set.
        res.victimAddr =
            (victim->tag * numSets_ + set) * cfg_.lineBytes;
    }

    victim->valid = true;
    victim->tag = tag;
    victim->dirty = write;
    victim->lastUse = clock_;
    return res;
}

bool
Cache::contains(Addr addr) const
{
    const Addr la = lineAddr(addr);
    const std::size_t set = setIndex(la);
    const Addr tag = tagOf(la);
    const Line *base = &lines_[set * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            return true;
        }
    }
    return false;
}

void
Cache::flush()
{
    for (auto &ln : lines_) {
        ln = Line{};
    }
    resetStats();
}

} // namespace cereal
