#include "mem/dram.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cereal {

Dram::Dram(const std::string &name, EventQueue &eq, const DramConfig &cfg)
    : SimObject(name, eq), cfg_(cfg)
{
    panic_if(!isPowerOf2(cfg_.burstBytes), "burst size must be 2^n");
    panic_if(!isPowerOf2(cfg_.numChannels), "channel count must be 2^n");
    panic_if(!isPowerOf2(cfg_.banksPerChannel), "bank count must be 2^n");

    channels_.resize(cfg_.numChannels);
    for (auto &ch : channels_) {
        ch.banks.resize(cfg_.banksPerChannel);
    }

    tRCD_ = nsToTicks(cfg_.tRCDns);
    tCAS_ = nsToTicks(cfg_.tCASns);
    tRP_ = nsToTicks(cfg_.tRPns);
    tBURST_ = nsToTicks(cfg_.tBURSTns);
    tCtrl_ = nsToTicks(cfg_.tCtrlNs);

    stats().add("reads", "read bursts serviced", statReads_);
    stats().add("writes", "write bursts serviced", statWrites_);
    stats().add("rowHits", "row-buffer hits", statRowHits_);
    stats().add("rowMisses", "row-buffer misses", statRowMisses_);

    chBytes_.assign(cfg_.numChannels, 0);
    metrics_ = metrics::Group(metrics::current(), "mem.dram");
    if (metrics_.enabled()) {
        // One burst occupies a channel for tBURST_ ticks, so peak
        // per-channel throughput is burstBytes / tBURST_ bytes/tick.
        const double per_tick_peak =
            static_cast<double>(cfg_.burstBytes) /
            static_cast<double>(tBURST_);
        for (unsigned i = 0; i < cfg_.numChannels; ++i) {
            const std::string ch = "ch" + std::to_string(i);
            metrics_.rate(
                (ch + ".bw_util").c_str(),
                "achieved / peak bandwidth of this channel",
                [this, i] {
                    return static_cast<double>(chBytes_[i]);
                },
                1.0 / per_tick_peak);
            metrics_.gauge(
                (ch + ".queue_depth").c_str(),
                "bursts queued ahead on this channel's data bus",
                [this, i](Tick t) {
                    const Tick free = channels_[i].busFreeAt;
                    return free > t ? static_cast<double>(free - t) /
                                          static_cast<double>(tBURST_)
                                    : 0.0;
                });
        }
        // Aggregate closures read the never-reset per-channel/cum
        // counters so a resetStats() mid-run cannot produce negative
        // deltas.
        metrics_.rate(
            "bw_util", "achieved / peak bandwidth across all channels",
            [this] {
                std::uint64_t total = 0;
                for (auto b : chBytes_) {
                    total += b;
                }
                return static_cast<double>(total);
            },
            1.0 / (per_tick_peak *
                   static_cast<double>(cfg_.numChannels)));
        metrics_.ratio(
            "row_hit_rate", "row-buffer hits per access this interval",
            [this] { return static_cast<double>(cumRowHits_); },
            [this] { return static_cast<double>(cumAccesses_); });
        // Cumulative counters come straight off the StatGroup, via
        // the by-name bridge the metrics registry provides.
        metrics_.gaugeFromStat(stats(), "reads");
        metrics_.gaugeFromStat(stats(), "writes");
    }
}

void
Dram::decode(Addr addr, unsigned &channel, unsigned &bank, Addr &row) const
{
    // Channel-interleave consecutive bursts so streaming accesses spread
    // across channels (matching typical server mappings); banks
    // interleave above channels, rows above banks.
    Addr granule = addr / cfg_.burstBytes;
    channel = static_cast<unsigned>(granule % cfg_.numChannels);
    granule /= cfg_.numChannels;
    const Addr bursts_per_row = cfg_.rowBytes / cfg_.burstBytes;
    Addr row_in_channel = granule / bursts_per_row;
    bank = static_cast<unsigned>(row_in_channel % cfg_.banksPerChannel);
    row = row_in_channel / cfg_.banksPerChannel;
}

DramResult
Dram::access(Addr addr, bool write, Tick issue)
{
    unsigned ch_idx, bank_idx;
    Addr row;
    decode(addr, ch_idx, bank_idx, row);
    Channel &ch = channels_[ch_idx];
    Bank &bank = ch.banks[bank_idx];

    Tick start = std::max(issue, bank.readyAt);

    bool row_hit = (bank.openRow == row);
    Tick access_lat = tCAS_;
    if (!row_hit) {
        // Closed bank needs just an activate; a conflicting open row
        // needs precharge + activate.
        access_lat += (bank.openRow == kBadAddr) ? tRCD_ : (tRP_ + tRCD_);
        bank.openRow = row;
    }

    // Data burst begins once the column access completes and the channel
    // data bus is free.
    Tick data_start = std::max(start + access_lat, ch.busFreeAt);
    Tick data_end = data_start + tBURST_;
    ch.busFreeAt = data_end;

    // Column commands pipeline: on a row hit the bank can accept the
    // next CAS after one command cadence (tCCD ~= tBURST), letting an
    // open-row stream saturate the data bus. A row change occupies the
    // bank for the whole precharge/activate sequence.
    bank.readyAt = row_hit ? start + tBURST_ : start + access_lat;

    Tick complete = data_end + tCtrl_;

    if (!chTrace_.empty()) {
        chTrace_[ch_idx].span(write ? "wr_burst" : "rd_burst", data_start,
                              data_end);
    }

    ++accesses_;
    ++cumAccesses_;
    if (write) {
        bytesWritten_ += cfg_.burstBytes;
        ++statWrites_;
    } else {
        bytesRead_ += cfg_.burstBytes;
        ++statReads_;
    }
    if (row_hit) {
        ++rowHits_;
        ++cumRowHits_;
        ++statRowHits_;
    } else {
        ++statRowMisses_;
    }
    latencySumNs_ += static_cast<double>(complete - issue) / 1e3;
    chBytes_[ch_idx] += cfg_.burstBytes;
    metrics_.tick(complete);

    return {complete, row_hit};
}

Tick
Dram::accessRange(Addr addr, Addr bytes, bool write, Tick issue)
{
    if (bytes == 0) {
        return issue;
    }
    Addr first = roundDown(addr, cfg_.burstBytes);
    Addr last = roundDown(addr + bytes - 1, cfg_.burstBytes);

    // Observing runs take the per-burst path: every burst must emit its
    // bus span and metrics sample at the right tick.
    if (metrics_.enabled() || !chTrace_.empty()) {
        Tick done = issue;
        for (Addr a = first; a <= last; a += cfg_.burstBytes) {
            done = std::max(done, access(a, write, issue).completeTick);
        }
        return done;
    }

    // Batched fast path: the same timing recurrence as access() —
    // byte-identical bank/bus state, counters, and completion ticks
    // (proven by the equivalence tests in test_sim_speed) — with the
    // per-burst observability hooks and stat writes hoisted out. The
    // model is schedule-synchronous, so an idle channel "skips to its
    // next busy tick" through the max() against the issue tick rather
    // than by draining filler events.
    std::uint64_t bursts = 0;
    std::uint64_t hits = 0;
    Tick done = issue;
    for (Addr a = first; a <= last; a += cfg_.burstBytes) {
        unsigned ch_idx, bank_idx;
        Addr row;
        decode(a, ch_idx, bank_idx, row);
        Channel &ch = channels_[ch_idx];
        Bank &bank = ch.banks[bank_idx];

        Tick start = std::max(issue, bank.readyAt);
        const bool row_hit = (bank.openRow == row);
        Tick access_lat = tCAS_;
        if (!row_hit) {
            access_lat +=
                (bank.openRow == kBadAddr) ? tRCD_ : (tRP_ + tRCD_);
            bank.openRow = row;
        }
        Tick data_start = std::max(start + access_lat, ch.busFreeAt);
        Tick data_end = data_start + tBURST_;
        ch.busFreeAt = data_end;
        bank.readyAt = row_hit ? start + tBURST_ : start + access_lat;
        const Tick complete = data_end + tCtrl_;

        // Kept per burst (not batched): double accumulation order
        // affects rounding, and byte-identity with access() matters
        // more than the last few percent here.
        latencySumNs_ += static_cast<double>(complete - issue) / 1e3;
        chBytes_[ch_idx] += cfg_.burstBytes;
        ++bursts;
        if (row_hit) {
            ++hits;
        }
        done = std::max(done, complete);
    }

    accesses_ += bursts;
    cumAccesses_ += bursts;
    rowHits_ += hits;
    cumRowHits_ += hits;
    const auto d_bursts = static_cast<double>(bursts);
    const auto d_hits = static_cast<double>(hits);
    if (write) {
        bytesWritten_ += bursts * cfg_.burstBytes;
        statWrites_ += d_bursts;
    } else {
        bytesRead_ += bursts * cfg_.burstBytes;
        statReads_ += d_bursts;
    }
    statRowHits_ += d_hits;
    statRowMisses_ += d_bursts - d_hits;
    return done;
}

void
Dram::resetStats()
{
    bytesRead_ = 0;
    bytesWritten_ = 0;
    accesses_ = 0;
    rowHits_ = 0;
    latencySumNs_ = 0;
    statReads_.reset();
    statWrites_.reset();
    statRowHits_.reset();
    statRowMisses_.reset();
}

double
Dram::utilization(Tick window_start, Tick window_end) const
{
    if (window_end <= window_start) {
        return 0;
    }
    double secs = ticksToSeconds(window_end - window_start);
    double bytes =
        static_cast<double>(bytesRead_) + static_cast<double>(bytesWritten_);
    return (bytes / secs) / cfg_.peakBandwidth();
}

double
Dram::avgLatencyNs() const
{
    return accesses_ ? latencySumNs_ / static_cast<double>(accesses_) : 0;
}

void
Dram::setTrace(const trace::TraceEmitter &em)
{
    chTrace_.clear();
    if (!em.enabled()) {
        return;
    }
    chTrace_.reserve(cfg_.numChannels);
    for (unsigned i = 0; i < cfg_.numChannels; ++i) {
        chTrace_.push_back(em.sub(("ch" + std::to_string(i)).c_str()));
    }
}

} // namespace cereal
