/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * Used to model the host CPU's L1/L2/L3 hierarchy (Table I) when timing
 * the software serializers. The model tracks tags and dirty bits only —
 * data lives in the functional heap — and reports hit/miss plus any
 * dirty victim that a fill evicts, so the caller can charge writebacks.
 */

#ifndef CEREAL_MEM_CACHE_HH
#define CEREAL_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace cereal {

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    Addr sizeBytes;
    /** Associativity (ways per set). */
    unsigned ways;
    /** Line size in bytes. */
    Addr lineBytes = 64;
    /** Access (hit) latency in core cycles. */
    Cycles hitLatency;

    /** L1D of the i7-7820X: 32 KB, 8-way, 4-cycle. */
    static CacheConfig l1() { return {32 * 1024, 8, 64, 4}; }
    /** L2: 1 MB private, 16-way, 14-cycle. */
    static CacheConfig l2() { return {1024 * 1024, 16, 64, 14}; }
    /** L3: 11 MB shared, 11-way, 44-cycle. */
    static CacheConfig l3() { return {11 * 1024 * 1024, 11, 64, 44}; }
};

/** Outcome of a single cache access. */
struct CacheAccessResult
{
    bool hit;
    /** True when a dirty line was evicted by the fill. */
    bool writeback;
    /** Address of the evicted dirty line (valid when writeback). */
    Addr victimAddr;
};

/** One level of a cache hierarchy (tags + LRU + dirty bits). */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    const CacheConfig &config() const { return cfg_; }

    /**
     * Access @p addr; on a miss the line is filled (write-allocate).
     * Writes mark the line dirty.
     */
    CacheAccessResult access(Addr addr, bool write);

    /** Probe without side effects. */
    bool contains(Addr addr) const;

    /** Drop all lines and reset statistics. */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t accesses() const { return hits_ + misses_; }
    double
    missRate() const
    {
        auto n = accesses();
        return n ? static_cast<double>(misses_) / static_cast<double>(n) : 0;
    }
    void
    resetStats()
    {
        hits_ = 0;
        misses_ = 0;
    }

  private:
    struct Line
    {
        Addr tag = kBadAddr;
        bool valid = false;
        bool dirty = false;
        /** LRU stamp: larger is more recent. */
        std::uint64_t lastUse = 0;
    };

    Addr lineAddr(Addr addr) const { return roundDown(addr, cfg_.lineBytes); }
    std::size_t setIndex(Addr line_addr) const;
    Addr tagOf(Addr line_addr) const;

    CacheConfig cfg_;
    std::size_t numSets_;
    std::vector<Line> lines_; // numSets_ * ways, set-major
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace cereal

#endif // CEREAL_MEM_CACHE_HH
