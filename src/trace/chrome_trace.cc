#include "trace/chrome_trace.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace cereal {
namespace trace {

std::uint32_t
ChromeTraceSink::track(const std::string &name)
{
    auto it = byName_.find(name);
    if (it != byName_.end()) {
        return it->second;
    }
    auto id = static_cast<std::uint32_t>(trackNames_.size());
    trackNames_.push_back(name);
    byName_.emplace(name, id);
    return id;
}

std::uint32_t
ChromeTraceSink::uniqueTrack(const std::string &name)
{
    std::uint32_t &uses = nameUses_[name];
    std::string unique =
        uses == 0 ? name : name + "#" + std::to_string(uses);
    ++uses;
    auto id = static_cast<std::uint32_t>(trackNames_.size());
    trackNames_.push_back(std::move(unique));
    return id;
}

void
ChromeTraceSink::record(const TraceEvent &ev)
{
    panic_if(ev.track >= trackNames_.size(),
             "trace event on unknown track %u", ev.track);
    events_.push_back(ev);
}

namespace {

/** Ticks (picoseconds) -> Chrome timestamp (microseconds). */
double
usOf(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

/** Common "pid"/"tid" prefix of one event line. */
void
eventHead(std::ostream &os, char ph, std::size_t pid, std::uint32_t tid)
{
    os << "{\"ph\":\"" << ph << "\",\"pid\":" << pid << ",\"tid\":" << tid;
}

void
writePointEvents(std::ostream &os, std::size_t pid, const TracePoint &pt,
                 bool &first)
{
    auto sep = [&] {
        if (!first) {
            os << ",\n";
        }
        first = false;
    };

    // Metadata: the point is a process, each track a named thread.
    sep();
    eventHead(os, 'M', pid, 0);
    os << ",\"name\":\"process_name\",\"args\":{\"name\":"
       << json::escape(pt.name) << "}}";
    const auto &tracks = pt.sink->tracks();
    for (std::uint32_t tid = 0; tid < tracks.size(); ++tid) {
        sep();
        eventHead(os, 'M', pid, tid);
        os << ",\"name\":\"thread_name\",\"args\":{\"name\":"
           << json::escape(tracks[tid]) << "}}";
    }

    for (const auto &ev : pt.sink->events()) {
        sep();
        switch (ev.kind) {
          case TraceEvent::Kind::Span:
            eventHead(os, 'X', pid, ev.track);
            os << ",\"ts\":" << json::formatDouble(usOf(ev.start))
               << ",\"dur\":" << json::formatDouble(usOf(ev.end - ev.start))
               << ",\"name\":" << json::escape(ev.name) << "}";
            break;
          case TraceEvent::Kind::Instant:
            eventHead(os, 'i', pid, ev.track);
            os << ",\"ts\":" << json::formatDouble(usOf(ev.start))
               << ",\"s\":\"t\",\"name\":" << json::escape(ev.name) << "}";
            break;
          case TraceEvent::Kind::Counter:
            // Chrome keys counter tracks by (pid, name): qualify the
            // name with the track so counters on different components
            // stay separate.
            eventHead(os, 'C', pid, ev.track);
            os << ",\"ts\":" << json::formatDouble(usOf(ev.start))
               << ",\"name\":" << json::escape(tracks[ev.track] + "." +
                                               ev.name)
               << ",\"args\":{\"value\":" << json::formatDouble(ev.value)
               << "}}";
            break;
        }
    }
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<TracePoint> &points)
{
    os << "{\"traceEvents\": [\n";
    bool first = true;
    for (std::size_t pid = 0; pid < points.size(); ++pid) {
        if (points[pid].sink == nullptr) {
            continue;
        }
        writePointEvents(os, pid, points[pid], first);
    }
    os << "\n],\n\"displayTimeUnit\": \"ns\"\n}\n";
}

std::vector<SelfTimeRow>
selfTimes(const ChromeTraceSink &sink)
{
    // Aggregation rows keyed by (track id, span name), created in
    // track-id-then-first-appearance order.
    std::vector<SelfTimeRow> rows;
    std::map<std::pair<std::uint32_t, std::string>, std::size_t> rowOf;

    // Spans of one track, sorted for the nesting sweep: by start, with
    // the enclosing (later-ending) span first on equal starts.
    struct Rec
    {
        Tick start;
        Tick end;
        std::size_t row;
        std::size_t seq;
    };

    std::vector<std::vector<Rec>> perTrack(sink.tracks().size());
    std::size_t seq = 0;
    for (const auto &ev : sink.events()) {
        if (ev.kind != TraceEvent::Kind::Span) {
            continue;
        }
        auto key = std::make_pair(ev.track, std::string(ev.name));
        auto it = rowOf.find(key);
        std::size_t row;
        if (it == rowOf.end()) {
            row = rows.size();
            rowOf.emplace(key, row);
            rows.push_back({sink.tracks()[ev.track], ev.name, 0, 0, 0});
        } else {
            row = it->second;
        }
        rows[row].count += 1;
        rows[row].totalTicks += ev.end - ev.start;
        perTrack[ev.track].push_back({ev.start, ev.end, row, seq++});
    }

    for (auto &recs : perTrack) {
        std::sort(recs.begin(), recs.end(), [](const Rec &a, const Rec &b) {
            if (a.start != b.start) {
                return a.start < b.start;
            }
            if (a.end != b.end) {
                return a.end > b.end;
            }
            return a.seq < b.seq;
        });
        struct Frame
        {
            Tick start;
            Tick end;
            Tick childTicks;
            std::size_t row;
        };
        std::vector<Frame> fstack;
        auto finalize = [&](const Frame &f) {
            Tick dur = f.end - f.start;
            Tick self = dur > f.childTicks ? dur - f.childTicks : 0;
            rows[f.row].selfTicks += self;
            if (!fstack.empty()) {
                fstack.back().childTicks += dur;
            }
        };
        for (const auto &r : recs) {
            while (!fstack.empty() && fstack.back().end <= r.start) {
                Frame f = fstack.back();
                fstack.pop_back();
                finalize(f);
            }
            fstack.push_back({r.start, r.end, 0, r.row});
        }
        while (!fstack.empty()) {
            Frame f = fstack.back();
            fstack.pop_back();
            finalize(f);
        }
    }
    return rows;
}

void
writeSelfTimeSummary(std::ostream &os, const std::vector<TracePoint> &points)
{
    char buf[256];
    os << "self-time per component (us; self = span minus nested spans)\n";
    for (const auto &pt : points) {
        if (pt.sink == nullptr) {
            continue;
        }
        auto rows = selfTimes(*pt.sink);
        if (rows.empty()) {
            continue;
        }
        os << "-- " << pt.name << "\n";
        std::snprintf(buf, sizeof(buf), "   %-32s %-14s %8s %12s %12s\n",
                      "track", "span", "count", "total_us", "self_us");
        os << buf;
        for (const auto &r : rows) {
            std::snprintf(buf, sizeof(buf),
                          "   %-32s %-14s %8" PRIu64 " %12.3f %12.3f\n",
                          r.track.c_str(), r.name.c_str(), r.count,
                          usOf(r.totalTicks), usOf(r.selfTicks));
            os << buf;
        }
    }
}

} // namespace trace
} // namespace cereal
