/**
 * @file
 * Request-scoped distributed tracing for the serving and dataflow
 * layers.
 *
 * The Chrome-trace layer (trace.hh) answers "what was each component
 * doing over time"; this layer answers the per-request question the
 * tail-latency work needs: *where did THIS request's latency go*.
 * Every serving request (and every dataflow exchange batch) gets a
 * trace id, carries it across the fabric inside the CFRM frame's
 * trace-context extension, and leaves behind a RequestTimeline — a
 * causal sequence of stamped ticks whose derived segments provably sum
 * to the end-to-end latency (the conservation invariant, checked at
 * record time and again by tools/trace_query in CI).
 *
 * Segment model (serving; the dataflow stage engine reuses the stamps
 * with its own labels, see critical_path.hh):
 *
 *   admission   arrival -> serialize start (queue wait at the origin)
 *   serialize   serializer service on the origin's worker
 *   stall       serialize end -> fabric send (credit-parked interval;
 *               exactly brackets the time the frame sat in the
 *               per-destination stall buffer)
 *   wire        fabric send -> delivery (egress occupancy, switch
 *               propagation, ingress occupancy — incast lives here)
 *   residual    delivery -> deserialize start (receive-side queue)
 *   deserialize decode service at the receiver
 *   consume     operator compute on the decoded value
 *
 * Everything is integer ticks derived from the event clock, so trace
 * output is byte-identical across host thread counts and across
 * cycle vs fast-forward sim modes: request tracing is part of the
 * *reported stats*, not the (mode-gated) observability layer.
 *
 * Sampling is head-based and seeded: the decision is a pure hash of
 * (trace id, seed) against the configured rate, made before the
 * request runs, so a 1% sample at 100x scale keeps traces bounded
 * while remaining deterministic and thread-count independent.
 */

#ifndef CEREAL_TRACE_REQUEST_TRACE_HH
#define CEREAL_TRACE_REQUEST_TRACE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace cereal {
namespace json {
class Writer;
} // namespace json
namespace stats {
class Distribution;
} // namespace stats
} // namespace cereal

namespace cereal {
namespace trace {

/** Causal segments of one request's end-to-end latency, in order. */
enum class Segment : unsigned
{
    Admission = 0,
    Serialize,
    Stall,
    Wire,
    Residual,
    Deserialize,
    Consume,
};

constexpr unsigned kSegmentCount = 7;

/** "admission" / "serialize" / ... / "consume". */
const char *segmentName(Segment s);

/** Sentinel trace id: "no request" (valid ids are nonzero). */
constexpr std::uint64_t kNoTraceId = 0;

/**
 * One traced request's causal timeline: absolute stamped ticks plus
 * the derived per-segment durations. Stamps are the primary record;
 * segments() derives durations, and conserves() re-checks that the
 * derivation exactly partitions the end-to-end latency.
 */
struct RequestTimeline
{
    std::uint64_t traceId = kNoTraceId;
    std::uint32_t origin = 0;
    std::uint32_t dst = 0;
    /** Request class (gold/silver/bronze) or dataflow stage index. */
    std::uint8_t cls = 0;

    Tick arrival = 0;
    Tick serStart = 0;
    Tick serEnd = 0;
    /** Tick the frame was handed to the fabric (== serEnd unless the
     *  frame credit-stalled; the gap is exactly the parked interval). */
    Tick send = 0;
    Tick deliver = 0;
    Tick deserStart = 0;
    Tick done = 0;
    /** Deserialize share of the receive job (rest is consume). */
    Tick deserTicks = 0;

    Tick endToEnd() const { return done - arrival; }

    /** Derived segment durations, indexed by Segment. */
    void segments(Tick out[kSegmentCount]) const;

    /** Duration of one segment. */
    Tick segment(Segment s) const;

    /** The longest segment (ties break toward the earlier one). */
    Segment dominant() const;

    /**
     * The conservation invariant: stamps are monotone and the seven
     * segments sum to done - arrival exactly.
     */
    bool conserves() const;

    /**
     * Emit as one JSON object (stamps, segment ticks, end-to-end in
     * ticks and derived seconds). Schema-stable.
     */
    void writeJson(json::Writer &w) const;
};

/** Head-based sampling parameters (shared with the Chrome sink). */
struct RequestTraceConfig
{
    /** Fraction of trace ids recorded, (0, 1]; 1 = every request. */
    double sampleRate = 1.0;
    /** Sampling-hash seed; decisions are pure in (id, seed, rate). */
    std::uint64_t seed = 1;
};

/**
 * Deterministic head-based sampling decision for @p trace_id: a pure
 * hash of (id, seed) against the rate, identical across threads,
 * modes, and processes.
 */
bool sampleRequest(std::uint64_t trace_id, const RequestTraceConfig &cfg);

/** Per-segment share of a request population's latency. */
struct SegmentShare
{
    Segment segment = Segment::Admission;
    Tick total = 0;
    /** total / population end-to-end sum. */
    double fraction = 0;
};

/**
 * Aggregate report over one run's sampled timelines: totals, the
 * tail-exemplar timelines resolved through stats::Distribution
 * exemplar ids, and the tail attribution (per-segment share of the
 * >= p99 cohort's latency).
 */
struct RequestTraceReport
{
    /** Completions observed (sampled or not). */
    std::uint64_t requests = 0;
    std::uint64_t sampled = 0;
    double sampleRate = 1.0;
    std::uint64_t seed = 1;
    /** Every recorded timeline passed conserves(). */
    bool conserved = true;

    /** Per-segment totals over the sampled population, ticks. */
    Tick segTotal[kSegmentCount] = {};
    /** Sampled population end-to-end total, ticks. */
    Tick endToEndTotal = 0;

    /** p99/p999 exemplars of the latency distribution, when the
     *  exemplar's request was sampled for tracing. */
    bool p99Resolved = false;
    RequestTimeline p99;
    bool p999Resolved = false;
    RequestTimeline p999;

    /** Segment shares of the >= p99 cohort, largest first. */
    std::vector<SegmentShare> tail;

    /** The raw recorded timelines, in completion order. Carried for
     *  in-process consumers (tests, future tooling); NOT part of the
     *  JSON document, which stays exemplar + aggregate sized. */
    std::vector<RequestTimeline> timelines;

    /** Emit the whole report as one JSON object. Schema-stable. */
    void writeJson(json::Writer &w) const;
};

/**
 * Collects sampled request timelines for one run. Single-threaded,
 * owned by the run (one per runServingFrontend / dataflow stage
 * engine); record() enforces the conservation invariant.
 */
class RequestTraceRecorder
{
  public:
    RequestTraceRecorder() = default;
    explicit RequestTraceRecorder(RequestTraceConfig cfg) : cfg_(cfg) {}

    const RequestTraceConfig &config() const { return cfg_; }

    /** The head-based sampling decision for @p trace_id. */
    bool
    sampled(std::uint64_t trace_id) const
    {
        return sampleRequest(trace_id, cfg_);
    }

    /** Count one completion (sampled or not) toward the report. */
    void countRequest() { ++requests_; }

    /**
     * Record one sampled timeline. Panics unless it conserves — a
     * timeline that does not exactly partition its own latency is a
     * bug in the instrumentation, never data.
     */
    void record(const RequestTimeline &t);

    const std::vector<RequestTimeline> &timelines() const
    {
        return timelines_;
    }

    /** The recorded timeline with @p trace_id, or nullptr. */
    const RequestTimeline *find(std::uint64_t trace_id) const;

    /**
     * Build the aggregate report, resolving the p99/p999 exemplar ids
     * of @p latency (stats::Distribution::exemplarAt) against the
     * recorded timelines.
     */
    RequestTraceReport report(const stats::Distribution &latency) const;

  private:
    RequestTraceConfig cfg_;
    std::uint64_t requests_ = 0;
    std::vector<RequestTimeline> timelines_;
    /** traceId -> index into timelines_. */
    std::unordered_map<std::uint64_t, std::size_t> byId_;
};

} // namespace trace
} // namespace cereal

#endif // CEREAL_TRACE_REQUEST_TRACE_HH
