#include "trace/critical_path.hh"

#include <algorithm>
#include <cmath>

#include "sim/json.hh"

namespace cereal {
namespace trace {

std::vector<SegmentShare>
tailAttribution(const std::vector<RequestTimeline> &timelines, double q)
{
    std::vector<SegmentShare> out;
    if (timelines.empty()) {
        return out;
    }
    // Nearest-rank threshold over integer-tick latencies: exact and
    // order-independent, so the cohort is the same regardless of how
    // the timelines were collected.
    std::vector<Tick> e2e;
    e2e.reserve(timelines.size());
    for (const auto &t : timelines) {
        e2e.push_back(t.endToEnd());
    }
    std::sort(e2e.begin(), e2e.end());
    std::size_t rank = 1;
    if (q > 0 && q < 1) {
        rank = static_cast<std::size_t>(std::ceil(
            q * static_cast<double>(e2e.size()) - 1e-9));
        if (rank == 0) {
            rank = 1;
        }
    } else if (q >= 1) {
        rank = e2e.size();
    }
    const Tick threshold = e2e[rank - 1];

    Tick segTotal[kSegmentCount] = {};
    Tick cohortE2e = 0;
    for (const auto &t : timelines) {
        if (t.endToEnd() < threshold) {
            continue;
        }
        Tick seg[kSegmentCount];
        t.segments(seg);
        for (unsigned i = 0; i < kSegmentCount; ++i) {
            segTotal[i] += seg[i];
        }
        cohortE2e += t.endToEnd();
    }

    out.reserve(kSegmentCount);
    for (unsigned i = 0; i < kSegmentCount; ++i) {
        SegmentShare s;
        s.segment = static_cast<Segment>(i);
        s.total = segTotal[i];
        s.fraction = cohortE2e == 0
                         ? 0
                         : static_cast<double>(segTotal[i]) /
                               static_cast<double>(cohortE2e);
        out.push_back(s);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const SegmentShare &a, const SegmentShare &b) {
                         return a.total > b.total;
                     });
    return out;
}

bool
StageCriticalPath::conserves() const
{
    return valid &&
           mapQueue + serialize + wire + rxQueue + deserialize + reduce ==
               total;
}

const char *
StageCriticalPath::dominant() const
{
    const char *names[6] = {"map_queue",   "serialize", "wire",
                            "rx_queue",    "deserialize", "reduce"};
    const Tick seg[6] = {mapQueue, serialize, wire,
                         rxQueue,  deserialize, reduce};
    unsigned best = 0;
    for (unsigned i = 1; i < 6; ++i) {
        if (seg[i] > seg[best]) {
            best = i;
        }
    }
    return names[best];
}

void
StageCriticalPath::writeJson(json::Writer &w) const
{
    w.beginObject();
    w.kv("valid", static_cast<std::uint64_t>(valid ? 1 : 0));
    w.kv("node", static_cast<std::uint64_t>(node));
    w.kv("src", static_cast<std::uint64_t>(src));
    w.kv("map_queue_ticks", mapQueue);
    w.kv("serialize_ticks", serialize);
    w.kv("wire_ticks", wire);
    w.kv("rx_queue_ticks", rxQueue);
    w.kv("deserialize_ticks", deserialize);
    w.kv("reduce_ticks", reduce);
    w.kv("total_ticks", total);
    w.kv("dominant_segment", valid ? dominant() : "none");
    w.kv("conserved", static_cast<std::uint64_t>(conserves() ? 1 : 0));
    w.endObject();
}

StageCriticalPath
stageCriticalPath(const RequestTimeline &bounding, Tick stage_start,
                  Tick reduce_end)
{
    StageCriticalPath p;
    if (bounding.traceId == kNoTraceId ||
        bounding.serStart < stage_start || reduce_end < bounding.done) {
        return p;
    }
    p.valid = true;
    p.node = bounding.dst;
    p.src = bounding.origin;
    p.mapQueue = bounding.serStart - stage_start;
    p.serialize = bounding.serEnd - bounding.serStart;
    p.wire = bounding.deliver - bounding.send;
    p.rxQueue = bounding.deserStart - bounding.deliver;
    p.deserialize = bounding.done - bounding.deserStart;
    p.reduce = reduce_end - bounding.done;
    p.total = reduce_end - stage_start;
    return p;
}

} // namespace trace
} // namespace cereal
