#include "trace/trace.hh"

namespace cereal {
namespace trace {

namespace {

/**
 * Thread-local: each sweep point runs start-to-finish on one pool
 * thread, so per-thread roots keep concurrent points isolated without
 * locks — the same reason point JSON slots need no synchronisation.
 */
thread_local TraceSink *tls_sink = nullptr;
thread_local std::uint32_t tls_root_track = 0;

} // namespace

TraceSink *
currentSink()
{
    return tls_sink;
}

TraceEmitter
current()
{
    if (tls_sink == nullptr) {
        return {};
    }
    // Empty path: children of the root are named without a prefix
    // ("cereal", "java.ser", ...); root-level events land on "main".
    return TraceEmitter(tls_sink, tls_root_track, "");
}

ScopedTrace::ScopedTrace(TraceSink &sink) : prev_(tls_sink)
{
    tls_sink = &sink;
    tls_root_track = sink.track("main");
}

ScopedTrace::~ScopedTrace()
{
    tls_sink = prev_;
    if (tls_sink != nullptr) {
        tls_root_track = tls_sink->track("main");
    }
}

} // namespace trace
} // namespace cereal
