/**
 * @file
 * Low-overhead deterministic event tracer.
 *
 * The simulator's aggregate stats say *how long* a run took; traces say
 * *where the cycles went*. A TraceSink records cycle-stamped events on
 * named tracks; components hold a TraceEmitter — a (sink, track) handle
 * — and emit three event kinds:
 *
 *  - span:    a [start, end] tick interval (a pipeline op, a DRAM data
 *             burst, a core phase, a fabric transmission);
 *  - instant: a single-tick marker (an MAI hit/miss, a TLB miss);
 *  - counter: a sampled value over time (queue depths).
 *
 * Tracing is nullable everywhere: a default-constructed TraceEmitter is
 * disabled and every call on it returns before touching a string or
 * allocating — instrumented hot paths cost one branch when tracing is
 * off (asserted by the zero-allocation test in test_trace.cc).
 *
 * Determinism contract: sinks are single-threaded and owned by one
 * sweep point; events are recorded in program order, track ids in
 * first-use order. Because every sweep point builds its own simulation
 * context and its own sink, an N-thread bench run produces byte-wise
 * the same trace document as a serial run (the same slot-merge argument
 * as runner::SweepRunner's JSON).
 *
 * Event names must be string literals (or otherwise outlive the sink):
 * emitters store the pointer, never a copy, so recording an event
 * performs no allocation.
 */

#ifndef CEREAL_TRACE_TRACE_HH
#define CEREAL_TRACE_TRACE_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace cereal {
namespace trace {

/** One recorded event. `name` must outlive the sink (use literals). */
struct TraceEvent
{
    enum class Kind : std::uint8_t { Span, Instant, Counter };

    Kind kind;
    /** Track id from TraceSink::track()/uniqueTrack(). */
    std::uint32_t track;
    /** Start tick (spans) or timestamp (instants/counters). */
    Tick start;
    /** End tick; meaningful for spans only. */
    Tick end;
    const char *name;
    /** Sampled value; meaningful for counters only. */
    double value;
};

/**
 * Receiver of trace events. Implementations are single-threaded: a
 * sink belongs to the one thread running its sweep point.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Id of the track called @p name; same name -> same id. */
    virtual std::uint32_t track(const std::string &name) = 0;

    /**
     * A fresh track per call: the first use of @p name gets the name
     * verbatim, later uses get "name#1", "name#2", ... Used by
     * TraceEmitter::sub() so repeated instantiations of a component
     * (e.g. two measureCereal() runs in one point, both restarting at
     * tick 0) land on separate tracks instead of interleaving spans.
     */
    virtual std::uint32_t uniqueTrack(const std::string &name) = 0;

    virtual void record(const TraceEvent &ev) = 0;
};

/**
 * A component's handle onto one track of a sink. Cheap to copy;
 * default-constructed == disabled (all operations no-ops).
 */
class TraceEmitter
{
  public:
    TraceEmitter() = default;

    TraceEmitter(TraceSink *sink, std::uint32_t track, std::string path)
        : sink_(sink), track_(track), path_(std::move(path))
    {
    }

    bool enabled() const { return sink_ != nullptr; }

    /** The sink, or nullptr when disabled. */
    TraceSink *sink() const { return sink_; }

    /** Dotted track path ("" when disabled). */
    const std::string &path() const { return path_; }

    /**
     * Child emitter on track "<this>.<child>" (fresh per call, see
     * TraceSink::uniqueTrack). Disabled emitters return a disabled
     * child without composing any string.
     */
    TraceEmitter
    sub(const char *child) const
    {
        if (!sink_) {
            return {};
        }
        std::string p =
            path_.empty() ? std::string(child) : path_ + "." + child;
        std::uint32_t id = sink_->uniqueTrack(p);
        return TraceEmitter(sink_, id, std::move(p));
    }

    /** Record the [start, end] span @p name. */
    void
    span(const char *name, Tick start, Tick end) const
    {
        if (!sink_) {
            return;
        }
        sink_->record({TraceEvent::Kind::Span, track_, start, end, name, 0.0});
    }

    /** Record an instant event at @p at. */
    void
    instant(const char *name, Tick at) const
    {
        if (!sink_) {
            return;
        }
        sink_->record({TraceEvent::Kind::Instant, track_, at, at, name, 0.0});
    }

    /** Record a counter sample at @p at. */
    void
    counter(const char *name, Tick at, double value) const
    {
        if (!sink_) {
            return;
        }
        sink_->record(
            {TraceEvent::Kind::Counter, track_, at, at, name, value});
    }

  private:
    TraceSink *sink_ = nullptr;
    std::uint32_t track_ = 0;
    std::string path_;
};

/** Source of "now" for SpanScope (CoreModel and EventQueue adapt to it). */
class TraceClock
{
  public:
    virtual ~TraceClock() = default;
    virtual Tick traceNow() const = 0;
};

/**
 * RAII span: reads the clock at construction and emits a span up to
 * the clock's value at destruction (or at an explicit end()). Disabled
 * emitters make it free — the clock is not even read.
 */
class SpanScope
{
  public:
    SpanScope(TraceEmitter em, const char *name, const TraceClock &clock)
        : em_(std::move(em)), clock_(&clock), name_(name),
          start_(em_.enabled() ? clock.traceNow() : 0)
    {
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    /** Close the span now (idempotent). */
    void
    end()
    {
        if (done_) {
            return;
        }
        done_ = true;
        if (em_.enabled()) {
            em_.span(name_, start_, clock_->traceNow());
        }
    }

    ~SpanScope() { end(); }

  private:
    TraceEmitter em_;
    const TraceClock *clock_;
    const char *name_;
    Tick start_;
    bool done_ = false;
};

/**
 * Ambient per-thread trace root.
 *
 * A sweep point (or the fuzzer CLI) installs a sink with ScopedTrace;
 * components that build their own simulation contexts deep inside a
 * measurement (CerealContext, ClusterSim, the harness) pick it up via
 * current() instead of threading an emitter through every signature.
 * With no sink installed, current() is disabled and costs one TLS read.
 */
TraceEmitter current();

/** The installed sink (nullptr when tracing is off). */
TraceSink *currentSink();

/** Installs @p sink as the thread's trace root for its lifetime. */
class ScopedTrace
{
  public:
    explicit ScopedTrace(TraceSink &sink);
    ~ScopedTrace();

    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;

  private:
    TraceSink *prev_;
};

} // namespace trace
} // namespace cereal

#endif // CEREAL_TRACE_TRACE_HH
