/**
 * @file
 * Buffering trace sink + Chrome trace_event JSON exporter.
 *
 * ChromeTraceSink records events in memory; writeChromeTrace() renders
 * one or more sinks (one per sweep point) into a single Chrome
 * trace_event document loadable in chrome://tracing or Perfetto
 * (https://ui.perfetto.dev): each sweep point becomes a process (pid =
 * registration slot), each track a named thread, spans become "X"
 * (complete) events, instants "i" events, counters "C" events.
 * Timestamps are microseconds (ticks are picoseconds, so ts = tick /
 * 1e6) rendered with json::formatDouble — the shortest round-trippable
 * form — so equal runs produce byte-identical documents.
 *
 * selfTimes() computes the per-(track, span-name) self time: the span's
 * duration minus the duration of spans nested inside it on the same
 * track. Because instrumented components tile their busy time with
 * spans (e.g. CoreModel phases cover [start, finish] and stall spans
 * nest inside phases), self times per track sum to the track's total
 * busy ticks — the property test_trace.cc pins against reported cycle
 * totals.
 */

#ifndef CEREAL_TRACE_CHROME_TRACE_HH
#define CEREAL_TRACE_CHROME_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/trace.hh"

namespace cereal {
namespace trace {

/** In-memory TraceSink used by benches, tests, and the fuzzer. */
class ChromeTraceSink : public TraceSink
{
  public:
    std::uint32_t track(const std::string &name) override;
    std::uint32_t uniqueTrack(const std::string &name) override;
    void record(const TraceEvent &ev) override;

    /** Track names, indexed by track id (creation order). */
    const std::vector<std::string> &tracks() const { return trackNames_; }

    /** Events in recorded order. */
    const std::vector<TraceEvent> &events() const { return events_; }

  private:
    std::vector<std::string> trackNames_;
    std::unordered_map<std::string, std::uint32_t> byName_;
    std::unordered_map<std::string, std::uint32_t> nameUses_;
    std::vector<TraceEvent> events_;
};

/** One sweep point's worth of trace data (pid = position in the list). */
struct TracePoint
{
    std::string name;
    const ChromeTraceSink *sink;
};

/** Render @p points as one merged Chrome trace_event document. */
void writeChromeTrace(std::ostream &os, const std::vector<TracePoint> &points);

/** Aggregated span statistics for one (track, span name) pair. */
struct SelfTimeRow
{
    std::string track;
    std::string name;
    std::uint64_t count;
    /** Sum of span durations. */
    Tick totalTicks;
    /** totalTicks minus ticks covered by spans nested inside. */
    Tick selfTicks;
};

/**
 * Per-(track, name) self times of @p sink's spans, ordered by track id
 * then first appearance. Spans on one track are treated as a properly
 * nested forest (the emitters' contract); a span exactly covering
 * another is the parent (ties broken: earlier start, then later end).
 */
std::vector<SelfTimeRow> selfTimes(const ChromeTraceSink &sink);

/** Compact text table of selfTimes() for every point. */
void writeSelfTimeSummary(std::ostream &os,
                          const std::vector<TracePoint> &points);

} // namespace trace
} // namespace cereal

#endif // CEREAL_TRACE_CHROME_TRACE_HH
