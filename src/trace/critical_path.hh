/**
 * @file
 * Critical-path analysis over request timelines.
 *
 * Two consumers:
 *
 *  - Serving tail attribution: given a population of sampled
 *    RequestTimelines, which segments explain the >= p99 cohort's
 *    latency? tailAttribution() selects the cohort by nearest-rank
 *    quantile over integer-tick end-to-end latencies (so the cohort is
 *    identical across threads and sim modes) and returns per-segment
 *    shares, largest first.
 *
 *  - Dataflow barriers: each exchange stage ends when the slowest
 *    destination finishes its reduce, and that destination is bounded
 *    by its last-arriving batch. StageCriticalPath names that
 *    (node, src) pair and splits the stage's wall time into the
 *    bounding batch's causal segments — conservation-checked against
 *    the stage's own start/end, same invariant as the serving side.
 */

#ifndef CEREAL_TRACE_CRITICAL_PATH_HH
#define CEREAL_TRACE_CRITICAL_PATH_HH

#include <vector>

#include "trace/request_trace.hh"

namespace cereal {
namespace trace {

/**
 * Per-segment attribution of the tail cohort's latency: the cohort is
 * every timeline whose end-to-end latency is at or above the
 * nearest-rank @p q quantile of the population. Shares are returned
 * largest-total first (ties break toward the earlier segment), and
 * fractions are of the cohort's summed end-to-end latency, so they sum
 * to 1 up to the residual-free conservation invariant. Empty input
 * yields an empty vector.
 */
std::vector<SegmentShare>
tailAttribution(const std::vector<RequestTimeline> &timelines, double q);

/**
 * The causal path that bounds one dataflow exchange barrier: the
 * destination whose reduce finishes last, and within it the batch that
 * arrived last. Segment semantics differ from serving (there is no
 * admission or credit stall; map compute and exchange queueing share
 * the pre-serialize gap, and the post-barrier reduce is explicit).
 */
struct StageCriticalPath
{
    bool valid = false;
    /** Barrier-bounding destination node. */
    std::uint32_t node = 0;
    /** Origin of that destination's last-arriving batch. */
    std::uint32_t src = 0;

    /** Stage start -> bounding batch's serialize start (map compute
     *  plus exchange-queue wait at the origin). */
    Tick mapQueue = 0;
    Tick serialize = 0;
    Tick wire = 0;
    /** Delivery -> deserialize start at the receiver. */
    Tick rxQueue = 0;
    Tick deserialize = 0;
    /** Barrier release -> reduce completion at the bounding node. */
    Tick reduce = 0;
    /** Stage end - stage start. */
    Tick total = 0;

    /** Sum of the six segments equals total exactly. */
    bool conserves() const;

    /** Name of the longest segment (ties toward the earlier one). */
    const char *dominant() const;

    /** Emit as one JSON object. Schema-stable. */
    void writeJson(json::Writer &w) const;
};

/**
 * Build a stage critical path from the bounding batch's timeline.
 * The batch timeline uses serving-stamp conventions (send == serEnd,
 * dataflow never credit-stalls; done == deserialize completion);
 * @p stage_start and @p reduce_end bracket the stage itself.
 */
StageCriticalPath
stageCriticalPath(const RequestTimeline &bounding, Tick stage_start,
                  Tick reduce_end);

} // namespace trace
} // namespace cereal

#endif // CEREAL_TRACE_CRITICAL_PATH_HH
