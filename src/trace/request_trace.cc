#include "trace/request_trace.hh"

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "trace/critical_path.hh"

namespace cereal {
namespace trace {

const char *
segmentName(Segment s)
{
    switch (s) {
      case Segment::Admission:
        return "admission";
      case Segment::Serialize:
        return "serialize";
      case Segment::Stall:
        return "stall";
      case Segment::Wire:
        return "wire";
      case Segment::Residual:
        return "residual";
      case Segment::Deserialize:
        return "deserialize";
      case Segment::Consume:
        return "consume";
    }
    panic("bad segment");
}

void
RequestTimeline::segments(Tick out[kSegmentCount]) const
{
    out[static_cast<unsigned>(Segment::Admission)] = serStart - arrival;
    out[static_cast<unsigned>(Segment::Serialize)] = serEnd - serStart;
    out[static_cast<unsigned>(Segment::Stall)] = send - serEnd;
    out[static_cast<unsigned>(Segment::Wire)] = deliver - send;
    out[static_cast<unsigned>(Segment::Residual)] = deserStart - deliver;
    out[static_cast<unsigned>(Segment::Deserialize)] = deserTicks;
    out[static_cast<unsigned>(Segment::Consume)] =
        (done - deserStart) - deserTicks;
}

Tick
RequestTimeline::segment(Segment s) const
{
    Tick seg[kSegmentCount];
    segments(seg);
    return seg[static_cast<unsigned>(s)];
}

Segment
RequestTimeline::dominant() const
{
    Tick seg[kSegmentCount];
    segments(seg);
    unsigned best = 0;
    for (unsigned i = 1; i < kSegmentCount; ++i) {
        if (seg[i] > seg[best]) {
            best = i;
        }
    }
    return static_cast<Segment>(best);
}

bool
RequestTimeline::conserves() const
{
    // Monotone stamps first: with unsigned ticks an out-of-order stamp
    // would otherwise wrap into a huge "valid" segment.
    if (!(arrival <= serStart && serStart <= serEnd && serEnd <= send &&
          send <= deliver && deliver <= deserStart &&
          deserStart <= done)) {
        return false;
    }
    if (deserTicks > done - deserStart) {
        return false;
    }
    Tick seg[kSegmentCount];
    segments(seg);
    Tick sum = 0;
    for (unsigned i = 0; i < kSegmentCount; ++i) {
        sum += seg[i];
    }
    return sum == endToEnd();
}

void
RequestTimeline::writeJson(json::Writer &w) const
{
    w.beginObject();
    w.kv("trace_id", traceId);
    w.kv("origin", static_cast<std::uint64_t>(origin));
    w.kv("dst", static_cast<std::uint64_t>(dst));
    w.kv("class", static_cast<std::uint64_t>(cls));
    w.kv("arrival_tick", arrival);
    w.kv("ser_start_tick", serStart);
    w.kv("ser_end_tick", serEnd);
    w.kv("send_tick", send);
    w.kv("deliver_tick", deliver);
    w.kv("deser_start_tick", deserStart);
    w.kv("done_tick", done);
    Tick seg[kSegmentCount];
    segments(seg);
    w.key("segments_ticks");
    w.beginObject();
    for (unsigned i = 0; i < kSegmentCount; ++i) {
        w.kv(segmentName(static_cast<Segment>(i)), seg[i]);
    }
    w.endObject();
    w.kv("dominant_segment", segmentName(dominant()));
    w.kv("end_to_end_ticks", endToEnd());
    w.kv("end_to_end_seconds", ticksToSeconds(endToEnd()));
    w.endObject();
}

bool
sampleRequest(std::uint64_t trace_id, const RequestTraceConfig &cfg)
{
    if (trace_id == kNoTraceId) {
        return false;
    }
    if (cfg.sampleRate >= 1.0) {
        return true;
    }
    if (cfg.sampleRate <= 0.0) {
        return false;
    }
    // splitmix64 over (id, seed): a pure, platform-independent hash,
    // so the sampled subset is identical across threads and modes.
    std::uint64_t x = trace_id ^ (cfg.seed * 0x9e3779b97f4a7c15ULL);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    // Compare in double space: x / 2^64 < rate. 53-bit precision is
    // plenty for a sampling decision and keeps the threshold exact for
    // representable rates.
    const double u =
        static_cast<double>(x) / 18446744073709551616.0; // 2^64
    return u < cfg.sampleRate;
}

void
RequestTraceRecorder::record(const RequestTimeline &t)
{
    panic_if(t.traceId == kNoTraceId,
             "request timeline needs a nonzero trace id");
    panic_if(!t.conserves(),
             "request %llu timeline violates latency conservation "
             "(segments do not partition end-to-end)",
             (unsigned long long)t.traceId);
    panic_if(byId_.count(t.traceId) != 0,
             "duplicate request timeline for trace id %llu",
             (unsigned long long)t.traceId);
    byId_.emplace(t.traceId, timelines_.size());
    timelines_.push_back(t);
}

const RequestTimeline *
RequestTraceRecorder::find(std::uint64_t trace_id) const
{
    auto it = byId_.find(trace_id);
    return it == byId_.end() ? nullptr : &timelines_[it->second];
}

RequestTraceReport
RequestTraceRecorder::report(const stats::Distribution &latency) const
{
    RequestTraceReport r;
    r.requests = requests_;
    r.sampled = timelines_.size();
    r.sampleRate = cfg_.sampleRate;
    r.seed = cfg_.seed;
    for (const auto &t : timelines_) {
        Tick seg[kSegmentCount];
        t.segments(seg);
        for (unsigned i = 0; i < kSegmentCount; ++i) {
            r.segTotal[i] += seg[i];
        }
        r.endToEndTotal += t.endToEnd();
        r.conserved = r.conserved && t.conserves();
    }
    const std::uint64_t p99_id = latency.exemplarAt(0.99);
    if (const RequestTimeline *t = find(p99_id)) {
        r.p99Resolved = true;
        r.p99 = *t;
    }
    const std::uint64_t p999_id = latency.exemplarAt(0.999);
    if (const RequestTimeline *t = find(p999_id)) {
        r.p999Resolved = true;
        r.p999 = *t;
    }
    r.tail = tailAttribution(timelines_, 0.99);
    r.timelines = timelines_;
    return r;
}

void
RequestTraceReport::writeJson(json::Writer &w) const
{
    w.beginObject();
    w.kv("requests", requests);
    w.kv("sampled", sampled);
    w.kv("sample_rate", sampleRate);
    w.kv("seed", seed);
    w.kv("conserved", static_cast<std::uint64_t>(conserved ? 1 : 0));
    w.key("segment_total_ticks");
    w.beginObject();
    for (unsigned i = 0; i < kSegmentCount; ++i) {
        w.kv(segmentName(static_cast<Segment>(i)), segTotal[i]);
    }
    w.endObject();
    w.kv("end_to_end_total_ticks", endToEndTotal);
    w.key("tail_attribution");
    w.beginArray();
    for (const auto &s : tail) {
        w.beginObject();
        w.kv("segment", segmentName(s.segment));
        w.kv("total_ticks", s.total);
        w.kv("fraction", s.fraction);
        w.endObject();
    }
    w.endArray();
    w.key("p99_exemplar");
    if (p99Resolved) {
        p99.writeJson(w);
    } else {
        w.null();
    }
    w.key("p999_exemplar");
    if (p999Resolved) {
        p999.writeJson(w);
    } else {
        w.null();
    }
    w.endObject();
}

} // namespace trace
} // namespace cereal
