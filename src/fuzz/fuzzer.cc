#include "fuzz/fuzzer.hh"

#include "cluster/frame.hh"
#include "fuzz/mutator.hh"
#include "heap/walker.hh"
#include "serde/decode_error.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace cereal {

namespace {

/** Fresh decode heaps live here; a new Heap per attempt keeps failed
 *  decodes from contaminating later ones. */
constexpr Addr kDecodeBase = 0x9'0000'0000ULL;
constexpr Addr kReDecodeBase = 0x11'0000'0000ULL;

} // namespace

DecoderFuzzer::DecoderFuzzer() : srcHeap_(reg_, 0x1'0000'0000ULL)
{
    root_ = buildCorpusGraph(reg_, srcHeap_);
    for (const auto &b : serde::backends()) {
        serializers_.emplace(b.name,
                             serde::makeSerializer(b.name, &reg_));
    }
    corpus_ = seedCorpus(reg_, srcHeap_, root_);
    if (trace::currentSink() != nullptr) {
        for (const auto &f : formats()) {
            trace_.emplace(
                f, trace::current().sub(("fuzz." + f).c_str()));
        }
    }
}

const std::vector<std::string> &
DecoderFuzzer::formats()
{
    static const std::vector<std::string> kFormats = [] {
        auto names = serde::availableBackends();
        names.push_back("cluster");
        return names;
    }();
    return kFormats;
}

void
DecoderFuzzer::addCorpus(std::vector<CorpusEntry> extra)
{
    for (auto &e : extra) {
        corpus_.push_back(std::move(e));
    }
}

Serializer *
DecoderFuzzer::serializerFor(const std::string &format)
{
    auto it = serializers_.find(format);
    fatal_if(it == serializers_.end(), "unknown format '%s'",
             format.c_str());
    return it->second.get();
}

trace::TraceEmitter
DecoderFuzzer::traceFor(const std::string &format) const
{
    auto it = trace_.find(format);
    return it == trace_.end() ? trace::TraceEmitter() : it->second;
}

void
DecoderFuzzer::attemptFrame(const std::vector<std::uint8_t> &bytes,
                            const std::string &seed_name,
                            std::uint64_t iteration, bool round_trip,
                            FuzzStats &stats)
{
    ++stats.attempts;
    const auto em = traceFor("cluster");
    Frame frame;
    try {
        auto res = tryDecodeFrame(bytes);
        if (!res.ok()) {
            ++stats.decodeError;
            ++stats.byStatus[decodeStatusName(res.error().status())];
            em.instant("decode_error", iteration);
            return;
        }
        frame = res.value();
    } catch (const std::exception &e) {
        stats.findings.push_back({"unexpected-exception", "cluster",
                                  seed_name, iteration, e.what(), bytes});
        em.instant("finding", iteration);
        return;
    }
    ++stats.decodeOk;
    em.instant("decode_ok", iteration);
    if (!round_trip) {
        return;
    }

    // Round-trip oracle: the frame encoding is canonical, so any
    // accepted input must re-encode to the exact same bytes.
    try {
        auto bytes2 = encodeFrame(frame);
        if (bytes2 != bytes) {
            stats.findings.push_back({"roundtrip-mismatch", "cluster",
                                      seed_name, iteration,
                                      "re-encode differs from input",
                                      bytes});
            em.instant("finding", iteration);
            return;
        }
        ++stats.roundTrips;
    } catch (const std::exception &e) {
        stats.findings.push_back({"roundtrip-exception", "cluster",
                                  seed_name, iteration, e.what(), bytes});
        em.instant("finding", iteration);
    }
}

void
DecoderFuzzer::attempt(const std::string &format,
                       const std::vector<std::uint8_t> &bytes,
                       const std::string &seed_name,
                       std::uint64_t iteration, bool round_trip,
                       FuzzStats &stats)
{
    if (format == "cluster") {
        attemptFrame(bytes, seed_name, iteration, round_trip, stats);
        return;
    }
    ++stats.attempts;
    Serializer *ser = serializerFor(format);
    const auto em = traceFor(format);
    Heap dst(reg_, kDecodeBase);

    Addr root = 0;
    try {
        auto res = ser->tryDeserialize(bytes, dst, nullptr);
        if (!res.ok()) {
            ++stats.decodeError;
            ++stats.byStatus[decodeStatusName(res.error().status())];
            em.instant("decode_error", iteration);
            return;
        }
        root = res.value();
    } catch (const std::exception &e) {
        stats.findings.push_back({"unexpected-exception", format,
                                  seed_name, iteration, e.what(), bytes});
        em.instant("finding", iteration);
        return;
    }
    ++stats.decodeOk;
    em.instant("decode_ok", iteration);
    if (!round_trip) {
        return;
    }

    // Round-trip oracle: a stream the decoder accepted must describe a
    // well-formed graph, so re-encoding and re-decoding it has no
    // excuse to fail, and the result must be isomorphic.
    try {
        auto stream2 = ser->trySerialize(dst, root, nullptr);
        if (!stream2.ok()) {
            stats.findings.push_back({"roundtrip-exception", format,
                                      seed_name, iteration,
                                      stream2.error().what(), bytes});
            em.instant("finding", iteration);
            return;
        }
        Heap dst2(reg_, kReDecodeBase);
        auto redec = ser->tryDeserialize(stream2.value(), dst2, nullptr);
        if (!redec.ok()) {
            stats.findings.push_back({"roundtrip-exception", format,
                                      seed_name, iteration,
                                      redec.error().what(), bytes});
            em.instant("finding", iteration);
            return;
        }
        std::string why;
        if (!graphEquals(dst, root, dst2, redec.value(), &why)) {
            stats.findings.push_back({"roundtrip-mismatch", format,
                                      seed_name, iteration, why, bytes});
            em.instant("finding", iteration);
            return;
        }
        ++stats.roundTrips;
    } catch (const std::exception &e) {
        stats.findings.push_back({"roundtrip-exception", format,
                                  seed_name, iteration, e.what(), bytes});
        em.instant("finding", iteration);
    }
}

FuzzStats
DecoderFuzzer::run(const FuzzConfig &cfg)
{
    FuzzStats stats;
    Rng rng(cfg.seed);

    std::vector<const CorpusEntry *> pool;
    std::vector<std::vector<std::uint8_t>> splice_pool;
    for (const auto &e : corpus_) {
        splice_pool.push_back(e.bytes);
        if (cfg.format == "all" || e.format == cfg.format) {
            pool.push_back(&e);
        }
    }
    fatal_if(pool.empty(), "no corpus entries match format '%s'",
             cfg.format.c_str());

    for (std::uint64_t i = 0; i < cfg.iterations; ++i) {
        ++stats.iterations;
        const CorpusEntry &seed = *pool[rng.below(pool.size())];
        auto mutated =
            mutate(seed.bytes, rng, cfg.maxMutations, splice_pool);
        for (const auto &format : formats()) {
            attempt(format, mutated, seed.name, i, cfg.roundTrip, stats);
        }
    }
    return stats;
}

FuzzStats
DecoderFuzzer::replayCorpus()
{
    FuzzStats stats;
    for (const auto &e : corpus_) {
        ++stats.iterations;
        for (const auto &format : formats()) {
            attempt(format, e.bytes, e.name, 0, true, stats);
        }
    }
    return stats;
}

} // namespace cereal
