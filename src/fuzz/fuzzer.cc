#include "fuzz/fuzzer.hh"

#include "cluster/frame.hh"
#include "fuzz/mutator.hh"
#include "heap/walker.hh"
#include "serde/decode_error.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace cereal {

namespace {

/** Fresh decode heaps live here; a new Heap per attempt keeps failed
 *  decodes from contaminating later ones. */
constexpr Addr kDecodeBase = 0x9'0000'0000ULL;
constexpr Addr kReDecodeBase = 0x11'0000'0000ULL;

} // namespace

DecoderFuzzer::DecoderFuzzer() : srcHeap_(reg_, 0x1'0000'0000ULL)
{
    root_ = buildCorpusGraph(reg_, srcHeap_);
    kryo_.registerAll(reg_);
    cereal_.registerAll(reg_);
    corpus_ = seedCorpus(reg_, srcHeap_, root_);
}

const std::vector<std::string> &
DecoderFuzzer::formats()
{
    static const std::vector<std::string> kFormats = {
        "java", "kryo", "skyway", "cereal", "cluster"};
    return kFormats;
}

void
DecoderFuzzer::addCorpus(std::vector<CorpusEntry> extra)
{
    for (auto &e : extra) {
        corpus_.push_back(std::move(e));
    }
}

Serializer *
DecoderFuzzer::serializerFor(const std::string &format)
{
    if (format == "java") {
        return &java_;
    }
    if (format == "kryo") {
        return &kryo_;
    }
    if (format == "skyway") {
        return &skyway_;
    }
    fatal_if(format != "cereal", "unknown format '%s'", format.c_str());
    return &cereal_;
}

void
DecoderFuzzer::attemptFrame(const std::vector<std::uint8_t> &bytes,
                            const std::string &seed_name,
                            std::uint64_t iteration, bool round_trip,
                            FuzzStats &stats)
{
    ++stats.attempts;
    Frame frame;
    try {
        frame = decodeFrame(bytes);
    } catch (const DecodeError &e) {
        ++stats.decodeError;
        ++stats.byStatus[decodeStatusName(e.status())];
        return;
    } catch (const std::exception &e) {
        stats.findings.push_back({"unexpected-exception", "cluster",
                                  seed_name, iteration, e.what(), bytes});
        return;
    }
    ++stats.decodeOk;
    if (!round_trip) {
        return;
    }

    // Round-trip oracle: the frame encoding is canonical, so any
    // accepted input must re-encode to the exact same bytes.
    try {
        auto bytes2 = encodeFrame(frame);
        if (bytes2 != bytes) {
            stats.findings.push_back({"roundtrip-mismatch", "cluster",
                                      seed_name, iteration,
                                      "re-encode differs from input",
                                      bytes});
            return;
        }
        ++stats.roundTrips;
    } catch (const std::exception &e) {
        stats.findings.push_back({"roundtrip-exception", "cluster",
                                  seed_name, iteration, e.what(), bytes});
    }
}

void
DecoderFuzzer::attempt(const std::string &format,
                       const std::vector<std::uint8_t> &bytes,
                       const std::string &seed_name,
                       std::uint64_t iteration, bool round_trip,
                       FuzzStats &stats)
{
    if (format == "cluster") {
        attemptFrame(bytes, seed_name, iteration, round_trip, stats);
        return;
    }
    ++stats.attempts;
    Serializer *ser = serializerFor(format);
    Heap dst(reg_, kDecodeBase);

    Addr root;
    try {
        root = ser->deserialize(bytes, dst, nullptr);
    } catch (const DecodeError &e) {
        ++stats.decodeError;
        ++stats.byStatus[decodeStatusName(e.status())];
        return;
    } catch (const std::exception &e) {
        stats.findings.push_back({"unexpected-exception", format,
                                  seed_name, iteration, e.what(), bytes});
        return;
    }
    ++stats.decodeOk;
    if (!round_trip) {
        return;
    }

    // Round-trip oracle: a stream the decoder accepted must describe a
    // well-formed graph, so re-encoding and re-decoding it has no
    // excuse to fail, and the result must be isomorphic.
    try {
        auto stream2 = ser->serialize(dst, root, nullptr);
        Heap dst2(reg_, kReDecodeBase);
        Addr root2 = ser->deserialize(stream2, dst2, nullptr);
        std::string why;
        if (!graphEquals(dst, root, dst2, root2, &why)) {
            stats.findings.push_back({"roundtrip-mismatch", format,
                                      seed_name, iteration, why, bytes});
            return;
        }
        ++stats.roundTrips;
    } catch (const std::exception &e) {
        stats.findings.push_back({"roundtrip-exception", format,
                                  seed_name, iteration, e.what(), bytes});
    }
}

FuzzStats
DecoderFuzzer::run(const FuzzConfig &cfg)
{
    FuzzStats stats;
    Rng rng(cfg.seed);

    std::vector<const CorpusEntry *> pool;
    std::vector<std::vector<std::uint8_t>> splice_pool;
    for (const auto &e : corpus_) {
        splice_pool.push_back(e.bytes);
        if (cfg.format == "all" || e.format == cfg.format) {
            pool.push_back(&e);
        }
    }
    fatal_if(pool.empty(), "no corpus entries match format '%s'",
             cfg.format.c_str());

    for (std::uint64_t i = 0; i < cfg.iterations; ++i) {
        ++stats.iterations;
        const CorpusEntry &seed = *pool[rng.below(pool.size())];
        auto mutated =
            mutate(seed.bytes, rng, cfg.maxMutations, splice_pool);
        for (const auto &format : formats()) {
            attempt(format, mutated, seed.name, i, cfg.roundTrip, stats);
        }
    }
    return stats;
}

FuzzStats
DecoderFuzzer::replayCorpus()
{
    FuzzStats stats;
    for (const auto &e : corpus_) {
        ++stats.iterations;
        for (const auto &format : formats()) {
            attempt(format, e.bytes, e.name, 0, true, stats);
        }
    }
    return stats;
}

} // namespace cereal
