#include "fuzz/mutator.hh"

#include <algorithm>
#include <cstring>

namespace cereal {

namespace {

using Bytes = std::vector<std::uint8_t>;

void
bitFlip(Bytes &b, Rng &rng)
{
    if (b.empty()) {
        return;
    }
    b[rng.below(b.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
}

void
byteSet(Bytes &b, Rng &rng)
{
    if (b.empty()) {
        return;
    }
    b[rng.below(b.size())] = static_cast<std::uint8_t>(rng.below(256));
}

void
truncate(Bytes &b, Rng &rng)
{
    b.resize(rng.below(b.size() + 1));
}

void
extend(Bytes &b, Rng &rng)
{
    const std::size_t n = 1 + rng.below(16);
    for (std::size_t i = 0; i < n; ++i) {
        b.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
}

void
splice(Bytes &b, Rng &rng, const std::vector<Bytes> &pool)
{
    if (b.empty() || pool.empty()) {
        return;
    }
    const Bytes &src = pool[rng.below(pool.size())];
    if (src.empty()) {
        return;
    }
    const std::size_t dst_at = rng.below(b.size());
    const std::size_t src_at = rng.below(src.size());
    const std::size_t n = 1 + rng.below(std::min(b.size() - dst_at,
                                                 src.size() - src_at));
    std::copy(src.begin() + static_cast<std::ptrdiff_t>(src_at),
              src.begin() + static_cast<std::ptrdiff_t>(src_at + n),
              b.begin() + static_cast<std::ptrdiff_t>(dst_at));
}

/** Overwrite a window with 0xff continuation bytes: decoders that read
 *  a varint there see an overlong / overflowing encoding. */
void
varintCorrupt(Bytes &b, Rng &rng)
{
    if (b.empty()) {
        return;
    }
    const std::size_t at = rng.below(b.size());
    const std::size_t n = std::min<std::size_t>(11, b.size() - at);
    std::fill(b.begin() + static_cast<std::ptrdiff_t>(at),
              b.begin() + static_cast<std::ptrdiff_t>(at + n), 0xff);
}

/** Overwrite a 4- or 8-byte little-endian window with a huge value:
 *  whatever count/length/offset field lives there gets inflated. */
void
lengthInflate(Bytes &b, Rng &rng)
{
    const std::size_t width = rng.chance(0.5) ? 4 : 8;
    if (b.size() < width) {
        return;
    }
    const std::size_t at = rng.below(b.size() - width + 1);
    std::uint64_t v;
    switch (rng.below(3)) {
      case 0: v = ~std::uint64_t{0}; break;
      case 1: v = std::uint64_t{1} << rng.below(width * 8); break;
      default: v = rng.next(); break;
    }
    std::memcpy(b.data() + at, &v, width);
}

} // namespace

std::vector<std::uint8_t>
mutate(const std::vector<std::uint8_t> &input, Rng &rng,
       unsigned max_mutations,
       const std::vector<std::vector<std::uint8_t>> &splice_pool)
{
    Bytes b = input;
    const unsigned n = 1 + static_cast<unsigned>(
                               rng.below(std::max(1u, max_mutations)));
    for (unsigned i = 0; i < n; ++i) {
        switch (rng.below(7)) {
          case 0: bitFlip(b, rng); break;
          case 1: byteSet(b, rng); break;
          case 2: truncate(b, rng); break;
          case 3: extend(b, rng); break;
          case 4: splice(b, rng, splice_pool); break;
          case 5: varintCorrupt(b, rng); break;
          default: lengthInflate(b, rng); break;
        }
    }
    return b;
}

} // namespace cereal
