/**
 * @file
 * Seeded structured fuzzer for the deserializers.
 *
 * The fuzzer owns one decode environment (the golden-graph registry,
 * one serializer per wire format, and the cluster partition-frame
 * codec), a corpus of seed streams, and a deterministic Rng. Each
 * iteration mutates a corpus entry and feeds the result to every
 * decoder; every attempt must end in exactly one of two ways:
 *
 *  - a successfully reconstructed graph, which must then survive the
 *    round-trip oracle (re-encode with the same serializer, decode
 *    again, graphEquals isomorphism check), or
 *  - a clean DecodeError.
 *
 * Aborts, non-DecodeError exceptions, sanitizer reports, and round-trip
 * mismatches are findings. A run is fully determined by (corpus, seed,
 * iteration count): rerunning with the same parameters replays it.
 */

#ifndef CEREAL_FUZZ_FUZZER_HH
#define CEREAL_FUZZ_FUZZER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/corpus.hh"
#include "serde/registry.hh"
#include "trace/trace.hh"

namespace cereal {

/** Parameters of one fuzz run. */
struct FuzzConfig
{
    std::uint64_t seed = 1;
    std::uint64_t iterations = 10000;
    /** Mutation operators applied per iteration: 1..maxMutations. */
    unsigned maxMutations = 4;
    /** Run the re-encode/re-decode isomorphism oracle on successes. */
    bool roundTrip = true;
    /** Mutate only entries of this format ("all" = whole corpus). */
    std::string format = "all";
};

/** One input that violated the decode contract. */
struct FuzzFinding
{
    /** "unexpected-exception", "roundtrip-mismatch", ... */
    std::string kind;
    /** Decoder that was running. */
    std::string format;
    /** Corpus entry the input was derived from. */
    std::string seedName;
    std::uint64_t iteration = 0;
    std::string detail;
    std::vector<std::uint8_t> bytes;
};

/** Aggregate outcome of a fuzz run (or corpus replay). */
struct FuzzStats
{
    std::uint64_t iterations = 0;
    /** Decode attempts (iterations x decoders driven). */
    std::uint64_t attempts = 0;
    std::uint64_t decodeOk = 0;
    std::uint64_t decodeError = 0;
    /** Successful round-trip oracle runs. */
    std::uint64_t roundTrips = 0;
    /** DecodeError count per status name (deterministic order). */
    std::map<std::string, std::uint64_t> byStatus;
    std::vector<FuzzFinding> findings;
};

/** The multi-decoder fuzz harness. */
class DecoderFuzzer
{
  public:
    /** Builds the golden-graph environment and the seed corpus. */
    DecoderFuzzer();

    /** Append extra entries (e.g. loadCorpusDir of tests/corpus). */
    void addCorpus(std::vector<CorpusEntry> extra);

    const std::vector<CorpusEntry> &corpus() const { return corpus_; }

    /** The decode environment's class registry. */
    KlassRegistry &registry() { return reg_; }

    /** The environment's serializer for @p format. */
    Serializer &
    serializer(const std::string &format)
    {
        return *serializerFor(format);
    }

    /** Mutation-fuzz the corpus per @p cfg. */
    FuzzStats run(const FuzzConfig &cfg);

    /**
     * Drive every corpus entry, unmutated, through every decoder
     * (with the round-trip oracle). The regression gate: replaying the
     * committed corpus must produce zero findings.
     */
    FuzzStats replayCorpus();

    /**
     * Decode @p bytes with decoder @p format into a fresh heap,
     * recording the outcome in @p stats (attempts/ok/error/byStatus,
     * plus a finding on any contract violation).
     */
    void attempt(const std::string &format,
                 const std::vector<std::uint8_t> &bytes,
                 const std::string &seed_name, std::uint64_t iteration,
                 bool round_trip, FuzzStats &stats);

    static const std::vector<std::string> &formats();

  private:
    Serializer *serializerFor(const std::string &format);

    /** Per-format trace track, or a disabled emitter when off. */
    trace::TraceEmitter traceFor(const std::string &format) const;

    /**
     * The "cluster" decoder path: partition frames have no serializer
     * object; the round-trip oracle is canonical re-encoding (an
     * accepted frame must re-encode to the input bytes).
     */
    void attemptFrame(const std::vector<std::uint8_t> &bytes,
                      const std::string &seed_name,
                      std::uint64_t iteration, bool round_trip,
                      FuzzStats &stats);

    KlassRegistry reg_;
    Heap srcHeap_;
    Addr root_ = 0;
    /** One decode-environment serializer per registry backend. */
    std::map<std::string, std::unique_ptr<Serializer>> serializers_;
    /**
     * Per-format trace tracks captured from the ambient sink at
     * construction; instants use the iteration index as the timestamp
     * (the fuzzer has no simulated clock).
     */
    std::map<std::string, trace::TraceEmitter> trace_;
    std::vector<CorpusEntry> corpus_;
};

} // namespace cereal

#endif // CEREAL_FUZZ_FUZZER_HH
