#include "fuzz/corpus.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "cluster/frame.hh"
#include "heap/object.hh"
#include "serde/registry.hh"
#include "sim/logging.hh"

namespace cereal {

Addr
buildCorpusGraph(KlassRegistry &reg, Heap &heap)
{
    KlassId node = reg.add("Node", {{"value", FieldType::Long},
                                    {"next", FieldType::Reference}});
    KlassId pair = reg.add("Pair", {{"a", FieldType::Reference},
                                    {"b", FieldType::Reference},
                                    {"tag", FieldType::Int}});
    reg.arrayKlass(FieldType::Int);

    Addr n1 = heap.allocateInstance(node);
    Addr n2 = heap.allocateInstance(node);
    ObjectView v1(heap, n1), v2(heap, n2);
    v1.setLong(0, 0x1122334455667788LL);
    v1.setRef(1, n2);
    v2.setLong(0, -1);
    v2.setRef(1, n1); // cycle

    Addr arr = heap.allocateArray(FieldType::Int, 3);
    ObjectView av(heap, arr);
    av.setElem(0, 1);
    av.setElem(1, 2);
    av.setElem(2, 3);

    Addr root = heap.allocateInstance(pair);
    ObjectView rv(heap, root);
    rv.setRef(0, n1);
    rv.setRef(1, arr);
    rv.setInt(2, 0x7f);
    return root;
}

std::vector<CorpusEntry>
seedCorpus(const KlassRegistry &reg, Heap &heap, Addr root)
{
    std::vector<CorpusEntry> out;

    // One golden stream per backend, in format-id order (so out[i] is
    // the stream of format id i).
    for (const auto &b : serde::backends()) {
        auto ser = serde::makeSerializer(b.name, &reg);
        out.push_back({std::string(b.name) + "_golden", b.name,
                       ser->serialize(heap, root)});
    }

    // A well-formed partition frame wrapping the kryo golden stream,
    // seeding the cluster frame decoder.
    const auto *kryo = serde::findBackend("kryo");
    Frame frame;
    frame.format = kryo->formatId;
    frame.flags = kFrameFlagCompressed;
    frame.srcNode = 0;
    frame.dstNode = 1;
    frame.partition = 1;
    frame.payload = out[kryo->formatId].bytes;
    out.push_back({"cluster_golden", "cluster", encodeFrame(frame)});
    return out;
}

namespace {

bool
knownFormat(const std::string &f)
{
    return serde::findBackend(f) != nullptr || f == "cluster";
}

} // namespace

std::vector<CorpusEntry>
loadCorpusDir(const std::string &dir)
{
    std::vector<CorpusEntry> out;
    std::error_code ec;
    for (const auto &de :
         std::filesystem::directory_iterator(dir, ec)) {
        if (!de.is_regular_file()) {
            continue;
        }
        const auto path = de.path();
        CorpusEntry e;
        e.name = path.stem().string();
        const auto us = e.name.find('_');
        const std::string prefix =
            us == std::string::npos ? e.name : e.name.substr(0, us);
        e.format = knownFormat(prefix) ? prefix : "unknown";

        std::ifstream in(path, std::ios::binary);
        fatal_if(!in, "cannot read corpus file %s",
                 path.string().c_str());
        e.bytes.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
        out.push_back(std::move(e));
    }
    std::sort(out.begin(), out.end(),
              [](const CorpusEntry &a, const CorpusEntry &b) {
                  return a.name < b.name;
              });
    return out;
}

std::string
saveCorpusEntry(const std::string &dir, const CorpusEntry &entry)
{
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/" + entry.name + ".bin";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    fatal_if(!out, "cannot write corpus file %s", path.c_str());
    out.write(reinterpret_cast<const char *>(entry.bytes.data()),
              static_cast<std::streamsize>(entry.bytes.size()));
    return path;
}

} // namespace cereal
