/**
 * @file
 * Seed corpus for the decoder fuzzer.
 *
 * The corpus starts from the golden-vector streams (one per wire
 * format, produced live from the pinned golden graph so they stay in
 * lockstep with the formats, plus a partition frame wrapping one of
 * them) and can be extended with regression inputs
 * stored on disk — one `<format>_<name>.bin` file per entry, as written
 * by `fuzz_decoders --save-dir` and committed under `tests/corpus/`.
 */

#ifndef CEREAL_FUZZ_CORPUS_HH
#define CEREAL_FUZZ_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "heap/heap.hh"

namespace cereal {

/** One fuzz input: bytes plus the wire format they started life as. */
struct CorpusEntry
{
    std::string name;
    /** "java", "kryo", "skyway", "cereal", "cluster", or "unknown". */
    std::string format;
    std::vector<std::uint8_t> bytes;
};

/**
 * Build the corpus graph into @p reg / @p heap and return its root.
 * This is the golden-vector graph (two Node instances in a cycle, a
 * shared int[3], a Pair root): registration order and field values
 * match tests/test_golden_vectors.cc so the seed streams equal the
 * pinned vectors byte-for-byte.
 */
Addr buildCorpusGraph(KlassRegistry &reg, Heap &heap);

/**
 * Serialize the corpus graph with every registered serializer, then
 * wrap the kryo stream in a partition frame for the cluster decoder.
 * @return one entry per format, named "<format>_golden".
 */
std::vector<CorpusEntry> seedCorpus(const KlassRegistry &reg, Heap &heap,
                                    Addr root);

/**
 * Load every regular file of @p dir as a corpus entry; the format is
 * taken from the filename prefix up to the first '_' when it names a
 * known format, "unknown" otherwise. Returns entries sorted by name so
 * corpus order (and therefore fuzz runs) is independent of directory
 * enumeration order. A missing directory yields an empty corpus.
 */
std::vector<CorpusEntry> loadCorpusDir(const std::string &dir);

/** Write @p entry to "<dir>/<entry.name>.bin". @return the path. */
std::string saveCorpusEntry(const std::string &dir,
                            const CorpusEntry &entry);

} // namespace cereal

#endif // CEREAL_FUZZ_CORPUS_HH
