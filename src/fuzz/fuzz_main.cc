/**
 * @file
 * fuzz_decoders: seeded mutation fuzzing of all wire-format decoders.
 *
 * Usage:
 *   fuzz_decoders [--seed N] [--iters N] [--max-mutations N]
 *                 [--format java|kryo|skyway|cereal|plaincode|hps|
 *                           cluster|all]
 *                 [--corpus DIR] [--save-dir DIR] [--no-roundtrip]
 *                 [--replay-only] [--quiet] [--trace PATH]
 *
 * Exit status 0 when the run produced no findings, 1 otherwise.
 * Findings are printed and, with --save-dir, written as corpus files
 * ready to commit under tests/corpus/. --trace writes a Chrome
 * trace_event JSON with per-format decode_ok/decode_error/finding
 * instants, timestamped by iteration index.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "fuzz/fuzzer.hh"
#include "sim/logging.hh"
#include "trace/chrome_trace.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--seed N] [--iters N] [--max-mutations N]\n"
        "          [--format java|kryo|skyway|cereal|plaincode|hps|"
        "cluster|all]\n"
        "          [--corpus DIR] [--save-dir DIR] [--no-roundtrip]\n"
        "          [--replay-only] [--quiet] [--trace PATH]\n",
        argv0);
}

void
printStats(const char *title, const cereal::FuzzStats &stats)
{
    std::printf("%s: %llu iterations, %llu attempts, %llu ok, "
                "%llu decode errors, %llu round trips\n",
                title, (unsigned long long)stats.iterations,
                (unsigned long long)stats.attempts,
                (unsigned long long)stats.decodeOk,
                (unsigned long long)stats.decodeError,
                (unsigned long long)stats.roundTrips);
    for (const auto &[status, count] : stats.byStatus) {
        std::printf("  %-12s %llu\n", status.c_str(),
                    (unsigned long long)count);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cereal;

    FuzzConfig cfg;
    std::string corpus_dir;
    std::string save_dir;
    std::string trace_path;
    bool replay_only = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--seed") {
            cfg.seed = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--iters") {
            cfg.iterations = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--max-mutations") {
            cfg.maxMutations = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 0));
        } else if (arg == "--format") {
            cfg.format = next();
        } else if (arg == "--corpus") {
            corpus_dir = next();
        } else if (arg == "--save-dir") {
            save_dir = next();
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--no-roundtrip") {
            cfg.roundTrip = false;
        } else if (arg == "--replay-only") {
            replay_only = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    // The fuzzer captures its per-format trace tracks from the ambient
    // sink at construction, so install the sink first.
    trace::ChromeTraceSink trace_sink;
    std::unique_ptr<trace::ScopedTrace> trace_scope;
    if (!trace_path.empty()) {
        trace_scope = std::make_unique<trace::ScopedTrace>(trace_sink);
    }

    DecoderFuzzer fuzzer;
    if (!corpus_dir.empty()) {
        auto extra = loadCorpusDir(corpus_dir);
        if (!quiet) {
            std::printf("loaded %zu corpus entries from %s\n",
                        extra.size(), corpus_dir.c_str());
        }
        fuzzer.addCorpus(std::move(extra));
    }

    // The committed corpus must stay clean before mutation starts.
    FuzzStats replay = fuzzer.replayCorpus();
    if (!quiet) {
        printStats("corpus replay", replay);
    }

    FuzzStats stats;
    if (!replay_only) {
        stats = fuzzer.run(cfg);
        if (!quiet) {
            printStats("fuzz run", stats);
        }
    }

    auto report = [&](const FuzzStats &s, const char *phase) {
        for (std::size_t i = 0; i < s.findings.size(); ++i) {
            const auto &f = s.findings[i];
            std::fprintf(stderr,
                         "FINDING [%s] %s: decoder=%s seed=%s "
                         "iteration=%llu: %s\n",
                         phase, f.kind.c_str(), f.format.c_str(),
                         f.seedName.c_str(),
                         (unsigned long long)f.iteration,
                         f.detail.c_str());
            if (!save_dir.empty()) {
                CorpusEntry e{strfmt("%s_finding_%s_%zu", f.format.c_str(),
                                     phase, i),
                              f.format, f.bytes};
                auto path = saveCorpusEntry(save_dir, e);
                std::fprintf(stderr, "  saved to %s\n", path.c_str());
            }
        }
    };
    report(replay, "replay");
    report(stats, "fuzz");

    if (!trace_path.empty()) {
        trace_scope.reset();
        std::ofstream out(trace_path,
                          std::ios::binary | std::ios::trunc);
        fatal_if(!out, "cannot open trace file %s", trace_path.c_str());
        trace::writeChromeTrace(out, {{"fuzz_decoders", &trace_sink}});
        fatal_if(!out.good(), "write to %s failed", trace_path.c_str());
        if (!quiet) {
            std::printf("trace: %s\n", trace_path.c_str());
        }
    }

    return replay.findings.empty() && stats.findings.empty() ? 0 : 1;
}
