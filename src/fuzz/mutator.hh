/**
 * @file
 * Deterministic structured mutation of serialized byte streams.
 *
 * Given a seed input and the repo's portable Rng, mutate() applies a
 * small random number of mutation operators chosen to exercise decoder
 * error paths: single-bit flips, byte overwrites, truncation, tail
 * extension, window splicing from another corpus entry, overlong-varint
 * injection, and little-endian length-field inflation. Equal (input,
 * Rng state) pairs produce equal outputs on every platform, so fuzz
 * runs are replayable from just the seed.
 */

#ifndef CEREAL_FUZZ_MUTATOR_HH
#define CEREAL_FUZZ_MUTATOR_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace cereal {

/**
 * Mutate @p input with 1..@p max_mutations operators drawn from @p rng.
 *
 * @param splice_pool other corpus inputs the splice operator may copy
 *        windows from (may be empty; the operator is skipped then)
 * @return the mutated bytes (possibly empty: truncation may cut all)
 */
std::vector<std::uint8_t>
mutate(const std::vector<std::uint8_t> &input, Rng &rng,
       unsigned max_mutations,
       const std::vector<std::vector<std::uint8_t>> &splice_pool);

} // namespace cereal

#endif // CEREAL_FUZZ_MUTATOR_HH
