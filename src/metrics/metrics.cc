#include "metrics/metrics.hh"

#include <algorithm>
#include <utility>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace cereal {
namespace metrics {

namespace {

/**
 * Thread-local ambient recorder: each sweep point runs start-to-finish
 * on one pool thread (the trace/JSON slot argument), so per-thread
 * roots keep concurrent points isolated without locks.
 */
thread_local MetricsRecorder *tls_recorder = nullptr;

} // namespace

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Gauge: return "gauge";
      case Kind::Rate: return "rate";
      case Kind::Ratio: return "ratio";
    }
    return "?";
}

// ------------------------------------------------------------- Series

Series::Series(std::string name, std::string help, Kind kind,
               std::size_t max_samples, Tick interval)
    : name_(std::move(name)), help_(std::move(help)), kind_(kind),
      next_(interval), interval_(interval)
{
    panic_if(interval_ == 0, "metrics interval must be >= 1 tick");
    panic_if(max_samples == 0, "metrics ring capacity must be >= 1");
    ring_.resize(max_samples);
}

std::vector<Sample>
Series::samples() const
{
    std::vector<Sample> out;
    out.reserve(count_);
    for (std::size_t i = 0; i < count_; ++i) {
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
}

Sample
Series::last() const
{
    panic_if(count_ == 0, "Series::last() on empty series '%s'",
             name_.c_str());
    return ring_[(head_ + count_ - 1) % ring_.size()];
}

void
Series::push(Tick at, double v)
{
    if (count_ == ring_.size()) {
        ring_[head_] = {at, v};
        head_ = (head_ + 1) % ring_.size();
        ++dropped_;
    } else {
        ring_[(head_ + count_) % ring_.size()] = {at, v};
        ++count_;
    }
}

void
Series::sampleAt(Tick at)
{
    switch (kind_) {
      case Kind::Gauge:
        push(at, gauge_(at));
        break;
      case Kind::Rate: {
        const double cur = num_();
        const double delta = cur - prevNum_;
        prevNum_ = cur;
        push(at, delta / static_cast<double>(interval_) * scale_);
        break;
      }
      case Kind::Ratio: {
        const double num = num_();
        const double den = den_();
        const double dn = num - prevNum_;
        const double dd = den - prevDen_;
        prevNum_ = num;
        prevDen_ = den;
        push(at, dd != 0 ? dn / dd : 0.0);
        break;
      }
    }
}

// ----------------------------------------------------- MetricsRecorder

MetricsRecorder::MetricsRecorder(Tick interval, std::size_t max_samples)
    : interval_(interval), maxSamples_(max_samples)
{
    panic_if(interval_ == 0, "metrics interval must be >= 1 tick");
    panic_if(maxSamples_ == 0, "metrics ring capacity must be >= 1");
}

std::string
MetricsRecorder::uniquePrefix(const std::string &prefix)
{
    for (auto &[name, uses] : prefixes_) {
        if (name == prefix) {
            ++uses;
            return prefix + "#" + std::to_string(uses - 1);
        }
    }
    prefixes_.push_back({prefix, 1});
    return prefix;
}

std::size_t
MetricsRecorder::addGauge(std::string name, std::string help, GaugeFn fn)
{
    series_.emplace_back(std::move(name), std::move(help), Kind::Gauge,
                         maxSamples_, interval_);
    series_.back().gauge_ = std::move(fn);
    return series_.size() - 1;
}

std::size_t
MetricsRecorder::addRate(std::string name, std::string help, CounterFn fn,
                         double scale)
{
    series_.emplace_back(std::move(name), std::move(help), Kind::Rate,
                         maxSamples_, interval_);
    auto &s = series_.back();
    s.num_ = std::move(fn);
    s.scale_ = scale;
    s.prevNum_ = s.num_();
    return series_.size() - 1;
}

std::size_t
MetricsRecorder::addRatio(std::string name, std::string help,
                          CounterFn num, CounterFn den)
{
    series_.emplace_back(std::move(name), std::move(help), Kind::Ratio,
                         maxSamples_, interval_);
    auto &s = series_.back();
    s.num_ = std::move(num);
    s.den_ = std::move(den);
    s.prevNum_ = s.num_();
    s.prevDen_ = s.den_();
    return series_.size() - 1;
}

void
MetricsRecorder::detach(const std::vector<std::size_t> &ids)
{
    for (std::size_t id : ids) {
        Series &s = series_[id];
        s.live_ = false;
        s.gauge_ = nullptr;
        s.num_ = nullptr;
        s.den_ = nullptr;
    }
}

void
MetricsRecorder::tickSeries(const std::vector<std::size_t> &ids, Tick now)
{
    for (std::size_t id : ids) {
        Series &s = series_[id];
        while (s.live_ && now >= s.next_) {
            s.sampleAt(s.next_);
            s.next_ += interval_;
        }
    }
}

void
MetricsRecorder::recordHistogram(const std::string &name,
                                 const std::string &help,
                                 const stats::Distribution &d)
{
    HistogramSnapshot h;
    h.name = name;
    h.help = help;
    h.bounds = stats::logBucketBounds();
    h.counts = d.logBucketCounts();
    h.sum = d.sum();
    h.count = d.count();
    histograms_.push_back(std::move(h));
}

void
MetricsRecorder::writeJson(json::Writer &w) const
{
    w.key("metrics");
    w.beginObject();
    w.kv("interval_ticks", interval_);
    w.key("series");
    w.beginArray();
    for (const auto &s : series_) {
        w.beginObject();
        w.kv("name", s.name());
        w.kv("kind", kindName(s.kind()));
        w.kv("help", s.help());
        w.kv("dropped", s.dropped());
        const auto samples = s.samples();
        w.key("ticks");
        w.beginArray();
        for (const auto &sm : samples) {
            w.value(sm.tick);
        }
        w.endArray();
        w.key("values");
        w.beginArray();
        for (const auto &sm : samples) {
            w.value(sm.value);
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.key("histograms");
    w.beginArray();
    for (const auto &h : histograms_) {
        w.beginObject();
        w.kv("name", h.name);
        w.kv("help", h.help);
        w.kv("sum", h.sum);
        w.kv("count", h.count);
        w.key("bounds");
        w.beginArray();
        for (double b : h.bounds) {
            w.value(b);
        }
        w.endArray();
        w.key("cumulative_counts");
        w.beginArray();
        for (auto c : h.counts) {
            w.value(c);
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
MetricsRecorder::writeCsvHeader(std::ostream &os)
{
    os << "point,series,kind,tick,value\n";
}

void
MetricsRecorder::writeCsvRows(std::ostream &os,
                              const std::string &point) const
{
    for (const auto &s : series_) {
        for (const auto &sm : s.samples()) {
            os << point << ',' << s.name() << ',' << kindName(s.kind())
               << ',' << sm.tick << ',' << json::formatDouble(sm.value)
               << '\n';
        }
    }
}

// -------------------------------------------------------------- Group

Group::Group(MetricsRecorder *r, const std::string &prefix) : rec_(r)
{
    if (rec_ != nullptr) {
        prefix_ = rec_->uniquePrefix(prefix);
    }
}

Group::Group(Group &&other) noexcept
    : rec_(other.rec_), prefix_(std::move(other.prefix_)),
      ids_(std::move(other.ids_))
{
    other.rec_ = nullptr;
    other.ids_.clear();
}

Group &
Group::operator=(Group &&other) noexcept
{
    if (this != &other) {
        if (rec_ != nullptr) {
            rec_->detach(ids_);
        }
        rec_ = other.rec_;
        prefix_ = std::move(other.prefix_);
        ids_ = std::move(other.ids_);
        other.rec_ = nullptr;
        other.ids_.clear();
    }
    return *this;
}

Group::~Group()
{
    if (rec_ != nullptr) {
        rec_->detach(ids_);
    }
}

void
Group::gauge(const char *name, const char *help, GaugeFn fn)
{
    if (rec_ == nullptr) {
        return;
    }
    ids_.push_back(
        rec_->addGauge(prefix_ + "." + name, help, std::move(fn)));
}

void
Group::rate(const char *name, const char *help, CounterFn fn, double scale)
{
    if (rec_ == nullptr) {
        return;
    }
    ids_.push_back(
        rec_->addRate(prefix_ + "." + name, help, std::move(fn), scale));
}

void
Group::ratio(const char *name, const char *help, CounterFn num,
             CounterFn den)
{
    if (rec_ == nullptr) {
        return;
    }
    ids_.push_back(rec_->addRatio(prefix_ + "." + name, help,
                                  std::move(num), std::move(den)));
}

void
Group::gaugeFromStat(const stats::StatGroup &sg,
                     const std::string &stat_name)
{
    if (rec_ == nullptr) {
        return;
    }
    const stats::Entry *e = sg.find(stat_name);
    panic_if(e == nullptr, "metrics: no stat '%s' in group '%s'",
             stat_name.c_str(), sg.name().c_str());
    GaugeFn fn;
    switch (e->kind) {
      case stats::Kind::Scalar: {
        const auto *s = static_cast<const stats::Scalar *>(e->stat);
        fn = [s](Tick) { return s->value(); };
        break;
      }
      case stats::Kind::Average: {
        const auto *a = static_cast<const stats::Average *>(e->stat);
        fn = [a](Tick) { return a->mean(); };
        break;
      }
      case stats::Kind::Histogram: {
        const auto *h = static_cast<const stats::Histogram *>(e->stat);
        fn = [h](Tick) { return h->mean(); };
        break;
      }
      case stats::Kind::Distribution: {
        const auto *d = static_cast<const stats::Distribution *>(e->stat);
        fn = [d](Tick) { return d->p50(); };
        break;
      }
      case stats::Kind::Formula: {
        const auto *f = static_cast<const stats::Formula *>(e->stat);
        fn = [f](Tick) { return f->value(); };
        break;
      }
    }
    ids_.push_back(rec_->addGauge(prefix_ + "." + stat_name, e->desc,
                                  std::move(fn)));
}

void
Group::bindStatGroup(const stats::StatGroup &sg)
{
    if (rec_ == nullptr) {
        return;
    }
    for (const auto &e : sg.entries()) {
        gaugeFromStat(sg, e.name);
    }
}

void
Group::histogram(const char *name, const char *help,
                 const stats::Distribution &d)
{
    if (rec_ == nullptr) {
        return;
    }
    rec_->recordHistogram(prefix_ + "." + name, help, d);
}

void
Group::tick(Tick now)
{
    if (rec_ == nullptr) {
        return;
    }
    rec_->tickSeries(ids_, now);
}

// ------------------------------------------------------------ ambient

MetricsRecorder *
current()
{
    return tls_recorder;
}

ScopedMetrics::ScopedMetrics(MetricsRecorder &rec) : prev_(tls_recorder)
{
    tls_recorder = &rec;
}

ScopedMetrics::~ScopedMetrics()
{
    tls_recorder = prev_;
}

// -------------------------------------------------- merged exporters

void
writeCsv(std::ostream &os, const std::vector<MetricsPoint> &points)
{
    MetricsRecorder::writeCsvHeader(os);
    for (const auto &p : points) {
        p.recorder->writeCsvRows(os, p.name);
    }
}

std::string
promName(const std::string &series_name)
{
    std::string out = "cereal_";
    for (char c : series_name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

void
writeProm(std::ostream &os, const std::vector<MetricsPoint> &points)
{
    // Escape a label value per the exposition format.
    auto esc = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '\\' || c == '"') {
                out.push_back('\\');
                out.push_back(c);
            } else if (c == '\n') {
                out += "\\n";
            } else {
                out.push_back(c);
            }
        }
        return out;
    };

    // Group sample lines by family (sanitized name) so each family is
    // one contiguous block after its HELP/TYPE header, as the format
    // requires. Families keep first-seen order for determinism.
    struct Family
    {
        std::string help;
        Kind kind;
        std::vector<std::string> lines;
    };
    std::vector<std::pair<std::string, Family>> families;
    auto family = [&](const std::string &name, const std::string &help,
                      Kind kind) -> Family & {
        for (auto &[n, f] : families) {
            if (n == name) {
                return f;
            }
        }
        families.push_back({name, {help, kind, {}}});
        return families.back().second;
    };

    for (const auto &p : points) {
        for (const auto &s : p.recorder->series()) {
            if (s.sampleCount() == 0) {
                continue; // nothing observed; deterministic skip
            }
            const std::string fam = promName(s.name());
            Family &f = family(fam, s.help(), s.kind());
            const Sample last = s.last();
            f.lines.push_back(
                fam + "{point=\"" + esc(p.name) + "\",series=\"" +
                esc(s.name()) + "\"} " + json::formatDouble(last.value) +
                " " + std::to_string(last.tick));
        }
    }

    for (const auto &[name, f] : families) {
        os << "# HELP " << name << ' ' << (f.help.empty() ? "-" : f.help)
           << '\n';
        // Rates/ratios are windowed derivations sampled as gauges.
        os << "# TYPE " << name << " gauge\n";
        for (const auto &line : f.lines) {
            os << line << '\n';
        }
    }

    // Histogram snapshots: one exposition-format histogram family per
    // snapshot name, cumulative le buckets plus +Inf/_sum/_count.
    struct HistFamily
    {
        std::string help;
        std::vector<std::string> lines;
    };
    std::vector<std::pair<std::string, HistFamily>> histFams;
    auto histFamily = [&](const std::string &name,
                          const std::string &help) -> HistFamily & {
        for (auto &[n, f] : histFams) {
            if (n == name) {
                return f;
            }
        }
        histFams.push_back({name, {help, {}}});
        return histFams.back().second;
    };
    for (const auto &p : points) {
        for (const auto &h : p.recorder->histograms()) {
            const std::string fam = promName(h.name);
            HistFamily &f = histFamily(fam, h.help);
            const std::string labels =
                "point=\"" + esc(p.name) + "\",series=\"" + esc(h.name) +
                "\"";
            for (std::size_t i = 0; i < h.bounds.size(); ++i) {
                f.lines.push_back(fam + "_bucket{" + labels + ",le=\"" +
                                  json::formatDouble(h.bounds[i]) +
                                  "\"} " + std::to_string(h.counts[i]));
            }
            f.lines.push_back(fam + "_bucket{" + labels + ",le=\"+Inf\"} " +
                              std::to_string(h.count));
            f.lines.push_back(fam + "_sum{" + labels + "} " +
                              json::formatDouble(h.sum));
            f.lines.push_back(fam + "_count{" + labels + "} " +
                              std::to_string(h.count));
        }
    }
    for (const auto &[name, f] : histFams) {
        os << "# HELP " << name << ' ' << (f.help.empty() ? "-" : f.help)
           << '\n';
        os << "# TYPE " << name << " histogram\n";
        for (const auto &line : f.lines) {
            os << line << '\n';
        }
    }
}

} // namespace metrics
} // namespace cereal
