/**
 * @file
 * Cycle-driven time-series metrics layer.
 *
 * Traces (src/trace) answer "where did the cycles go" one event at a
 * time; aggregate stats (sim/stats) answer "how much in total". This
 * layer answers the question in between: *what was the value at cycle
 * N* — DRAM bandwidth utilization, miss-window occupancy, SU busy
 * fraction, fabric queue depth — sampled on a fixed tick interval into
 * ring-buffered, deterministic time series.
 *
 * Model:
 *
 *  - A MetricsRecorder owns an ordered registry of Series. Each series
 *    is one of three kinds:
 *      gauge: value = fn(t)                        (queue depths)
 *      rate:  value = d(fn)/dt_ticks * scale       (bandwidth, busy
 *                                                   fractions)
 *      ratio: value = d(num)/d(den) over the tick  (hit rates, stall
 *                                                   fractions)
 *  - Components register series through a Group — an RAII handle that
 *    prefixes names ("mem.dram", "cpu.core", ...), uniquifies repeated
 *    prefixes ("cpu.core", "cpu.core#1", ...) the way trace tracks do,
 *    and detaches its series when the component dies (the recorded
 *    samples stay; sampling stops).
 *  - Sampling is driven by the component's own clock: Group::tick(now)
 *    samples each of the group's series at every interval boundary the
 *    clock has crossed. Components in this codebase restart local
 *    clocks at tick 0 per measurement, so a per-series time base (not
 *    a global one) is the only scheme under which every component gets
 *    sampled.
 *
 * Determinism contract (same as tracing): a recorder is single-threaded
 * and owned by one sweep point; registration happens in program order;
 * samples depend only on simulated time. An N-thread bench run
 * therefore produces byte-identical metrics documents to a serial run
 * (runner::SweepRunner keeps per-point recorders in registration-order
 * slots).
 *
 * Exports: compact JSON (embedded in `BENCH_<name>.json` points), CSV
 * (long form: point,series,kind,tick,value) and the Prometheus text
 * exposition format (one family per series, last sample per series,
 * `point`/`series` labels; the timestamp column carries simulated
 * ticks).
 */

#ifndef CEREAL_METRICS_METRICS_HH
#define CEREAL_METRICS_METRICS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace cereal {
namespace json {
class Writer;
} // namespace json
} // namespace cereal

namespace cereal {
namespace metrics {

/** One (tick, value) observation. */
struct Sample
{
    Tick tick;
    double value;
};

/** Sampled closure signature; receives the boundary tick sampled at. */
using GaugeFn = std::function<double(Tick)>;
/** Cumulative-counter closure for rates/ratios. */
using CounterFn = std::function<double()>;

/** Kind discriminator for registered series. */
enum class Kind { Gauge, Rate, Ratio };

/** "gauge" / "rate" / "ratio". */
const char *kindName(Kind k);

/**
 * One registered time series. The closures are only invoked while the
 * owning Group is alive; after detach the recorded samples remain.
 */
class Series
{
  public:
    Series(std::string name, std::string help, Kind kind,
           std::size_t max_samples, Tick interval);

    const std::string &name() const { return name_; }
    const std::string &help() const { return help_; }
    Kind kind() const { return kind_; }

    /** Ring-buffered samples in time order (oldest first). */
    std::vector<Sample> samples() const;

    /** Number of samples currently retained. */
    std::size_t sampleCount() const { return count_; }

    /** Samples dropped from the front of the ring. */
    std::uint64_t dropped() const { return dropped_; }

    /** Last retained sample; sampleCount() must be > 0. */
    Sample last() const;

  private:
    friend class MetricsRecorder;

    /** Record the series' value at boundary @p at. */
    void sampleAt(Tick at);

    void push(Tick at, double v);

    std::string name_;
    std::string help_;
    Kind kind_;

    /** Live closures; cleared on detach. */
    GaugeFn gauge_;
    CounterFn num_;
    CounterFn den_;
    /** Rate scaling applied to the per-tick delta. */
    double scale_ = 1.0;
    /** Counter values at the previous boundary. */
    double prevNum_ = 0;
    double prevDen_ = 0;

    /** Next boundary this series samples at. */
    Tick next_;
    Tick interval_;
    bool live_ = true;

    /** Fixed-capacity ring of retained samples. */
    std::vector<Sample> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::uint64_t dropped_ = 0;
};

class Group;

/**
 * An end-of-run copy of a latency population's log-bucketed histogram.
 *
 * Unlike Series, a snapshot holds data by value: the source
 * stats::Distribution may die with its component before export, and a
 * closure over it would dangle. recordHistogram() copies the bucket
 * counts at call time instead.
 */
struct HistogramSnapshot
{
    std::string name;
    std::string help;
    /** Bucket upper bounds (stats::logBucketBounds()). */
    std::vector<double> bounds;
    /** Cumulative counts at or below each bound. */
    std::vector<std::uint64_t> counts;
    double sum = 0;
    std::uint64_t count = 0;
};

/**
 * The per-sweep-point metrics registry and sample store.
 *
 * Single-threaded; owned by the harness (runner::SweepRunner allocates
 * one per point). Components reach the ambient recorder via current().
 */
class MetricsRecorder
{
  public:
    /** Default sampling interval: 1 us of simulated time. */
    static constexpr Tick kDefaultInterval = 1'000'000;
    /** Default per-series ring capacity. */
    static constexpr std::size_t kDefaultMaxSamples = 512;

    explicit MetricsRecorder(Tick interval = kDefaultInterval,
                             std::size_t max_samples = kDefaultMaxSamples);

    Tick interval() const { return interval_; }
    std::size_t maxSamples() const { return maxSamples_; }

    /** Registered series in registration order. */
    const std::vector<Series> &series() const { return series_; }

    /**
     * Snapshot @p d as a log-bucketed histogram named @p name. Copies
     * the bucket counts now — call at end of run, after the population
     * is complete; the distribution need not outlive the recorder.
     */
    void recordHistogram(const std::string &name, const std::string &help,
                         const stats::Distribution &d);

    /** Recorded histogram snapshots in record order. */
    const std::vector<HistogramSnapshot> &histograms() const
    {
        return histograms_;
    }

    /**
     * Uniquify @p prefix against every prefix handed out so far: first
     * use returns it verbatim, later uses get "#1", "#2", ... appended
     * (the trace::uniqueTrack convention).
     */
    std::string uniquePrefix(const std::string &prefix);

    /**
     * Emit a "metrics" fragment as one member of the currently open
     * JSON object: interval plus every series with its sample columns.
     */
    void writeJson(json::Writer &w) const;

    /** Long-form CSV rows (no header): point,series,kind,tick,value. */
    void writeCsvRows(std::ostream &os, const std::string &point) const;

    /** CSV header line matching writeCsvRows(). */
    static void writeCsvHeader(std::ostream &os);

  private:
    friend class Group;

    std::size_t addGauge(std::string name, std::string help, GaugeFn fn);
    std::size_t addRate(std::string name, std::string help, CounterFn fn,
                        double scale);
    std::size_t addRatio(std::string name, std::string help, CounterFn num,
                         CounterFn den);
    void detach(const std::vector<std::size_t> &ids);
    void tickSeries(const std::vector<std::size_t> &ids, Tick now);

    Tick interval_;
    std::size_t maxSamples_;
    std::vector<Series> series_;
    std::vector<HistogramSnapshot> histograms_;
    /** prefix -> times handed out, for uniquePrefix(). */
    std::vector<std::pair<std::string, unsigned>> prefixes_;
};

/**
 * A component's registration handle: a (recorder, prefix) pair owning
 * the series ids it registered. Default-constructed == disabled; every
 * operation on a disabled group is a no-op costing one branch, so
 * instrumented components pay nothing when metrics are off.
 *
 * Destroying the group detaches its series (closures are dropped,
 * samples stay) — components register closures over their own members,
 * and this is what makes that safe.
 */
class Group
{
  public:
    Group() = default;

    /** Register under recorder @p r with uniquified @p prefix. */
    Group(MetricsRecorder *r, const std::string &prefix);

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;
    Group(Group &&other) noexcept;
    Group &operator=(Group &&other) noexcept;
    ~Group();

    bool enabled() const { return rec_ != nullptr; }
    const std::string &prefix() const { return prefix_; }

    /** Register "<prefix>.<name>" sampling @p fn. */
    void gauge(const char *name, const char *help, GaugeFn fn);

    /**
     * Register a rate over cumulative counter @p fn: each sample is
     * (delta since previous boundary) / interval_ticks * @p scale.
     * scale = kTicksPerSecond yields a per-second rate.
     */
    void rate(const char *name, const char *help, CounterFn fn,
              double scale);

    /** Register delta(num)/delta(den) per interval (0 when den flat). */
    void ratio(const char *name, const char *help, CounterFn num,
               CounterFn den);

    /**
     * Register a gauge over the statistic @p stat_name of @p sg,
     * resolved through stats::StatGroup::find(). Scalars and formulas
     * sample their value, averages and histograms their mean,
     * distributions their p50. Panics if the stat does not exist.
     */
    void gaugeFromStat(const stats::StatGroup &sg,
                       const std::string &stat_name);

    /** gaugeFromStat() for every entry of @p sg. */
    void bindStatGroup(const stats::StatGroup &sg);

    /** recordHistogram() under "<prefix>.<name>" (see the recorder). */
    void histogram(const char *name, const char *help,
                   const stats::Distribution &d);

    /**
     * Sample every series of this group at each interval boundary in
     * (last boundary, now]. Clocks that move backwards (a component
     * restarting at tick 0) simply produce no samples until they pass
     * the series' high-water mark.
     */
    void tick(Tick now);

  private:
    MetricsRecorder *rec_ = nullptr;
    std::string prefix_;
    std::vector<std::size_t> ids_;
};

/**
 * Ambient per-thread recorder (the trace::current() pattern): a sweep
 * point installs its recorder with ScopedMetrics; components deep
 * inside a measurement pick it up at construction. nullptr when
 * metrics are off.
 */
MetricsRecorder *current();

/** Installs @p rec as the thread's recorder for its lifetime. */
class ScopedMetrics
{
  public:
    explicit ScopedMetrics(MetricsRecorder &rec);
    ~ScopedMetrics();

    ScopedMetrics(const ScopedMetrics &) = delete;
    ScopedMetrics &operator=(const ScopedMetrics &) = delete;

  private:
    MetricsRecorder *prev_;
};

/** One point's worth of metrics for the merged exporters below. */
struct MetricsPoint
{
    std::string name;
    const MetricsRecorder *recorder;
};

/** Merged CSV document (header + rows per point, point order). */
void writeCsv(std::ostream &os, const std::vector<MetricsPoint> &points);

/**
 * Merged Prometheus text exposition: families in first-seen order,
 * `# HELP`/`# TYPE` once per family, one sample line (the series' last
 * sample) per point, labelled {point="...",series="..."}. Series names
 * are sanitized to [a-zA-Z0-9_:] and prefixed "cereal_".
 */
void writeProm(std::ostream &os, const std::vector<MetricsPoint> &points);

/** Sanitized Prometheus family name for @p series_name. */
std::string promName(const std::string &series_name);

} // namespace metrics
} // namespace cereal

#endif // CEREAL_METRICS_METRICS_HH
