#include "cpu/core_model.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace cereal {

CoreModel::CoreModel(Dram &dram, const CoreConfig &cfg, Tick start_tick)
    : dram_(&dram), cfg_(cfg), observe_(simModeObserves(cfg.mode)),
      l1_(cfg.l1), l2_(cfg.l2), l3_(cfg.l3),
      startTick_(start_tick), period_(periodFromMHz(cfg.freqMHz))
{
    dramBytesAtStart_ = dram.bytesRead() + dram.bytesWritten();

    if (observe_) {
        metrics_ = metrics::Group(metrics::current(), "cpu.core");
    }
    if (metrics_.enabled()) {
        metrics_.gauge("miss_window",
                       "outstanding overlapped DRAM misses",
                       [this](Tick) {
                           return static_cast<double>(outstanding_.size());
                       });
        metrics_.ratio("mlp_stall_frac",
                       "fraction of core time stalled on the MLP window",
                       [this] {
                           return static_cast<double>(mlpStallTicks_);
                       },
                       [this] {
                           return static_cast<double>(curTick() -
                                                      startTick_);
                       });
        metrics_.ratio("dep_stall_frac",
                       "fraction of core time stalled on dependent loads",
                       [this] {
                           return static_cast<double>(depStallTicks_);
                       },
                       [this] {
                           return static_cast<double>(curTick() -
                                                      startTick_);
                       });
        metrics_.ratio("ipc", "instructions retired per core cycle",
                       [this] { return static_cast<double>(insts_); },
                       [this] { return cycles_; });
    }
}

Tick
CoreModel::curTick() const
{
    return startTick_ + static_cast<Tick>(cycles_ * period_);
}

void
CoreModel::setTrace(trace::TraceEmitter em)
{
    if (!observe_) {
        return;
    }
    trace_ = std::move(em);
    phaseName_ = "run";
    phaseStart_ = curTick();
}

void
CoreModel::phase(const char *name)
{
    if (!trace_.enabled() || std::strcmp(name, phaseName_) == 0) {
        return;
    }
    const Tick now = curTick();
    if (now > phaseStart_) {
        trace_.span(phaseName_, phaseStart_, now);
    }
    phaseName_ = name;
    phaseStart_ = now;
}

void
CoreModel::compute(std::uint64_t ops)
{
    insts_ += ops;
    cycles_ += static_cast<double>(ops) * cfg_.cpiBase;
    metrics_.tick(curTick());
}

void
CoreModel::computeStreamlined(std::uint64_t ops)
{
    insts_ += ops;
    cycles_ += static_cast<double>(ops) * cfg_.cpiStraightLine;
    metrics_.tick(curTick());
}

void
CoreModel::waitForWindowSlot()
{
    // Retire already-completed misses for free.
    const Tick now = curTick();
    while (!outstanding_.empty() && outstanding_.front() <= now) {
        outstanding_.pop_front();
    }
    // If the window is still full, the core stalls until the oldest
    // miss retires.
    const Tick stallFrom = now;
    while (outstanding_.size() >= cfg_.missWindow) {
        Tick done = outstanding_.front();
        outstanding_.pop_front();
        if (done > curTick()) {
            cycles_ = static_cast<double>(done - startTick_) /
                      static_cast<double>(period_);
        }
    }
    if (observe_ && curTick() > stallFrom) {
        mlpStallTicks_ += curTick() - stallFrom;
        trace_.span("mlp_stall", stallFrom, curTick());
    }
}

Tick
CoreModel::lineAccess(Addr line_addr, bool write, bool dependent)
{
    ++insts_;
    cycles_ += cfg_.issueCycles;

    auto r1 = l1_.access(line_addr, write);
    if (r1.hit) {
        cycles_ += cfg_.l1HitCycles;
        return 0;
    }
    auto r2 = l2_.access(line_addr, write);
    if (r2.hit) {
        cycles_ += static_cast<double>(cfg_.l2.hitLatency) *
                   (1.0 - cfg_.hitOverlap);
        return 0;
    }
    auto r3 = l3_.access(line_addr, write);
    if (r3.hit) {
        cycles_ += static_cast<double>(cfg_.l3.hitLatency) *
                   (1.0 - cfg_.hitOverlap);
        return 0;
    }

    // L3 victim writeback: fire-and-forget DRAM write (buffered, does
    // not occupy the core's miss window).
    if (r3.writeback) {
        dram_->access(r3.victimAddr, true, curTick());
    }

    if (dependent) {
        // Pointer chase: nothing can overlap; the core observes the
        // full round trip.
        const Tick stallFrom = curTick();
        auto res = dram_->access(line_addr, write, stallFrom);
        cycles_ = std::max(
            cycles_, static_cast<double>(res.completeTick - startTick_) /
                         static_cast<double>(period_));
        if (observe_ && curTick() > stallFrom) {
            depStallTicks_ += curTick() - stallFrom;
            trace_.span("dep_stall", stallFrom, curTick());
        }
        metrics_.tick(curTick());
        return res.completeTick;
    }

    // Independent miss: overlapped up to the window limit.
    waitForWindowSlot();
    auto res = dram_->access(line_addr, write, curTick());
    outstanding_.push_back(res.completeTick);
    metrics_.tick(curTick());
    return res.completeTick;
}

void
CoreModel::load(Addr addr, std::uint32_t bytes)
{
    if (bytes == 0) {
        return;
    }
    const Addr first = roundDown(addr, 64);
    const Addr last = roundDown(addr + bytes - 1, 64);
    for (Addr a = first; a <= last; a += 64) {
        lineAccess(a, false, false);
    }
}

void
CoreModel::loadDep(Addr addr, std::uint32_t bytes)
{
    if (bytes == 0) {
        return;
    }
    const Addr first = roundDown(addr, 64);
    const Addr last = roundDown(addr + bytes - 1, 64);
    // Only the first line is the chase target; the rest of the object
    // header streams behind it.
    lineAccess(first, false, true);
    for (Addr a = first + 64; a <= last; a += 64) {
        lineAccess(a, false, false);
    }
}

void
CoreModel::store(Addr addr, std::uint32_t bytes)
{
    if (bytes == 0) {
        return;
    }
    const Addr first = roundDown(addr, 64);
    const Addr last = roundDown(addr + bytes - 1, 64);
    for (Addr a = first; a <= last; a += 64) {
        lineAccess(a, true, false);
    }
}

void
CoreModel::drain()
{
    const Tick stallFrom = curTick();
    while (!outstanding_.empty()) {
        Tick done = outstanding_.front();
        outstanding_.pop_front();
        if (done > curTick()) {
            cycles_ = static_cast<double>(done - startTick_) /
                      static_cast<double>(period_);
        }
    }
    if (observe_ && curTick() > stallFrom) {
        mlpStallTicks_ += curTick() - stallFrom;
        trace_.span("mlp_stall", stallFrom, curTick());
    }
}

CoreRunStats
CoreModel::finish()
{
    drain();
    metrics_.tick(curTick());
    // Close the last phase span so phase spans tile the whole region.
    if (trace_.enabled() && curTick() > phaseStart_) {
        trace_.span(phaseName_, phaseStart_, curTick());
        phaseStart_ = curTick();
    }
    CoreRunStats out;
    out.elapsedTicks = curTick() - startTick_;
    out.instructions = insts_;
    double total_cycles = cycles_;
    out.ipc = total_cycles > 0
                  ? static_cast<double>(insts_) / total_cycles
                  : 0;
    out.llcMissRate = l3_.missRate();
    out.llcAccesses = l3_.accesses();
    out.dramBytes = dram_->bytesRead() + dram_->bytesWritten() -
                    dramBytesAtStart_;
    out.seconds = ticksToSeconds(out.elapsedTicks);
    out.bandwidthUtil =
        out.seconds > 0
            ? (static_cast<double>(out.dramBytes) / out.seconds) /
                  dram_->config().peakBandwidth()
            : 0;
    return out;
}

} // namespace cereal
