/**
 * @file
 * Timing model of a host CPU core executing software serialization.
 *
 * The model consumes the load/store/compute narration a serializer
 * emits (see serde/sink.hh) and advances a core clock through a cache
 * hierarchy (Table I: 32 KB L1, 1 MB L2, 11 MB L3) backed by the shared
 * DDR4 model. It captures the two structural limits the paper blames
 * for poor software S/D performance (Section III):
 *
 *  1. *Bounded memory-level parallelism.* Independent DRAM misses may
 *     overlap only up to `missWindow` outstanding requests — the
 *     instruction-window/LSQ/MSHR limit of an out-of-order core. A
 *     serializer that misses constantly therefore still utilises only a
 *     few percent of DRAM bandwidth (paper Figure 3c).
 *
 *  2. *Dependent (pointer-chasing) loads.* A loadDep cannot overlap
 *     with anything; the core stalls for the full memory round trip.
 *     Object-graph traversal is a chain of these.
 *
 * Everything else (ALU work, reflection string hashing, branchy
 * dispatch) is charged through a sustained base CPI.
 *
 * The model reports cycles, instructions, IPC, LLC miss rate, and DRAM
 * traffic — the exact quantities Figure 3 plots.
 */

#ifndef CEREAL_CPU_CORE_MODEL_HH
#define CEREAL_CPU_CORE_MODEL_HH

#include <deque>
#include <string>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "metrics/metrics.hh"
#include "serde/sink.hh"
#include "sim/sim_mode.hh"
#include "sim/types.hh"
#include "trace/trace.hh"

namespace cereal {

/** Core microarchitecture parameters (defaults: i7-7820X-like). */
struct CoreConfig
{
    /** Core clock, MHz. */
    double freqMHz = 3600;
    /** Sustained cycles per unit of non-memory work. */
    double cpiBase = 0.8;
    /**
     * Sustained cycles per unit of *straight-line* work
     * (MemSink::computeStreamlined): generated per-class serializer
     * code with no dispatch and no mispredicted branches issues wider
     * than the branchy reflective path cpiBase models.
     */
    double cpiStraightLine = 0.45;
    /** Cycles charged for an L1 hit (load-to-use, partially hidden). */
    double l1HitCycles = 0.5;
    /** Fraction of L2/L3 hit latency the OoO window hides. */
    double hitOverlap = 0.6;
    /** Maximum overlapped outstanding DRAM misses (MLP limit). */
    unsigned missWindow = 10;
    /** Cycles to issue a memory instruction (AGU + LSQ slot). */
    double issueCycles = 0.5;

    /**
     * Fidelity mode (defaults to the ambient global). Non-observing
     * modes skip metrics registration, trace spans, and stall
     * attribution; every CoreRunStats field stays byte-identical.
     */
    SimMode mode = globalSimMode();

    CacheConfig l1 = CacheConfig::l1();
    CacheConfig l2 = CacheConfig::l2();
    CacheConfig l3 = CacheConfig::l3();
};

/** Aggregated results of one timed region. */
struct CoreRunStats
{
    Tick elapsedTicks = 0;
    std::uint64_t instructions = 0;
    double ipc = 0;
    double llcMissRate = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t dramBytes = 0;
    /** Achieved DRAM bandwidth / peak bandwidth. */
    double bandwidthUtil = 0;
    double seconds = 0;
};

/**
 * One simulated core: a MemSink whose consumption of a serializer's
 * narration advances simulated time.
 */
class CoreModel : public MemSink, public trace::TraceClock
{
  public:
    /**
     * @param dram shared memory model; the core issues misses into it
     * @param start_tick simulated time at which this region begins
     */
    CoreModel(Dram &dram, const CoreConfig &cfg = CoreConfig(),
              Tick start_tick = 0);

    // MemSink interface -------------------------------------------------
    void load(Addr addr, std::uint32_t bytes) override;
    void store(Addr addr, std::uint32_t bytes) override;
    void loadDep(Addr addr, std::uint32_t bytes) override;
    void compute(std::uint64_t ops) override;
    void computeStreamlined(std::uint64_t ops) override;
    void phase(const char *name) override;

    /**
     * Attribute this core's time to @p em's track. Call right after
     * construction: phase spans tile [setTrace tick, finish tick], so
     * the trace's per-phase self times (phases plus the "mlp_stall" /
     * "dep_stall" spans nested inside them) sum exactly to the
     * region's elapsedTicks.
     */
    void setTrace(trace::TraceEmitter em);

    /** TraceClock: "now" for RAII spans around core-driven work. */
    Tick traceNow() const override { return curTick(); }

    /** Wait for all outstanding misses to complete. */
    void drain();

    /** Current core-local simulated time. */
    Tick curTick() const;

    /** Finish the region (drain + collect stats). */
    CoreRunStats finish();

    /** Instructions retired so far. */
    std::uint64_t instructions() const { return insts_; }

    const Cache &l3() const { return l3_; }
    Dram &dram() { return *dram_; }

  private:
    /** Access one cache line; returns DRAM completion tick (0 if hit). */
    Tick lineAccess(Addr line_addr, bool write, bool dependent);

    /** Block until the oldest outstanding miss retires. */
    void waitForWindowSlot();

    Dram *dram_;
    CoreConfig cfg_;
    /** Cached simModeObserves(cfg_.mode): hot-path branch condition. */
    bool observe_;
    Cache l1_;
    Cache l2_;
    Cache l3_;

    Tick startTick_;
    double cycles_ = 0;
    Tick period_;
    std::uint64_t insts_ = 0;
    std::uint64_t dramBytesAtStart_ = 0;

    /** Completion ticks of in-flight DRAM misses (FIFO retire). */
    std::deque<Tick> outstanding_;

    /**
     * Time-series registration with the ambient metrics recorder:
     * miss-window occupancy, stall fractions, and IPC.
     */
    metrics::Group metrics_;
    /** Ticks spent stalled on the MLP window / on dependent loads. */
    Tick mlpStallTicks_ = 0;
    Tick depStallTicks_ = 0;

    trace::TraceEmitter trace_;
    /** Current phase (literal) and the tick its span opened at. */
    const char *phaseName_ = "run";
    Tick phaseStart_ = 0;
};

} // namespace cereal

#endif // CEREAL_CPU_CORE_MODEL_HH
