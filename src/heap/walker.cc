#include "heap/walker.hh"

#include <unordered_map>
#include <unordered_set>

#include "heap/object.hh"
#include "sim/logging.hh"

namespace cereal {

namespace {

/** Push the reference targets of @p obj onto @p out in traversal order. */
void
collectRefs(Heap &heap, Addr obj, std::vector<Addr> &out)
{
    ObjectView v(heap, obj);
    const auto &d = v.klass();
    if (d.isArray()) {
        if (d.elemType() == FieldType::Reference) {
            const std::uint64_t n = v.length();
            for (std::uint64_t i = 0; i < n; ++i) {
                out.push_back(v.getRefElem(i));
            }
        }
        return;
    }
    for (std::uint32_t fi : d.refFields()) {
        out.push_back(v.getRef(fi));
    }
}

} // namespace

void
GraphWalker::walk(Addr root, const std::function<void(Addr)> &visit) const
{
    if (root == 0) {
        return;
    }
    std::unordered_set<Addr> seen;
    // Explicit stack: object graphs (long lists) can be deep enough to
    // overflow the host call stack.
    std::vector<Addr> stack{root};
    std::vector<Addr> refs;
    while (!stack.empty()) {
        Addr obj = stack.back();
        stack.pop_back();
        if (obj == 0 || !seen.insert(obj).second) {
            continue;
        }
        visit(obj);
        refs.clear();
        collectRefs(*heap_, obj, refs);
        // Push in reverse so the first declared reference is visited
        // first (proper DFS preorder).
        for (auto it = refs.rbegin(); it != refs.rend(); ++it) {
            stack.push_back(*it);
        }
    }
}

std::vector<Addr>
GraphWalker::reachable(Addr root) const
{
    std::vector<Addr> out;
    walk(root, [&](Addr a) { out.push_back(a); });
    return out;
}

GraphStats
GraphWalker::stats(Addr root) const
{
    GraphStats gs;
    if (root == 0) {
        return gs;
    }
    std::unordered_map<Addr, std::uint64_t> depth;
    std::vector<Addr> stack{root};
    depth[root] = 1;
    std::unordered_set<Addr> seen;
    std::vector<Addr> refs;
    while (!stack.empty()) {
        Addr obj = stack.back();
        stack.pop_back();
        if (!seen.insert(obj).second) {
            continue;
        }
        const std::uint64_t d = depth[obj];
        gs.maxDepth = std::max(gs.maxDepth, d);
        ++gs.objectCount;
        gs.totalBytes += heap_->objectBytes(obj);
        ObjectView v(*heap_, obj);
        if (v.isArray()) {
            ++gs.arrayCount;
        }
        refs.clear();
        collectRefs(*heap_, obj, refs);
        for (Addr r : refs) {
            if (r == 0) {
                ++gs.nullReferences;
                continue;
            }
            ++gs.referenceEdges;
            if (!seen.count(r)) {
                if (!depth.count(r)) {
                    depth[r] = d + 1;
                }
                stack.push_back(r);
            }
        }
    }
    return gs;
}

namespace {

/** State for the pairwise isomorphism walk. */
struct EqContext
{
    Heap *ha;
    Heap *hb;
    std::unordered_map<Addr, Addr> aToB;
    std::string *why;
    bool compareHash;

    bool
    fail(const std::string &msg)
    {
        if (why) {
            *why = msg;
        }
        return false;
    }
};

bool
objectsMatch(EqContext &ctx, Addr a, Addr b,
             std::vector<std::pair<Addr, Addr>> &work)
{
    ObjectView va(*ctx.ha, a);
    ObjectView vb(*ctx.hb, b);

    const auto &da = va.klass();
    const auto &db = vb.klass();
    if (da.name() != db.name()) {
        return ctx.fail(strfmt("class mismatch: %s vs %s @ %#llx/%#llx",
                               da.name().c_str(), db.name().c_str(),
                               (unsigned long long)a,
                               (unsigned long long)b));
    }

    if (ctx.compareHash && va.identityHash() != vb.identityHash()) {
        return ctx.fail(strfmt("identity hash mismatch in %s",
                               da.name().c_str()));
    }

    if (da.isArray()) {
        if (va.length() != vb.length()) {
            return ctx.fail(strfmt("array length mismatch in %s: "
                                   "%llu vs %llu", da.name().c_str(),
                                   (unsigned long long)va.length(),
                                   (unsigned long long)vb.length()));
        }
        const std::uint64_t n = va.length();
        if (da.elemType() == FieldType::Reference) {
            for (std::uint64_t i = 0; i < n; ++i) {
                work.emplace_back(va.getRefElem(i), vb.getRefElem(i));
            }
        } else {
            for (std::uint64_t i = 0; i < n; ++i) {
                if (va.getElem(i) != vb.getElem(i)) {
                    return ctx.fail(strfmt(
                        "array element %llu mismatch in %s",
                        (unsigned long long)i, da.name().c_str()));
                }
            }
        }
        return true;
    }

    for (std::uint32_t i = 0; i < da.numFields(); ++i) {
        const auto &f = da.fields()[i];
        if (f.type == FieldType::Reference) {
            work.emplace_back(va.getRef(i), vb.getRef(i));
        } else if (va.getRaw(i) != vb.getRaw(i)) {
            return ctx.fail(strfmt("field '%s' mismatch in %s",
                                   f.name.c_str(), da.name().c_str()));
        }
    }
    return true;
}

} // namespace

bool
graphEquals(Heap &heap_a, Addr root_a, Heap &heap_b, Addr root_b,
            std::string *why, bool compare_identity_hash)
{
    EqContext ctx{&heap_a, &heap_b, {}, why, compare_identity_hash};

    std::vector<std::pair<Addr, Addr>> work{{root_a, root_b}};
    while (!work.empty()) {
        auto [a, b] = work.back();
        work.pop_back();
        if (a == 0 || b == 0) {
            if (a != b) {
                return ctx.fail("null vs non-null reference");
            }
            continue;
        }
        auto it = ctx.aToB.find(a);
        if (it != ctx.aToB.end()) {
            // Aliasing structure must be preserved: a previously visited
            // object must map to the same counterpart.
            if (it->second != b) {
                return ctx.fail("sharing (aliasing) structure mismatch");
            }
            continue;
        }
        ctx.aToB.emplace(a, b);
        if (!objectsMatch(ctx, a, b, work)) {
            return false;
        }
    }
    return true;
}

} // namespace cereal
