#include "heap/heap.hh"

#include <cstring>

#include "sim/logging.hh"

namespace cereal {

Heap::Heap(KlassRegistry &registry, Addr base)
    : registry_(&registry), base_(base), mem_(1 << 20)
{
    objects_.reserve(1024);
}

std::uint8_t *
Heap::hostPtr(Addr addr, Addr n)
{
    panic_if(!contains(addr, n),
             "heap access out of bounds: addr=%#llx n=%llu",
             (unsigned long long)addr, (unsigned long long)n);
    return mem_.data() + (addr - base_);
}

const std::uint8_t *
Heap::hostPtr(Addr addr, Addr n) const
{
    panic_if(!contains(addr, n),
             "heap access out of bounds: addr=%#llx n=%llu",
             (unsigned long long)addr, (unsigned long long)n);
    return mem_.data() + (addr - base_);
}

void
Heap::ensureCapacity(Addr bytes_needed)
{
    mem_.claimZeroed(bytes_needed);
}

bool
Heap::contains(Addr addr, Addr n) const
{
    return addr >= base_ && addr + n <= base_ + used_;
}

Addr
Heap::allocateRaw(Addr bytes)
{
    bytes = roundUp(bytes, 8);
    ensureCapacity(used_ + bytes);
    Addr addr = base_ + used_;
    used_ += bytes;
    return addr;
}

void
Heap::initHeader(Addr obj, KlassId id)
{
    store64(obj, markword::make(nextHash_));
    nextHash_ = nextHash_ * 0x9e3779b1u + 1;
    store64(obj + 8, registry_->metadataAddr(id));
    if (registry_->hasCerealHeaderExt()) {
        store64(obj + 16, 0);
    }
}

Addr
Heap::allocateInstance(KlassId id)
{
    const unsigned slots = registry_->instanceSlots(id);
    Addr obj = allocateRaw(Addr{slots} * 8);
    initHeader(obj, id);
    objects_.push_back(obj);
    return obj;
}

Addr
Heap::allocateArray(FieldType elem, std::uint64_t n)
{
    KlassId id = registry_->arrayKlass(elem);
    const unsigned slots = registry_->arraySlots(id, n);
    Addr obj = allocateRaw(Addr{slots} * 8);
    initHeader(obj, id);
    store64(obj + Addr{registry_->arrayLengthSlot()} * 8, n);
    objects_.push_back(obj);
    return obj;
}

std::uint64_t
Heap::load64(Addr addr) const
{
    std::uint64_t v;
    std::memcpy(&v, hostPtr(addr, 8), 8);
    return v;
}

void
Heap::store64(Addr addr, std::uint64_t v)
{
    std::memcpy(hostPtr(addr, 8), &v, 8);
}

std::uint8_t
Heap::load8(Addr addr) const
{
    return *hostPtr(addr, 1);
}

void
Heap::store8(Addr addr, std::uint8_t v)
{
    *hostPtr(addr, 1) = v;
}

void
Heap::loadBytes(Addr addr, void *dst, Addr n) const
{
    if (n) {
        std::memcpy(dst, hostPtr(addr, n), n);
    }
}

void
Heap::storeBytes(Addr addr, const void *src, Addr n)
{
    if (n) {
        std::memcpy(hostPtr(addr, n), src, n);
    }
}

KlassId
Heap::klassOf(Addr obj) const
{
    Addr meta = load64(obj + 8);
    KlassId id = registry_->idByMetadataAddr(meta);
    panic_if(id == kBadKlassId,
             "object %#llx has unknown klass pointer %#llx",
             (unsigned long long)obj, (unsigned long long)meta);
    return id;
}

unsigned
Heap::objectSlots(Addr obj) const
{
    KlassId id = klassOf(obj);
    const auto &d = registry_->klass(id);
    if (d.isArray()) {
        return registry_->arraySlots(id, arrayLength(obj));
    }
    return registry_->instanceSlots(id);
}

std::uint64_t
Heap::arrayLength(Addr obj) const
{
    panic_if(!registry_->klass(klassOf(obj)).isArray(),
             "arrayLength() on non-array object %#llx",
             (unsigned long long)obj);
    return load64(obj + Addr{registry_->arrayLengthSlot()} * 8);
}

std::vector<bool>
Heap::instanceBitmap(Addr obj) const
{
    KlassId id = klassOf(obj);
    const auto &d = registry_->klass(id);
    if (!d.isArray()) {
        return registry_->layoutBitmap(id);
    }
    const unsigned slots = objectSlots(obj);
    std::vector<bool> bm(slots, false);
    if (d.elemType() == FieldType::Reference) {
        const std::uint64_t n = arrayLength(obj);
        for (std::uint64_t i = 0; i < n; ++i) {
            bm[registry_->arrayDataSlot() + i] = true;
        }
    }
    return bm;
}

void
Heap::clearCerealMetadata()
{
    if (!registry_->hasCerealHeaderExt()) {
        return;
    }
    for (Addr obj : objects_) {
        store64(obj + 16, 0);
    }
}

} // namespace cereal
