/**
 * @file
 * Object-graph traversal and structural comparison utilities.
 *
 * GraphWalker performs the recursive object-graph traversal that every
 * serializer needs (Section II): depth-first from a root, visiting each
 * reachable object once, in a deterministic order (reference fields in
 * declaration order; array elements in index order). Graph equality
 * checks that two heaps hold isomorphic graphs — the correctness oracle
 * for every serialize/deserialize round trip in the test suite.
 */

#ifndef CEREAL_HEAP_WALKER_HH
#define CEREAL_HEAP_WALKER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "heap/heap.hh"

namespace cereal {

/** Summary statistics of one reachable object graph. */
struct GraphStats
{
    std::uint64_t objectCount = 0;
    std::uint64_t totalBytes = 0;
    std::uint64_t referenceEdges = 0;
    std::uint64_t nullReferences = 0;
    std::uint64_t arrayCount = 0;
    std::uint64_t maxDepth = 0;
};

/** Depth-first object graph traversal. */
class GraphWalker
{
  public:
    explicit GraphWalker(Heap &heap) : heap_(&heap) {}

    /**
     * Visit every object reachable from @p root exactly once, calling
     * @p visit in discovery (pre) order.
     */
    void walk(Addr root, const std::function<void(Addr)> &visit) const;

    /** All reachable objects from @p root in discovery order. */
    std::vector<Addr> reachable(Addr root) const;

    /** Aggregate statistics of the graph rooted at @p root. */
    GraphStats stats(Addr root) const;

  private:
    Heap *heap_;
};

/**
 * Check that the graphs rooted at (heap_a, root_a) and (heap_b, root_b)
 * are isomorphic: same classes, same primitive values, same reference
 * shape (including aliasing/sharing and null positions).
 *
 * @param why when non-null, receives a description of the first
 *            mismatch found
 * @param compare_identity_hash when true, mark-word identity hash codes
 *            must match as well (serializers that strip headers
 *            legitimately lose them)
 */
bool graphEquals(Heap &heap_a, Addr root_a, Heap &heap_b, Addr root_b,
                 std::string *why = nullptr,
                 bool compare_identity_hash = false);

} // namespace cereal

#endif // CEREAL_HEAP_WALKER_HH
