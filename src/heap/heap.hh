/**
 * @file
 * Simulated JVM heap with HotSpot-style object layout.
 *
 * The heap is a bump allocator over a flat byte arena mapped at a
 * configurable simulated base address. Objects follow the layout in the
 * paper's Figure 1(a): a 16 B header (mark word + klass pointer), an
 * optional 8 B Cereal extension slot (Section V-E), then 8 B-aligned
 * fields. The klass pointer holds the simulated address of the class's
 * metadata block (see KlassRegistry), so type-descriptor fetches can be
 * charged to the memory model.
 *
 * Mark word bit assignment (Section II):
 *   [30:0]  identity hash code
 *   [33:31] synchronisation state
 *   [39:34] GC state
 *   [63:40] unused
 *
 * Cereal extension word (Section V-E):
 *   [15:0]  last-serialization counter (visited tracking)
 *   [23:16] owning unit id (shared-object support)
 *   [63:24] relative address of the object in the serialized stream
 */

#ifndef CEREAL_HEAP_HEAP_HH
#define CEREAL_HEAP_HEAP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "heap/klass.hh"
#include "sim/arena.hh"
#include "sim/types.hh"

namespace cereal {

/** Mark-word pack/unpack helpers. */
namespace markword {

constexpr std::uint64_t
make(std::uint32_t hash, std::uint8_t sync = 0, std::uint8_t gc = 0)
{
    return (static_cast<std::uint64_t>(hash) & 0x7fffffffULL) |
           ((static_cast<std::uint64_t>(sync) & 0x7ULL) << 31) |
           ((static_cast<std::uint64_t>(gc) & 0x3fULL) << 34);
}

constexpr std::uint32_t
hash(std::uint64_t mark)
{
    return static_cast<std::uint32_t>(mark & 0x7fffffffULL);
}

constexpr std::uint8_t
sync(std::uint64_t mark)
{
    return static_cast<std::uint8_t>((mark >> 31) & 0x7ULL);
}

constexpr std::uint8_t
gc(std::uint64_t mark)
{
    return static_cast<std::uint8_t>((mark >> 34) & 0x3fULL);
}

} // namespace markword

/** Cereal header-extension pack/unpack helpers. */
namespace extword {

constexpr std::uint16_t
serialCounter(std::uint64_t w)
{
    return static_cast<std::uint16_t>(w & 0xffffULL);
}

constexpr std::uint8_t
unitId(std::uint64_t w)
{
    return static_cast<std::uint8_t>((w >> 16) & 0xffULL);
}

constexpr std::uint64_t
relAddr(std::uint64_t w)
{
    return w >> 24;
}

constexpr std::uint64_t
make(std::uint16_t counter, std::uint8_t unit, std::uint64_t rel)
{
    return static_cast<std::uint64_t>(counter) |
           (static_cast<std::uint64_t>(unit) << 16) | (rel << 24);
}

} // namespace extword

/**
 * One simulated Java heap.
 *
 * Not copyable; serializers move object graphs *between* heaps, so a
 * test typically owns a source heap and a destination heap sharing one
 * KlassRegistry.
 */
class Heap
{
  public:
    /**
     * @param registry shared class registry (must outlive the heap)
     * @param base     simulated address of the first object
     */
    explicit Heap(KlassRegistry &registry, Addr base = 0x1'0000'0000ULL);

    Heap(const Heap &) = delete;
    Heap &operator=(const Heap &) = delete;

    const KlassRegistry &registry() const { return *registry_; }
    KlassRegistry &registry() { return *registry_; }

    /** Allocate one instance of non-array class @p id. */
    Addr allocateInstance(KlassId id);

    /** Allocate an array of @p n elements of @p elem. */
    Addr allocateArray(FieldType elem, std::uint64_t n);

    /**
     * Reserve @p bytes of zeroed arena space without creating an object
     * (used by deserializers that reconstruct objects in place).
     */
    Addr allocateRaw(Addr bytes);

    /**
     * Record that @p addr now holds a fully formed object (after a
     * deserializer wrote it into raw space).
     */
    void noteObject(Addr addr) { objects_.push_back(addr); }

    // --- raw memory access -------------------------------------------

    std::uint64_t load64(Addr addr) const;
    void store64(Addr addr, std::uint64_t v);
    std::uint8_t load8(Addr addr) const;
    void store8(Addr addr, std::uint8_t v);
    void loadBytes(Addr addr, void *dst, Addr n) const;
    void storeBytes(Addr addr, const void *src, Addr n);

    /** True if [addr, addr+n) lies inside the allocated arena. */
    bool contains(Addr addr, Addr n = 1) const;

    // --- object-level helpers ----------------------------------------

    /** Class of the object at @p obj (via its klass pointer). */
    KlassId klassOf(Addr obj) const;

    /** Total 8 B slots of the object at @p obj (arrays included). */
    unsigned objectSlots(Addr obj) const;

    /** Total bytes of the object at @p obj. */
    Addr objectBytes(Addr obj) const { return Addr{objectSlots(obj)} * 8; }

    /** Element count of the array object at @p obj. */
    std::uint64_t arrayLength(Addr obj) const;

    /**
     * Per-instance layout bitmap (bit per 8 B slot, set = reference),
     * valid for both instances and arrays (paper Figure 4a).
     */
    std::vector<bool> instanceBitmap(Addr obj) const;

    // --- bookkeeping ---------------------------------------------------

    Addr base() const { return base_; }
    Addr top() const { return base_ + used_; }
    Addr usedBytes() const { return used_; }
    std::uint64_t objectCount() const { return objects_.size(); }
    const std::vector<Addr> &objects() const { return objects_; }

    /**
     * Emulate the GC clearing pass from Section V-E: zero the Cereal
     * extension word of every object so visited counters cannot alias
     * across counter overflow.
     */
    void clearCerealMetadata();

  private:
    std::uint8_t *hostPtr(Addr addr, Addr n);
    const std::uint8_t *hostPtr(Addr addr, Addr n) const;
    void ensureCapacity(Addr bytes_needed);
    void initHeader(Addr obj, KlassId id);

    KlassRegistry *registry_;
    Addr base_;
    Addr used_ = 0;
    sim::ContiguousBuffer mem_;
    std::vector<Addr> objects_;
    std::uint32_t nextHash_ = 0x1234567;
};

} // namespace cereal

#endif // CEREAL_HEAP_HEAP_HH
