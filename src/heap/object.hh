/**
 * @file
 * Lightweight typed view over an object inside a Heap.
 *
 * ObjectView is a (heap, address) pair with field accessors; it performs
 * the slot arithmetic that HotSpot's field offsets would provide, and it
 * exposes the mark word and Cereal extension word for the serializers.
 */

#ifndef CEREAL_HEAP_OBJECT_HH
#define CEREAL_HEAP_OBJECT_HH

#include <cstring>

#include "heap/heap.hh"
#include "sim/logging.hh"

namespace cereal {

/** Typed accessor over one heap object. */
class ObjectView
{
  public:
    ObjectView(Heap &heap, Addr addr) : heap_(&heap), addr_(addr) {}

    Addr addr() const { return addr_; }
    Heap &heap() const { return *heap_; }
    KlassId klassId() const { return heap_->klassOf(addr_); }

    const KlassDescriptor &
    klass() const
    {
        return heap_->registry().klass(klassId());
    }

    bool isArray() const { return klass().isArray(); }
    unsigned slots() const { return heap_->objectSlots(addr_); }
    Addr bytes() const { return heap_->objectBytes(addr_); }

    // --- header --------------------------------------------------------

    std::uint64_t markWord() const { return heap_->load64(addr_); }
    void setMarkWord(std::uint64_t v) { heap_->store64(addr_, v); }
    std::uint32_t identityHash() const { return markword::hash(markWord()); }

    /** The Cereal 8 B extension word (requires header extension). */
    std::uint64_t
    extWord() const
    {
        panic_if(!heap_->registry().hasCerealHeaderExt(),
                 "extWord() without Cereal header extension");
        return heap_->load64(addr_ + 16);
    }

    void
    setExtWord(std::uint64_t v)
    {
        panic_if(!heap_->registry().hasCerealHeaderExt(),
                 "setExtWord() without Cereal header extension");
        heap_->store64(addr_ + 16, v);
    }

    // --- instance fields ------------------------------------------------

    /** Simulated address of field @p idx. */
    Addr
    fieldAddr(std::uint32_t idx) const
    {
        return addr_ +
               Addr{heap_->registry().fieldSlot(klassId(), idx)} * 8;
    }

    /** Raw 8 B slot value of field @p idx. */
    std::uint64_t
    getRaw(std::uint32_t idx) const
    {
        return heap_->load64(fieldAddr(idx));
    }

    void
    setRaw(std::uint32_t idx, std::uint64_t v)
    {
        heap_->store64(fieldAddr(idx), v);
    }

    std::int64_t
    getLong(std::uint32_t idx) const
    {
        return static_cast<std::int64_t>(getRaw(idx));
    }

    void
    setLong(std::uint32_t idx, std::int64_t v)
    {
        setRaw(idx, static_cast<std::uint64_t>(v));
    }

    std::int32_t
    getInt(std::uint32_t idx) const
    {
        return static_cast<std::int32_t>(getRaw(idx));
    }

    void
    setInt(std::uint32_t idx, std::int32_t v)
    {
        setRaw(idx, static_cast<std::uint64_t>(
                        static_cast<std::uint32_t>(v)));
    }

    double
    getDouble(std::uint32_t idx) const
    {
        double d;
        std::uint64_t raw = getRaw(idx);
        std::memcpy(&d, &raw, 8);
        return d;
    }

    void
    setDouble(std::uint32_t idx, double v)
    {
        std::uint64_t raw;
        std::memcpy(&raw, &v, 8);
        setRaw(idx, raw);
    }

    /** Reference field (0 = null). */
    Addr getRef(std::uint32_t idx) const { return getRaw(idx); }
    void setRef(std::uint32_t idx, Addr target) { setRaw(idx, target); }

    // --- arrays ----------------------------------------------------------

    std::uint64_t length() const { return heap_->arrayLength(addr_); }

    /** Address of element @p i (packed by element size). */
    Addr
    elemAddr(std::uint64_t i) const
    {
        const auto &reg = heap_->registry();
        const unsigned esz = fieldTypeBytes(klass().elemType());
        return addr_ + Addr{reg.arrayDataSlot()} * 8 + i * esz;
    }

    /** Reference array element (refs occupy full 8 B slots). */
    Addr
    getRefElem(std::uint64_t i) const
    {
        return heap_->load64(elemAddr(i));
    }

    void
    setRefElem(std::uint64_t i, Addr target)
    {
        heap_->store64(elemAddr(i), target);
    }

    /** Primitive array element as a zero-extended 64-bit value. */
    std::uint64_t
    getElem(std::uint64_t i) const
    {
        const unsigned esz = fieldTypeBytes(klass().elemType());
        std::uint64_t v = 0;
        heap_->loadBytes(elemAddr(i), &v, esz);
        return v;
    }

    void
    setElem(std::uint64_t i, std::uint64_t v)
    {
        const unsigned esz = fieldTypeBytes(klass().elemType());
        heap_->storeBytes(elemAddr(i), &v, esz);
    }

  private:
    Heap *heap_;
    Addr addr_;
};

} // namespace cereal

#endif // CEREAL_HEAP_OBJECT_HH
