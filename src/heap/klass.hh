/**
 * @file
 * Class (klass) metadata model mirroring HotSpot's type descriptors.
 *
 * A KlassDescriptor captures what the paper's Section II calls the "type
 * descriptor": the object layout (which 8 B slots hold references) and
 * the total object size. The KlassRegistry owns all descriptors, assigns
 * integer class IDs, and materialises each descriptor into a simulated
 * metadata memory region so that metadata fetches cost real (modelled)
 * memory traffic — the klass pointer in every object header is the
 * simulated address of that metadata block.
 *
 * Layout contract (paper Section II / Figure 1a):
 *  - every field occupies one 8 B-aligned slot;
 *  - the header is 16 B: mark word (8 B) + klass pointer (8 B);
 *  - with the Cereal header extension (Section V-E) an extra 8 B slot
 *    follows the klass pointer;
 *  - arrays add one slot holding the element count, then the elements.
 */

#ifndef CEREAL_HEAP_KLASS_HH
#define CEREAL_HEAP_KLASS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace cereal {

/** Integer class identifier (dense, assigned at registration). */
using KlassId = std::uint32_t;

/** Sentinel for "no class". */
constexpr KlassId kBadKlassId = ~KlassId{0};

/** Java field/element types. */
enum class FieldType : std::uint8_t
{
    Boolean,
    Byte,
    Char,
    Short,
    Int,
    Long,
    Float,
    Double,
    Reference,
};

/** Size in bytes of one element of @p t when packed inside an array. */
unsigned fieldTypeBytes(FieldType t);

/** Printable name of a field type ("int", "long", ...). */
const char *fieldTypeName(FieldType t);

/** One declared instance field. */
struct FieldDesc
{
    std::string name;
    FieldType type;
};

/**
 * Immutable description of one class: its fields (for instance classes)
 * or element type (for array classes).
 */
class KlassDescriptor
{
  public:
    /** Build a plain instance class. */
    KlassDescriptor(std::string name, std::vector<FieldDesc> fields);

    /** Build an array class with elements of @p elem. */
    static KlassDescriptor makeArray(std::string name, FieldType elem);

    const std::string &name() const { return name_; }
    bool isArray() const { return isArray_; }
    FieldType elemType() const { return elemType_; }
    const std::vector<FieldDesc> &fields() const { return fields_; }
    std::size_t numFields() const { return fields_.size(); }

    /** Indices (into fields()) of the reference-typed fields. */
    const std::vector<std::uint32_t> &refFields() const { return refFields_; }

  private:
    KlassDescriptor() = default;

    std::string name_;
    std::vector<FieldDesc> fields_;
    bool isArray_ = false;
    FieldType elemType_ = FieldType::Reference;
    std::vector<std::uint32_t> refFields_;
};

/**
 * Registry of all classes known to one simulated JVM.
 *
 * Construction fixes the header geometry (2 slots, or 3 with the Cereal
 * extension); all layout queries below include the header slots.
 */
class KlassRegistry
{
  public:
    /**
     * @param cereal_header_ext when true, serializable objects carry the
     *        extra 8 B Cereal metadata slot (Section V-E)
     * @param metadata_base simulated address where klass metadata lives
     */
    explicit KlassRegistry(bool cereal_header_ext = true,
                           Addr metadata_base = 0x0800'0000'0000ULL);

    /** Register a class; names must be unique. @return its dense id. */
    KlassId add(KlassDescriptor desc);

    /** Convenience: register an instance class from name + fields. */
    KlassId
    add(std::string name, std::vector<FieldDesc> fields)
    {
        return add(KlassDescriptor(std::move(name), std::move(fields)));
    }

    /** Get or create the canonical array class for @p elem. */
    KlassId arrayKlass(FieldType elem);

    const KlassDescriptor &klass(KlassId id) const;
    std::size_t size() const { return descs_.size(); }

    /**
     * True iff @p id names a registered class. Decoders must gate every
     * stream-derived class id through this before calling klass():
     * klass() panics on bad ids because its other callers pass ids the
     * heap model itself produced.
     */
    bool validKlass(KlassId id) const { return id < descs_.size(); }

    /** Lookup by name; kBadKlassId if absent. */
    KlassId idByName(const std::string &name) const;

    /** Number of 8 B header slots per object (2, or 3 with extension). */
    unsigned headerSlots() const { return headerSlots_; }
    bool hasCerealHeaderExt() const { return headerSlots_ == 3; }

    /** Slot index of declared field @p field_idx of class @p id. */
    unsigned
    fieldSlot(KlassId, std::uint32_t field_idx) const
    {
        return headerSlots_ + field_idx;
    }

    /** Slot index holding an array's element count. */
    unsigned arrayLengthSlot() const { return headerSlots_; }

    /** First slot of array element storage. */
    unsigned arrayDataSlot() const { return headerSlots_ + 1; }

    /** Total 8 B slots of an instance of non-array class @p id. */
    unsigned instanceSlots(KlassId id) const;

    /** Total 8 B slots of an array of class @p id with @p n elements. */
    unsigned arraySlots(KlassId id, std::uint64_t n) const;

    /**
     * Layout bitmap of a non-array instance: bit i set iff slot i holds
     * a reference (paper Figure 4a). Header slots are always zero.
     */
    const std::vector<bool> &layoutBitmap(KlassId id) const;

    /** Simulated address of the metadata block for class @p id. */
    Addr metadataAddr(KlassId id) const;

    /** Size in bytes of the metadata block for class @p id. */
    Addr metadataBytes(KlassId id) const;

    /** Reverse map: metadata address -> class id (kBadKlassId if none). */
    KlassId idByMetadataAddr(Addr addr) const;

  private:
    struct Record
    {
        KlassDescriptor desc;
        std::vector<bool> bitmap; // empty for arrays
        Addr metaAddr;
        Addr metaBytes;
    };

    unsigned headerSlots_;
    Addr metadataBase_;
    Addr metadataTop_;
    std::vector<Record> descs_;
    std::unordered_map<std::string, KlassId> byName_;
    std::unordered_map<Addr, KlassId> byMetaAddr_;
    std::unordered_map<std::uint8_t, KlassId> arrayKlasses_;
};

} // namespace cereal

#endif // CEREAL_HEAP_KLASS_HH
