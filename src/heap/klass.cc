#include "heap/klass.hh"

#include "sim/logging.hh"

namespace cereal {

unsigned
fieldTypeBytes(FieldType t)
{
    switch (t) {
      case FieldType::Boolean:
      case FieldType::Byte:
        return 1;
      case FieldType::Char:
      case FieldType::Short:
        return 2;
      case FieldType::Int:
      case FieldType::Float:
        return 4;
      case FieldType::Long:
      case FieldType::Double:
      case FieldType::Reference:
        return 8;
    }
    panic("bad field type %d", static_cast<int>(t));
}

const char *
fieldTypeName(FieldType t)
{
    switch (t) {
      case FieldType::Boolean: return "boolean";
      case FieldType::Byte: return "byte";
      case FieldType::Char: return "char";
      case FieldType::Short: return "short";
      case FieldType::Int: return "int";
      case FieldType::Long: return "long";
      case FieldType::Float: return "float";
      case FieldType::Double: return "double";
      case FieldType::Reference: return "reference";
    }
    return "?";
}

KlassDescriptor::KlassDescriptor(std::string name,
                                 std::vector<FieldDesc> fields)
    : name_(std::move(name)), fields_(std::move(fields))
{
    for (std::uint32_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].type == FieldType::Reference) {
            refFields_.push_back(i);
        }
    }
}

KlassDescriptor
KlassDescriptor::makeArray(std::string name, FieldType elem)
{
    KlassDescriptor d;
    d.name_ = std::move(name);
    d.isArray_ = true;
    d.elemType_ = elem;
    return d;
}

KlassRegistry::KlassRegistry(bool cereal_header_ext, Addr metadata_base)
    : headerSlots_(cereal_header_ext ? 3 : 2),
      metadataBase_(metadata_base),
      metadataTop_(metadata_base)
{
}

KlassId
KlassRegistry::add(KlassDescriptor desc)
{
    fatal_if(byName_.count(desc.name()),
             "class '%s' registered twice", desc.name().c_str());

    std::vector<bool> bitmap;
    if (!desc.isArray()) {
        // Build the per-instance layout bitmap: header slots are values,
        // then one bit per field.
        bitmap.assign(headerSlots_, false);
        for (const auto &f : desc.fields()) {
            bitmap.push_back(f.type == FieldType::Reference);
        }
    }

    // Metadata block: 8 B of size/kind info plus the packed bitmap words
    // (arrays get a fixed 16 B block: kind + element type).
    Addr bitmap_words = desc.isArray() ? 1 : (bitmap.size() + 63) / 64;
    Addr meta_bytes = 8 + bitmap_words * 8;
    Addr meta_addr = metadataTop_;
    metadataTop_ = roundUp(metadataTop_ + meta_bytes, 64);

    KlassId id = static_cast<KlassId>(descs_.size());
    byName_.emplace(desc.name(), id);
    byMetaAddr_.emplace(meta_addr, id);
    descs_.push_back(Record{std::move(desc), std::move(bitmap), meta_addr,
                            meta_bytes});
    return id;
}

KlassId
KlassRegistry::arrayKlass(FieldType elem)
{
    auto key = static_cast<std::uint8_t>(elem);
    auto it = arrayKlasses_.find(key);
    if (it != arrayKlasses_.end()) {
        return it->second;
    }
    std::string name = std::string(fieldTypeName(elem)) + "[]";
    KlassId id = add(KlassDescriptor::makeArray(std::move(name), elem));
    arrayKlasses_.emplace(key, id);
    return id;
}

const KlassDescriptor &
KlassRegistry::klass(KlassId id) const
{
    panic_if(id >= descs_.size(), "bad klass id %u", id);
    return descs_[id].desc;
}

KlassId
KlassRegistry::idByName(const std::string &name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? kBadKlassId : it->second;
}

unsigned
KlassRegistry::instanceSlots(KlassId id) const
{
    const auto &d = klass(id);
    panic_if(d.isArray(), "instanceSlots() on array class %s",
             d.name().c_str());
    return headerSlots_ + static_cast<unsigned>(d.numFields());
}

unsigned
KlassRegistry::arraySlots(KlassId id, std::uint64_t n) const
{
    const auto &d = klass(id);
    panic_if(!d.isArray(), "arraySlots() on non-array class %s",
             d.name().c_str());
    const Addr data_bytes = n * fieldTypeBytes(d.elemType());
    return headerSlots_ + 1 +
           static_cast<unsigned>((data_bytes + 7) / 8);
}

const std::vector<bool> &
KlassRegistry::layoutBitmap(KlassId id) const
{
    panic_if(id >= descs_.size(), "bad klass id %u", id);
    panic_if(descs_[id].desc.isArray(),
             "static layoutBitmap() on array class; array bitmaps depend "
             "on instance length");
    return descs_[id].bitmap;
}

Addr
KlassRegistry::metadataAddr(KlassId id) const
{
    panic_if(id >= descs_.size(), "bad klass id %u", id);
    return descs_[id].metaAddr;
}

Addr
KlassRegistry::metadataBytes(KlassId id) const
{
    panic_if(id >= descs_.size(), "bad klass id %u", id);
    return descs_[id].metaBytes;
}

KlassId
KlassRegistry::idByMetadataAddr(Addr addr) const
{
    auto it = byMetaAddr_.find(addr);
    return it == byMetaAddr_.end() ? kBadKlassId : it->second;
}

} // namespace cereal
