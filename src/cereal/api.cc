#include "cereal/api.hh"

#include <cstring>

#include "serde/decode_error.hh"
#include "serde/skyway_serde.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"

namespace cereal {

void
ObjectOutputStream::append(const std::vector<std::uint8_t> &record)
{
    std::uint64_t n = record.size();
    const auto *p = reinterpret_cast<const std::uint8_t *>(&n);
    buf_.insert(buf_.end(), p, p + 8);
    buf_.insert(buf_.end(), record.begin(), record.end());
    ++records_;
}

std::vector<std::uint8_t>
ObjectInputStream::nextRecord()
{
    decode_check(buf_->size() - pos_ >= 8, DecodeStatus::Truncated, pos_,
                 "record length prefix overruns stream");
    std::uint64_t n;
    std::memcpy(&n, buf_->data() + pos_, 8);
    pos_ += 8;
    // n came off the wire: compare against the remainder, never add it
    // to pos_ first (the sum can wrap).
    decode_check(n <= buf_->size() - pos_, DecodeStatus::Truncated, pos_,
                 "record body (%llu B) overruns stream",
                 (unsigned long long)n);
    std::vector<std::uint8_t> rec(buf_->begin() +
                                      static_cast<std::ptrdiff_t>(pos_),
                                  buf_->begin() +
                                      static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return rec;
}

DecodeResult<std::vector<std::uint8_t>>
ObjectInputStream::tryNextRecord()
{
    try {
        return nextRecord();
    } catch (const DecodeError &e) {
        return e;
    }
}

CerealContext::CerealContext(Dram &dram, AccelConfig cfg,
                             CerealOptions opts)
    : dram_(&dram), device_(dram, cfg), serializer_(opts),
      trace_(trace::current().sub("cereal"))
{
    device_.setTrace(trace_);
}

void
CerealContext::registerClass(KlassId id)
{
    serializer_.registerClass(id);
}

void
CerealContext::registerAll(const KlassRegistry &reg)
{
    serializer_.registerAll(reg);
}

WriteObjectResult
CerealContext::writeObject(ObjectOutputStream &oos, Heap &src, Addr root,
                           Tick submit, bool shared_conflict)
{
    WriteObjectResult out;
    out.stream = serializer_.serializeToStream(src, root);
    oos.append(out.stream.encode());

    if (shared_conflict) {
        // Section V-E: another unit holds this graph's header area; the
        // serialization falls back to software with a thread-local
        // visited table. Skyway's algorithm is that software path.
        out.softwareFallback = true;
        CoreModel core(*dram_, CoreConfig(), submit);
        core.setTrace(trace_.sub("sw_fallback"));
        SkywaySerializer sw;
        sw.serialize(src, root, &core);
        auto stats = core.finish();
        out.timing.submit = submit;
        out.timing.start = submit;
        out.timing.done = submit + stats.elapsedTicks;
        out.timing.latencySeconds = stats.seconds;
        out.timing.bytes = stats.dramBytes;
        return out;
    }

    out.timing = device_.serialize(src, root, submit);
    return out;
}

ReadObjectResult
CerealContext::readObject(ObjectInputStream &ois, Heap &dst, Tick submit)
{
    ReadObjectResult out;
    CerealStream s = CerealStream::decode(ois.nextRecord());
    out.root = serializer_.deserializeStream(s, dst);
    out.timing = device_.deserialize(s, out.root, submit);
    return out;
}

DecodeResult<ReadObjectResult>
CerealContext::tryReadObject(ObjectInputStream &ois, Heap &dst,
                             Tick submit)
{
    try {
        return readObject(ois, dst, submit);
    } catch (const DecodeError &e) {
        return e;
    }
}

} // namespace cereal
