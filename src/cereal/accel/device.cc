#include "cereal/accel/device.hh"

#include <algorithm>
#include <string>

#include "sim/logging.hh"

namespace cereal {

CerealDevice::CerealDevice(Dram &dram, const AccelConfig &cfg)
    : cfg_(cfg), tlb_(cfg.tlbEntries, cfg.pageBytes, cfg.tlbMissPenalty),
      suFreeAt_(cfg.numSU, 0), duFreeAt_(cfg.numDU, 0)
{
    for (unsigned i = 0; i < cfg_.numSU; ++i) {
        suMai_.push_back(
            std::make_unique<Mai>(dram, cfg_.maiEntries, &tlb_));
    }
    for (unsigned i = 0; i < cfg_.numDU; ++i) {
        duMai_.push_back(
            std::make_unique<Mai>(dram, cfg_.maiEntries, &tlb_));
    }

    if (simModeObserves(cfg_.mode)) {
        metrics_ = metrics::Group(metrics::current(), "cereal.accel");
    }
    if (metrics_.enabled()) {
        // Busy ticks accumulate monotonically (resetBusyStats() has no
        // in-tree callers), so rate deltas stay non-negative.
        metrics_.rate("su_busy_frac",
                      "mean busy fraction across serialization units",
                      [this] { return static_cast<double>(suBusy_); },
                      1.0 / static_cast<double>(cfg_.numSU));
        metrics_.rate("du_busy_frac",
                      "mean busy fraction across deserialization units",
                      [this] { return static_cast<double>(duBusy_); },
                      1.0 / static_cast<double>(cfg_.numDU));
        metrics_.ratio("mai_hit_rate",
                       "MAI coalesce/data-buffer hits per request",
                       [this] {
                           std::uint64_t hits = 0;
                           for (const auto &m : suMai_) {
                               hits += m->coalescedHits();
                           }
                           for (const auto &m : duMai_) {
                               hits += m->coalescedHits();
                           }
                           return static_cast<double>(hits);
                       },
                       [this] {
                           std::uint64_t reqs = 0;
                           for (const auto &m : suMai_) {
                               reqs += m->requests();
                           }
                           for (const auto &m : duMai_) {
                               reqs += m->requests();
                           }
                           return static_cast<double>(reqs);
                       });
    }
}

AccelOpResult
CerealDevice::serialize(Heap &heap, Addr root, Tick submit)
{
    const ClockDomain clk(cfg_.period());
    // Request scheduler: earliest-available SU.
    auto it = std::min_element(suFreeAt_.begin(), suFreeAt_.end());
    unsigned unit = static_cast<unsigned>(it - suFreeAt_.begin());
    Tick start = std::max(submit, *it) +
                 clk.cyclesToTicks(kDispatchCycles);

    Addr stream_base = nextStreamBase_;
    nextStreamBase_ += 0x4000'0000ULL;

    SerializationUnit su(*suMai_[unit], cfg_);
    if (unit < suTrace_.size()) {
        su.setTrace(suTrace_[unit]);
    }
    SuResult r = su.serialize(heap, root, start, stream_base);
    suFreeAt_[unit] = r.done;
    suBusy_ += r.done - start;
    metrics_.tick(r.done);
    if (unit < suTrace_.size()) {
        suTrace_[unit].span("serialize", start, r.done);
    }

    AccelOpResult out;
    out.submit = submit;
    out.start = start;
    out.done = r.done;
    out.unit = unit;
    out.latencySeconds = ticksToSeconds(r.done - submit);
    out.bytes = r.bytesRead + r.bytesWritten;
    return out;
}

AccelOpResult
CerealDevice::deserialize(const CerealStream &stream, Addr dst_base,
                          Tick submit)
{
    const ClockDomain clk(cfg_.period());
    auto it = std::min_element(duFreeAt_.begin(), duFreeAt_.end());
    unsigned unit = static_cast<unsigned>(it - duFreeAt_.begin());
    Tick start = std::max(submit, *it) +
                 clk.cyclesToTicks(kDispatchCycles);

    Addr stream_base = nextStreamBase_;
    nextStreamBase_ += 0x4000'0000ULL;

    DeserializationUnit du(*duMai_[unit], cfg_);
    DuResult r = du.deserialize(stream, stream_base, dst_base, start);
    duFreeAt_[unit] = r.done;
    duBusy_ += r.done - start;
    metrics_.tick(r.done);
    if (unit < duTrace_.size()) {
        duTrace_[unit].span("deserialize", start, r.done);
    }

    AccelOpResult out;
    out.submit = submit;
    out.start = start;
    out.done = r.done;
    out.unit = unit;
    out.latencySeconds = ticksToSeconds(r.done - submit);
    out.bytes = r.bytesRead + r.bytesWritten;
    return out;
}

Tick
CerealDevice::allIdleTick() const
{
    Tick t = 0;
    for (Tick f : suFreeAt_) {
        t = std::max(t, f);
    }
    for (Tick f : duFreeAt_) {
        t = std::max(t, f);
    }
    return t;
}

void
CerealDevice::resetBusyStats()
{
    suBusy_ = 0;
    duBusy_ = 0;
}

void
CerealDevice::setTrace(const trace::TraceEmitter &em)
{
    suTrace_.clear();
    duTrace_.clear();
    if (!em.enabled() || !simModeObserves(cfg_.mode)) {
        return;
    }
    for (unsigned i = 0; i < cfg_.numSU; ++i) {
        suTrace_.push_back(em.sub(("su" + std::to_string(i)).c_str()));
        suMai_[i]->setTrace(suTrace_.back());
    }
    for (unsigned i = 0; i < cfg_.numDU; ++i) {
        duTrace_.push_back(em.sub(("du" + std::to_string(i)).c_str()));
        duMai_[i]->setTrace(duTrace_.back());
    }
}

} // namespace cereal
