/**
 * @file
 * Configuration of the Cereal accelerator (paper Table I, Section V).
 */

#ifndef CEREAL_CEREAL_ACCEL_ACCEL_CONFIG_HH
#define CEREAL_CEREAL_ACCEL_ACCEL_CONFIG_HH

#include "sim/sim_mode.hh"
#include "sim/types.hh"

namespace cereal {

/** Hardware parameters of one Cereal instance. */
struct AccelConfig
{
    /** Accelerator clock, MHz (40 nm synthesis target). */
    double freqMHz = 1000;

    /**
     * Fidelity mode (defaults to the ambient global). Non-observing
     * modes skip metrics registration and ignore setTrace(); every
     * reported operation result stays byte-identical.
     */
    SimMode mode = globalSimMode();

    /** Serialization units (Table I: 8). */
    unsigned numSU = 8;
    /** Deserialization units (Table I: 8). */
    unsigned numDU = 8;
    /** Block reconstructors per DU (Section VI-A: 4). */
    unsigned blockReconstructors = 4;

    /** MAI outstanding-request entries (Table I: 64). */
    unsigned maiEntries = 64;
    /** TLB entries (Table I: 128). */
    unsigned tlbEntries = 128;
    /** Page size: 1 GB huge pages (Section V-E). */
    Addr pageBytes = Addr{1} << 30;
    /** Cycles lost on a TLB miss (page-walk through host MMU). */
    Cycles tlbMissPenalty = 120;

    // --- Serialization Unit micro-parameters ---------------------------

    /** Header-manager cycles per reference processed (visit check +
     *  relative-address bookkeeping). */
    Cycles hmPerRef = 2;
    /** Object-metadata-manager cycles per object (bitmap generation). */
    Cycles ommPerObject = 2;
    /** Object-handler cycles per 8 B slot (value/ref steering). */
    Cycles ohPerSlot = 1;
    /** Reference-array-writer cycles per packed reference. */
    Cycles rawPerRef = 1;
    /** OMM metadata cache entries (klass descriptors are few and hot). */
    unsigned metadataCacheEntries = 64;

    // --- Deserialization Unit micro-parameters --------------------------

    /** Layout-manager cycles per 8-bit bitmap chunk (unpack+popcount
     *  are single-cycle custom logic per the paper). */
    Cycles lmPerBlock = 1;
    /** Block-manager cycles per dispatched block. */
    Cycles bmPerBlock = 1;
    /** Block-reconstructor occupancy per 64 B block. */
    Cycles brPerBlock = 4;
    /** Per-stream prefetch buffer depth, in 64 B chunks. */
    unsigned prefetchDepth = 8;

    /**
     * Ablation switch ("Cereal Vanilla", Figure 10): disable
     * fine-grained parallelism — no header prefetch in the SU, a single
     * block reconstructor and depth-1 prefetch in the DU. Operation-
     * level parallelism (multiple units) is retained.
     */
    bool pipelined = true;

    /** Clock period in ticks. */
    Tick period() const { return periodFromMHz(freqMHz); }
};

} // namespace cereal

#endif // CEREAL_CEREAL_ACCEL_ACCEL_CONFIG_HH
