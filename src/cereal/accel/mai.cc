#include "cereal/accel/mai.hh"

#include <algorithm>

namespace cereal {

Tick
Mai::acquireSlot(Tick issue)
{
    // Retire completed entries relative to the requested issue time.
    while (!outstanding_.empty() && outstanding_.front() <= issue) {
        outstanding_.pop_front();
    }
    // Full table: the requester waits for the oldest entry.
    while (outstanding_.size() >= entries_) {
        issue = std::max(issue, outstanding_.front());
        outstanding_.pop_front();
    }
    return issue;
}

Tick
Mai::blockAccess(Addr block, bool write, Tick issue)
{
    ++requests_;

    if (!write) {
        // Coalescing: join an in-flight read of the same block.
        auto it = inflight_.find(block);
        if (it != inflight_.end() && it->second > issue) {
            ++coalesced_;
            trace_.instant("mai_hit", issue);
            return it->second;
        }
        // Data-buffer hit: the block was fetched recently and still
        // sits in the MAI's 4 KB buffer.
        auto lb = lineBuffer_.find(block);
        if (lb != lineBuffer_.end()) {
            ++coalesced_;
            trace_.instant("mai_hit", issue);
            return std::max(issue, lb->second);
        }
    }

    if (tlb_) {
        Tick penalty = tlb_->lookup(block);
        if (penalty > 0) {
            trace_.instant("tlb_miss", issue);
        }
        issue += penalty;
    }
    trace_.instant("mai_miss", issue);

    issue = acquireSlot(issue);
    Tick done = dram_->access(block, write, issue).completeTick;
    outstanding_.push_back(done);
    if (!write) {
        inflight_[block] = done;
        // Fill the data buffer, evicting FIFO beyond its capacity.
        if (lineBuffer_.emplace(block, done).second) {
            lineFifo_.push_back(block);
            if (lineFifo_.size() > entries_) {
                lineBuffer_.erase(lineFifo_.front());
                lineFifo_.pop_front();
            }
        } else {
            lineBuffer_[block] = done;
        }
        // Bound the coalescing map: stale entries are harmless (the
        // `> issue` check above rejects them) but unbounded growth is
        // not; prune opportunistically.
        if (inflight_.size() > entries_ * 4) {
            for (auto jt = inflight_.begin(); jt != inflight_.end();) {
                if (jt->second <= issue) {
                    jt = inflight_.erase(jt);
                } else {
                    ++jt;
                }
            }
        }
    }
    return done;
}

Tick
Mai::read(Addr addr, Addr bytes, Tick issue)
{
    if (bytes == 0) {
        return issue;
    }
    const Addr first = roundDown(addr, 64);
    const Addr last = roundDown(addr + bytes - 1, 64);
    Tick done = issue;
    for (Addr b = first; b <= last; b += 64) {
        done = std::max(done, blockAccess(b, false, issue));
    }
    return done;
}

Tick
Mai::write(Addr addr, Addr bytes, Tick issue)
{
    if (bytes == 0) {
        return issue;
    }
    const Addr first = roundDown(addr, 64);
    const Addr last = roundDown(addr + bytes - 1, 64);
    Tick done = issue;
    for (Addr b = first; b <= last; b += 64) {
        done = std::max(done, blockAccess(b, true, issue));
    }
    return done;
}

Tick
Mai::atomicRmw(Addr addr, Tick issue)
{
    // The associative RMW buffer holds the line; the visible cost is
    // the read round trip (the merged write retires in the background).
    return blockAccess(roundDown(addr, 64), false, issue);
}

} // namespace cereal
