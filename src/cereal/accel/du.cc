#include "cereal/accel/du.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"

namespace cereal {

namespace {

/**
 * Eager sequential prefetcher over one input stream: keeps `depth`
 * 64 B chunks in flight through the MAI, issuing chunk i as soon as
 * chunk i-depth has returned (paper: "maintains a set amount of
 * internal buffer and eagerly issues a load request ... whenever this
 * buffer is empty").
 */
class StreamFetcher
{
  public:
    StreamFetcher(Mai &mai, Addr base, Addr total_bytes, unsigned depth,
                  Tick start)
        : mai_(&mai), base_(base), totalBytes_(total_bytes),
          depth_(std::max(1u, depth)), start_(start)
    {
    }

    /** Tick at which the chunk containing byte @p offset is buffered. */
    Tick
    available(Addr offset)
    {
        if (totalBytes_ == 0) {
            return start_;
        }
        panic_if(offset >= totalBytes_, "stream fetch past end");
        const std::size_t chunk = static_cast<std::size_t>(offset / 64);
        ensureIssued(chunk);
        return completion_[chunk];
    }

    Addr totalBytes() const { return totalBytes_; }

  private:
    void
    ensureIssued(std::size_t chunk)
    {
        const std::size_t chunks = static_cast<std::size_t>(
            (totalBytes_ + 63) / 64);
        const std::size_t want = std::min(chunk + depth_, chunks);
        while (completion_.size() < want) {
            const std::size_t i = completion_.size();
            Tick issue = (i >= depth_) ? completion_[i - depth_] : start_;
            Addr bytes = std::min<Addr>(64, totalBytes_ - Addr{i} * 64);
            completion_.push_back(
                mai_->read(base_ + Addr{i} * 64, bytes, issue));
        }
    }

    Mai *mai_;
    Addr base_;
    Addr totalBytes_;
    std::size_t depth_;
    Tick start_;
    std::vector<Tick> completion_;
};

/** Per-output-block input requirements, derived from the stream. */
struct BlockPlan
{
    /** Exclusive end offsets into each input stream after this block. */
    Addr valueBytesEnd;
    Addr refBytesEnd;
    Addr bitmapBytesEnd;
};

/**
 * Walk the stream's layout bitmaps and reference end map to compute,
 * for every 64 B output block, how far into each input stream its
 * reconstruction reaches.
 */
std::vector<BlockPlan>
planBlocks(const CerealStream &s)
{
    const std::uint64_t total_blocks = (s.totalGraphBytes + 63) / 64;
    std::vector<BlockPlan> plan;
    plan.reserve(total_blocks);

    ObjectUnpacker bitmaps(s.bitmapBuckets, s.bitmapEndMap);

    // Reference entry sizes come straight from the end map.
    std::size_t ref_bucket_pos = 0;
    auto next_ref_bytes = [&]() -> Addr {
        Addr n = 0;
        for (;;) {
            panic_if(ref_bucket_pos / 8 >= s.refEndMap.size(),
                     "ref end map underflow");
            bool ends = (s.refEndMap[ref_bucket_pos / 8] >>
                         (ref_bucket_pos % 8)) &
                        1;
            ++ref_bucket_pos;
            ++n;
            if (ends) {
                return n;
            }
        }
    };

    Addr value_bytes = 0;
    Addr ref_bytes = 0;
    Addr bitmap_bytes = 0;
    std::uint64_t slot_global = 0;
    std::uint64_t blocks_emitted = 0;

    auto close_blocks_through = [&](std::uint64_t slot_end) {
        // Emit plans for all blocks fully covered by slots < slot_end.
        while ((blocks_emitted + 1) * 8 <= slot_end) {
            plan.push_back({value_bytes, ref_bytes, bitmap_bytes});
            ++blocks_emitted;
        }
    };

    for (std::uint32_t i = 0; i < s.objectCount; ++i) {
        const auto bm = bitmaps.nextBits();
        // Packed bitmap footprint: payload bits + marker, padded.
        bitmap_bytes += (bm.size() + 1 + 7) / 8;
        // Header slots are never set in the bitmap, so a set bit always
        // means a reference slot.
        for (std::size_t slot = 0; slot < bm.size(); ++slot) {
            if (bm[slot]) {
                ref_bytes += next_ref_bytes();
            } else if (!(slot == 0 && s.headerStripped)) {
                value_bytes += 8;
            }
            ++slot_global;
            close_blocks_through(slot_global);
        }
    }
    // Final partial block.
    if (blocks_emitted < total_blocks) {
        plan.push_back({value_bytes, ref_bytes, bitmap_bytes});
    }
    return plan;
}

} // namespace

DuResult
DeserializationUnit::deserialize(const CerealStream &stream,
                                 Addr stream_base, Addr dst_base,
                                 Tick start)
{
    const ClockDomain clk(cfg_.period());
    auto cyc = [&](Cycles c) { return clk.cyclesToTicks(c); };

    DuResult out;
    const auto plan = planBlocks(stream);
    if (plan.empty()) {
        out.done = start;
        return out;
    }

    const unsigned depth = cfg_.pipelined ? cfg_.prefetchDepth : 1;
    const unsigned num_recon =
        cfg_.pipelined ? cfg_.blockReconstructors : 1;

    // Input stream layout within the serialized stream region.
    const Addr value_bytes_total = stream.valueArray.size() * 8;
    const Addr ref_bytes_total =
        stream.refBuckets.size() + stream.refEndMap.size();
    const Addr bitmap_bytes_total =
        stream.bitmapBuckets.size() + stream.bitmapEndMap.size();

    StreamFetcher values(*mai_, stream_base, value_bytes_total, depth,
                         start);
    StreamFetcher refs(*mai_, stream_base + 0x1000'0000ULL,
                       ref_bytes_total, depth, start);
    StreamFetcher bitmaps(*mai_, stream_base + 0x2000'0000ULL,
                          bitmap_bytes_total, depth, start);

    Tick lm_free = start;
    Tick bm_free = start;
    std::vector<Tick> recon_free(num_recon, start);
    Tick end = start;

    for (std::size_t b = 0; b < plan.size(); ++b) {
        const auto &p = plan[b];

        // Layout manager: needs the bitmap bytes that delimit this
        // block's slots.
        Tick bitmap_avail =
            p.bitmapBytesEnd
                ? bitmaps.available(p.bitmapBytesEnd - 1)
                : start;
        Tick lm_t = std::max(lm_free, bitmap_avail) + cyc(cfg_.lmPerBlock);
        lm_free = lm_t;

        // Block manager: needs this block's values and references
        // buffered and unpacked.
        Tick value_avail =
            p.valueBytesEnd ? values.available(p.valueBytesEnd - 1)
                            : start;
        Tick ref_avail =
            p.refBytesEnd ? refs.available(p.refBytesEnd - 1) : start;
        Tick bm_t = std::max({bm_free, lm_t, value_avail, ref_avail}) +
                    cyc(cfg_.bmPerBlock);
        bm_free = bm_t;

        // Dispatch to the earliest-free block reconstructor.
        auto r = std::min_element(recon_free.begin(), recon_free.end());
        Tick recon_start = std::max(bm_t, *r);
        Tick recon_done = recon_start + cyc(cfg_.brPerBlock);
        *r = recon_done;

        // Output block write.
        Addr bytes = std::min<Addr>(
            64, stream.totalGraphBytes - Addr{b} * 64);
        Tick wr = mai_->write(dst_base + Addr{b} * 64, bytes, recon_done);
        end = std::max(end, wr);
        ++out.blocks;
        out.bytesWritten += bytes;
    }

    out.bytesRead =
        value_bytes_total + ref_bytes_total + bitmap_bytes_total;
    out.done = end;
    return out;
}

} // namespace cereal
