/**
 * @file
 * The Cereal accelerator device: command queue, request scheduler, and
 * the pools of serialization/deserialization units (Section V-A,
 * Figure 6).
 *
 * The host submits serialize/deserialize commands; the scheduler
 * forwards each to the earliest-available unit of the right kind. The
 * device tracks per-module busy time, which the area/power model turns
 * into energy (Table V / Figure 17).
 *
 * Modelling note: the paper's MAI is one shared 64-entry structure. In
 * this schedule-synchronous model each unit is given its own MAI view
 * with the full entry count; cross-unit memory contention is still
 * captured where it physically bites — in the shared DDR4 bank/bus
 * model. bench_abl_mai sweeps the entry count to quantify the MLP
 * sensitivity.
 */

#ifndef CEREAL_CEREAL_ACCEL_DEVICE_HH
#define CEREAL_CEREAL_ACCEL_DEVICE_HH

#include <memory>
#include <vector>

#include "cereal/accel/accel_config.hh"
#include "cereal/accel/du.hh"
#include "cereal/accel/mai.hh"
#include "cereal/accel/su.hh"
#include "cereal/accel/tlb.hh"
#include "cereal/cereal_serializer.hh"
#include "metrics/metrics.hh"

namespace cereal {

/** Completion record of one accelerator command. */
struct AccelOpResult
{
    /** Tick the command was submitted. */
    Tick submit = 0;
    /** Tick the assigned unit began executing. */
    Tick start = 0;
    /** Completion tick. */
    Tick done = 0;
    /** Index of the unit that executed the command. */
    unsigned unit = 0;
    /** Wall time (done - submit), seconds. */
    double latencySeconds = 0;
    /** Total bytes moved to/from memory. */
    std::uint64_t bytes = 0;
};

/** The accelerator. */
class CerealDevice
{
  public:
    CerealDevice(Dram &dram, const AccelConfig &cfg = AccelConfig());

    const AccelConfig &config() const { return cfg_; }

    /**
     * Submit a serialization command at tick @p submit.
     * Timing only — run the functional CerealSerializer separately for
     * the bytes.
     */
    AccelOpResult serialize(Heap &heap, Addr root, Tick submit);

    /**
     * Submit a deserialization command at tick @p submit for a stream
     * whose structure is @p stream, reconstructing at @p dst_base.
     */
    AccelOpResult deserialize(const CerealStream &stream, Addr dst_base,
                              Tick submit);

    /** Accumulated SU busy time (across all SUs), ticks. */
    Tick suBusyTicks() const { return suBusy_; }
    /** Accumulated DU busy time (across all DUs), ticks. */
    Tick duBusyTicks() const { return duBusy_; }

    /** Tick at which every unit is idle again. */
    Tick allIdleTick() const;

    void resetBusyStats();

    /**
     * Attach a trace emitter. Each unit gets a child track ("su0",
     * "du0", ...) carrying one "serialize"/"deserialize" span per op
     * (unit occupancy), the MAI hit/miss/TLB instants of that unit's
     * memory view, and the SU's "hm_queue" depth counter.
     */
    void setTrace(const trace::TraceEmitter &em);

  private:
    AccelConfig cfg_;
    Tlb tlb_;
    /** Per-unit MAI views (see file comment). */
    std::vector<std::unique_ptr<Mai>> suMai_;
    std::vector<std::unique_ptr<Mai>> duMai_;
    std::vector<Tick> suFreeAt_;
    std::vector<Tick> duFreeAt_;
    /** Per-unit trace tracks (empty when tracing is off). */
    std::vector<trace::TraceEmitter> suTrace_;
    std::vector<trace::TraceEmitter> duTrace_;
    /** Stream scratch region allocator (distinct per op). */
    Addr nextStreamBase_ = 0x100'0000'0000ULL;

    Tick suBusy_ = 0;
    Tick duBusy_ = 0;
    /**
     * Time-series registration with the ambient metrics recorder:
     * SU/DU busy fractions and the MAI coalesce-hit rate.
     */
    metrics::Group metrics_;
    /** Command-queue + scheduler latency, cycles. */
    static constexpr Cycles kDispatchCycles = 4;
};

} // namespace cereal

#endif // CEREAL_CEREAL_ACCEL_DEVICE_HH
