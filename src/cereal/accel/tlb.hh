/**
 * @file
 * Accelerator TLB model (Section V-E).
 *
 * 128 entries over 1 GB huge pages: with the paper's 128 GB prototype
 * the working set always fits, so misses are rare; the model still
 * implements LRU replacement and a configurable miss penalty so the
 * sensitivity can be measured (bench_abl_mai covers table sweeps).
 */

#ifndef CEREAL_CEREAL_ACCEL_TLB_HH
#define CEREAL_CEREAL_ACCEL_TLB_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/types.hh"

namespace cereal {

/** Fully-associative LRU TLB. */
class Tlb
{
  public:
    Tlb(unsigned entries, Addr page_bytes, Cycles miss_penalty)
        : entries_(entries), pageBytes_(page_bytes),
          missPenalty_(miss_penalty)
    {
    }

    /**
     * Translate @p addr.
     * @return extra cycles spent (0 on a hit, the miss penalty on a
     *         miss)
     */
    Cycles
    lookup(Addr addr)
    {
        const Addr vpn = addr / pageBytes_;
        auto it = map_.find(vpn);
        if (it != map_.end()) {
            ++hits_;
            lru_.splice(lru_.begin(), lru_, it->second);
            return 0;
        }
        ++misses_;
        if (map_.size() >= entries_) {
            map_.erase(lru_.back());
            lru_.pop_back();
        }
        lru_.push_front(vpn);
        map_[vpn] = lru_.begin();
        return missPenalty_;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    void
    reset()
    {
        map_.clear();
        lru_.clear();
        hits_ = 0;
        misses_ = 0;
    }

  private:
    unsigned entries_;
    Addr pageBytes_;
    Cycles missPenalty_;
    std::list<Addr> lru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace cereal

#endif // CEREAL_CEREAL_ACCEL_TLB_HH
