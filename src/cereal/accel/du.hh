/**
 * @file
 * Cycle-level timing model of one Deserialization Unit (Section V-C,
 * Figure 8).
 *
 * The DU rebuilds the object image 64 B block at a time:
 *
 *  - the *layout manager* streams the packed layout bitmap, unpacking
 *    and popcounting one 8-bit chunk (one output block) per cycle;
 *  - the *block manager* eagerly prefetches the value array and the
 *    packed reference array, unpacks references, and hands each block
 *    reconstructor a (bitmap chunk, values, references) triple;
 *  - each of the R *block reconstructors* merges its triple into a
 *    64 B output block (translating class IDs through the Class ID
 *    Table SRAM) and writes it to its destination address.
 *
 * All three input streams are strictly sequential, which is why the DU
 * saturates far more DRAM bandwidth than pointer-chasing software
 * deserialization (Figures 11 and 15), and why deserialization gains
 * exceed serialization gains throughout the paper.
 */

#ifndef CEREAL_CEREAL_ACCEL_DU_HH
#define CEREAL_CEREAL_ACCEL_DU_HH

#include <cstdint>

#include "cereal/accel/accel_config.hh"
#include "cereal/accel/mai.hh"
#include "cereal/format.hh"

namespace cereal {

/** Timing result of one deserialization operation on one DU. */
struct DuResult
{
    /** Completion tick. */
    Tick done = 0;
    /** 64 B output blocks reconstructed. */
    std::uint64_t blocks = 0;
    /** Bytes read from the three input streams. */
    std::uint64_t bytesRead = 0;
    /** Bytes written to the reconstructed image. */
    std::uint64_t bytesWritten = 0;
};

/** One deserialization unit. */
class DeserializationUnit
{
  public:
    DeserializationUnit(Mai &mai, const AccelConfig &cfg)
        : mai_(&mai), cfg_(cfg)
    {
    }

    /**
     * Model deserializing @p stream into an image at @p dst_base.
     *
     * @param stream_base simulated address where the serialized stream
     *        resides (value array, then packed refs, then bitmaps)
     * @param start tick the command reaches this unit
     */
    DuResult deserialize(const CerealStream &stream, Addr stream_base,
                         Addr dst_base, Tick start);

  private:
    Mai *mai_;
    AccelConfig cfg_;
};

} // namespace cereal

#endif // CEREAL_CEREAL_ACCEL_DU_HH
