/**
 * @file
 * Memory Access Interface of the Cereal accelerator (Section V-A).
 *
 * The MAI is the accelerator's only path to memory. It provides:
 *  - an associative table of (up to) 64 outstanding requests — this is
 *    where Cereal's memory-level parallelism comes from: 64 overlapped
 *    misses versus the ~10 a CPU core sustains;
 *  - request coalescing in the style of MSHRs: a read that falls into a
 *    block already in flight joins that entry instead of re-accessing
 *    DRAM;
 *  - (functionally) reorder buffers so requesters see responses in
 *    issue order — captured here by returning per-request completion
 *    ticks that callers consume in order;
 *  - atomic read-modify-write, used by the header manager's visited
 *    check; modelled as a read whose entry also carries the write.
 *
 * The model is schedule-synchronous like the Dram model: callers pass
 * an earliest-issue tick and receive the completion tick.
 */

#ifndef CEREAL_CEREAL_ACCEL_MAI_HH
#define CEREAL_CEREAL_ACCEL_MAI_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "cereal/accel/tlb.hh"
#include "mem/dram.hh"
#include "sim/types.hh"
#include "trace/trace.hh"

namespace cereal {

/** The accelerator's memory access interface. */
class Mai
{
  public:
    /**
     * @param dram    shared memory model
     * @param entries outstanding-request capacity (Table I: 64)
     * @param tlb     optional translation stage charged per request
     */
    Mai(Dram &dram, unsigned entries, Tlb *tlb = nullptr)
        : dram_(&dram), entries_(entries), tlb_(tlb)
    {
    }

    /**
     * Read @p bytes at @p addr, issued no earlier than @p issue.
     * @return tick at which the last burst's data is available
     */
    Tick read(Addr addr, Addr bytes, Tick issue);

    /** Write @p bytes at @p addr. */
    Tick write(Addr addr, Addr bytes, Tick issue);

    /**
     * Atomic read-modify-write of one 8 B word (visited check). The
     * entry occupies the outstanding table like a read; the merged
     * write is free once the line is held.
     */
    Tick atomicRmw(Addr addr, Tick issue);

    std::uint64_t coalescedHits() const { return coalesced_; }
    std::uint64_t requests() const { return requests_; }

    /**
     * Emit "mai_hit" (coalesce/data-buffer) and "mai_miss" (DRAM path)
     * instants, plus "tlb_miss" when translation charged a penalty, on
     * @p em's track.
     */
    void setTrace(trace::TraceEmitter em) { trace_ = std::move(em); }

    void
    reset()
    {
        outstanding_.clear();
        inflight_.clear();
        lineBuffer_.clear();
        lineFifo_.clear();
        coalesced_ = 0;
        requests_ = 0;
    }

  private:
    /** One 64 B-granule access through the table. */
    Tick blockAccess(Addr block, bool write, Tick issue);

    /** Stall @p issue until a table slot frees up. */
    Tick acquireSlot(Tick issue);

    Dram *dram_;
    unsigned entries_;
    Tlb *tlb_;

    /** Completion ticks of in-flight requests (FIFO). */
    std::deque<Tick> outstanding_;
    /** Block address -> completion tick, for coalescing. */
    std::unordered_map<Addr, Tick> inflight_;

    /**
     * The MAI's 4 KB data buffer (Table I): the last `entries_` fetched
     * blocks with their fill times. A read that hits a buffered block
     * is served without a DRAM access (the SU's visited check and the
     * subsequent object-handler load share lines this way).
     */
    std::unordered_map<Addr, Tick> lineBuffer_;
    std::deque<Addr> lineFifo_;

    std::uint64_t coalesced_ = 0;
    std::uint64_t requests_ = 0;

    trace::TraceEmitter trace_;
};

} // namespace cereal

#endif // CEREAL_CEREAL_ACCEL_MAI_HH
