/**
 * @file
 * Cycle-level timing model of one Serialization Unit (Section V-B,
 * Figure 7).
 *
 * The SU is a four-stage pipeline — header manager (HM), object
 * metadata manager (OMM), object handler (OH), reference array writer
 * (RAW) — processing the objects of one graph:
 *
 *  - every reference the OH extracts arrives at the HM, which performs
 *    the visited check as an atomic RMW on the object's extension
 *    header word through the MAI;
 *  - for a first visit the OMM fetches the klass metadata (cached in a
 *    small descriptor cache — real graphs reuse a handful of classes),
 *    after which the object's size is known and the HM may advance its
 *    relative-address counter (the HM stalls until then, as the paper
 *    states);
 *  - the OH bulk-loads the object, steering values into the buffered
 *    value-array stream and references back to the HM;
 *  - the RAW packs one reference per cycle into the buffered
 *    reference-array stream.
 *
 * Pipelining means the HM's visited checks for queued references are
 * issued to the MAI the moment the references are discovered, so up to
 * 64 header reads overlap — the accelerator-side MLP of Section V-D.
 * With `pipelined=false` (the "Cereal Vanilla" ablation) checks issue
 * only when the HM is ready for them, collapsing that overlap.
 */

#ifndef CEREAL_CEREAL_ACCEL_SU_HH
#define CEREAL_CEREAL_ACCEL_SU_HH

#include <cstdint>

#include "cereal/accel/accel_config.hh"
#include "cereal/accel/mai.hh"
#include "heap/heap.hh"
#include "trace/trace.hh"

namespace cereal {

/** Timing result of one serialization operation on one SU. */
struct SuResult
{
    /** Completion tick of the whole operation. */
    Tick done = 0;
    /** Objects serialized. */
    std::uint64_t objects = 0;
    /** References processed by the HM (including revisits and nulls). */
    std::uint64_t refs = 0;
    /** Bytes read from the heap (headers + metadata + object data). */
    std::uint64_t bytesRead = 0;
    /** Bytes written to the serialized stream. */
    std::uint64_t bytesWritten = 0;
    /** OMM metadata-cache hits. */
    std::uint64_t metadataCacheHits = 0;
};

/** One serialization unit. */
class SerializationUnit
{
  public:
    SerializationUnit(Mai &mai, const AccelConfig &cfg)
        : mai_(&mai), cfg_(cfg)
    {
    }

    /**
     * Model serializing the graph rooted at @p root.
     *
     * The walk replays the functional serializer's traversal
     * (reference-arrival order) against the memory system; the heap is
     * only read.
     *
     * @param stream_base simulated address where the output stream's
     *        value/reference/bitmap arrays are written
     * @param start tick the command reaches this unit
     */
    SuResult serialize(Heap &heap, Addr root, Tick start,
                       Addr stream_base);

    /**
     * Emit an "hm_queue" counter on @p em's track tracking the depth of
     * the header manager's pending-reference queue.
     */
    void setTrace(trace::TraceEmitter em) { trace_ = std::move(em); }

  private:
    Mai *mai_;
    AccelConfig cfg_;
    trace::TraceEmitter trace_;
};

} // namespace cereal

#endif // CEREAL_CEREAL_ACCEL_SU_HH
