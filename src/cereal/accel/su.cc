#include "cereal/accel/su.hh"

#include <algorithm>
#include <deque>
#include <list>
#include <unordered_map>

#include "heap/object.hh"
#include "metrics/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace cereal {

namespace {

/** Small LRU cache of klass descriptors inside the OMM. */
class MetadataCache
{
  public:
    explicit MetadataCache(unsigned entries) : entries_(entries) {}

    bool
    touch(KlassId id)
    {
        auto it = map_.find(id);
        if (it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            return true;
        }
        if (map_.size() >= entries_) {
            map_.erase(lru_.back());
            lru_.pop_back();
        }
        lru_.push_front(id);
        map_[id] = lru_.begin();
        return false;
    }

  private:
    unsigned entries_;
    std::list<KlassId> lru_;
    std::unordered_map<KlassId, std::list<KlassId>::iterator> map_;
};

/** Write-combining buffer for a sequential output stream. */
class StreamWriter
{
  public:
    StreamWriter(Mai &mai, Addr base) : mai_(&mai), cursor_(base) {}

    /** Buffer @p bytes produced at tick @p t; flush full 64 B chunks. */
    void
    produce(Addr bytes, Tick t)
    {
        pending_ += bytes;
        total_ += bytes;
        while (pending_ >= 64) {
            lastWrite_ =
                std::max(lastWrite_, mai_->write(cursor_, 64, t));
            cursor_ += 64;
            pending_ -= 64;
        }
    }

    /** Flush the residual partial chunk at tick @p t. */
    Tick
    flush(Tick t)
    {
        if (pending_ > 0) {
            lastWrite_ =
                std::max(lastWrite_, mai_->write(cursor_, pending_, t));
            cursor_ += pending_;
            pending_ = 0;
        }
        return lastWrite_;
    }

    Tick lastWrite() const { return lastWrite_; }
    Addr totalBytes() const { return total_; }

  private:
    Mai *mai_;
    Addr cursor_;
    Addr pending_ = 0;
    Addr total_ = 0;
    Tick lastWrite_ = 0;
};

/** Packed size, in 1 B buckets, of one reference token (Section IV-B). */
Addr
packedRefBuckets(std::uint64_t token)
{
    unsigned bits = 1; // marker
    while (token) {
        ++bits;
        token >>= 1;
    }
    return (bits + 7) / 8;
}

/**
 * Event-driven execution state of one serialization operation.
 *
 * The SU pipeline is simulated on a private event queue so that memory
 * requests reach the MAI in nondecreasing simulated-time order — the
 * schedule-synchronous DRAM model relies on that to see the bank idle
 * periods that really existed.
 */
class SuSim
{
  public:
    SuSim(Heap &heap, Mai &mai, const AccelConfig &cfg, Tick start,
          Addr stream_base, trace::TraceEmitter trace)
        : heap_(&heap), mai_(&mai), cfg_(cfg), clk_(cfg.period()),
          trace_(std::move(trace)),
          start_(start), mdcache_(cfg.metadataCacheEntries),
          values_(mai, stream_base),
          refs_(mai, stream_base + 0x1000'0000ULL),
          refEnds_(mai, stream_base + 0x1800'0000ULL),
          bitmaps_(mai, stream_base + 0x2000'0000ULL),
          bitmapEnds_(mai, stream_base + 0x2800'0000ULL),
          headerSlots_(heap.registry().headerSlots())
    {
        // One group per op; the recorder uniquifies repeated prefixes
        // ("cereal.accel.su", "cereal.accel.su#1", ...) the way
        // per-unit trace tracks do.
        metrics_ = metrics::Group(metrics::current(), "cereal.accel.su");
        if (metrics_.enabled()) {
            metrics_.gauge("hm_queue",
                           "header-manager pending-reference queue depth",
                           [this](Tick) {
                               return static_cast<double>(pending_.size());
                           });
        }
    }

    SuResult
    run(Addr root)
    {
        hmFree_ = start_;
        rawFree_ = start_;
        ohFree_ = start_;
        evq_.runUntil(start_);
        discover(root, start_);
        evq_.runAll();

        // Flush residual end-map bytes for partially filled groups.
        if (refBucketsSinceEnd_ > 0) {
            refEnds_.produce(1, rawFree_);
        }
        if (bitmapBucketsSinceEnd_ > 0) {
            bitmapEnds_.produce(1, hmFree_);
        }
        Tick end = std::max({hmFree_, rawFree_, ohFree_, lastEvent_});
        end = std::max(end, values_.flush(end));
        end = std::max(end, refs_.flush(end));
        end = std::max(end, refEnds_.flush(end));
        end = std::max(end, bitmaps_.flush(end));
        end = std::max(end, bitmapEnds_.flush(end));

        out_.done = end;
        out_.bytesWritten = values_.totalBytes() + refs_.totalBytes() +
                            refEnds_.totalBytes() +
                            bitmaps_.totalBytes() +
                            bitmapEnds_.totalBytes() + 4;
        return out_;
    }

  private:
    Tick cyc(Cycles c) const { return clk_.cyclesToTicks(c); }

    /** RAW output: packed reference buckets plus their end-map bits. */
    void
    produceRef(Addr buckets, Tick t)
    {
        refs_.produce(buckets, t);
        refBucketsSinceEnd_ += buckets;
        while (refBucketsSinceEnd_ >= 8) {
            refEnds_.produce(1, t);
            refBucketsSinceEnd_ -= 8;
        }
    }

    /** A reference arrives at the HM's input queue. */
    void
    discover(Addr target, Tick arrival)
    {
        Tick chk_done = kMaxTick;
        if (cfg_.pipelined) {
            // The visited check issues the moment the reference is
            // discovered: this is where the SU's MLP comes from.
            chk_done = mai_->atomicRmw(target + 16, arrival);
            out_.bytesRead += 8;
        }
        pending_.push_back({target, arrival, chk_done});
        trace_.counter("hm_queue", arrival,
                       static_cast<double>(pending_.size()));
        metrics_.tick(arrival);
        scheduleHm(arrival);
    }

    /**
     * Arrange for the HM to run at @p when. At most one wake event is
     * kept in flight — scheduling one event per pending reference
     * would be quadratic on wide frontiers.
     */
    void
    scheduleHm(Tick when)
    {
        when = std::max(when, evq_.now());
        if (when >= hmWakeAt_) {
            return; // an earlier (or equal) wake is already queued
        }
        hmWakeAt_ = when;
        evq_.schedule(when, [this, when] {
            if (hmWakeAt_ == when) {
                hmWakeAt_ = kMaxTick;
                hmStep();
            }
        });
    }

    /** Header manager: process the next pending reference if ready. */
    void
    hmStep()
    {
        if (pending_.empty()) {
            return;
        }
        const Tick now = evq_.now();
        if (hmFree_ > now) {
            scheduleHm(hmFree_);
            return;
        }
        PendingRef ref = pending_.front();
        Tick chk_done = ref.chkDone;
        if (!cfg_.pipelined) {
            // Vanilla: the check is issued only when the HM turns to
            // this reference, exposing the full round trip.
            chk_done = mai_->atomicRmw(
                ref.target + 16, std::max(ref.arrival, now));
            out_.bytesRead += 8;
        }
        if (chk_done > now) {
            scheduleHm(chk_done);
            return;
        }
        pending_.pop_front();
        trace_.counter("hm_queue", now,
                       static_cast<double>(pending_.size()));
        metrics_.tick(now);
        ++out_.refs;

        Tick hm_t = now + cyc(cfg_.hmPerRef);

        // Relative address to the reference array writer.
        auto vit = visited_.find(ref.target);
        const bool first = (vit == visited_.end());
        std::uint64_t rel = first ? assignedBytes_ : vit->second;
        rawFree_ = std::max(rawFree_, hm_t) + cyc(cfg_.rawPerRef);
        produceRef(packedRefBuckets(rel / 8 + 1), rawFree_);

        if (!first) {
            hmFree_ = hm_t;
            scheduleHm(hmFree_);
            return;
        }

        // First visit: OMM fetches metadata; the HM stalls until the
        // object size returns and its counter is updated.
        KlassId klass = heap_->klassOf(ref.target);
        Tick meta_done;
        if (mdcache_.touch(klass)) {
            ++out_.metadataCacheHits;
            meta_done = hm_t + cyc(1);
        } else {
            meta_done =
                mai_->read(heap_->registry().metadataAddr(klass),
                           heap_->registry().metadataBytes(klass), hm_t);
            out_.bytesRead += heap_->registry().metadataBytes(klass);
        }
        const unsigned slots = heap_->objectSlots(ref.target);
        Tick size_known = meta_done + cyc(cfg_.ommPerObject);

        visited_.emplace(ref.target, assignedBytes_);
        assignedBytes_ += Addr{slots} * 8;
        ++out_.objects;

        // Packed layout bitmap from the OMM (buckets + end map).
        const Addr bm_buckets = (slots + 1 + 7) / 8;
        bitmaps_.produce(bm_buckets, size_known);
        bitmapBucketsSinceEnd_ += bm_buckets;
        while (bitmapBucketsSinceEnd_ >= 8) {
            bitmapEnds_.produce(1, size_known);
            bitmapBucketsSinceEnd_ -= 8;
        }

        hmFree_ = size_known;
        lastEvent_ = std::max(lastEvent_, size_known);

        // Object handler starts once the layout is known.
        Addr obj = ref.target;
        evq_.schedule(std::max(size_known, now),
                      [this, obj] { ohIssue(obj); });
        scheduleHm(hmFree_);
    }

    /** Object handler: bulk-load the object. */
    void
    ohIssue(Addr obj)
    {
        const unsigned slots = heap_->objectSlots(obj);
        Tick data_done = mai_->read(obj, Addr{slots} * 8, evq_.now());
        out_.bytesRead += Addr{slots} * 8;
        Tick oh_done = std::max(ohFree_, data_done) +
                       cyc(cfg_.ohPerSlot * slots);
        ohFree_ = oh_done;
        evq_.schedule(oh_done, [this, obj] { ohComplete(obj); });
    }

    /** Object data arrived: steer values, hand refs to the HM. */
    void
    ohComplete(Addr obj)
    {
        const Tick now = evq_.now();
        lastEvent_ = std::max(lastEvent_, now);
        const unsigned slots = heap_->objectSlots(obj);
        const auto bitmap = heap_->instanceBitmap(obj);
        unsigned ref_slots = 0;
        for (unsigned s = headerSlots_; s < slots; ++s) {
            if (!bitmap[s]) {
                continue;
            }
            ++ref_slots;
            Addr target = heap_->load64(obj + Addr{s} * 8);
            if (target == 0) {
                // Null: bypasses the HM; the RAW packs the token.
                ++out_.refs;
                rawFree_ = std::max(rawFree_, now) + cyc(cfg_.rawPerRef);
                produceRef(1, rawFree_);
            } else {
                discover(target, now);
            }
        }
        values_.produce(Addr{slots - ref_slots} * 8, now);
    }

    struct PendingRef
    {
        Addr target;
        Tick arrival;
        Tick chkDone;
    };

    Heap *heap_;
    Mai *mai_;
    AccelConfig cfg_;
    ClockDomain clk_;
    trace::TraceEmitter trace_;
    metrics::Group metrics_;
    Tick start_;

    EventQueue evq_;
    MetadataCache mdcache_;
    StreamWriter values_;
    StreamWriter refs_;
    /** End-map stream for packed references (1 bit per bucket). */
    StreamWriter refEnds_;
    StreamWriter bitmaps_;
    /** End-map stream for packed bitmaps. */
    StreamWriter bitmapEnds_;
    std::uint64_t refBucketsSinceEnd_ = 0;
    std::uint64_t bitmapBucketsSinceEnd_ = 0;
    unsigned headerSlots_;

    std::deque<PendingRef> pending_;
    std::unordered_map<Addr, std::uint64_t> visited_;
    std::uint64_t assignedBytes_ = 0;

    Tick hmFree_ = 0;
    Tick rawFree_ = 0;
    Tick ohFree_ = 0;
    Tick lastEvent_ = 0;
    /** Tick of the in-flight HM wake event (kMaxTick when none). */
    Tick hmWakeAt_ = kMaxTick;
    SuResult out_;
};

} // namespace

SuResult
SerializationUnit::serialize(Heap &heap, Addr root, Tick start,
                             Addr stream_base)
{
    panic_if(root == 0, "SU given a null root");
    SuSim sim(heap, *mai_, cfg_, start, stream_base, trace_);
    return sim.run(root);
}

} // namespace cereal
