#include "cereal/area_power.hh"

namespace cereal {

AreaPowerModel::AreaPowerModel(const AccelConfig &cfg) : cfg_(cfg)
{
    const unsigned su = cfg.numSU;
    const unsigned du = cfg.numDU;
    const unsigned br = cfg.numDU * cfg.blockReconstructors;

    // Paper Table V per-instance synthesis results (40 nm).
    serializer_ = {
        {"header-manager", 0.003, 1.3, su},
        {"reference-array-writer", 0.013, 5.8, su},
        {"object-metadata-manager", 0.014, 7.6, su},
        {"object-handler", 0.028, 18.4, su},
    };
    deserializer_ = {
        {"layout-manager", 0.020, 10.9, du},
        {"block-manager", 0.217, 81.1, du},
        {"block-reconstructor", 0.011, 6.9, br},
    };
    system_ = {
        {"tlb", 0.282, 2.7, 1},
        {"mai", 0.161, 0.8, 1},
        {"class-id-table", 0.230, 1.2, 1},
        {"klass-pointer-table", 0.472, 5.3, 1},
    };
}

namespace {

double
sumArea(const std::vector<ModuleSpec> &mods)
{
    double a = 0;
    for (const auto &m : mods) {
        a += m.totalArea();
    }
    return a;
}

double
sumPower(const std::vector<ModuleSpec> &mods)
{
    double p = 0;
    for (const auto &m : mods) {
        p += m.totalPower();
    }
    return p;
}

} // namespace

double
AreaPowerModel::totalAreaMm2() const
{
    return sumArea(serializer_) + sumArea(deserializer_) +
           sumArea(system_);
}

double
AreaPowerModel::totalPowerMw() const
{
    return sumPower(serializer_) + sumPower(deserializer_) +
           sumPower(system_);
}

double
AreaPowerModel::serializerPowerMw() const
{
    // System structures (MAI/TLB/tables) are active during either
    // direction; charge them fully to the active direction.
    return sumPower(serializer_) + sumPower(system_);
}

double
AreaPowerModel::deserializerPowerMw() const
{
    return sumPower(deserializer_) + sumPower(system_);
}

double
AreaPowerModel::serializeEnergyJ(double busy_seconds) const
{
    // Busy time is summed across units; one unit's busy second burns
    // one unit's power plus the system share.
    const double per_unit_mw =
        sumPower(serializer_) / cfg_.numSU + sumPower(system_);
    return per_unit_mw * 1e-3 * busy_seconds;
}

double
AreaPowerModel::deserializeEnergyJ(double busy_seconds) const
{
    const double per_unit_mw =
        sumPower(deserializer_) / cfg_.numDU + sumPower(system_);
    return per_unit_mw * 1e-3 * busy_seconds;
}

} // namespace cereal
