/**
 * @file
 * The Cereal serialization format (paper Section IV, Figures 4 and 5).
 *
 * A serialized graph is three decoupled structures plus one size word:
 *
 *  - **value array**: for every object, in discovery order, the 8 B
 *    slots that are *not* references — the header (mark word, class ID
 *    in place of the klass pointer, Cereal extension slot) and all
 *    primitive fields / array payload;
 *  - **reference array**: one entry per reference *slot*, in slot order
 *    (objects in discovery order, slots low to high): the target
 *    object's relative address in the deserialized image, divided by 8
 *    (objects are 8 B aligned), biased by +1 so that 0 encodes null;
 *  - **layout bitmaps**: per object, one bit per 8 B slot (1 = that
 *    slot holds a reference). Bitmap lengths delimit objects and give
 *    their sizes (bits x 8 B);
 *  - **total graph size** (4 B): the deserializer's allocation length.
 *
 * Both the reference array and the bitmaps go through the *object
 * packing* scheme of Section IV-B: each entry keeps only its
 * significant bits behind a marker '1' bit, is padded to whole 1 B
 * buckets, and a parallel *end map* (one bit per bucket) marks each
 * entry's final bucket. Decoding gathers buckets up to an end-map '1',
 * skips leading zeros up to the marker, and takes the rest verbatim.
 *
 * Decoupling values from references is what exposes the block-level
 * parallelism the DU exploits: a 64 B output block can be rebuilt from
 * (bitmap chunk, next values, next references) without touching any
 * other block.
 */

#ifndef CEREAL_CEREAL_FORMAT_HH
#define CEREAL_CEREAL_FORMAT_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace cereal {

/**
 * Packs bit strings into byte buckets with an end map (Figure 5).
 *
 * Bits are emitted MSB-first inside each value's bucket run; each run
 * is preceded by a marker '1' and left-padded with zeros to a whole
 * number of bytes.
 */
class ObjectPacker
{
  public:
    /** Append an arbitrary bit string (used for layout bitmaps). */
    void packBits(const std::vector<bool> &bits);

    /** Append an unsigned value's significant bits (references). */
    void packValue(std::uint64_t v);

    const std::vector<std::uint8_t> &buckets() const { return buckets_; }
    /** End map: bit i set iff bucket i ends an entry (bit 0 = LSB of
     *  byte 0). */
    const std::vector<std::uint8_t> &endMap() const { return endMap_; }

    /** Number of packed entries. */
    std::uint64_t entries() const { return entries_; }

    /** Total packed size: buckets + end map, bytes. */
    std::uint64_t
    packedBytes() const
    {
        return buckets_.size() + endMap_.size();
    }

  private:
    void pushBucketRun(const std::vector<bool> &with_marker);

    std::vector<std::uint8_t> buckets_;
    std::vector<std::uint8_t> endMap_;
    std::uint64_t entries_ = 0;
};

/** Decodes an ObjectPacker stream. */
class ObjectUnpacker
{
  public:
    ObjectUnpacker(const std::vector<std::uint8_t> &buckets,
                   const std::vector<std::uint8_t> &end_map)
        : buckets_(&buckets), endMap_(&end_map)
    {
    }

    /** True when no more entries remain. */
    bool done() const { return pos_ >= buckets_->size(); }

    /** Next entry as a raw bit string (marker and padding removed). */
    std::vector<bool> nextBits();

    /** Next entry interpreted as an unsigned value. */
    std::uint64_t nextValue();

  private:
    bool endsEntry(std::size_t bucket) const;

    const std::vector<std::uint8_t> *buckets_;
    const std::vector<std::uint8_t> *endMap_;
    std::size_t pos_ = 0;
};

/** Reference-array entry encoding: +1-biased slot index; 0 is null. */
constexpr std::uint64_t
encodeRelRef(Addr rel_bytes)
{
    return rel_bytes / 8 + 1;
}

/** Inverse of encodeRelRef for non-null entries. */
constexpr Addr
decodeRelRef(std::uint64_t token)
{
    return (token - 1) * 8;
}

/** Null token in the reference array. */
constexpr std::uint64_t kNullRefToken = 0;

/** The in-memory form of one serialized object graph. */
struct CerealStream
{
    /** Non-reference slots, 8 B each, objects in discovery order. */
    std::vector<std::uint64_t> valueArray;
    /** Packed reference array + its end map. */
    std::vector<std::uint8_t> refBuckets;
    std::vector<std::uint8_t> refEndMap;
    /** Packed per-object layout bitmaps + end map. */
    std::vector<std::uint8_t> bitmapBuckets;
    std::vector<std::uint8_t> bitmapEndMap;
    /** Sum of object sizes = deserialized image size, bytes. */
    std::uint32_t totalGraphBytes = 0;
    /** Number of serialized objects. */
    std::uint32_t objectCount = 0;
    /** Number of reference-array entries (reference slots). */
    std::uint64_t refEntries = 0;
    /** Total layout-bitmap bits (= graph slots). */
    std::uint64_t bitmapBits = 0;
    /** True when mark words were stripped from the value array. */
    bool headerStripped = false;

    /** Total serialized size in bytes (what Table IV reports). */
    std::uint64_t serializedBytes() const;

    /** Size the *unpacked* baseline format (Section IV-A) would take. */
    std::uint64_t baselineBytes() const;

    /** Flatten to a transportable byte stream. */
    std::vector<std::uint8_t> encode() const;

    /** Parse a byte stream produced by encode(). */
    static CerealStream decode(const std::vector<std::uint8_t> &bytes);
};

} // namespace cereal

#endif // CEREAL_CEREAL_FORMAT_HH
