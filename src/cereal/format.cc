#include "cereal/format.hh"

#include <cstring>

#include "serde/decode_error.hh"
#include "sim/logging.hh"

namespace cereal {

void
ObjectPacker::pushBucketRun(const std::vector<bool> &with_marker)
{
    const std::size_t bits = with_marker.size();
    const std::size_t bytes = (bits + 7) / 8;
    const std::size_t pad = bytes * 8 - bits;

    for (std::size_t b = 0; b < bytes; ++b) {
        std::uint8_t bucket = 0;
        for (unsigned bit = 0; bit < 8; ++bit) {
            const std::size_t global = b * 8 + bit;
            bool v = false;
            if (global >= pad) {
                v = with_marker[global - pad];
            }
            bucket = static_cast<std::uint8_t>((bucket << 1) | (v ? 1 : 0));
        }
        const std::size_t bucket_idx = buckets_.size();
        buckets_.push_back(bucket);
        if (bucket_idx / 8 >= endMap_.size()) {
            endMap_.push_back(0);
        }
        if (b + 1 == bytes) {
            endMap_[bucket_idx / 8] |=
                static_cast<std::uint8_t>(1u << (bucket_idx % 8));
        }
    }
    ++entries_;
}

void
ObjectPacker::packBits(const std::vector<bool> &bits)
{
    std::vector<bool> with_marker;
    with_marker.reserve(bits.size() + 1);
    with_marker.push_back(true); // marker delimits padding from payload
    with_marker.insert(with_marker.end(), bits.begin(), bits.end());
    pushBucketRun(with_marker);
}

void
ObjectPacker::packValue(std::uint64_t v)
{
    // Significant bits, MSB first; zero contributes no payload bits.
    std::vector<bool> bits;
    if (v != 0) {
        int top = 63;
        while (!((v >> top) & 1)) {
            --top;
        }
        for (int i = top; i >= 0; --i) {
            bits.push_back((v >> i) & 1);
        }
    }
    packBits(bits);
}

bool
ObjectUnpacker::endsEntry(std::size_t bucket) const
{
    decode_check(bucket / 8 < endMap_->size(), DecodeStatus::Truncated,
                 bucket, "end map shorter than bucket array");
    return ((*endMap_)[bucket / 8] >> (bucket % 8)) & 1;
}

std::vector<bool>
ObjectUnpacker::nextBits()
{
    decode_check(!done(), DecodeStatus::Truncated, pos_,
                 "unpacker exhausted");
    // Gather this entry's bucket run.
    std::size_t first = pos_;
    while (!endsEntry(pos_)) {
        ++pos_;
        decode_check(pos_ < buckets_->size(), DecodeStatus::Truncated,
                     pos_, "unterminated packed entry");
    }
    std::size_t last = pos_;
    ++pos_;

    std::vector<bool> bits;
    bits.reserve((last - first + 1) * 8);
    for (std::size_t b = first; b <= last; ++b) {
        std::uint8_t bucket = (*buckets_)[b];
        for (int i = 7; i >= 0; --i) {
            bits.push_back((bucket >> i) & 1);
        }
    }
    // Strip padding zeros and the marker bit.
    std::size_t marker = 0;
    while (marker < bits.size() && !bits[marker]) {
        ++marker;
    }
    decode_check(marker < bits.size(), DecodeStatus::Malformed, first,
                 "packed entry missing marker bit");
    return std::vector<bool>(bits.begin() +
                                 static_cast<std::ptrdiff_t>(marker) + 1,
                             bits.end());
}

std::uint64_t
ObjectUnpacker::nextValue()
{
    std::size_t at = pos_;
    auto bits = nextBits();
    decode_check(bits.size() <= 64, DecodeStatus::Malformed, at,
                 "packed value wider than 64 bits");
    std::uint64_t v = 0;
    for (bool b : bits) {
        v = (v << 1) | (b ? 1 : 0);
    }
    return v;
}

std::uint64_t
CerealStream::serializedBytes() const
{
    return 4 /* total graph size */ + valueArray.size() * 8 +
           refBuckets.size() + refEndMap.size() + bitmapBuckets.size() +
           bitmapEndMap.size();
}

std::uint64_t
CerealStream::baselineBytes() const
{
    // Section IV-A without packing: full 8 B per reference, raw bitmap
    // bytes plus an 8 B bitmap-length word per object.
    return 4 + valueArray.size() * 8 + refEntries * 8 +
           (bitmapBits + 7) / 8 + std::uint64_t{objectCount} * 8;
}

namespace {

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.insert(out.end(), reinterpret_cast<std::uint8_t *>(&v),
               reinterpret_cast<std::uint8_t *>(&v) + 4);
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    out.insert(out.end(), reinterpret_cast<std::uint8_t *>(&v),
               reinterpret_cast<std::uint8_t *>(&v) + 8);
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &in, std::size_t &at)
{
    std::uint32_t v;
    decode_check(at <= in.size() && in.size() - at >= 4,
                 DecodeStatus::Truncated, at,
                 "CerealStream decode underflow");
    std::memcpy(&v, in.data() + at, 4);
    at += 4;
    return v;
}

std::uint64_t
getU64(const std::vector<std::uint8_t> &in, std::size_t &at)
{
    std::uint64_t v;
    decode_check(at <= in.size() && in.size() - at >= 8,
                 DecodeStatus::Truncated, at,
                 "CerealStream decode underflow");
    std::memcpy(&v, in.data() + at, 8);
    at += 8;
    return v;
}

constexpr std::uint32_t kStreamMagic = 0x4352454cu; // "CREL"

} // namespace

std::vector<std::uint8_t>
CerealStream::encode() const
{
    std::vector<std::uint8_t> out;
    putU32(out, kStreamMagic);
    putU32(out, objectCount);
    putU32(out, totalGraphBytes);
    out.push_back(headerStripped ? 1 : 0);
    putU64(out, valueArray.size());
    putU64(out, refBuckets.size());
    putU64(out, refEndMap.size());
    putU64(out, bitmapBuckets.size());
    putU64(out, bitmapEndMap.size());
    putU64(out, refEntries);
    putU64(out, bitmapBits);
    const auto *v = reinterpret_cast<const std::uint8_t *>(
        valueArray.data());
    out.insert(out.end(), v, v + valueArray.size() * 8);
    out.insert(out.end(), refBuckets.begin(), refBuckets.end());
    out.insert(out.end(), refEndMap.begin(), refEndMap.end());
    out.insert(out.end(), bitmapBuckets.begin(), bitmapBuckets.end());
    out.insert(out.end(), bitmapEndMap.begin(), bitmapEndMap.end());
    return out;
}

CerealStream
CerealStream::decode(const std::vector<std::uint8_t> &bytes)
{
    CerealStream s;
    std::size_t at = 0;
    decode_check(getU32(bytes, at) == kStreamMagic,
                 DecodeStatus::BadMagic, 0, "bad Cereal stream magic");
    s.objectCount = getU32(bytes, at);
    s.totalGraphBytes = getU32(bytes, at);
    decode_check(at < bytes.size(), DecodeStatus::Truncated, at,
                 "CerealStream decode underflow");
    s.headerStripped = bytes[at++] != 0;
    std::uint64_t n_values = getU64(bytes, at);
    std::uint64_t n_ref_buckets = getU64(bytes, at);
    std::uint64_t n_ref_end = getU64(bytes, at);
    std::uint64_t n_bm_buckets = getU64(bytes, at);
    std::uint64_t n_bm_end = getU64(bytes, at);
    s.refEntries = getU64(bytes, at);
    s.bitmapBits = getU64(bytes, at);

    // Section sizes must tile the remaining bytes exactly; accumulate
    // with per-section bounds so corrupted 64-bit sizes cannot wrap the
    // sum.
    const std::uint64_t rest = bytes.size() - at;
    decode_check(n_values <= rest / 8, DecodeStatus::BadLength, at,
                 "value array (%llu entries) exceeds stream",
                 (unsigned long long)n_values);
    std::uint64_t need = n_values * 8;
    for (std::uint64_t n : {n_ref_buckets, n_ref_end, n_bm_buckets,
                            n_bm_end}) {
        decode_check(n <= rest - need, DecodeStatus::BadLength, at,
                     "packed section (%llu B) exceeds stream",
                     (unsigned long long)n);
        need += n;
    }
    decode_check(need == rest, DecodeStatus::Malformed, at,
                 "CerealStream length mismatch (%llu declared, %llu "
                 "present)",
                 (unsigned long long)need, (unsigned long long)rest);

    // Byte-level self-consistency: end maps carry one bit per bucket.
    // Cross-field semantic checks (object counts vs buckets, graph size
    // vs bitmap bits) live in deserializeStream, which also covers
    // hand-built streams that never pass through this codec.
    decode_check(n_ref_end == (n_ref_buckets + 7) / 8,
                 DecodeStatus::Malformed, at,
                 "reference end map size mismatch");
    decode_check(n_bm_end == (n_bm_buckets + 7) / 8,
                 DecodeStatus::Malformed, at,
                 "bitmap end map size mismatch");

    s.valueArray.resize(n_values);
    std::memcpy(s.valueArray.data(), bytes.data() + at, n_values * 8);
    at += n_values * 8;
    auto grab = [&](std::vector<std::uint8_t> &dst, std::uint64_t n) {
        dst.assign(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   bytes.begin() + static_cast<std::ptrdiff_t>(at + n));
        at += n;
    };
    grab(s.refBuckets, n_ref_buckets);
    grab(s.refEndMap, n_ref_end);
    grab(s.bitmapBuckets, n_bm_buckets);
    grab(s.bitmapEndMap, n_bm_end);
    return s;
}

} // namespace cereal
