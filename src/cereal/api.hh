/**
 * @file
 * The Cereal software interface (paper Section V-A).
 *
 * Mirrors the paper's API:
 *  - Initialize()      — reserve the accelerator's stream memory region;
 *  - RegisterClass()   — populate the Klass Pointer Table (CAM) and the
 *                        Class ID Table (SRAM) for one class;
 *  - WriteObject(oos, obj) — serialize an object graph into an
 *                        ObjectOutputStream;
 *  - ReadObject(ois)   — reconstruct the next object graph from an
 *                        ObjectInputStream.
 *
 * Each call runs the *functional* serializer (real bytes) and submits a
 * command to the *timing* device, returning both. The shared-object
 * fallback of Section V-E is exposed explicitly: when a caller knows a
 * concurrent unit owns an object's header area (unit-ID mismatch), it
 * requests the software fallback path, which is timed on a host core
 * model running the thread-local-hash-table algorithm.
 */

#ifndef CEREAL_CEREAL_API_HH
#define CEREAL_CEREAL_API_HH

#include <cstdint>
#include <vector>

#include "cereal/accel/device.hh"
#include "cereal/cereal_serializer.hh"
#include "cpu/core_model.hh"
#include "serde/decode_error.hh"

namespace cereal {

/** Append-only stream of serialized object records. */
class ObjectOutputStream
{
  public:
    /** Append one record. */
    void append(const std::vector<std::uint8_t> &record);

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::size_t records() const { return records_; }

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t records_ = 0;
};

/** Sequential reader over an ObjectOutputStream's bytes. */
class ObjectInputStream
{
  public:
    explicit ObjectInputStream(const std::vector<std::uint8_t> &bytes)
        : buf_(&bytes)
    {
    }

    bool done() const { return pos_ >= buf_->size(); }

    /** Extract the next length-prefixed record. */
    std::vector<std::uint8_t> nextRecord();

    /** Non-throwing nextRecord for untrusted streams. */
    DecodeResult<std::vector<std::uint8_t>> tryNextRecord();

  private:
    const std::vector<std::uint8_t> *buf_;
    std::size_t pos_ = 0;
};

/** Result of one WriteObject call. */
struct WriteObjectResult
{
    /** Structured stream (sizes, arrays) for analysis. */
    CerealStream stream;
    /** Accelerator timing (or software-fallback timing). */
    AccelOpResult timing;
    /** True if the software fallback path ran. */
    bool softwareFallback = false;
};

/** Result of one ReadObject call. */
struct ReadObjectResult
{
    /** Root of the reconstructed graph. */
    Addr root = 0;
    AccelOpResult timing;
};

/** One host-side Cereal session. */
class CerealContext
{
  public:
    /**
     * Initialize(): binds the context to a memory system and reserves
     * the accelerator configuration.
     */
    CerealContext(Dram &dram, AccelConfig cfg = AccelConfig(),
                  CerealOptions opts = CerealOptions());

    /** RegisterClass(): must cover every type serialized, both sides. */
    void registerClass(KlassId id);

    /** Register all classes of @p reg (tests/benches convenience). */
    void registerAll(const KlassRegistry &reg);

    /**
     * WriteObject(): serialize @p root into @p oos.
     *
     * @param submit simulated submit tick
     * @param shared_conflict caller detected another unit's live claim
     *        on the graph (Section V-E) — take the software fallback
     */
    WriteObjectResult writeObject(ObjectOutputStream &oos, Heap &src,
                                  Addr root, Tick submit = 0,
                                  bool shared_conflict = false);

    /**
     * ReadObject(): reconstruct the next record of @p ois into @p dst.
     * Throws DecodeError on malformed input; never aborts.
     */
    ReadObjectResult readObject(ObjectInputStream &ois, Heap &dst,
                                Tick submit = 0);

    /** Non-throwing readObject for untrusted streams. */
    DecodeResult<ReadObjectResult>
    tryReadObject(ObjectInputStream &ois, Heap &dst, Tick submit = 0);

    CerealDevice &device() { return device_; }
    CerealSerializer &serializer() { return serializer_; }
    Dram &dram() { return *dram_; }

  private:
    Dram *dram_;
    CerealDevice device_;
    CerealSerializer serializer_;
    /** Ambient trace root captured at construction ("cereal" track). */
    trace::TraceEmitter trace_;
};

} // namespace cereal

#endif // CEREAL_CEREAL_API_HH
