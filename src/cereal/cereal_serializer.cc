#include "cereal/cereal_serializer.hh"

#include <atomic>
#include <deque>
#include <unordered_set>

#include "heap/object.hh"
#include "serde/decode_error.hh"
#include "sim/logging.hh"

namespace cereal {

std::uint8_t
CerealSerializer::nextUnitId()
{
    // Atomic: serializers are constructed concurrently from sweep
    // points. The ID never reaches the serialized bytes (it only
    // disambiguates visited-marks within one heap), so the allocation
    // order being nondeterministic under threads is harmless.
    static std::atomic<std::uint8_t> next{0};
    return static_cast<std::uint8_t>(next.fetch_add(1) + 1);
}

void
CerealSerializer::registerClass(KlassId id)
{
    if (toClassId_.count(id)) {
        return;
    }
    fatal_if(fromClassId_.size() >= kMaxClasses,
             "Klass Pointer Table full (%zu classes)", kMaxClasses);
    auto class_id = static_cast<std::uint32_t>(fromClassId_.size());
    toClassId_.emplace(id, class_id);
    fromClassId_.push_back(id);
}

void
CerealSerializer::registerAll(const KlassRegistry &reg)
{
    for (KlassId id = 0; id < reg.size(); ++id) {
        registerClass(id);
    }
}

KlassId
CerealSerializer::klassOfClassId(std::uint32_t class_id) const
{
    panic_if(class_id >= fromClassId_.size(),
             "class ID %u not in Class ID Table", class_id);
    return fromClassId_[class_id];
}

std::uint32_t
CerealSerializer::classIdOf(KlassId id) const
{
    auto it = toClassId_.find(id);
    fatal_if(it == toClassId_.end(),
             "class %u not registered with Cereal; call RegisterClass",
             id);
    return it->second;
}

CerealStream
CerealSerializer::serializeToStream(Heap &src, Addr root)
{
    panic_if(root == 0, "cannot serialize null root");
    panic_if(!src.registry().hasCerealHeaderExt(),
             "Cereal requires the 8 B header extension (Section V-E)");

    // Bump the per-unit serialization counter; emulate the GC-assisted
    // reset when the 16-bit field wraps.
    if (++serialCounter_ == 0) {
        src.clearCerealMetadata();
        serialCounter_ = 1;
    }
    const std::uint16_t counter = serialCounter_;
    const std::uint8_t unit = unitId_;

    CerealStream out;
    out.headerStripped = opts_.headerStrip;
    ObjectPacker ref_packer;
    ObjectPacker bitmap_packer;

    std::deque<Addr> queue;
    std::uint64_t assigned_bytes = 0;

    // Header-manager visit: returns the object's relative address,
    // assigning one (and enqueueing the object) on first visit.
    auto visit = [&](Addr obj) -> Addr {
        ObjectView v(src, obj);
        std::uint64_t ext = v.extWord();
        if (extword::serialCounter(ext) == counter &&
            extword::unitId(ext) == unit) {
            return extword::relAddr(ext) * 8;
        }
        Addr rel = assigned_bytes;
        assigned_bytes += src.objectBytes(obj);
        v.setExtWord(extword::make(counter, unit, rel / 8));
        queue.push_back(obj);
        return rel;
    };

    visit(root);
    const unsigned header_slots = src.registry().headerSlots();
    while (!queue.empty()) {
        Addr obj = queue.front();
        queue.pop_front();
        ObjectView v(src, obj);

        const auto bitmap = src.instanceBitmap(obj);
        bitmap_packer.packBits(bitmap);
        out.bitmapBits += bitmap.size();
        ++out.objectCount;

        for (unsigned s = 0; s < bitmap.size(); ++s) {
            const Addr slot_addr = obj + Addr{s} * 8;
            if (s >= header_slots && bitmap[s]) {
                Addr target = src.load64(slot_addr);
                std::uint64_t token =
                    target ? encodeRelRef(visit(target)) : kNullRefToken;
                ref_packer.packValue(token);
                ++out.refEntries;
                continue;
            }
            if (s == 0) {
                // Mark word: optionally stripped (Figure 16).
                if (!opts_.headerStrip) {
                    out.valueArray.push_back(v.markWord());
                }
                continue;
            }
            if (s == 1) {
                // Klass pointer -> class ID via the Klass Pointer Table.
                out.valueArray.push_back(classIdOf(v.klassId()));
                continue;
            }
            if (s == 2) {
                // Extension slot: live visited-tracking state must not
                // leak into the stream; the image gets a cleared slot.
                out.valueArray.push_back(0);
                continue;
            }
            out.valueArray.push_back(src.load64(slot_addr));
        }
    }

    out.refBuckets = ref_packer.buckets();
    out.refEndMap = ref_packer.endMap();
    out.bitmapBuckets = bitmap_packer.buckets();
    out.bitmapEndMap = bitmap_packer.endMap();
    fatal_if(assigned_bytes > 0xffffffffULL,
             "object graph exceeds the 4 B total-size field");
    out.totalGraphBytes = static_cast<std::uint32_t>(assigned_bytes);
    return out;
}

Addr
CerealSerializer::deserializeStream(const CerealStream &s, Heap &dst)
{
    // Configuration error, not a stream property: no byte stream can
    // flip the receiver's header geometry, so this stays a panic.
    panic_if(!dst.registry().hasCerealHeaderExt(),
             "Cereal requires the 8 B header extension (Section V-E)");

    // CerealStream::decode() establishes these for wire streams, but
    // this entry point also accepts hand-built structures; re-checking
    // keeps the allocation below bounded by the bitmap section size.
    decode_check(s.objectCount != 0, DecodeStatus::Malformed, 0,
                 "empty Cereal stream");
    decode_check(s.bitmapBits <=
                     std::uint64_t{s.bitmapBuckets.size()} * 8,
                 DecodeStatus::Malformed, 0,
                 "bitmap bit count exceeds bucket capacity");
    decode_check(s.totalGraphBytes == s.bitmapBits * 8,
                 DecodeStatus::Malformed, 0,
                 "graph size %u disagrees with bitmap bits %llu",
                 s.totalGraphBytes, (unsigned long long)s.bitmapBits);
    Addr base = dst.allocateRaw(s.totalGraphBytes);

    ObjectUnpacker bitmaps(s.bitmapBuckets, s.bitmapEndMap);
    ObjectUnpacker refs(s.refBuckets, s.refEndMap);
    std::size_t value_at = 0;

    auto next_value = [&](Addr where) -> std::uint64_t {
        decode_check(value_at < s.valueArray.size(),
                     DecodeStatus::Truncated, where,
                     "value array underflow");
        return s.valueArray[value_at++];
    };

    const auto &reg = dst.registry();
    const unsigned header_slots = reg.headerSlots();

    // Reference tokens are recorded here and resolved after the layout
    // pass, so each one can be checked against the set of real object
    // starts instead of trusted to land on one.
    struct RefPatch
    {
        Addr slotAddr;
        std::uint64_t token;
        Addr at; // graph-relative offset of the slot, for diagnostics
    };
    std::vector<RefPatch> patches;
    std::unordered_set<Addr> starts;
    std::uint64_t refs_used = 0;

    Addr off = 0;
    for (std::uint32_t i = 0; i < s.objectCount; ++i) {
        const auto bitmap = bitmaps.nextBits();
        decode_check(bitmap.size() >= header_slots,
                     DecodeStatus::Malformed, off,
                     "object bitmap smaller than the %u header slots",
                     header_slots);
        decode_check(Addr{bitmap.size()} * 8 <= s.totalGraphBytes - off,
                     DecodeStatus::Truncated, off,
                     "object at +%llu overruns declared graph size",
                     (unsigned long long)off);
        for (unsigned h = 0; h < header_slots; ++h) {
            decode_check(!bitmap[h], DecodeStatus::Malformed, off,
                         "reference bit set on header slot %u", h);
        }

        const Addr obj = base + off;
        bool is_array = false;
        FieldType elem = FieldType::Reference;
        for (unsigned slot = 0; slot < bitmap.size(); ++slot) {
            const Addr slot_addr = obj + Addr{slot} * 8;
            const Addr at = off + Addr{slot} * 8;
            std::uint64_t word;
            if (slot >= header_slots && bitmap[slot]) {
                std::uint64_t token = refs.nextValue();
                ++refs_used;
                word = 0; // patched below for non-null tokens
                if (token != kNullRefToken) {
                    patches.push_back({slot_addr, token, at});
                }
            } else if (slot == 0) {
                // Mark word: from the stream, or regenerated when the
                // sender stripped headers.
                word = s.headerStripped
                           ? markword::make(static_cast<std::uint32_t>(
                                 (base + off) * 0x9e3779b1ULL >> 8))
                           : next_value(at);
            } else if (slot == 1) {
                // Class ID -> klass pointer via the Class ID Table.
                // Validated as the full 64-bit stream value: a
                // truncating cast would alias id 2^32 to id 0.
                std::uint64_t class_id = next_value(at);
                decode_check(class_id < fromClassId_.size(),
                             DecodeStatus::BadClass, at,
                             "class ID %llu not in Class ID Table "
                             "(%zu registered)",
                             (unsigned long long)class_id,
                             fromClassId_.size());
                KlassId id =
                    fromClassId_[static_cast<std::uint32_t>(class_id)];
                const auto &d = reg.klass(id);
                // The stream bitmap dictated how this object's slots
                // are interpreted; it must agree with the class layout
                // or a re-serialization would read past the object.
                if (d.isArray()) {
                    is_array = true;
                    elem = d.elemType();
                    decode_check(bitmap.size() > reg.arrayLengthSlot(),
                                 DecodeStatus::Malformed, at,
                                 "array bitmap missing length slot");
                    const bool ref_elems =
                        elem == FieldType::Reference;
                    for (unsigned e = header_slots; e < bitmap.size();
                         ++e) {
                        const bool expect =
                            ref_elems && e >= reg.arrayDataSlot();
                        decode_check(bitmap[e] == expect,
                                     DecodeStatus::Malformed, at,
                                     "bitmap slot %u disagrees with "
                                     "'%s' element layout",
                                     e, d.name().c_str());
                    }
                } else {
                    decode_check(bitmap == reg.layoutBitmap(id),
                                 DecodeStatus::Malformed, at,
                                 "bitmap does not match layout of "
                                 "class '%s'",
                                 d.name().c_str());
                }
                word = reg.metadataAddr(id);
            } else if (slot == 2) {
                // Extension slot: whatever the sender had in flight is
                // stale visited-tracking state here; a cleared slot
                // keeps later serializations from skipping this object.
                next_value(at);
                word = 0;
            } else if (is_array && slot == reg.arrayLengthSlot()) {
                // Element count must account for exactly the payload
                // slots the bitmap declared.
                std::uint64_t len = next_value(at);
                const unsigned esz = fieldTypeBytes(elem);
                const std::uint64_t payload =
                    bitmap.size() - reg.arrayDataSlot();
                decode_check(len <= payload * 8 / esz,
                             DecodeStatus::BadLength, at,
                             "array length %llu exceeds bitmap size",
                             (unsigned long long)len);
                decode_check((len * esz + 7) / 8 == payload,
                             DecodeStatus::Malformed, at,
                             "array length %llu disagrees with bitmap "
                             "size (%llu payload slots)",
                             (unsigned long long)len,
                             (unsigned long long)payload);
                word = len;
            } else {
                word = next_value(at);
            }
            dst.store64(slot_addr, word);
        }
        dst.noteObject(obj);
        starts.insert(off);
        off += Addr{bitmap.size()} * 8;
    }
    decode_check(off == s.totalGraphBytes, DecodeStatus::Malformed, off,
                 "reconstructed %llu bytes, stream declared %u",
                 (unsigned long long)off, s.totalGraphBytes);
    decode_check(value_at == s.valueArray.size(),
                 DecodeStatus::Malformed, off,
                 "value array not fully consumed");
    decode_check(bitmaps.done(), DecodeStatus::Malformed, off,
                 "trailing bitmap entries");
    decode_check(refs.done(), DecodeStatus::Malformed, off,
                 "trailing reference entries");
    decode_check(refs_used == s.refEntries, DecodeStatus::Malformed, off,
                 "consumed %llu reference entries, stream declared %llu",
                 (unsigned long long)refs_used,
                 (unsigned long long)s.refEntries);

    for (const auto &p : patches) {
        // token - 1 is a slot index; bound it before decodeRelRef's
        // * 8 can wrap.
        decode_check(p.token - 1 < Addr{s.totalGraphBytes} / 8,
                     DecodeStatus::BadHandle, p.at,
                     "reference token %llu outside graph",
                     (unsigned long long)p.token);
        Addr rel = decodeRelRef(p.token);
        decode_check(starts.count(rel) != 0, DecodeStatus::BadHandle,
                     p.at,
                     "reference target +%llu is not an object start",
                     (unsigned long long)rel);
        dst.store64(p.slotAddr, base + rel);
    }
    return base;
}

std::vector<std::uint8_t>
CerealSerializer::serialize(Heap &src, Addr root, MemSink *)
{
    // Timing for Cereal comes from the accelerator model in
    // cereal/accel, not from a CPU sink; the sink is ignored here.
    return serializeToStream(src, root).encode();
}

Addr
CerealSerializer::deserialize(const std::vector<std::uint8_t> &stream,
                              Heap &dst, MemSink *)
{
    return deserializeStream(CerealStream::decode(stream), dst);
}

} // namespace cereal
