#include "cereal/cereal_serializer.hh"

#include <atomic>
#include <deque>

#include "heap/object.hh"
#include "sim/logging.hh"

namespace cereal {

std::uint8_t
CerealSerializer::nextUnitId()
{
    // Atomic: serializers are constructed concurrently from sweep
    // points. The ID never reaches the serialized bytes (it only
    // disambiguates visited-marks within one heap), so the allocation
    // order being nondeterministic under threads is harmless.
    static std::atomic<std::uint8_t> next{0};
    return static_cast<std::uint8_t>(next.fetch_add(1) + 1);
}

void
CerealSerializer::registerClass(KlassId id)
{
    if (toClassId_.count(id)) {
        return;
    }
    fatal_if(fromClassId_.size() >= kMaxClasses,
             "Klass Pointer Table full (%zu classes)", kMaxClasses);
    auto class_id = static_cast<std::uint32_t>(fromClassId_.size());
    toClassId_.emplace(id, class_id);
    fromClassId_.push_back(id);
}

void
CerealSerializer::registerAll(const KlassRegistry &reg)
{
    for (KlassId id = 0; id < reg.size(); ++id) {
        registerClass(id);
    }
}

KlassId
CerealSerializer::klassOfClassId(std::uint32_t class_id) const
{
    panic_if(class_id >= fromClassId_.size(),
             "class ID %u not in Class ID Table", class_id);
    return fromClassId_[class_id];
}

std::uint32_t
CerealSerializer::classIdOf(KlassId id) const
{
    auto it = toClassId_.find(id);
    fatal_if(it == toClassId_.end(),
             "class %u not registered with Cereal; call RegisterClass",
             id);
    return it->second;
}

CerealStream
CerealSerializer::serializeToStream(Heap &src, Addr root)
{
    panic_if(root == 0, "cannot serialize null root");
    panic_if(!src.registry().hasCerealHeaderExt(),
             "Cereal requires the 8 B header extension (Section V-E)");

    // Bump the per-unit serialization counter; emulate the GC-assisted
    // reset when the 16-bit field wraps.
    if (++serialCounter_ == 0) {
        src.clearCerealMetadata();
        serialCounter_ = 1;
    }
    const std::uint16_t counter = serialCounter_;
    const std::uint8_t unit = unitId_;

    CerealStream out;
    out.headerStripped = opts_.headerStrip;
    ObjectPacker ref_packer;
    ObjectPacker bitmap_packer;

    std::deque<Addr> queue;
    std::uint64_t assigned_bytes = 0;

    // Header-manager visit: returns the object's relative address,
    // assigning one (and enqueueing the object) on first visit.
    auto visit = [&](Addr obj) -> Addr {
        ObjectView v(src, obj);
        std::uint64_t ext = v.extWord();
        if (extword::serialCounter(ext) == counter &&
            extword::unitId(ext) == unit) {
            return extword::relAddr(ext) * 8;
        }
        Addr rel = assigned_bytes;
        assigned_bytes += src.objectBytes(obj);
        v.setExtWord(extword::make(counter, unit, rel / 8));
        queue.push_back(obj);
        return rel;
    };

    visit(root);
    const unsigned header_slots = src.registry().headerSlots();
    while (!queue.empty()) {
        Addr obj = queue.front();
        queue.pop_front();
        ObjectView v(src, obj);

        const auto bitmap = src.instanceBitmap(obj);
        bitmap_packer.packBits(bitmap);
        out.bitmapBits += bitmap.size();
        ++out.objectCount;

        for (unsigned s = 0; s < bitmap.size(); ++s) {
            const Addr slot_addr = obj + Addr{s} * 8;
            if (s >= header_slots && bitmap[s]) {
                Addr target = src.load64(slot_addr);
                std::uint64_t token =
                    target ? encodeRelRef(visit(target)) : kNullRefToken;
                ref_packer.packValue(token);
                ++out.refEntries;
                continue;
            }
            if (s == 0) {
                // Mark word: optionally stripped (Figure 16).
                if (!opts_.headerStrip) {
                    out.valueArray.push_back(v.markWord());
                }
                continue;
            }
            if (s == 1) {
                // Klass pointer -> class ID via the Klass Pointer Table.
                out.valueArray.push_back(classIdOf(v.klassId()));
                continue;
            }
            if (s == 2) {
                // Extension slot: live visited-tracking state must not
                // leak into the stream; the image gets a cleared slot.
                out.valueArray.push_back(0);
                continue;
            }
            out.valueArray.push_back(src.load64(slot_addr));
        }
    }

    out.refBuckets = ref_packer.buckets();
    out.refEndMap = ref_packer.endMap();
    out.bitmapBuckets = bitmap_packer.buckets();
    out.bitmapEndMap = bitmap_packer.endMap();
    fatal_if(assigned_bytes > 0xffffffffULL,
             "object graph exceeds the 4 B total-size field");
    out.totalGraphBytes = static_cast<std::uint32_t>(assigned_bytes);
    return out;
}

Addr
CerealSerializer::deserializeStream(const CerealStream &s, Heap &dst)
{
    panic_if(!dst.registry().hasCerealHeaderExt(),
             "Cereal requires the 8 B header extension (Section V-E)");
    Addr base = dst.allocateRaw(s.totalGraphBytes);

    ObjectUnpacker bitmaps(s.bitmapBuckets, s.bitmapEndMap);
    ObjectUnpacker refs(s.refBuckets, s.refEndMap);
    std::size_t value_at = 0;

    auto next_value = [&]() -> std::uint64_t {
        panic_if(value_at >= s.valueArray.size(), "value array underflow");
        return s.valueArray[value_at++];
    };

    const unsigned header_slots = dst.registry().headerSlots();
    Addr off = 0;
    for (std::uint32_t i = 0; i < s.objectCount; ++i) {
        const auto bitmap = bitmaps.nextBits();
        const Addr obj = base + off;
        for (unsigned slot = 0; slot < bitmap.size(); ++slot) {
            const Addr slot_addr = obj + Addr{slot} * 8;
            std::uint64_t word;
            if (slot >= header_slots && bitmap[slot]) {
                std::uint64_t token = refs.nextValue();
                word = (token == kNullRefToken)
                           ? 0
                           : base + decodeRelRef(token);
            } else if (slot == 0) {
                // Mark word: from the stream, or regenerated when the
                // sender stripped headers.
                word = s.headerStripped
                           ? markword::make(static_cast<std::uint32_t>(
                                 (base + off) * 0x9e3779b1ULL >> 8))
                           : next_value();
            } else if (slot == 1) {
                // Class ID -> klass pointer via the Class ID Table.
                auto class_id =
                    static_cast<std::uint32_t>(next_value());
                word = dst.registry().metadataAddr(
                    klassOfClassId(class_id));
            } else {
                word = next_value();
            }
            dst.store64(slot_addr, word);
        }
        dst.noteObject(obj);
        off += Addr{bitmap.size()} * 8;
    }
    panic_if(off != s.totalGraphBytes,
             "reconstructed %llu bytes, stream declared %u",
             (unsigned long long)off, s.totalGraphBytes);
    panic_if(value_at != s.valueArray.size(),
             "value array not fully consumed");
    fatal_if(s.objectCount == 0, "empty Cereal stream");
    return base;
}

std::vector<std::uint8_t>
CerealSerializer::serialize(Heap &src, Addr root, MemSink *)
{
    // Timing for Cereal comes from the accelerator model in
    // cereal/accel, not from a CPU sink; the sink is ignored here.
    return serializeToStream(src, root).encode();
}

Addr
CerealSerializer::deserialize(const std::vector<std::uint8_t> &stream,
                              Heap &dst, MemSink *)
{
    return deserializeStream(CerealStream::decode(stream), dst);
}

} // namespace cereal
