/**
 * @file
 * Functional implementation of Cereal serialization/deserialization.
 *
 * This is the algorithm the Cereal hardware executes (paper Section V),
 * implemented as a software reference: it produces and consumes real
 * CerealStream byte streams and is the functional half of the
 * accelerator model (the timing half lives in cereal/accel). It follows
 * the hardware's structure exactly:
 *
 *  - objects are discovered in reference-arrival order (BFS), the order
 *    the header manager sees them;
 *  - visited tracking uses the 16-bit serialization counter in the
 *    object's extension header word (Section V-E); on counter wrap the
 *    heap's metadata is cleared, mimicking the GC-assisted reset;
 *  - klass pointers are translated to dense class IDs via the
 *    registered-class table (the Klass Pointer Table CAM holds at most
 *    kMaxClasses entries);
 *  - relative addresses accumulate the sizes of previously serialized
 *    objects, exactly as the header manager's counter does.
 */

#ifndef CEREAL_CEREAL_CEREAL_SERIALIZER_HH
#define CEREAL_CEREAL_CEREAL_SERIALIZER_HH

#include <unordered_map>
#include <vector>

#include "cereal/format.hh"
#include "serde/serializer.hh"

namespace cereal {

/** Capacity of the Klass Pointer Table / Class ID Table (Section V-E). */
constexpr std::size_t kMaxClasses = 4096;

/** Options for the Cereal format. */
struct CerealOptions
{
    /**
     * Strip mark words from the value array (Figure 16 "Header Strip").
     * Identity hash codes are regenerated on deserialization.
     */
    bool headerStrip = false;
};

/** Functional Cereal serializer/deserializer. */
class CerealSerializer : public Serializer
{
  public:
    explicit CerealSerializer(CerealOptions opts = CerealOptions())
        : opts_(opts)
    {
    }

    std::string name() const override { return "cereal"; }

    /**
     * Register a class for S/D; mirrors the RegisterClass() API call
     * that populates the hardware's CAM/SRAM tables.
     */
    void registerClass(KlassId id);

    /** Register every class in @p reg (tests/benches). */
    void registerAll(const KlassRegistry &reg);

    std::vector<std::uint8_t>
    serialize(Heap &src, Addr root, MemSink *sink = nullptr) override;

    Addr deserialize(const std::vector<std::uint8_t> &stream, Heap &dst,
                     MemSink *sink = nullptr) override;

    /** Structured serialization (keeps the three arrays separate). */
    CerealStream serializeToStream(Heap &src, Addr root);

    /** Structured deserialization. */
    Addr deserializeStream(const CerealStream &s, Heap &dst);

    /** Number of registered classes. */
    std::size_t registeredClasses() const { return fromClassId_.size(); }

    /** The class registered under dense @p class_id. */
    KlassId klassOfClassId(std::uint32_t class_id) const;

    /** Dense class ID of @p id (must be registered). */
    std::uint32_t classIdOf(KlassId id) const;

    /** Unit ID stamped into extension words (shared-object support). */
    std::uint8_t unitId() const { return unitId_; }

  private:
    CerealOptions opts_;
    std::unordered_map<KlassId, std::uint32_t> toClassId_;
    std::vector<KlassId> fromClassId_;
    /** Per-serializer serialization counter (16-bit in hardware). */
    std::uint16_t serialCounter_ = 0;
    /**
     * Distinct per-instance unit ID: a visited mark only counts when
     * both the counter and the unit ID match, so two units' counters
     * cannot alias each other's traversal state (Section V-E).
     */
    std::uint8_t unitId_ = nextUnitId();

    static std::uint8_t nextUnitId();
};

} // namespace cereal

#endif // CEREAL_CEREAL_CEREAL_SERIALIZER_HH
