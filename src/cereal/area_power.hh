/**
 * @file
 * Area/power/energy model of Cereal (paper Table V, Section VI-E).
 *
 * The per-module area and power constants are the paper's synthesis
 * results (Chisel3 RTL, Synopsys DC, TSMC 40 nm). This model rebuilds
 * Table V from the per-module constants and unit counts, and converts
 * module busy time into energy for Figure 17. Software S/D energy uses
 * the host CPU's TDP (140 W, i7-7820X), matching the paper's method.
 */

#ifndef CEREAL_CEREAL_AREA_POWER_HH
#define CEREAL_CEREAL_AREA_POWER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cereal/accel/accel_config.hh"

namespace cereal {

/** One Table V row: a hardware module instance type. */
struct ModuleSpec
{
    std::string name;
    /** Area of one instance, mm^2 (40 nm). */
    double areaMm2;
    /** Average power of one instance, mW. */
    double powerMw;
    /** Instances in the configuration. */
    unsigned count;

    double totalArea() const { return areaMm2 * count; }
    double totalPower() const { return powerMw * count; }
};

/** The assembled area/power model. */
class AreaPowerModel
{
  public:
    explicit AreaPowerModel(const AccelConfig &cfg = AccelConfig());

    /** Serializer-side rows (HM, RAW, OMM, OH). */
    const std::vector<ModuleSpec> &serializerModules() const
    {
        return serializer_;
    }

    /** Deserializer-side rows (LM, BM, BR). */
    const std::vector<ModuleSpec> &deserializerModules() const
    {
        return deserializer_;
    }

    /** System rows (TLB, MAI, Class ID Table, Klass Pointer Table). */
    const std::vector<ModuleSpec> &systemModules() const
    {
        return system_;
    }

    /** Total accelerator area, mm^2 (paper: 3.857). */
    double totalAreaMm2() const;

    /** Total average power, mW (paper: 1231.6). */
    double totalPowerMw() const;

    /** Power of all serializer units plus system share, mW. */
    double serializerPowerMw() const;

    /** Power of all deserializer units plus system share, mW. */
    double deserializerPowerMw() const;

    /**
     * Energy of a serialization busy interval, joules.
     * @param busy_seconds summed SU busy time
     */
    double serializeEnergyJ(double busy_seconds) const;

    /** Energy of a deserialization busy interval, joules. */
    double deserializeEnergyJ(double busy_seconds) const;

    /**
     * Energy a software serializer burns on the host CPU, joules
     * (TDP x time, the paper's accounting).
     */
    static double
    softwareEnergyJ(double seconds)
    {
        return kHostTdpWatts * seconds;
    }

    /** Host CPU TDP, watts (i7-7820X). */
    static constexpr double kHostTdpWatts = 140.0;

    /** Host CPU die area for the Table V comparison, mm^2. */
    static constexpr double kHostDieAreaMm2 = 2362.5;

  private:
    AccelConfig cfg_;
    std::vector<ModuleSpec> serializer_;
    std::vector<ModuleSpec> deserializer_;
    std::vector<ModuleSpec> system_;
};

} // namespace cereal

#endif // CEREAL_CEREAL_AREA_POWER_HH
