#include "sim/stats.hh"

#include <iomanip>

#include "sim/json.hh"

namespace cereal {
namespace stats {

void
StatGroup::dump(std::ostream &os) const
{
    os << "---- " << name_ << " ----\n";
    for (const auto &e : entries_) {
        os << std::left << std::setw(36) << (name_ + "." + e.name);
        switch (e.kind) {
          case Kind::Scalar: {
            const auto *s = static_cast<const Scalar *>(e.stat);
            os << std::setw(16) << s->value();
            break;
          }
          case Kind::Average: {
            const auto *a = static_cast<const Average *>(e.stat);
            os << "mean=" << a->mean() << " min=" << a->min()
               << " max=" << a->max() << " n=" << a->count();
            break;
          }
          case Kind::Histogram: {
            const auto *h = static_cast<const Histogram *>(e.stat);
            os << "mean=" << h->mean() << " n=" << h->count()
               << " overflow=" << h->overflow();
            break;
          }
          case Kind::Formula: {
            const auto *f = static_cast<const Formula *>(e.stat);
            os << std::setw(16) << f->value();
            break;
          }
        }
        os << "  # " << e.desc << "\n";
    }
}

void
StatGroup::dumpJson(json::Writer &w) const
{
    w.key(name_);
    w.beginObject();
    for (const auto &e : entries_) {
        w.key(e.name);
        w.beginObject();
        switch (e.kind) {
          case Kind::Scalar: {
            const auto *s = static_cast<const Scalar *>(e.stat);
            w.kv("kind", "scalar");
            w.kv("value", s->value());
            break;
          }
          case Kind::Average: {
            const auto *a = static_cast<const Average *>(e.stat);
            w.kv("kind", "average");
            w.kv("mean", a->mean());
            w.kv("min", a->min());
            w.kv("max", a->max());
            w.kv("sum", a->sum());
            w.kv("count", a->count());
            break;
          }
          case Kind::Histogram: {
            const auto *h = static_cast<const Histogram *>(e.stat);
            w.kv("kind", "histogram");
            w.kv("mean", h->mean());
            w.kv("count", h->count());
            w.kv("overflow", h->overflow());
            w.kv("bucket_width", h->bucketWidth());
            w.key("buckets");
            w.beginArray();
            for (auto b : h->buckets()) {
                w.value(b);
            }
            w.endArray();
            break;
          }
          case Kind::Formula: {
            const auto *f = static_cast<const Formula *>(e.stat);
            w.kv("kind", "formula");
            w.kv("value", f->value());
            break;
          }
        }
        w.kv("desc", e.desc);
        w.endObject();
    }
    w.endObject();
}

} // namespace stats
} // namespace cereal
