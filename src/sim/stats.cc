#include "sim/stats.hh"

#include <iomanip>

namespace cereal {
namespace stats {

void
StatGroup::dump(std::ostream &os) const
{
    os << "---- " << name_ << " ----\n";
    for (const auto &e : entries_) {
        os << std::left << std::setw(36) << (name_ + "." + e.name);
        switch (e.kind) {
          case Kind::Scalar: {
            const auto *s = static_cast<const Scalar *>(e.stat);
            os << std::setw(16) << s->value();
            break;
          }
          case Kind::Average: {
            const auto *a = static_cast<const Average *>(e.stat);
            os << "mean=" << a->mean() << " min=" << a->min()
               << " max=" << a->max() << " n=" << a->count();
            break;
          }
          case Kind::Histogram: {
            const auto *h = static_cast<const Histogram *>(e.stat);
            os << "mean=" << h->mean() << " n=" << h->count()
               << " overflow=" << h->overflow();
            break;
          }
        }
        os << "  # " << e.desc << "\n";
    }
}

} // namespace stats
} // namespace cereal
