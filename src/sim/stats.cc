#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace cereal {
namespace stats {

void
StatGroup::addEntry(Entry e)
{
    panic_if(find(e.name) != nullptr,
             "stat group '%s' already has a stat named '%s'",
             name_.c_str(), e.name.c_str());
    entries_.push_back(std::move(e));
}

const Entry *
StatGroup::find(const std::string &stat_name) const
{
    for (const auto &e : entries_) {
        if (e.name == stat_name) {
            return &e;
        }
    }
    return nullptr;
}

double
Distribution::quantile(double q) const
{
    if (samples_.empty()) {
        return 0;
    }
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    if (q <= 0) {
        return samples_.front();
    }
    if (q >= 1) {
        return samples_.back();
    }
    // Nearest-rank: the smallest sample with at least a q fraction of
    // the population at or below it. The epsilon absorbs q values that
    // land one ulp above the intended fraction (e.g. 99.9 / 100), which
    // would otherwise ceil to the next rank.
    auto rank = static_cast<std::size_t>(std::ceil(
        q * static_cast<double>(samples_.size()) - 1e-9));
    if (rank == 0) {
        rank = 1;
    }
    return samples_[rank - 1];
}

std::uint64_t
Distribution::exemplarAt(double q) const
{
    if (exemplars_.empty()) {
        return kNoExemplar;
    }
    if (!exSorted_) {
        // Sort by (value, id): the value order matches quantile()'s
        // sample order, and the id tiebreak makes the resolved exemplar
        // deterministic when several requests share a latency.
        std::sort(exemplars_.begin(), exemplars_.end());
        exSorted_ = true;
    }
    std::size_t rank = 1;
    if (q > 0 && q < 1) {
        rank = static_cast<std::size_t>(std::ceil(
            q * static_cast<double>(exemplars_.size()) - 1e-9));
        if (rank == 0) {
            rank = 1;
        }
    } else if (q >= 1) {
        rank = exemplars_.size();
    }
    return exemplars_[rank - 1].second;
}

const std::vector<double> &
logBucketBounds()
{
    static const std::vector<double> bounds = [] {
        std::vector<double> b;
        const double mantissas[3] = {1, 2, 5};
        for (int k = -6; k <= 1; ++k) {
            for (double m : mantissas) {
                b.push_back(m * std::pow(10.0, k));
            }
        }
        return b;
    }();
    return bounds;
}

std::vector<std::uint64_t>
Distribution::logBucketCounts() const
{
    const auto &bounds = logBucketBounds();
    std::vector<std::uint64_t> counts(bounds.size(), 0);
    if (samples_.empty()) {
        return counts;
    }
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        counts[i] = static_cast<std::uint64_t>(
            std::upper_bound(samples_.begin(), samples_.end(), bounds[i]) -
            samples_.begin());
    }
    return counts;
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "---- " << name_ << " ----\n";
    for (const auto &e : entries_) {
        os << std::left << std::setw(36) << (name_ + "." + e.name);
        switch (e.kind) {
          case Kind::Scalar: {
            const auto *s = static_cast<const Scalar *>(e.stat);
            os << std::setw(16) << s->value();
            break;
          }
          case Kind::Average: {
            const auto *a = static_cast<const Average *>(e.stat);
            os << "mean=" << a->mean() << " min=" << a->min()
               << " max=" << a->max() << " n=" << a->count();
            break;
          }
          case Kind::Histogram: {
            const auto *h = static_cast<const Histogram *>(e.stat);
            os << "mean=" << h->mean() << " n=" << h->count()
               << " overflow=" << h->overflow();
            break;
          }
          case Kind::Distribution: {
            const auto *d = static_cast<const Distribution *>(e.stat);
            os << "p50=" << d->p50() << " p95=" << d->p95()
               << " p99=" << d->p99() << " n=" << d->count();
            break;
          }
          case Kind::Formula: {
            const auto *f = static_cast<const Formula *>(e.stat);
            os << std::setw(16) << f->value();
            break;
          }
        }
        os << "  # " << e.desc << "\n";
    }
}

void
StatGroup::dumpJson(json::Writer &w) const
{
    w.key(name_);
    w.beginObject();
    for (const auto &e : entries_) {
        w.key(e.name);
        w.beginObject();
        switch (e.kind) {
          case Kind::Scalar: {
            const auto *s = static_cast<const Scalar *>(e.stat);
            w.kv("kind", "scalar");
            w.kv("value", s->value());
            break;
          }
          case Kind::Average: {
            const auto *a = static_cast<const Average *>(e.stat);
            w.kv("kind", "average");
            w.kv("mean", a->mean());
            w.kv("min", a->min());
            w.kv("max", a->max());
            w.kv("sum", a->sum());
            w.kv("count", a->count());
            break;
          }
          case Kind::Histogram: {
            const auto *h = static_cast<const Histogram *>(e.stat);
            w.kv("kind", "histogram");
            w.kv("mean", h->mean());
            w.kv("count", h->count());
            w.kv("overflow", h->overflow());
            w.kv("bucket_width", h->bucketWidth());
            w.key("buckets");
            w.beginArray();
            for (auto b : h->buckets()) {
                w.value(b);
            }
            w.endArray();
            break;
          }
          case Kind::Distribution: {
            const auto *d = static_cast<const Distribution *>(e.stat);
            w.kv("kind", "distribution");
            w.kv("count", d->count());
            w.kv("mean", d->mean());
            w.kv("min", d->min());
            w.kv("max", d->max());
            w.kv("p50", d->p50());
            w.kv("p95", d->p95());
            w.kv("p99", d->p99());
            w.kv("p999", d->p999());
            break;
          }
          case Kind::Formula: {
            const auto *f = static_cast<const Formula *>(e.stat);
            w.kv("kind", "formula");
            w.kv("value", f->value());
            break;
          }
        }
        w.kv("desc", e.desc);
        w.endObject();
    }
    w.endObject();
}

} // namespace stats
} // namespace cereal
