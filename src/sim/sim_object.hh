/**
 * @file
 * Base class for named model components with statistics.
 */

#ifndef CEREAL_SIM_SIM_OBJECT_HH
#define CEREAL_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace cereal {

/**
 * A named simulation component bound to an EventQueue.
 *
 * Subclasses register their statistics into stats() at construction and
 * may schedule events on eventq().
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : name_(std::move(name)), eventq_(&eq), stats_(name_)
    {
    }

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    EventQueue &eventq() { return *eventq_; }
    const EventQueue &eventq() const { return *eventq_; }
    Tick curTick() const { return eventq_->now(); }

    stats::StatGroup &stats() { return stats_; }
    const stats::StatGroup &stats() const { return stats_; }

  private:
    std::string name_;
    EventQueue *eventq_;
    stats::StatGroup stats_;
};

} // namespace cereal

#endif // CEREAL_SIM_SIM_OBJECT_HH
