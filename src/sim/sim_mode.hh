/**
 * @file
 * Simulation fidelity knob.
 *
 * Every timing model in the tree runs in one of three modes:
 *
 *  - CycleAccurate: the reference. Full observability — trace spans,
 *    metrics time series, and stall attribution are all available.
 *
 *  - FastForward: functional speed mode. The timing math is identical
 *    (every stat a bench reports is byte-identical to CycleAccurate —
 *    that is the preservation contract, enforced by the differential
 *    suite in tests/test_sim_speed.cc and the `simspeed` ctest label),
 *    but observability is off: components skip metrics registration,
 *    trace emitters stay disabled, and stall-attribution bookkeeping is
 *    dropped. Asking for --trace/--metrics together with fast-forward
 *    is a usage error, not a silent downgrade.
 *
 *  - Sampled: FastForward plus statistical shortening of long open-loop
 *    serving runs — only a prefix of the arrival process is simulated
 *    and percentiles are estimated from the sample. Sampled results are
 *    approximations by construction and are never compared
 *    byte-for-byte; the differential suite bounds their error instead.
 *
 * The mode is an ambient process-global: benches set it once from
 * --sim-mode before any simulation context exists, and every config
 * struct (CoreConfig, AccelConfig, ClusterConfig, NodeConfig) snapshots
 * it as a default member initializer, so tests can also pin the mode
 * per-instance without touching the global.
 */

#ifndef CEREAL_SIM_SIM_MODE_HH
#define CEREAL_SIM_SIM_MODE_HH

#include <cstring>

namespace cereal {

/** Simulation fidelity level; see the file comment for the contract. */
enum class SimMode
{
    CycleAccurate,
    FastForward,
    Sampled,
};

namespace detail {

inline SimMode &
globalSimModeRef()
{
    static SimMode mode = SimMode::CycleAccurate;
    return mode;
}

} // namespace detail

/** The ambient mode new configs default to. */
inline SimMode
globalSimMode()
{
    return detail::globalSimModeRef();
}

/**
 * Set the ambient mode. Call once, before building simulation contexts
 * (benches do this while parsing flags, before any sweep thread
 * starts); the global is not synchronized.
 */
inline void
setGlobalSimMode(SimMode mode)
{
    detail::globalSimModeRef() = mode;
}

/** "cycle" / "fast" / "sampled". */
inline const char *
simModeName(SimMode mode)
{
    switch (mode) {
      case SimMode::CycleAccurate:
        return "cycle";
      case SimMode::FastForward:
        return "fast";
      case SimMode::Sampled:
        return "sampled";
    }
    return "?";
}

/** Parse a --sim-mode value; returns false on unknown names. */
inline bool
parseSimMode(const char *s, SimMode &out)
{
    if (std::strcmp(s, "cycle") == 0) {
        out = SimMode::CycleAccurate;
        return true;
    }
    if (std::strcmp(s, "fast") == 0) {
        out = SimMode::FastForward;
        return true;
    }
    if (std::strcmp(s, "sampled") == 0) {
        out = SimMode::Sampled;
        return true;
    }
    return false;
}

/** True when @p mode keeps trace/metrics/attribution machinery live. */
inline bool
simModeObserves(SimMode mode)
{
    return mode == SimMode::CycleAccurate;
}

} // namespace cereal

#endif // CEREAL_SIM_SIM_MODE_HH
