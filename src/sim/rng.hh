/**
 * @file
 * Deterministic pseudo-random number generation for workload builders.
 *
 * All workload generators in this project take an explicit seed and use
 * this generator so that tests and benchmark rows are reproducible
 * run-to-run and across platforms (std::mt19937 distributions are not
 * specified portably; we implement our own bounded draws).
 *
 * The core is xoshiro256**, seeded through splitmix64 as its authors
 * recommend.
 */

#ifndef CEREAL_SIM_RNG_HH
#define CEREAL_SIM_RNG_HH

#include <cstdint>

namespace cereal {

/** Deterministic, portable 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct with a seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            word = splitmix64(x);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform draw in [0, bound) with rejection to avoid modulo bias. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound <= 1) {
            return 0;
        }
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold) {
                return r % bound;
            }
        }
    }

    /** Uniform draw in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace cereal

#endif // CEREAL_SIM_RNG_HH
