/**
 * @file
 * Error/status reporting helpers in the style of gem5's base/logging.hh.
 *
 * panic()  — an internal invariant was violated; this is a simulator bug.
 * fatal()  — the simulation cannot continue due to user error (bad
 *            configuration, invalid arguments); exits cleanly.
 * warn()   — something is suspicious but the run may proceed.
 * inform() — plain status output.
 */

#ifndef CEREAL_SIM_LOGGING_HH
#define CEREAL_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace cereal {

/** Abort with a formatted message: reserved for simulator bugs. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...);

/** Exit(1) with a formatted message: reserved for user errors. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...);

/** Print a warning to stderr. */
void warnImpl(const char *fmt, ...);

/** Print an informational message to stderr. */
void informImpl(const char *fmt, ...);

/** Format a printf-style message into a std::string. */
std::string vstrfmt(const char *fmt, va_list ap);

/** Format a printf-style message into a std::string. */
std::string strfmt(const char *fmt, ...);

} // namespace cereal

#define panic(...) ::cereal::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::cereal::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::cereal::warnImpl(__VA_ARGS__)
#define inform(...) ::cereal::informImpl(__VA_ARGS__)

/** panic() unless @p cond holds. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            panic(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

/** fatal() if @p cond holds. */
#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            fatal(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

#endif // CEREAL_SIM_LOGGING_HH
