/**
 * @file
 * A minimal recursive-descent JSON parser.
 *
 * Counterpart to the writer in sim/json.hh, used by the baseline
 * comparison engine (runner/baseline.hh) to read `BENCH_*.json`
 * documents back in. Supports the full RFC 8259 value grammar the
 * writer can produce: objects (member order preserved), arrays,
 * strings with escapes, numbers, booleans, and null. Parse errors
 * return a message instead of throwing — callers decide whether a
 * malformed document is fatal.
 */

#ifndef CEREAL_SIM_JSON_PARSE_HH
#define CEREAL_SIM_JSON_PARSE_HH

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cereal {
namespace json {

/** One parsed JSON value. Objects preserve member order. */
struct Value
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Member lookup; nullptr when absent or not an object. */
    const Value *
    find(const std::string &key) const
    {
        if (!isObject()) {
            return nullptr;
        }
        for (const auto &kv : object) {
            if (kv.first == key) {
                return &kv.second;
            }
        }
        return nullptr;
    }
};

/** Result of a parse: a value, or an error message with position. */
struct ParseResult
{
    Value value;
    std::string error;

    bool ok() const { return error.empty(); }
};

namespace detail {

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    ParseResult
    run()
    {
        ParseResult out;
        skipWs();
        if (!parseValue(out.value)) {
            out.error = error_;
            return out;
        }
        skipWs();
        if (pos_ != s_.size()) {
            out.error = at("trailing content after document");
        }
        return out;
    }

  private:
    std::string
    at(const std::string &msg) const
    {
        return msg + " at offset " + std::to_string(pos_);
    }

    bool
    fail(const std::string &msg)
    {
        if (error_.empty()) {
            error_ = at(msg);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (s_.compare(pos_, len, word) != 0) {
            return fail(std::string("invalid literal (expected '") + word +
                        "')");
        }
        pos_ += len;
        return true;
    }

    bool
    parseValue(Value &v)
    {
        if (depth_ > kMaxDepth) {
            return fail("nesting too deep");
        }
        if (pos_ >= s_.size()) {
            return fail("unexpected end of input");
        }
        switch (s_[pos_]) {
          case '{': return parseObject(v);
          case '[': return parseArray(v);
          case '"':
            v.type = Value::Type::String;
            return parseString(v.str);
          case 't':
            v.type = Value::Type::Bool;
            v.boolean = true;
            return literal("true", 4);
          case 'f':
            v.type = Value::Type::Bool;
            v.boolean = false;
            return literal("false", 5);
          case 'n':
            v.type = Value::Type::Null;
            return literal("null", 4);
          default: return parseNumber(v);
        }
    }

    bool
    parseObject(Value &v)
    {
        v.type = Value::Type::Object;
        ++pos_; // '{'
        ++depth_;
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= s_.size() || s_[pos_] != '"') {
                return fail("expected object key");
            }
            if (!parseString(key)) {
                return false;
            }
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':') {
                return fail("expected ':' after object key");
            }
            ++pos_;
            skipWs();
            Value member;
            if (!parseValue(member)) {
                return false;
            }
            v.object.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (pos_ >= s_.size()) {
                return fail("unterminated object");
            }
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(Value &v)
    {
        v.type = Value::Type::Array;
        ++pos_; // '['
        ++depth_;
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            Value elem;
            if (!parseValue(elem)) {
                return false;
            }
            v.array.push_back(std::move(elem));
            skipWs();
            if (pos_ >= s_.size()) {
                return fail("unterminated array");
            }
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // '"'
        out.clear();
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size()) {
                    break;
                }
                switch (s_[pos_]) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'u': {
                    if (pos_ + 4 >= s_.size()) {
                        return fail("truncated \\u escape");
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = s_[pos_ + 1 + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            return fail("invalid \\u escape");
                        }
                    }
                    pos_ += 4;
                    // UTF-8 encode the BMP code point (the writer only
                    // emits \u00xx control escapes; surrogates are
                    // passed through as replacement-free 3-byte forms).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(
                            static_cast<char>(0xc0 | (code >> 6)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    } else {
                        out.push_back(
                            static_cast<char>(0xe0 | (code >> 12)));
                        out.push_back(static_cast<char>(
                            0x80 | ((code >> 6) & 0x3f)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    }
                    break;
                  }
                  default: return fail("invalid escape character");
                }
                ++pos_;
                continue;
            }
            out.push_back(c);
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value &v)
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-') {
            ++pos_;
        }
        while (pos_ < s_.size() &&
               ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) {
            return fail("expected a value");
        }
        const std::string text = s_.substr(start, pos_ - start);
        char *end = nullptr;
        const double d = std::strtod(text.c_str(), &end);
        if (end != text.c_str() + text.size()) {
            pos_ = start;
            return fail("malformed number");
        }
        v.type = Value::Type::Number;
        v.number = d;
        return true;
    }

    static constexpr unsigned kMaxDepth = 64;

    const std::string &s_;
    std::size_t pos_ = 0;
    unsigned depth_ = 0;
    std::string error_;
};

} // namespace detail

/** Parse @p text as one JSON document. */
inline ParseResult
parse(const std::string &text)
{
    return detail::Parser(text).run();
}

} // namespace json
} // namespace cereal

#endif // CEREAL_SIM_JSON_PARSE_HH
