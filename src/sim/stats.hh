/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Hardware model components own typed statistics (scalars, averages,
 * histograms) registered into a StatGroup. Benchmark harnesses read the
 * values programmatically; dump() renders a human-readable report.
 */

#ifndef CEREAL_SIM_STATS_HH
#define CEREAL_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace cereal {
namespace json {
class Writer;
} // namespace json
} // namespace cereal

namespace cereal {
namespace stats {

/** A named, monotonically adjustable scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator-=(double v) { value_ -= v; return *this; }
    Scalar &operator++() { value_ += 1; return *this; }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0; }
    double value() const { return value_; }

  private:
    double value_ = 0;
};

/** Mean/min/max over a stream of samples. */
class Average
{
  public:
    Average() = default;

    /** Record one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        if (v < min_) {
            min_ = v;
        }
        if (v > max_) {
            max_ = v;
        }
    }

    /**
     * Forget every sample. The min/max extremes are re-armed to the
     * infinity sentinels, so the first post-reset sample establishes
     * both — stale extremes cannot leak across a reset.
     */
    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
        min_ = kMinSentinel;
        max_ = kMaxSentinel;
    }

    double mean() const { return count_ ? sum_ / count_ : 0; }
    double sum() const { return sum_; }
    /** Smallest sample (0 while empty, for schema-stable reports). */
    double min() const { return count_ ? min_ : 0; }
    /** Largest sample (0 while empty, for schema-stable reports). */
    double max() const { return count_ ? max_ : 0; }
    std::uint64_t count() const { return count_; }

  private:
    static constexpr double kMinSentinel =
        std::numeric_limits<double>::infinity();
    static constexpr double kMaxSentinel =
        -std::numeric_limits<double>::infinity();

    double sum_ = 0;
    std::uint64_t count_ = 0;
    double min_ = kMinSentinel;
    double max_ = kMaxSentinel;
};

/** Fixed-bucket histogram over [0, bucketWidth * numBuckets). */
class Histogram
{
  public:
    /** @param num_buckets bucket count; @param width bucket width. */
    Histogram(std::size_t num_buckets = 16, double width = 1.0)
        : buckets_(num_buckets, 0), width_(width)
    {
    }

    /** Record one sample; values past the last bucket go to overflow. */
    void
    sample(double v)
    {
        avg_.sample(v);
        auto idx = static_cast<std::size_t>(v / width_);
        if (idx >= buckets_.size()) {
            ++overflow_;
        } else {
            ++buckets_[idx];
        }
    }

    void
    reset()
    {
        for (auto &b : buckets_) {
            b = 0;
        }
        overflow_ = 0;
        avg_.reset();
    }

    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t overflow() const { return overflow_; }
    double mean() const { return avg_.mean(); }
    std::uint64_t count() const { return avg_.count() ; }
    double bucketWidth() const { return width_; }

  private:
    std::vector<std::uint64_t> buckets_;
    double width_;
    std::uint64_t overflow_ = 0;
    Average avg_;
};

/**
 * Percentile summary over a stream of samples.
 *
 * Keeps every sample so exact order statistics are available at dump
 * time (nearest-rank percentiles). Intended for latency populations of
 * at most a few hundred thousand samples; the sort is deferred and
 * cached until the next sample() invalidates it.
 */
class Distribution
{
  public:
    /** exemplarAt() result when no exemplar resolves at that rank. */
    static constexpr std::uint64_t kNoExemplar = 0;

    Distribution() = default;

    /** Record one sample. */
    void
    sample(double v)
    {
        samples_.push_back(v);
        sorted_ = false;
        avg_.sample(v);
    }

    /**
     * Record one sample carrying an exemplar id (a request trace id).
     * The id does not perturb the base sample population — quantile()
     * and friends are byte-identical whether or not ids are attached —
     * but exemplarAt() can then resolve a quantile back to the concrete
     * request that produced it.
     */
    void
    sample(double v, std::uint64_t exemplar)
    {
        sample(v);
        if (exemplar != kNoExemplar) {
            exemplars_.emplace_back(v, exemplar);
            exSorted_ = false;
        }
    }

    /** Pre-size the sample store for a known population size. */
    void reserve(std::size_t n) { samples_.reserve(n); }

    void
    reset()
    {
        samples_.clear();
        sorted_ = false;
        avg_.reset();
    }

    /**
     * Nearest-rank percentile, @p p in [0, 100]. Returns 0 when the
     * distribution is empty.
     */
    double percentile(double p) const { return quantile(p / 100.0); }

    /**
     * Nearest-rank quantile, @p q in [0, 1]: the smallest sample with
     * at least a q fraction of the population at or below it. The
     * extreme tails a serving bench reports (p999 and beyond) need the
     * fractional form — percentile(99.9) loses nothing, but quantile
     * is the primitive. Returns 0 when the distribution is empty.
     */
    double quantile(double q) const;

    /**
     * The exemplar id recorded at the nearest-rank @p q quantile of the
     * exemplar-carrying samples (same rank arithmetic as quantile();
     * value ties break deterministically toward the smaller id).
     * Returns kNoExemplar when no sample carried an id.
     */
    std::uint64_t exemplarAt(double q) const;

    /**
     * Cumulative counts of samples at or below each logBucketBounds()
     * bound (a Prometheus-style histogram; samples above the last
     * bound appear only in count()).
     */
    std::vector<std::uint64_t> logBucketCounts() const;

    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }
    /** Tail percentile for serving SLOs; needs n >= 1000 to resolve. */
    double p999() const { return quantile(0.999); }
    double mean() const { return avg_.mean(); }
    double min() const { return avg_.min(); }
    double max() const { return avg_.max(); }
    double sum() const { return avg_.sum(); }
    std::uint64_t count() const { return avg_.count(); }

  private:
    // percentile() sorts lazily; logical state is unchanged.
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
    mutable std::vector<std::pair<double, std::uint64_t>> exemplars_;
    mutable bool exSorted_ = false;
    Average avg_;
};

/**
 * Log-spaced latency bucket upper bounds shared by every exported
 * histogram: {1, 2, 5} x 10^k seconds from 1 microsecond to 50
 * seconds. A fixed global ladder keeps exported histograms comparable
 * across runs, backends, and scales.
 */
const std::vector<double> &logBucketBounds();

/**
 * A derived statistic: a closure over other statistics, evaluated
 * lazily at dump time (ratios, rates, utilisations).
 */
class Formula
{
  public:
    Formula() = default;

    /** Install the expression; closed-over stats must outlive it. */
    explicit Formula(std::function<double()> fn) : fn_(std::move(fn)) {}

    void set(std::function<double()> fn) { fn_ = std::move(fn); }
    double value() const { return fn_ ? fn_() : 0; }

  private:
    std::function<double()> fn_;
};

/** Kind discriminator for registered statistics. */
enum class Kind { Scalar, Average, Histogram, Distribution, Formula };

/** One registration record inside a StatGroup. */
struct Entry
{
    std::string name;
    std::string desc;
    Kind kind;
    const void *stat;
};

/**
 * A named collection of statistics owned by one model component.
 *
 * Components register member statistics once at construction; the group
 * does not own the statistic objects, only pointers, so the registering
 * component must outlive the group's use.
 *
 * Stat names are unique within a group: registering a duplicate is a
 * hard error (a silently shadowed stat is exactly the kind of bug a
 * measurement layer must not have — the metrics registry resolves
 * stats by name through find()).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void
    add(const std::string &stat_name, const std::string &desc,
        const Scalar &s)
    {
        addEntry({stat_name, desc, Kind::Scalar, &s});
    }

    void
    add(const std::string &stat_name, const std::string &desc,
        const Average &a)
    {
        addEntry({stat_name, desc, Kind::Average, &a});
    }

    void
    add(const std::string &stat_name, const std::string &desc,
        const Histogram &h)
    {
        addEntry({stat_name, desc, Kind::Histogram, &h});
    }

    void
    add(const std::string &stat_name, const std::string &desc,
        const Distribution &d)
    {
        addEntry({stat_name, desc, Kind::Distribution, &d});
    }

    void
    add(const std::string &stat_name, const std::string &desc,
        const Formula &f)
    {
        addEntry({stat_name, desc, Kind::Formula, &f});
    }

    /** The entry registered as @p stat_name, or nullptr. */
    const Entry *find(const std::string &stat_name) const;

    /** Render all registered statistics to @p os. */
    void dump(std::ostream &os) const;

    /**
     * Emit the group as one JSON object member: the group name keys an
     * object holding one member per statistic. The writer must be
     * positioned inside an object; output is schema-stable (fixed
     * member set per kind, registration order).
     */
    void dumpJson(json::Writer &w) const;

    const std::string &name() const { return name_; }
    const std::vector<Entry> &entries() const { return entries_; }

  private:
    /** Append @p e; panics if the name is already registered. */
    void addEntry(Entry e);

    std::string name_;
    std::vector<Entry> entries_;
};

} // namespace stats
} // namespace cereal

#endif // CEREAL_SIM_STATS_HH
