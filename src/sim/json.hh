/**
 * @file
 * A minimal streaming JSON writer.
 *
 * Produces deterministic, schema-stable output: keys are emitted in
 * call order, doubles use the shortest round-trippable decimal form
 * (std::to_chars), and strings are escaped per RFC 8259. Equal inputs
 * yield byte-identical documents, which is what lets the benchmark
 * runner promise `--threads N` output identical to a serial run and
 * what makes `BENCH_*.json` files diffable across PRs.
 */

#ifndef CEREAL_SIM_JSON_HH
#define CEREAL_SIM_JSON_HH

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace cereal {
namespace json {

/** Escape @p s into a double-quoted JSON string literal. */
inline std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

/** Shortest round-trippable decimal form of @p v (NaN/Inf -> null). */
inline std::string
formatDouble(double v)
{
    if (!std::isfinite(v)) {
        return "null";
    }
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

/**
 * Streaming writer with nesting/comma bookkeeping.
 *
 * Usage: beginObject()/endObject(), beginArray()/endArray(), key()
 * before each member value inside an object, value() for leaves.
 * Misuse (value without key inside an object, unbalanced end) panics.
 */
class Writer
{
  public:
    /**
     * @param indent spaces per nesting level (0 = compact)
     * @param base_depth indentation offset, for rendering a fragment
     *        that will be spliced into an outer document via raw()
     */
    explicit Writer(std::ostream &os, int indent = 2,
                    std::size_t base_depth = 0)
        : os_(&os), indent_(indent), baseDepth_(base_depth)
    {
    }

    void
    beginObject()
    {
        beforeValue();
        *os_ << '{';
        stack_.push_back(Frame::Object);
        count_.push_back(0);
    }

    void
    endObject()
    {
        close('}', Frame::Object);
    }

    void
    beginArray()
    {
        beforeValue();
        *os_ << '[';
        stack_.push_back(Frame::Array);
        count_.push_back(0);
    }

    void
    endArray()
    {
        close(']', Frame::Array);
    }

    /** Name the next member of the enclosing object. */
    void
    key(const std::string &k)
    {
        panic_if(stack_.empty() || stack_.back() != Frame::Object,
                 "json: key() outside an object");
        panic_if(keyed_, "json: two keys in a row");
        if (count_.back() > 0) {
            *os_ << ',';
        }
        ++count_.back();
        newlineIndent(stack_.size());
        *os_ << escape(k) << (indent_ > 0 ? ": " : ":");
        keyed_ = true;
    }

    void value(double v) { leaf(formatDouble(v)); }
    void value(std::uint64_t v) { leaf(std::to_string(v)); }
    void value(std::int64_t v) { leaf(std::to_string(v)); }
    void value(int v) { leaf(std::to_string(v)); }
    void value(unsigned v) { leaf(std::to_string(v)); }
    void value(bool v) { leaf(v ? "true" : "false"); }
    void value(const std::string &v) { leaf(escape(v)); }
    void value(const char *v) { leaf(escape(v)); }
    void null() { leaf("null"); }

    /** key() + value() in one call. */
    template <typename T>
    void
    kv(const std::string &k, const T &v)
    {
        key(k);
        value(v);
    }

    /** Splice @p raw_json (a complete, pre-rendered value). */
    void
    raw(const std::string &raw_json)
    {
        leaf(raw_json);
    }

    /** All begins closed? (callers should check before flushing) */
    bool balanced() const { return stack_.empty(); }

  private:
    enum class Frame { Object, Array };

    /** Separator/position bookkeeping before any value or begin. */
    void
    beforeValue()
    {
        if (stack_.empty()) {
            return;
        }
        if (stack_.back() == Frame::Object) {
            panic_if(!keyed_, "json: object member without key");
            keyed_ = false;
            return;
        }
        if (count_.back() > 0) {
            *os_ << ',';
        }
        ++count_.back();
        newlineIndent(stack_.size());
    }

    void
    close(char c, Frame want)
    {
        panic_if(stack_.empty() || stack_.back() != want,
                 "json: mismatched close '%c'", c);
        panic_if(keyed_, "json: dangling key before close");
        bool had_members = count_.back() > 0;
        stack_.pop_back();
        count_.pop_back();
        if (had_members) {
            newlineIndent(stack_.size());
        }
        *os_ << c;
    }

    void
    leaf(const std::string &text)
    {
        beforeValue();
        *os_ << text;
    }

    void
    newlineIndent(std::size_t depth)
    {
        if (indent_ <= 0) {
            return;
        }
        *os_ << '\n';
        const std::size_t total = (baseDepth_ + depth) * indent_;
        for (std::size_t i = 0; i < total; ++i) {
            *os_ << ' ';
        }
    }

    std::ostream *os_;
    int indent_;
    std::size_t baseDepth_ = 0;
    std::vector<Frame> stack_;
    std::vector<std::size_t> count_;
    bool keyed_ = false;
};

} // namespace json
} // namespace cereal

#endif // CEREAL_SIM_JSON_HH
