/**
 * @file
 * Arena/pool allocation layer for the simulator's own hot paths.
 *
 * The simulator pays for allocation twice: once in the *modeled* heap
 * (src/heap) and once in its own event loop (callback captures, frame
 * buffers, per-request bookkeeping). This header removes the second
 * cost:
 *
 *  - Arena: a chunked bump allocator. alloc() is a pointer increment;
 *    reset() rewinds without returning chunks to the OS, so steady-state
 *    simulation loops allocate zero bytes from the global heap.
 *  - Pool<T>: a typed free-list over an Arena. acquire()/release()
 *    recycle fixed-size slots; released slots are ASan-poisoned so
 *    use-after-release is caught under sanitizers.
 *  - BufferPool: recycles std::vector<std::uint8_t> payload buffers
 *    (the cluster fabric's frame bytes), keeping their capacity alive
 *    across acquire/release cycles.
 *  - ContiguousBuffer: a geometrically growing flat byte buffer for the
 *    modeled heap's backing store. Unlike std::vector it exposes
 *    claimZeroed() so only the bytes actually handed out are zeroed,
 *    and growth keeps the base pointer semantics the Heap needs.
 *
 * Everything here is single-threaded by design, like the EventQueue:
 * one simulated machine lives on one host thread; concurrent sweep
 * points each build their own arenas.
 */

#ifndef CEREAL_SIM_ARENA_HH
#define CEREAL_SIM_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CEREAL_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define CEREAL_ASAN 1
#endif

#ifdef CEREAL_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace cereal {
namespace sim {

/** Poison @p n bytes at @p p under ASan (no-op otherwise). */
inline void
poison(void *p, std::size_t n)
{
#ifdef CEREAL_ASAN
    __asan_poison_memory_region(p, n);
#else
    (void)p;
    (void)n;
#endif
}

/** Unpoison @p n bytes at @p p under ASan (no-op otherwise). */
inline void
unpoison(void *p, std::size_t n)
{
#ifdef CEREAL_ASAN
    __asan_unpoison_memory_region(p, n);
#else
    (void)p;
    (void)n;
#endif
}

/**
 * Chunked bump allocator.
 *
 * alloc() carves aligned spans out of geometrically growing chunks;
 * requests larger than a chunk get a dedicated chunk. reset() rewinds
 * every chunk for reuse (and re-poisons the free space under ASan), so
 * an arena that has warmed up to its high-water mark never touches the
 * global heap again.
 */
class Arena
{
  public:
    /** @param chunk_bytes size of the first chunk (doubles as needed) */
    explicit Arena(std::size_t chunk_bytes = 64 * 1024)
        : nextChunkBytes_(chunk_bytes)
    {
        panic_if(chunk_bytes == 0, "zero arena chunk size");
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    ~Arena()
    {
        // Unpoison before the chunks are returned to the allocator:
        // freed-but-poisoned pages would trip ASan inside free().
        for (auto &c : chunks_) {
            unpoison(c.data.get(), c.size);
        }
    }

    /** Allocate @p bytes aligned to @p align (a power of two). */
    void *
    alloc(std::size_t bytes, std::size_t align = alignof(std::max_align_t))
    {
        panic_if(!isPowerOf2(align), "arena alignment must be 2^n");
        if (bytes == 0) {
            bytes = 1;
        }
        if (cur_ < chunks_.size()) {
            Chunk &c = chunks_[cur_];
            const std::size_t at = alignedOffset(c, align);
            if (at + bytes <= c.size) {
                c.used = at + bytes;
                void *p = c.data.get() + at;
                unpoison(p, bytes);
                bytesInUse_ += bytes;
                return p;
            }
        }
        return allocSlow(bytes, align);
    }

    /** Typed convenience: allocate and default-construct one T. */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        void *p = alloc(sizeof(T), alignof(T));
        return new (p) T(std::forward<Args>(args)...);
    }

    /**
     * Rewind every chunk. Previously handed-out spans become invalid
     * (and poisoned under ASan); the chunk memory is retained so the
     * next fill cycle allocates nothing from the global heap.
     */
    void
    reset()
    {
        for (auto &c : chunks_) {
            c.used = 0;
            poison(c.data.get(), c.size);
        }
        cur_ = chunks_.empty() ? 0 : 0;
        bytesInUse_ = 0;
    }

    /** Bytes handed out since construction/reset (excludes padding). */
    std::size_t bytesInUse() const { return bytesInUse_; }

    /** Total bytes owned across all chunks. */
    std::size_t
    bytesReserved() const
    {
        std::size_t total = 0;
        for (const auto &c : chunks_) {
            total += c.size;
        }
        return total;
    }

    /** Number of chunks acquired from the global heap. */
    std::size_t chunkCount() const { return chunks_.size(); }

  private:
    struct Chunk
    {
        std::unique_ptr<std::uint8_t[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    static std::size_t
    alignUp(std::size_t v, std::size_t align)
    {
        return (v + align - 1) & ~(align - 1);
    }

    /**
     * First offset >= used at which base + offset is @p align-aligned.
     * Alignment is a property of the absolute address, not the chunk
     * offset — the chunk base is only max_align_t-aligned.
     */
    static std::size_t
    alignedOffset(const Chunk &c, std::size_t align)
    {
        const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
        return alignUp(base + c.used, align) - base;
    }

    void *
    allocSlow(std::size_t bytes, std::size_t align)
    {
        // Try later (already-reset) chunks before growing.
        for (std::size_t i = cur_ + 1; i < chunks_.size(); ++i) {
            Chunk &c = chunks_[i];
            const std::size_t at = alignedOffset(c, align);
            if (at + bytes <= c.size) {
                cur_ = i;
                c.used = at + bytes;
                void *p = c.data.get() + at;
                unpoison(p, bytes);
                bytesInUse_ += bytes;
                return p;
            }
        }
        std::size_t size = nextChunkBytes_;
        while (size < bytes + align) {
            size *= 2;
        }
        nextChunkBytes_ = size * 2;
        Chunk c;
        c.data = std::make_unique<std::uint8_t[]>(size);
        c.size = size;
        poison(c.data.get(), size);
        chunks_.push_back(std::move(c));
        cur_ = chunks_.size() - 1;
        Chunk &nc = chunks_.back();
        const std::size_t at = alignedOffset(nc, align);
        nc.used = at + bytes;
        void *p = nc.data.get() + at;
        unpoison(p, bytes);
        bytesInUse_ += bytes;
        return p;
    }

    std::vector<Chunk> chunks_;
    std::size_t cur_ = 0;
    std::size_t nextChunkBytes_;
    std::size_t bytesInUse_ = 0;
};

/**
 * Typed object pool: a free list of T slots carved from an Arena.
 *
 * acquire() constructs in a recycled (or freshly carved) slot; release()
 * destroys and poisons the slot. After warm-up the pool's steady state
 * performs zero global-heap allocations.
 */
template <typename T>
class Pool
{
  public:
    explicit Pool(std::size_t chunk_bytes = 64 * 1024)
        : arena_(chunk_bytes)
    {
    }

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    ~Pool()
    {
        panic_if(live_ != 0, "Pool destroyed with %zu live objects",
                 live_);
        // Slots on the free list are poisoned; unpoisoning happens in
        // ~Arena before the memory goes back to the allocator.
    }

    template <typename... Args>
    T *
    acquire(Args &&...args)
    {
        void *slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
            unpoison(slot, sizeof(T));
        } else {
            slot = arena_.alloc(sizeof(T), alignof(T));
        }
        ++live_;
        return new (slot) T(std::forward<Args>(args)...);
    }

    void
    release(T *obj)
    {
        panic_if(obj == nullptr, "Pool::release(nullptr)");
        panic_if(live_ == 0, "Pool::release() without a live object");
        obj->~T();
        poison(obj, sizeof(T));
        free_.push_back(obj);
        --live_;
    }

    /** Objects currently acquired. */
    std::size_t liveCount() const { return live_; }

    /** Slots waiting on the free list. */
    std::size_t freeCount() const { return free_.size(); }

  private:
    Arena arena_;
    std::vector<void *> free_;
    std::size_t live_ = 0;
};

/**
 * Recycler for byte-vector payload buffers (frame bytes on the cluster
 * fabric). acquire() hands back a cleared vector that retains the
 * capacity of its previous life, so a serving run that streams
 * thousands of ~300 KB frames stops hammering the global allocator
 * after the first few round trips.
 */
class BufferPool
{
  public:
    BufferPool() = default;

    BufferPool(const BufferPool &) = delete;
    BufferPool &operator=(const BufferPool &) = delete;

    /** Get an empty buffer (capacity recycled when available). */
    std::vector<std::uint8_t>
    acquire()
    {
        if (free_.empty()) {
            ++misses_;
            return {};
        }
        ++hits_;
        std::vector<std::uint8_t> buf = std::move(free_.back());
        free_.pop_back();
        buf.clear();
        return buf;
    }

    /** Return a buffer; its capacity is kept for the next acquire(). */
    void
    release(std::vector<std::uint8_t> &&buf)
    {
        free_.push_back(std::move(buf));
    }

    /** acquire() calls served from the free list. */
    std::uint64_t hits() const { return hits_; }
    /** acquire() calls that had to hand out a fresh buffer. */
    std::uint64_t misses() const { return misses_; }
    /** Buffers currently parked in the pool. */
    std::size_t parked() const { return free_.size(); }

  private:
    std::vector<std::vector<std::uint8_t>> free_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * Flat, geometrically growing byte buffer for the modeled heap's
 * backing store.
 *
 * The Heap needs one contiguous host block (simulated addresses map to
 * base + offset), bump allocation, and zeroed object memory. A
 * std::vector delivers that but zero-fills every grown element and
 * re-zeroes nothing on reuse; this class only zeroes the spans actually
 * claimed, keeps growth amortized, and poisons the unclaimed tail under
 * ASan so out-of-bounds reads of not-yet-allocated heap words are
 * caught in sanitizer runs.
 */
class ContiguousBuffer
{
  public:
    explicit ContiguousBuffer(std::size_t initial_capacity = 0)
    {
        if (initial_capacity) {
            grow(initial_capacity);
        }
    }

    ContiguousBuffer(const ContiguousBuffer &) = delete;
    ContiguousBuffer &operator=(const ContiguousBuffer &) = delete;

    ~ContiguousBuffer()
    {
        if (data_) {
            unpoison(data_.get(), capacity_);
        }
    }

    /**
     * Extend the claimed region to @p bytes (monotonic), zeroing any
     * newly claimed span. Growth preserves existing contents; the base
     * pointer may move (callers index relative to data()).
     */
    void
    claimZeroed(std::size_t bytes)
    {
        if (bytes <= size_) {
            return;
        }
        if (bytes > capacity_) {
            std::size_t cap = capacity_ ? capacity_ : (std::size_t{1} << 16);
            while (cap < bytes) {
                cap *= 2;
            }
            grow(cap);
        }
        unpoison(data_.get() + size_, bytes - size_);
        std::memset(data_.get() + size_, 0, bytes - size_);
        size_ = bytes;
    }

    std::uint8_t *data() { return data_.get(); }
    const std::uint8_t *data() const { return data_.get(); }

    /** Bytes claimed (valid to address). */
    std::size_t size() const { return size_; }

    /** Bytes owned (claimed + poisoned tail). */
    std::size_t capacity() const { return capacity_; }

  private:
    void
    grow(std::size_t cap)
    {
        auto fresh = std::make_unique<std::uint8_t[]>(cap);
        if (size_) {
            std::memcpy(fresh.get(), data_.get(), size_);
        }
        if (data_) {
            unpoison(data_.get(), capacity_);
        }
        data_ = std::move(fresh);
        capacity_ = cap;
        poison(data_.get() + size_, capacity_ - size_);
    }

    std::unique_ptr<std::uint8_t[]> data_;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
};

} // namespace sim
} // namespace cereal

#endif // CEREAL_SIM_ARENA_HH
