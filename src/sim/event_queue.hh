/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue holds (tick, sequence, callback) triples and fires them
 * in tick order; ties break in scheduling order so the simulation is
 * deterministic. Components schedule std::function callbacks directly or
 * reuse a MemberEvent bound to one of their methods.
 */

#ifndef CEREAL_SIM_EVENT_QUEUE_HH
#define CEREAL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace cereal {

/** Global discrete-event queue; one instance per simulated machine. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb to run at absolute tick @p when (>= now). */
    void
    schedule(Tick when, Callback cb)
    {
        panic_if(when < now_, "scheduling event in the past (%llu < %llu)",
                 (unsigned long long)when, (unsigned long long)now_);
        heap_.push(Scheduled{when, nextSeq_++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /** True if no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Tick of the next pending event (kMaxTick when empty). */
    Tick
    nextEventTick() const
    {
        return heap_.empty() ? kMaxTick : heap_.top().when;
    }

    /**
     * Run a single event.
     * @return true if an event was executed.
     */
    bool
    step()
    {
        if (heap_.empty()) {
            return false;
        }
        // Move the scheduled record out before popping: the callback may
        // schedule new events and mutate the heap.
        Scheduled ev = std::move(const_cast<Scheduled &>(heap_.top()));
        heap_.pop();
        now_ = ev.when;
        ++executed_;
        ev.cb();
        return true;
    }

    /** Run until the queue drains; returns the final tick. */
    Tick
    runAll()
    {
        while (step()) {
        }
        return now_;
    }

    /** Run events up to and including tick @p until. */
    Tick
    runUntil(Tick until)
    {
        while (!heap_.empty() && heap_.top().when <= until) {
            step();
        }
        if (now_ < until) {
            now_ = until;
        }
        return now_;
    }

    /** Total events executed since construction. */
    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Scheduled
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Scheduled &o) const
        {
            if (when != o.when) {
                return when > o.when;
            }
            return seq > o.seq;
        }
    };

    std::priority_queue<Scheduled, std::vector<Scheduled>,
                        std::greater<Scheduled>> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

/**
 * Helper that models a clocked component: converts between the module's
 * local cycle count and global ticks given a fixed clock period.
 */
class ClockDomain
{
  public:
    /** @param period_ticks clock period in ticks (ps). */
    explicit ClockDomain(Tick period_ticks) : period_(period_ticks)
    {
        panic_if(period_ == 0, "zero clock period");
    }

    Tick period() const { return period_; }

    /** Ticks taken by @p n cycles. */
    Tick cyclesToTicks(Cycles n) const { return n * period_; }

    /** Cycles (rounded up) covering @p t ticks. */
    Cycles
    ticksToCycles(Tick t) const
    {
        return (t + period_ - 1) / period_;
    }

    /** The next tick at or after @p t that lies on a clock edge. */
    Tick
    clockEdge(Tick t) const
    {
        // Periods need not be powers of two; round up by division.
        return ((t + period_ - 1) / period_) * period_;
    }

  private:
    Tick period_;
};

} // namespace cereal

#endif // CEREAL_SIM_EVENT_QUEUE_HH
