/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue holds (tick, sequence, callback) triples and fires them
 * in tick order; ties break in scheduling order so the simulation is
 * deterministic. Callbacks are stored in an EventCallback — a move-only
 * callable wrapper with 56 bytes of inline storage — so the common case
 * (component lambdas capturing a few pointers and a payload handle)
 * schedules without touching the global heap, unlike std::function whose
 * small-buffer window on mainstream libraries is 16 bytes. The queue is
 * an explicit binary heap over a std::vector, which lets callers
 * reserve() capacity up front and lets step() move the top record out
 * without const_cast gymnastics.
 */

#ifndef CEREAL_SIM_EVENT_QUEUE_HH
#define CEREAL_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace cereal {

/**
 * Move-only type-erased callable with a 56-byte inline buffer.
 *
 * Callables whose size and alignment fit the buffer live inline; larger
 * ones fall back to a single heap allocation. Relocation (vector growth
 * and heap sift operations move these around) is the captured type's
 * move constructor for inline storage and a pointer copy for the heap
 * fallback.
 */
class EventCallback
{
  public:
    static constexpr std::size_t kInlineBytes = 56;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback>>>
    EventCallback(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn &>,
                      "event callback must be invocable as void()");
        if constexpr (fitsInline<Fn>()) {
            new (buf_) Fn(std::forward<F>(f));
            ops_ = inlineOps<Fn>();
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(f));
            ops_ = heapOps<Fn>();
        }
    }

    EventCallback(EventCallback &&other) noexcept
    {
        moveFrom(std::move(other));
    }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(std::move(other));
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    void
    operator()()
    {
        panic_if(ops_ == nullptr, "invoking an empty EventCallback");
        ops_->invoke(buf_);
    }

    explicit operator bool() const { return ops_ != nullptr; }

    /** True when the wrapped callable lives in the inline buffer. */
    bool
    isInline() const
    {
        return ops_ != nullptr && ops_->inlineStorage;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*relocate)(void *dst, void *src); // move-construct + destroy
        void (*destroy)(void *);
        bool inlineStorage;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static const Ops *
    inlineOps()
    {
        static const Ops ops = {
            [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
            [](void *dst, void *src) {
                Fn *s = std::launder(reinterpret_cast<Fn *>(src));
                new (dst) Fn(std::move(*s));
                s->~Fn();
            },
            [](void *p) { std::launder(reinterpret_cast<Fn *>(p))->~Fn(); },
            true,
        };
        return &ops;
    }

    template <typename Fn>
    static const Ops *
    heapOps()
    {
        static const Ops ops = {
            [](void *p) { (**reinterpret_cast<Fn **>(p))(); },
            [](void *dst, void *src) {
                *reinterpret_cast<Fn **>(dst) =
                    *reinterpret_cast<Fn **>(src);
            },
            [](void *p) { delete *reinterpret_cast<Fn **>(p); },
            false,
        };
        return &ops;
    }

    void
    moveFrom(EventCallback &&other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

/** Global discrete-event queue; one instance per simulated machine. */
class EventQueue
{
  public:
    using Callback = EventCallback;

    EventQueue() { heap_.reserve(64); }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Pre-size the pending-event store for @p n events. */
    void reserve(std::size_t n) { heap_.reserve(n); }

    /** Schedule @p cb to run at absolute tick @p when (>= now). */
    void
    schedule(Tick when, Callback cb)
    {
        panic_if(when < now_, "scheduling event in the past (%llu < %llu)",
                 (unsigned long long)when, (unsigned long long)now_);
        heap_.push_back(Scheduled{when, nextSeq_++, std::move(cb)});
        siftUp(heap_.size() - 1);
    }

    /** Schedule @p cb to run @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /** True if no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Tick of the next pending event (kMaxTick when empty). */
    Tick
    nextEventTick() const
    {
        return heap_.empty() ? kMaxTick : heap_.front().when;
    }

    /**
     * Run a single event.
     * @return true if an event was executed.
     */
    bool
    step()
    {
        if (heap_.empty()) {
            return false;
        }
        // Move the scheduled record out before re-heapifying: the
        // callback may schedule new events and mutate the heap.
        Scheduled ev = popTop();
        now_ = ev.when;
        ++executed_;
        ev.cb();
        return true;
    }

    /** Run until the queue drains; returns the final tick. */
    Tick
    runAll()
    {
        while (step()) {
        }
        return now_;
    }

    /** Run events up to and including tick @p until. */
    Tick
    runUntil(Tick until)
    {
        while (!heap_.empty() && heap_.front().when <= until) {
            step();
        }
        if (now_ < until) {
            now_ = until;
        }
        return now_;
    }

    /**
     * Advance simulated time to @p to without executing anything — the
     * functional warm-up primitive. The jump must not hop over pending
     * work: panics if an event is scheduled before @p to. Jumping
     * backwards is a no-op (time never rewinds).
     *
     * @return the new current tick.
     */
    Tick
    fastForward(Tick to)
    {
        if (to <= now_) {
            return now_;
        }
        panic_if(nextEventTick() < to,
                 "fastForward(%llu) would skip a pending event at %llu",
                 (unsigned long long)to,
                 (unsigned long long)nextEventTick());
        now_ = to;
        return now_;
    }

    /** Total events executed since construction. */
    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Scheduled
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        before(const Scheduled &o) const
        {
            if (when != o.when) {
                return when < o.when;
            }
            return seq < o.seq;
        }
    };

    void
    siftUp(std::size_t i)
    {
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!heap_[i].before(heap_[parent])) {
                break;
            }
            std::swap(heap_[i], heap_[parent]);
            i = parent;
        }
    }

    Scheduled
    popTop()
    {
        Scheduled top = std::move(heap_.front());
        if (heap_.size() > 1) {
            heap_.front() = std::move(heap_.back());
        }
        heap_.pop_back();
        // Sift the displaced tail element down to its place.
        const std::size_t n = heap_.size();
        std::size_t i = 0;
        while (true) {
            const std::size_t l = 2 * i + 1;
            const std::size_t r = l + 1;
            std::size_t best = i;
            if (l < n && heap_[l].before(heap_[best])) {
                best = l;
            }
            if (r < n && heap_[r].before(heap_[best])) {
                best = r;
            }
            if (best == i) {
                break;
            }
            std::swap(heap_[i], heap_[best]);
            i = best;
        }
        return top;
    }

    std::vector<Scheduled> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

/**
 * Helper that models a clocked component: converts between the module's
 * local cycle count and global ticks given a fixed clock period.
 */
class ClockDomain
{
  public:
    /** @param period_ticks clock period in ticks (ps). */
    explicit ClockDomain(Tick period_ticks) : period_(period_ticks)
    {
        panic_if(period_ == 0, "zero clock period");
    }

    Tick period() const { return period_; }

    /** Ticks taken by @p n cycles. */
    Tick cyclesToTicks(Cycles n) const { return n * period_; }

    /** Cycles (rounded up) covering @p t ticks. */
    Cycles
    ticksToCycles(Tick t) const
    {
        return (t + period_ - 1) / period_;
    }

    /** The next tick at or after @p t that lies on a clock edge. */
    Tick
    clockEdge(Tick t) const
    {
        // Periods need not be powers of two; round up by division.
        return ((t + period_ - 1) / period_) * period_;
    }

  private:
    Tick period_;
};

} // namespace cereal

#endif // CEREAL_SIM_EVENT_QUEUE_HH
