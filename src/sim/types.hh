/**
 * @file
 * Fundamental scalar types shared by every simulator component.
 *
 * The simulator follows the gem5 convention of a single global time unit
 * (the "tick"). In this codebase one tick equals one picosecond, which
 * lets us express both a 3.6 GHz host core clock and DDR4 command timing
 * on a common axis without fractional arithmetic.
 */

#ifndef CEREAL_SIM_TYPES_HH
#define CEREAL_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace cereal {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles in some module-local clock domain. */
using Cycles = std::uint64_t;

/** A simulated physical/virtual byte address. */
using Addr = std::uint64_t;

/** Sentinel for "no tick" / "never". */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/** Sentinel for an invalid address. */
constexpr Addr kBadAddr = std::numeric_limits<Addr>::max();

/** Ticks per second (1 tick == 1 ps). */
constexpr Tick kTicksPerSecond = 1'000'000'000'000ULL;

/** Convert a frequency in MHz to the clock period in ticks. */
constexpr Tick
periodFromMHz(double mhz)
{
    // 1 tick = 1 ps, so period[ps] = 1e12 / (mhz * 1e6).
    return static_cast<Tick>(1e6 / mhz);
}

/** Convert a nanosecond quantity to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * 1e3);
}

/** Convert ticks to seconds (for reporting only). */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSecond);
}

/** Round @p v up to the next multiple of @p align (power of two). */
constexpr Addr
roundUp(Addr v, Addr align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of @p align (power of two). */
constexpr Addr
roundDown(Addr v, Addr align)
{
    return v & ~(align - 1);
}

/** True if @p v is a power of two (and nonzero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer log2 for powers of two. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v > 1) { v >>= 1; ++l; }
    return l;
}

} // namespace cereal

#endif // CEREAL_SIM_TYPES_HH
