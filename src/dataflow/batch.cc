#include "dataflow/batch.hh"

#include "sim/logging.hh"

namespace cereal {
namespace dataflow {

BatchCodec::BatchCodec(const std::string &backend)
    : info_(serde::findBackend(backend))
{
    fatal_if(info_ == nullptr, "unknown dataflow backend '%s'",
             backend.c_str());
    // Register the record schema before constructing the serializer:
    // registration-based backends snapshot the registry's classes.
    schema_ = RecordSchema::install(reg_);
    ser_ = serde::makeSerializer(backend, &reg_);
}

EncodedBatch
BatchCodec::encode(const std::vector<Record> &batch)
{
    Heap heap(reg_);
    const Addr root = materializeBatch(heap, schema_, batch);
    auto stream = ser_->serialize(heap, root);

    EncodedBatch out;
    out.streamBytes = stream.size();
    out.records = batch.size();
    out.payload =
        info_->lzOnWire ? lz_.compress(stream) : std::move(stream);
    return out;
}

std::vector<Record>
BatchCodec::decode(const std::vector<std::uint8_t> &payload)
{
    const std::vector<std::uint8_t> *stream = &payload;
    std::vector<std::uint8_t> inflated;
    if (info_->lzOnWire) {
        inflated = lz_.decompress(payload);
        stream = &inflated;
    }
    if (info_->zeroCopy) {
        // The zero-copy receive path: validate once, read the records
        // straight out of the wire buffer's segment views.
        HpsSerializer hps;
        HpsImage img = hps.attach(*stream, reg_);
        return readBatchViews(img);
    }
    Heap dst(reg_, 0x9'0000'0000ULL);
    const Addr root = ser_->deserialize(*stream, dst);
    return readBatchGraph(dst, root);
}

} // namespace dataflow
} // namespace cereal
