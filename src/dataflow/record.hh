/**
 * @file
 * The key/value record model the dataflow operators exchange.
 *
 * Operators produce and consume flat byte-string records; on a stage
 * boundary a batch of records is materialized as a real object graph
 * (a reference array of dataflow.Record instances, each holding two
 * byte arrays) and pushed through one of the registered serializer
 * backends. That keeps serde on the operator data path — every byte a
 * stage ships was produced by the backend's serialize() and recovered
 * by its deserialize()/attach() — instead of timing a model payload
 * that never touches operator data.
 *
 * Two read paths mirror the backends' consume semantics:
 *  - readBatchGraph() walks a materialized heap graph (everything but
 *    hps decodes to one);
 *  - readBatchViews() reads an HpsImage's validated segments in place,
 *    so the zero-copy backend never materializes the graph it ships.
 */

#ifndef CEREAL_DATAFLOW_RECORD_HH
#define CEREAL_DATAFLOW_RECORD_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "heap/heap.hh"
#include "serde/hps_serde.hh"

namespace cereal {
namespace dataflow {

/** One key/value pair; both sides are opaque byte strings. */
struct Record
{
    std::vector<std::uint8_t> key;
    std::vector<std::uint8_t> value;
};

inline bool
operator==(const Record &a, const Record &b)
{
    return a.key == b.key && a.value == b.value;
}

inline bool
operator!=(const Record &a, const Record &b)
{
    return !(a == b);
}

/**
 * Total order: key bytes lexicographically, ties by value bytes. Sort
 * runs and the multiway merge both use it, so equal-(key,value)
 * records are the only interchangeable ones and merged output is a
 * deterministic function of the record multiset.
 */
inline bool
recordLess(const Record &a, const Record &b)
{
    if (a.key != b.key) {
        return a.key < b.key;
    }
    return a.value < b.value;
}

/** Pack @p v little-endian into 8 bytes (u64 keys and counters). */
inline std::vector<std::uint8_t>
packU64(std::uint64_t v)
{
    std::vector<std::uint8_t> b(8);
    std::memcpy(b.data(), &v, 8);
    return b;
}

inline std::uint64_t
unpackU64(const std::vector<std::uint8_t> &b)
{
    std::uint64_t v = 0;
    std::memcpy(&v, b.data(), b.size() < 8 ? b.size() : 8);
    return v;
}

/** Pack a double by bit pattern (PageRank ranks/contributions). */
inline std::vector<std::uint8_t>
packF64(double v)
{
    std::uint64_t raw;
    std::memcpy(&raw, &v, 8);
    return packU64(raw);
}

inline double
unpackF64(const std::vector<std::uint8_t> &b)
{
    const std::uint64_t raw = unpackU64(b);
    double v;
    std::memcpy(&v, &raw, 8);
    return v;
}

/** FNV-1a-64 over an arbitrary byte range. */
inline std::uint64_t
hashBytes(const void *data, std::size_t n,
          std::uint64_t h = 0xcbf29ce484222325ULL)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

/**
 * Order-sensitive digest of a record sequence (length-prefixed keys
 * and values). Jobs hash their final per-node outputs in node order;
 * the differential suite pins the digest across backends, thread
 * counts, and sim modes.
 */
std::uint64_t recordsChecksum(const std::vector<Record> &records);

/** The three classes a record batch materializes into. */
struct RecordSchema
{
    /** dataflow.Record { key: Reference, value: Reference }. */
    KlassId record = kBadKlassId;
    /** byte[] holding one side's bytes. */
    KlassId byteArray = kBadKlassId;
    /** Object[] of Record — the batch root. */
    KlassId recordArray = kBadKlassId;

    /** Register the schema into @p reg (idempotent per registry). */
    static RecordSchema install(KlassRegistry &reg);
};

/**
 * Materialize @p batch as an object graph in @p heap.
 * @return the root (a reference array of Record instances)
 */
Addr materializeBatch(Heap &heap, const RecordSchema &schema,
                      const std::vector<Record> &batch);

/** Read a batch back out of a materialized graph (inverse of above). */
std::vector<Record> readBatchGraph(Heap &heap, Addr root);

/**
 * Read a batch straight out of a validated HPS image: record fields
 * and array bytes are read from the wire buffer in place, which is the
 * zero-copy backend's whole receive path (attach + in-place reads).
 */
std::vector<Record> readBatchViews(const HpsImage &img);

} // namespace dataflow
} // namespace cereal

#endif // CEREAL_DATAFLOW_RECORD_HH
