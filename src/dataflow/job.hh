/**
 * @file
 * The distributed stage engine and the three reference jobs.
 *
 * A Stage names one distributed step: a node-local map operator, an
 * optional shuffled exchange routed by a Partitioner, a MergeOperator
 * combining the per-source runs at each destination, and a node-local
 * reduce operator on the combined records. runDataflow() executes a
 * job's stages over N simulated nodes on the cluster fabric:
 *
 *  - Data plane: every (src, dst) batch — self-partitions included —
 *    is encoded by the configured serializer backend (BatchCodec),
 *    wrapped in a checksummed CFRM partition frame, and pushed through
 *    the shared switch fabric; receivers verify and decode before the
 *    merge/reduce side runs. Serde sits on real operator data.
 *
 *  - Timing: operator compute is narrated to the CPU core model and
 *    measured per node per stage; serialize/deserialize service times
 *    come from the measured BackendCostModel, scaled to each batch's
 *    serialized bytes. Every node runs one FIFO worker, so queueing,
 *    incast, and stragglers (a per-node service-time multiplier)
 *    emerge from the event simulation rather than being modelled.
 *
 *  - Determinism: all functional results (outputs, checksums,
 *    invariants) are pure functions of the config, byte-identical
 *    across sim modes, thread counts, and serializer backends.
 *
 * Jobs: wordcount (reduce-by-key with a spilling pre-combine),
 * terasort (sample sort: splitter sampling stage, then sorted runs
 * range-partitioned into a multiway merge), pagerank (iterative
 * join/aggregate over an owner-partitioned vertex space).
 */

#ifndef CEREAL_DATAFLOW_JOB_HH
#define CEREAL_DATAFLOW_JOB_HH

#include <string>
#include <vector>

#include "cluster/fabric.hh"
#include "dataflow/operators.hh"
#include "dataflow/partitioner.hh"
#include "sim/sim_mode.hh"
#include "trace/critical_path.hh"

namespace cereal {
namespace dataflow {

/** One distributed step. Null members are identity/no-op. */
struct Stage
{
    const char *name = "stage";
    /** Node-local operator before the exchange. */
    Operator *map = nullptr;
    /** Routes mapped records; null = no exchange (local stage). */
    const Partitioner *shuffle = nullptr;
    /** Combines per-source runs at each destination (null = concat). */
    MergeOperator *gather = nullptr;
    /** Node-local operator after the merge. */
    Operator *reduce = nullptr;
};

/** Dataflow experiment parameters. */
struct DataflowConfig
{
    unsigned nodes = 4;
    /** Serializer backend name (registry; "java", ..., "hps"). */
    std::string backend = "java";
    /** "wordcount", "terasort", or "pagerank". */
    std::string job = "wordcount";
    /** Input records generated per node. */
    std::uint64_t recordsPerNode = 512;
    std::uint64_t seed = 1;
    /** Probability a generated record draws the job's hot key. */
    double skew = 0.0;
    /** Service-time multiplier applied to stragglerNode (1 = none). */
    double stragglerFactor = 1.0;
    unsigned stragglerNode = 0;
    /** PageRank iterations. */
    unsigned iterations = 3;
    SimMode mode = globalSimMode();
    NetConfig net;
    /** Scale of the profiled yardstick partition (see cost model). */
    std::uint64_t profileScale = 64;
    /**
     * Batch tracing: every exchange batch gets a trace id; sampled
     * batches carry it across the fabric in the frame's trace
     * extension. The per-stage critical path is computed from full
     * stamps regardless of the sampling rate.
     */
    trace::RequestTraceConfig reqTrace;
};

/** Per-stage outcome. */
struct StageStats
{
    std::string name;
    double startSeconds = 0;
    double endSeconds = 0;
    /** Exchange batches (nodes^2 for shuffled stages, self included). */
    std::uint64_t batches = 0;
    /** Payload bytes shipped (post-codec, self-partitions included). */
    std::uint64_t payloadBytes = 0;
    /** Serialized bytes before the wire codec. */
    std::uint64_t streamBytes = 0;
    std::uint64_t recordsIn = 0;
    std::uint64_t recordsOut = 0;
    /** Max over destinations of received payload bytes / mean. */
    double skewRatio = 1.0;
    /**
     * The causal path bounding this stage's barrier: which node's
     * reduce finished last, which source's batch held it up, and how
     * the stage's wall time splits across segments (conservation-
     * checked against endSeconds - startSeconds). Invalid for local
     * (no-exchange) stages.
     */
    trace::StageCriticalPath crit;
};

/** Whole-job outcome. */
struct DataflowResult
{
    std::string job;
    std::string backend;
    double completionSeconds = 0;
    std::uint64_t outputRecords = 0;
    /** Digest of the per-node outputs in node order (backend-stable). */
    std::uint64_t resultChecksum = 0;
    /** Job-specific correctness checks (exact counts, sortedness...). */
    bool invariantsOk = false;
    /** Max stage skewRatio. */
    double skewRatio = 1.0;
    /** Fabric-measured wire bytes (frame headers included). */
    std::uint64_t wireBytes = 0;
    std::uint64_t fabricBatches = 0;
    std::vector<StageStats> stages;
};

/** Run the configured job end to end (fatal on unknown job/backend). */
DataflowResult runDataflow(const DataflowConfig &cfg);

} // namespace dataflow
} // namespace cereal

#endif // CEREAL_DATAFLOW_JOB_HH
