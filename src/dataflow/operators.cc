#include "dataflow/operators.hh"

#include <algorithm>
#include <queue>

#include "sim/logging.hh"

namespace cereal {
namespace dataflow {

namespace {

/** Hash + bucket probe of one table lookup (op units). */
constexpr std::uint64_t kProbeOps = 14;
/** Per-byte cost of hashing/comparing a key. */
constexpr std::uint64_t kPerKeyByte = 1;
/** Per-byte cost of merging/copying a value. */
constexpr std::uint64_t kPerValueByte = 1;
/** Heap adjust per multiway-merge pop. */
constexpr std::uint64_t kMergeHeapOps = 10;
/** Comparison-sort constant per compare. */
constexpr std::uint64_t kCompareOps = 6;

void
narrateProbe(MemSink *sink, const std::vector<std::uint8_t> &key)
{
    if (sink == nullptr) {
        return;
    }
    const std::uint64_t h = hashBytes(key.data(), key.size());
    sink->load(kScratchBase + (h & 0xfffff8ULL), 8);
    sink->compute(kProbeOps + kPerKeyByte * key.size());
}

void
narrateRecordTouch(MemSink *sink, const Record &r)
{
    if (sink == nullptr) {
        return;
    }
    sink->load(kScratchBase + 0x100000, 8);
    sink->compute(kPerKeyByte * r.key.size() +
                  kPerValueByte * r.value.size());
}

/** n log2 n compares of a comparison sort over @p n records. */
void
narrateSort(MemSink *sink, std::size_t n)
{
    if (sink == nullptr || n < 2) {
        return;
    }
    std::uint64_t log2n = 0;
    for (std::size_t v = n; v > 1; v >>= 1) {
        ++log2n;
    }
    sink->compute(kCompareOps * n * log2n);
}

} // namespace

ValueMerge
sumU64Merge()
{
    return [](const std::vector<std::uint8_t> &a,
              const std::vector<std::uint8_t> &b) {
        return packU64(unpackU64(a) + unpackU64(b));
    };
}

ValueMerge
sumF64Merge()
{
    return [](const std::vector<std::uint8_t> &a,
              const std::vector<std::uint8_t> &b) {
        return packF64(unpackF64(a) + unpackF64(b));
    };
}

ReduceTable::ReduceTable(ValueMerge merge, std::size_t spill_threshold)
    : merge_(std::move(merge)), threshold_(spill_threshold)
{
}

void
ReduceTable::insert(Record r, MemSink *sink)
{
    narrateProbe(sink, r.key);
    std::string key(r.key.begin(), r.key.end());
    auto it = map_.find(key);
    if (it != map_.end()) {
        if (sink != nullptr) {
            sink->compute(kPerValueByte * r.value.size());
        }
        it->second = merge_(it->second, r.value);
        return;
    }
    if (threshold_ != 0 && map_.size() >= threshold_) {
        spills_.push_back(flushSorted(sink));
    }
    if (sink != nullptr) {
        sink->store(kScratchBase + (map_.size() * 64), 8);
    }
    map_.emplace(std::move(key), std::move(r.value));
}

std::vector<std::vector<Record>>
ReduceTable::takeSpills()
{
    return std::move(spills_);
}

std::vector<Record>
ReduceTable::drain(MemSink *sink)
{
    return flushSorted(sink);
}

std::vector<Record>
ReduceTable::flushSorted(MemSink *sink)
{
    std::vector<Record> out;
    out.reserve(map_.size());
    for (auto &e : map_) {
        Record r;
        r.key.assign(e.first.begin(), e.first.end());
        r.value = std::move(e.second);
        narrateRecordTouch(sink, r);
        out.push_back(std::move(r));
    }
    map_.clear();
    std::sort(out.begin(), out.end(), recordLess);
    narrateSort(sink, out.size());
    return out;
}

ReduceByKeyOperator::ReduceByKeyOperator(const char *name, ValueMerge merge,
                                         std::size_t spill_threshold)
    : name_(name), merge_(std::move(merge)), threshold_(spill_threshold)
{
}

std::vector<Record>
ReduceByKeyOperator::apply(std::vector<Record> in, unsigned node,
                           MemSink *sink)
{
    (void)node;
    ReduceTable table(merge_, threshold_);
    for (auto &r : in) {
        table.insert(std::move(r), sink);
    }
    std::vector<Record> out;
    for (auto &run : table.takeSpills()) {
        out.insert(out.end(), std::make_move_iterator(run.begin()),
                   std::make_move_iterator(run.end()));
    }
    auto tail = table.drain(sink);
    out.insert(out.end(), std::make_move_iterator(tail.begin()),
               std::make_move_iterator(tail.end()));
    return out;
}

std::vector<Record>
SortRunOperator::apply(std::vector<Record> in, unsigned node, MemSink *sink)
{
    (void)node;
    std::sort(in.begin(), in.end(), recordLess);
    narrateSort(sink, in.size());
    return in;
}

std::vector<Record>
multiwayMerge(std::vector<std::vector<Record>> runs, MemSink *sink)
{
    struct Head
    {
        std::size_t run;
        std::size_t pos;
    };
    const auto greater = [&](const Head &a, const Head &b) {
        const Record &ra = runs[a.run][a.pos];
        const Record &rb = runs[b.run][b.pos];
        if (recordLess(ra, rb)) {
            return false;
        }
        if (recordLess(rb, ra)) {
            return true;
        }
        return a.run > b.run; // equal records pop in run order
    };
    std::priority_queue<Head, std::vector<Head>, decltype(greater)> heap(
        greater);

    std::size_t total = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        panic_if(!std::is_sorted(runs[i].begin(), runs[i].end(),
                                 recordLess),
                 "multiwayMerge input run %zu is not sorted", i);
        total += runs[i].size();
        if (!runs[i].empty()) {
            heap.push({i, 0});
        }
    }

    std::vector<Record> out;
    out.reserve(total);
    while (!heap.empty()) {
        const Head h = heap.top();
        heap.pop();
        if (sink != nullptr) {
            sink->compute(kMergeHeapOps);
        }
        narrateRecordTouch(sink, runs[h.run][h.pos]);
        out.push_back(std::move(runs[h.run][h.pos]));
        if (h.pos + 1 < runs[h.run].size()) {
            heap.push({h.run, h.pos + 1});
        }
    }
    return out;
}

std::vector<Record>
MultiwayMergeOperator::combine(std::vector<std::vector<Record>> runs,
                               unsigned node, MemSink *sink)
{
    (void)node;
    return multiwayMerge(std::move(runs), sink);
}

std::vector<Record>
ConcatMergeOperator::combine(std::vector<std::vector<Record>> runs,
                             unsigned node, MemSink *sink)
{
    (void)node;
    std::vector<Record> out;
    std::size_t total = 0;
    for (const auto &run : runs) {
        total += run.size();
    }
    out.reserve(total);
    for (auto &run : runs) {
        for (auto &r : run) {
            narrateRecordTouch(sink, r);
            out.push_back(std::move(r));
        }
    }
    return out;
}

JoinAggregateOperator::JoinAggregateOperator(const char *name, JoinFn fn)
    : name_(name), fn_(std::move(fn))
{
}

void
JoinAggregateOperator::setBuildSide(
    unsigned node,
    std::unordered_map<std::string, std::vector<std::uint8_t>> table)
{
    if (build_.size() <= node) {
        build_.resize(node + 1);
    }
    build_[node] = std::move(table);
}

std::vector<Record>
JoinAggregateOperator::apply(std::vector<Record> in, unsigned node,
                             MemSink *sink)
{
    panic_if(node >= build_.size(),
             "join operator '%s' has no build side for node %u", name_,
             node);
    const auto &table = build_[node];
    std::vector<Record> out;
    for (const auto &r : in) {
        narrateProbe(sink, r.key);
        auto it = table.find(std::string(r.key.begin(), r.key.end()));
        if (it == table.end()) {
            continue;
        }
        const std::size_t before = out.size();
        fn_(r, it->second, out);
        if (sink != nullptr) {
            for (std::size_t i = before; i < out.size(); ++i) {
                sink->store(kScratchBase + 0x200000, 8);
                sink->compute(kPerValueByte * out[i].value.size());
            }
        }
    }
    return out;
}

std::vector<std::vector<std::uint8_t>>
selectSplitters(std::vector<std::vector<std::uint8_t>> sample_keys,
                std::uint32_t parts)
{
    std::sort(sample_keys.begin(), sample_keys.end());
    std::vector<std::vector<std::uint8_t>> out;
    if (parts < 2 || sample_keys.empty()) {
        return out;
    }
    out.reserve(parts - 1);
    for (std::uint32_t i = 1; i < parts; ++i) {
        const std::size_t idx = i * sample_keys.size() / parts;
        out.push_back(sample_keys[std::min(idx, sample_keys.size() - 1)]);
    }
    return out;
}

} // namespace dataflow
} // namespace cereal
