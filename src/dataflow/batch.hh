/**
 * @file
 * Record batches through a real serializer backend.
 *
 * BatchCodec is the serde boundary of every shuffled stage: a batch of
 * records is materialized as an object graph, serialized by the
 * backend picked from the registry, LZ-compressed when the backend's
 * lzOnWire trait says so, and recovered on the receive side through
 * the trait-matched path — zero-copy backends attach and read segment
 * views in place, everything else deserializes into a fresh heap and
 * walks it. No code here names a backend; the registry traits are the
 * only dispatch.
 */

#ifndef CEREAL_DATAFLOW_BATCH_HH
#define CEREAL_DATAFLOW_BATCH_HH

#include <memory>
#include <string>
#include <vector>

#include "dataflow/record.hh"
#include "serde/registry.hh"
#include "shuffle/lz.hh"

namespace cereal {
namespace dataflow {

/** One encoded batch as it travels inside a partition frame. */
struct EncodedBatch
{
    /** On-wire payload bytes (post-codec when lzOnWire). */
    std::vector<std::uint8_t> payload;
    /** Serialized stream bytes before the wire codec. */
    std::uint64_t streamBytes = 0;
    std::uint64_t records = 0;
};

/** Encode/decode record batches through one registered backend. */
class BatchCodec
{
  public:
    /** @param backend a registry backend name (fatal if unknown) */
    explicit BatchCodec(const std::string &backend);

    const serde::BackendInfo &info() const { return *info_; }

    EncodedBatch encode(const std::vector<Record> &batch);

    std::vector<Record>
    decode(const std::vector<std::uint8_t> &payload);

  private:
    const serde::BackendInfo *info_;
    KlassRegistry reg_;
    RecordSchema schema_;
    std::unique_ptr<Serializer> ser_;
    LzCodec lz_;
};

} // namespace dataflow
} // namespace cereal

#endif // CEREAL_DATAFLOW_BATCH_HH
