/**
 * @file
 * Node-local dataflow operators.
 *
 * An Operator is one node-local transformation of a record vector; a
 * MergeOperator combines the per-source runs a shuffled exchange
 * delivers to a destination. Both narrate their memory/compute work to
 * an optional MemSink exactly like the serializers do, so a stage's
 * operator compute is *measured* through the same CPU timing model
 * that times serialization, not assumed.
 *
 * Concrete operators:
 *  - ReduceByKeyOperator: hash-aggregation in thrill's two-table
 *    shape — the pre-shuffle instance combines locally under a bounded
 *    distinct-key budget (spilling full runs when it overflows), the
 *    post-shuffle instance runs unbounded and emits the exact result;
 *  - SortRunOperator + MultiwayMergeOperator: the two halves of a
 *    sample sort (sorted local runs, k-way merge at the destination);
 *  - JoinAggregateOperator: probes a static per-node build side
 *    (e.g. an adjacency table) and flat-maps each hit — the map side
 *    of an iterative join/aggregate step.
 *
 * Operators are shared across nodes by the stage engine, so apply()
 * takes the node index and must not keep cross-call state except what
 * is explicitly per-node (JoinAggregateOperator's build sides).
 */

#ifndef CEREAL_DATAFLOW_OPERATORS_HH
#define CEREAL_DATAFLOW_OPERATORS_HH

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataflow/record.hh"
#include "serde/sink.hh"

namespace cereal {
namespace dataflow {

/** One node-local transformation: records in, records out. */
class Operator
{
  public:
    virtual ~Operator() = default;

    virtual const char *name() const = 0;

    virtual std::vector<Record>
    apply(std::vector<Record> in, unsigned node, MemSink *sink) = 0;
};

/** Combines the per-source runs delivered to one destination. */
class MergeOperator
{
  public:
    virtual ~MergeOperator() = default;

    virtual const char *name() const = 0;

    virtual std::vector<Record>
    combine(std::vector<std::vector<Record>> runs, unsigned node,
            MemSink *sink) = 0;
};

/** Combines two values for one key (associative). */
using ValueMerge = std::function<std::vector<std::uint8_t>(
    const std::vector<std::uint8_t> &, const std::vector<std::uint8_t> &)>;

/** ValueMerge adding little-endian u64 counters. */
ValueMerge sumU64Merge();

/** ValueMerge adding doubles by bit pattern. */
ValueMerge sumF64Merge();

/**
 * Hash-aggregation table. With a nonzero spill threshold the table
 * never holds more distinct keys than the threshold: an insert that
 * would exceed it first flushes the whole table into a spill run
 * (sorted by key), mirroring a memory-budgeted pre-shuffle combine.
 */
class ReduceTable
{
  public:
    /** @param spill_threshold max distinct keys held (0 = unbounded) */
    ReduceTable(ValueMerge merge, std::size_t spill_threshold = 0);

    /** Insert @p r, merging with any existing entry for its key. */
    void insert(Record r, MemSink *sink = nullptr);

    /** Distinct keys currently held (spilled runs excluded). */
    std::size_t size() const { return map_.size(); }

    /** Spill runs flushed so far, in flush order (moved out). */
    std::vector<std::vector<Record>> takeSpills();

    /** Drain the table contents sorted by key; the table empties. */
    std::vector<Record> drain(MemSink *sink = nullptr);

  private:
    std::vector<Record> flushSorted(MemSink *sink);

    ValueMerge merge_;
    std::size_t threshold_;
    std::unordered_map<std::string, std::vector<std::uint8_t>> map_;
    std::vector<std::vector<Record>> spills_;
};

/**
 * Reduce-by-key through a ReduceTable. Output is the spill runs in
 * flush order followed by the final drain; with threshold 0 that is
 * exactly one run, sorted by key with one record per distinct key.
 */
class ReduceByKeyOperator : public Operator
{
  public:
    ReduceByKeyOperator(const char *name, ValueMerge merge,
                        std::size_t spill_threshold = 0);

    const char *name() const override { return name_; }

    std::vector<Record>
    apply(std::vector<Record> in, unsigned node, MemSink *sink) override;

  private:
    const char *name_;
    ValueMerge merge_;
    std::size_t threshold_;
};

/** Sorts the node's records by (key, value) — a sample-sort run. */
class SortRunOperator : public Operator
{
  public:
    const char *name() const override { return "sort_run"; }

    std::vector<Record>
    apply(std::vector<Record> in, unsigned node, MemSink *sink) override;
};

/**
 * K-way merge of sorted runs with a deterministic tie-break (equal
 * (key, value) records pop in run-index order), so merged output is a
 * pure function of the run contents.
 */
std::vector<Record>
multiwayMerge(std::vector<std::vector<Record>> runs,
              MemSink *sink = nullptr);

/** MergeOperator over multiwayMerge() (sample-sort receive side). */
class MultiwayMergeOperator : public MergeOperator
{
  public:
    const char *name() const override { return "multiway_merge"; }

    std::vector<Record>
    combine(std::vector<std::vector<Record>> runs, unsigned node,
            MemSink *sink) override;
};

/** Concatenates runs in source order (reduce-by-key receive side). */
class ConcatMergeOperator : public MergeOperator
{
  public:
    const char *name() const override { return "concat"; }

    std::vector<Record>
    combine(std::vector<std::vector<Record>> runs, unsigned node,
            MemSink *sink) override;
};

/**
 * Probes a static per-node build side with each input record's key
 * and flat-maps hits through the join function; misses are dropped.
 */
class JoinAggregateOperator : public Operator
{
  public:
    /** Emits zero or more records for one (probe, build) match. */
    using JoinFn = std::function<void(const Record &probe,
                                      const std::vector<std::uint8_t> &build,
                                      std::vector<Record> &out)>;

    JoinAggregateOperator(const char *name, JoinFn fn);

    /** Install @p node's build side (key bytes -> payload). */
    void
    setBuildSide(unsigned node,
                 std::unordered_map<std::string,
                                    std::vector<std::uint8_t>> table);

    const char *name() const override { return name_; }

    std::vector<Record>
    apply(std::vector<Record> in, unsigned node, MemSink *sink) override;

  private:
    const char *name_;
    JoinFn fn_;
    std::vector<std::unordered_map<std::string,
                                   std::vector<std::uint8_t>>> build_;
};

/**
 * Pick parts-1 range splitters from sampled keys: sort, take evenly
 * spaced quantiles. Returns fewer when the sample has too few
 * distinct candidates (RangePartitioner clamps to the last range).
 */
std::vector<std::vector<std::uint8_t>>
selectSplitters(std::vector<std::vector<std::uint8_t>> sample_keys,
                std::uint32_t parts);

} // namespace dataflow
} // namespace cereal

#endif // CEREAL_DATAFLOW_OPERATORS_HH
