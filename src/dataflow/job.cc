#include "dataflow/job.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "cluster/cost_model.hh"
#include "cluster/frame.hh"
#include "cluster/worker.hh"
#include "cpu/core_model.hh"
#include "dataflow/batch.hh"
#include "mem/dram.hh"
#include "sim/arena.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "trace/trace.hh"

namespace cereal {
namespace dataflow {

namespace {

Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(
        std::ceil(s * static_cast<double>(kTicksPerSecond)));
}

/** Distinct-key budget of the pre-shuffle combine table. */
constexpr std::size_t kCombineSpillKeys = 64;

/** Every k-th record feeds the sample-sort splitter sample. */
constexpr std::size_t kSampleStride = 16;

constexpr double kDamping = 0.85;
constexpr std::size_t kPageRankDegree = 4;

/**
 * Measure one node-local operator pass: run it functionally while it
 * narrates into a CPU core model, return the simulated seconds. The
 * measurement is a pure function of the records and the operator, so
 * it is identical across sim modes (the core-model equivalence
 * contract) and across threads.
 */
double
timeOp(SimMode mode, const std::function<void(MemSink *)> &body)
{
    EventQueue eq;
    Dram dram("dram.dataflow", eq);
    CoreConfig cc;
    cc.mode = mode;
    CoreModel core(dram, cc);
    body(&core);
    return core.finish().seconds;
}

std::string
keyString(const std::vector<std::uint8_t> &key)
{
    return std::string(key.begin(), key.end());
}

/**
 * Executes stages over one simulated cluster. The event queue, the
 * workers, and the fabric persist across stages, so simulated time
 * accumulates and a stage starts only after the previous one fully
 * drained (the stage barrier is runAll()).
 */
class StageEngine
{
  public:
    explicit StageEngine(const DataflowConfig &cfg)
        : cfg_(cfg),
          codec_(cfg.backend),
          observe_(simModeObserves(cfg.mode)),
          em_(observe_ ? trace::current() : trace::TraceEmitter()),
          workers_(cfg.nodes),
          fabric_(eq_, cfg.nodes, cfg.net,
                  [this](std::uint32_t dst,
                         std::vector<std::uint8_t> bytes) {
                      deliver(dst, std::move(bytes));
                  })
    {
        panic_if(cfg_.nodes < 2, "dataflow needs at least 2 nodes");
        panic_if(cfg_.stragglerFactor < 1.0,
                 "straggler factor must be >= 1");
        cluster::NodeConfig nc;
        nc.backend =
            static_cast<cluster::Backend>(codec_.info().formatId);
        nc.app = "Terasort";
        nc.scale = cfg_.profileScale;
        nc.seed = cfg_.seed;
        nc.mode = cfg_.mode;
        cost_ = cluster::BackendCostModel::measure(nc);
        for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
            workers_[i].eq = &eq_;
            if (observe_) {
                workers_[i].initMetrics(i);
            }
            if (em_.enabled()) {
                workers_[i].trace =
                    em_.sub(("node" + std::to_string(i)).c_str());
            }
        }
        fabric_.setTrace(em_.sub("fabric"));
    }

    std::vector<std::vector<Record>>
    runStage(const Stage &st, std::vector<std::vector<Record>> in,
             StageStats *stats);

    double nowSeconds() const { return ticksToSeconds(eq_.now()); }
    std::uint64_t wireBytes() const { return fabric_.wireBytes(); }
    std::uint64_t fabricBatches() const { return fabric_.batches(); }

  private:
    /** Everything the receive path needs about one in-flight batch. */
    struct BatchMeta
    {
        std::uint32_t src = 0;
        std::uint32_t dst = 0;
        std::uint64_t checksum = 0;
        std::uint64_t payloadLen = 0;
        Tick deserTicks = 0;
        /** Causal stamps (every batch, sampling-independent). */
        Tick serStart = 0;
        Tick serEnd = 0;
        Tick send = 0;
        Tick deliver = 0;
        Tick deserStartT = 0;
        Tick done = 0;
    };

    /** Nonzero wire trace id of batch @p id. */
    static std::uint64_t
    batchTraceId(std::uint32_t id)
    {
        return static_cast<std::uint64_t>(id) + 1;
    }

    /** Service seconds -> ticks, stretched on the straggler node. */
    Tick
    svc(unsigned node, double seconds) const
    {
        const double factor =
            node == cfg_.stragglerNode ? cfg_.stragglerFactor : 1.0;
        return secondsToTicks(seconds * factor);
    }

    void
    deliver(std::uint32_t dst, std::vector<std::uint8_t> bytes)
    {
        auto res = tryDecodeFrameInfo(bytes);
        panic_if(!res.ok(), "fabric delivered a corrupt frame: %s",
                 res.error().what());
        const FrameInfo &info = res.value();
        auto it = batchMeta_.find(info.partition);
        panic_if(it == batchMeta_.end(),
                 "frame for unknown dataflow batch %u", info.partition);
        BatchMeta &m = it->second;
        panic_if(m.dst != dst || info.checksum != m.checksum ||
                     info.payloadLen != m.payloadLen,
                 "corrupt dataflow frame (digest mismatch on batch %u)",
                 info.partition);
        panic_if(info.hasTrace() &&
                     info.traceId != batchTraceId(info.partition),
                 "batch %u arrived with foreign trace id %llu",
                 info.partition, (unsigned long long)info.traceId);
        m.deliver = eq_.now();
        pool_.release(std::move(bytes));
        const std::uint32_t id = info.partition;
        workers_[dst].enqueue(m.deserTicks, "deser",
                              [this, dst, id] { onBatchDecoded(dst, id); });
    }

    /** Receive-side barrier: all n batches in, run the merge/reduce. */
    void
    onBatchDecoded(std::uint32_t dst, std::uint32_t id)
    {
        BatchMeta &m = batchMeta_.at(id);
        m.done = eq_.now();
        m.deserStartT = eq_.now() - m.deserTicks;
        if (++arrived_[dst] == cfg_.nodes) {
            // This batch released the barrier: it is the stage's
            // last arrival at dst and bounds the reduce start.
            lastBatch_[dst] = id;
            workers_[dst].enqueue(postTicks_[dst], "reduce", [this, dst] {
                reduceEnd_[dst] = eq_.now();
            });
        }
    }

    const DataflowConfig cfg_;
    BatchCodec codec_;
    cluster::BackendCostModel cost_;
    const bool observe_;
    trace::TraceEmitter em_;
    EventQueue eq_;
    std::vector<cluster::Worker> workers_;
    Fabric fabric_;
    sim::BufferPool pool_;

    std::unordered_map<std::uint32_t, BatchMeta> batchMeta_;
    std::vector<std::uint32_t> arrived_;
    std::vector<Tick> postTicks_;
    /** Per dst: barrier-releasing batch id and reduce-done tick. */
    std::vector<std::uint32_t> lastBatch_;
    std::vector<Tick> reduceEnd_;
    std::uint32_t nextBatchId_ = 0;
    /** Stage ordinal within the run (the frame ext span id). */
    std::uint32_t stageIndex_ = 0;
};

std::vector<std::vector<Record>>
StageEngine::runStage(const Stage &st,
                      std::vector<std::vector<Record>> in,
                      StageStats *stats)
{
    const std::uint32_t n = cfg_.nodes;
    panic_if(in.size() != n, "stage input must have one run per node");
    if (stats != nullptr) {
        stats->name = st.name;
        stats->startSeconds = ticksToSeconds(eq_.now());
        for (const auto &run : in) {
            stats->recordsIn += run.size();
        }
    }

    // Functional pass, map side: run each node's operator while it
    // narrates into the core model.
    std::vector<std::vector<Record>> mapped(n);
    std::vector<double> mapSeconds(n, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
        if (st.map != nullptr) {
            mapSeconds[i] = timeOp(cfg_.mode, [&](MemSink *s) {
                mapped[i] = st.map->apply(std::move(in[i]), i, s);
            });
        } else {
            mapped[i] = std::move(in[i]);
        }
    }

    if (st.shuffle == nullptr) {
        // Local stage: charge the compute, no exchange.
        for (std::uint32_t i = 0; i < n; ++i) {
            workers_[i].enqueue(svc(i, mapSeconds[i]), "map", [] {});
        }
        eq_.runAll();
        if (stats != nullptr) {
            stats->endSeconds = ticksToSeconds(eq_.now());
            for (const auto &run : mapped) {
                stats->recordsOut += run.size();
            }
        }
        return mapped;
    }

    // Route every mapped record to its destination partition.
    std::vector<std::vector<std::vector<Record>>> parts(
        n, std::vector<std::vector<Record>>(n));
    for (std::uint32_t src = 0; src < n; ++src) {
        for (auto &r : mapped[src]) {
            const std::uint32_t dst = st.shuffle->partition(r, n);
            panic_if(dst >= n, "partitioner returned %u of %u", dst, n);
            parts[src][dst].push_back(std::move(r));
        }
    }

    // Serde boundary: encode every (src, dst) batch through the real
    // backend — empty batches included, so the receive barrier counts
    // exactly n arrivals — and decode it on the receive side through
    // the trait-matched path (views for zero-copy, heap walk else).
    struct BatchExec
    {
        EncodedBatch enc;
        std::uint64_t checksum = 0;
        Tick serTicks = 0;
        Tick deserTicks = 0;
    };
    std::vector<std::vector<BatchExec>> batches(
        n, std::vector<BatchExec>(n));
    std::vector<std::vector<std::vector<Record>>> runs(
        n, std::vector<std::vector<Record>>(n));
    std::vector<std::uint64_t> rxBytes(n, 0);
    for (std::uint32_t src = 0; src < n; ++src) {
        for (std::uint32_t dst = 0; dst < n; ++dst) {
            BatchExec &b = batches[src][dst];
            b.enc = codec_.encode(parts[src][dst]);
            b.checksum =
                fnv1a64(b.enc.payload.data(), b.enc.payload.size());
            b.serTicks =
                svc(src, cost_.serializeSecondsFor(b.enc.streamBytes));
            b.deserTicks = svc(
                dst, cost_.deserializeSecondsFor(b.enc.streamBytes));
            runs[dst][src] = codec_.decode(b.enc.payload);
            rxBytes[dst] += b.enc.payload.size();
            if (stats != nullptr) {
                ++stats->batches;
                stats->payloadBytes += b.enc.payload.size();
                stats->streamBytes += b.enc.streamBytes;
            }
        }
    }

    // Functional pass, receive side: merge the per-source runs and
    // reduce, timed per destination.
    ConcatMergeOperator defaultGather;
    MergeOperator *gather =
        st.gather != nullptr ? st.gather : &defaultGather;
    std::vector<std::vector<Record>> out(n);
    std::vector<double> postSeconds(n, 0);
    for (std::uint32_t dst = 0; dst < n; ++dst) {
        postSeconds[dst] = timeOp(cfg_.mode, [&](MemSink *s) {
            auto combined = gather->combine(std::move(runs[dst]), dst, s);
            out[dst] = st.reduce != nullptr
                ? st.reduce->apply(std::move(combined), dst, s)
                : std::move(combined);
        });
    }

    // Event pass: replay the measured times through the workers and
    // the fabric. Self-partitions pay serialize + deserialize on the
    // node's own worker but never touch the wire (a local shuffle
    // file), exactly one "deser" completion per (src, dst) batch.
    const Tick stageStart = eq_.now();
    const std::uint32_t stage = stageIndex_++;
    arrived_.assign(n, 0);
    postTicks_.assign(n, 0);
    lastBatch_.assign(n, 0);
    reduceEnd_.assign(n, 0);
    batchMeta_.clear();
    for (std::uint32_t dst = 0; dst < n; ++dst) {
        postTicks_[dst] = svc(dst, postSeconds[dst]);
    }
    for (std::uint32_t src = 0; src < n; ++src) {
        workers_[src].enqueue(svc(src, mapSeconds[src]), "map", [] {});
        for (std::uint32_t dst = 0; dst < n; ++dst) {
            BatchExec *b = &batches[src][dst];
            const std::uint32_t id = nextBatchId_++;
            BatchMeta meta;
            meta.src = src;
            meta.dst = dst;
            meta.checksum = b->checksum;
            meta.payloadLen = b->enc.payload.size();
            meta.deserTicks = b->deserTicks;
            batchMeta_[id] = meta;
            const Tick serTicks = b->serTicks;
            workers_[src].enqueue(
                serTicks, "ser", [this, src, dst, b, id, serTicks,
                                  stage] {
                    BatchMeta &m = batchMeta_.at(id);
                    m.serEnd = eq_.now();
                    m.serStart = eq_.now() - serTicks;
                    m.send = eq_.now();
                    if (dst == src) {
                        // Local shuffle file: delivered in place.
                        m.deliver = eq_.now();
                        workers_[dst].enqueue(
                            m.deserTicks, "deser",
                            [this, dst, id] { onBatchDecoded(dst, id); });
                        return;
                    }
                    FrameRef f;
                    f.format = codec_.info().formatId;
                    f.flags = cost_.compressedOnWire()
                        ? kFrameFlagCompressed : 0;
                    f.srcNode = src;
                    f.dstNode = dst;
                    f.partition = id;
                    if (trace::sampleRequest(batchTraceId(id),
                                             cfg_.reqTrace)) {
                        f.flags |= kFrameFlagTraced;
                        f.traceId = batchTraceId(id);
                        f.spanId = stage;
                    }
                    f.payload = b->enc.payload.data();
                    f.payloadLen = b->enc.payload.size();
                    auto bytes = pool_.acquire();
                    encodeFrameInto(f, b->checksum, bytes);
                    fabric_.send(src, dst, std::move(bytes));
                });
        }
    }
    eq_.runAll();

    for (std::uint32_t dst = 0; dst < n; ++dst) {
        panic_if(arrived_[dst] != n,
                 "stage '%s' lost batches at node %u (%u of %u)",
                 st.name, dst, arrived_[dst], n);
    }

    if (stats != nullptr) {
        // The stage ends when the slowest reduce finishes; that node's
        // barrier was released by its last-arriving batch — the
        // stage's critical path.
        std::uint32_t bound = 0;
        for (std::uint32_t dst = 1; dst < n; ++dst) {
            if (reduceEnd_[dst] > reduceEnd_[bound]) {
                bound = dst;
            }
        }
        const BatchMeta &m = batchMeta_.at(lastBatch_[bound]);
        trace::RequestTimeline tl;
        tl.traceId = batchTraceId(lastBatch_[bound]);
        tl.origin = m.src;
        tl.dst = m.dst;
        tl.cls = static_cast<std::uint8_t>(stage & 0xff);
        tl.arrival = stageStart;
        tl.serStart = m.serStart;
        tl.serEnd = m.serEnd;
        tl.send = m.send;
        tl.deliver = m.deliver;
        tl.deserStart = m.deserStartT;
        tl.done = m.done;
        tl.deserTicks = m.deserTicks;
        stats->crit =
            trace::stageCriticalPath(tl, stageStart, reduceEnd_[bound]);
        panic_if(!stats->crit.conserves(),
                 "stage '%s' critical path violates conservation",
                 st.name);
        panic_if(reduceEnd_[bound] != eq_.now(),
                 "stage '%s' ended after its slowest reduce", st.name);
        stats->endSeconds = ticksToSeconds(eq_.now());
        for (const auto &run : out) {
            stats->recordsOut += run.size();
        }
        std::uint64_t maxRx = 0;
        std::uint64_t sumRx = 0;
        for (const auto rx : rxBytes) {
            maxRx = std::max(maxRx, rx);
            sumRx += rx;
        }
        const double mean =
            static_cast<double>(sumRx) / static_cast<double>(n);
        stats->skewRatio =
            mean > 0 ? static_cast<double>(maxRx) / mean : 1.0;
    }
    return out;
}

/** Fill in the engine-level result fields common to every job. */
void
finishResult(DataflowResult &res, const StageEngine &eng,
             const std::vector<std::vector<Record>> &out)
{
    res.completionSeconds = eng.nowSeconds();
    res.wireBytes = eng.wireBytes();
    res.fabricBatches = eng.fabricBatches();
    std::vector<Record> flat;
    for (const auto &run : out) {
        flat.insert(flat.end(), run.begin(), run.end());
    }
    res.outputRecords = flat.size();
    res.resultChecksum = recordsChecksum(flat);
    for (const auto &s : res.stages) {
        res.skewRatio = std::max(res.skewRatio, s.skewRatio);
    }
}

// --- wordcount ----------------------------------------------------------

struct WordCountData
{
    std::vector<std::vector<Record>> input;
    std::map<std::vector<std::uint8_t>, std::uint64_t> counts;
};

WordCountData
genWordCount(const DataflowConfig &cfg)
{
    WordCountData data;
    data.input.resize(cfg.nodes);
    const std::uint64_t vocab =
        std::max<std::uint64_t>(16, cfg.recordsPerNode / 4);
    for (std::uint32_t node = 0; node < cfg.nodes; ++node) {
        Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + node + 1);
        auto &run = data.input[node];
        run.reserve(cfg.recordsPerNode);
        for (std::uint64_t k = 0; k < cfg.recordsPerNode; ++k) {
            const std::uint64_t word =
                rng.chance(cfg.skew) ? 0 : rng.below(vocab);
            const std::string s = "w" + std::to_string(word);
            Record r;
            r.key.assign(s.begin(), s.end());
            r.value = packU64(1);
            ++data.counts[r.key];
            run.push_back(std::move(r));
        }
    }
    return data;
}

DataflowResult
runWordCount(const DataflowConfig &cfg)
{
    auto data = genWordCount(cfg);
    StageEngine eng(cfg);

    ReduceByKeyOperator combine("combine", sumU64Merge(),
                                kCombineSpillKeys);
    HashPartitioner hash;
    ConcatMergeOperator concat;
    ReduceByKeyOperator reduce("reduce", sumU64Merge(), 0);
    Stage st;
    st.name = "wordcount.reduce";
    st.map = &combine;
    st.shuffle = &hash;
    st.gather = &concat;
    st.reduce = &reduce;

    DataflowResult res;
    res.job = "wordcount";
    res.backend = cfg.backend;
    res.stages.emplace_back();
    auto out = eng.runStage(st, std::move(data.input),
                            &res.stages.back());

    // Exact-aggregation invariant: the outputs hold every word exactly
    // once, with the count the generator produced.
    std::map<std::vector<std::uint8_t>, std::uint64_t> got;
    bool unique = true;
    for (const auto &run : out) {
        for (const auto &r : run) {
            unique = got.emplace(r.key, unpackU64(r.value)).second &&
                     unique;
        }
    }
    res.invariantsOk = unique && got == data.counts;
    finishResult(res, eng, out);
    return res;
}

// --- terasort -----------------------------------------------------------

/** Emits every k-th record's key into the splitter sample. */
class SampleOperator : public Operator
{
  public:
    explicit SampleOperator(std::size_t stride) : stride_(stride) {}

    const char *name() const override { return "sample"; }

    std::vector<Record>
    apply(std::vector<Record> in, unsigned node, MemSink *sink) override
    {
        (void)node;
        std::vector<Record> out;
        for (std::size_t i = 0; i < in.size(); i += stride_) {
            if (sink != nullptr) {
                sink->compute(4 + in[i].key.size());
            }
            Record r;
            r.key = in[i].key;
            out.push_back(std::move(r));
        }
        return out;
    }

  private:
    std::size_t stride_;
};

/** Turns the gathered sample into parts-1 splitter records. */
class SplitterOperator : public Operator
{
  public:
    explicit SplitterOperator(std::uint32_t parts) : parts_(parts) {}

    const char *name() const override { return "splitters"; }

    std::vector<Record>
    apply(std::vector<Record> in, unsigned node, MemSink *sink) override
    {
        (void)node;
        if (in.empty()) {
            return {};
        }
        std::vector<std::vector<std::uint8_t>> keys;
        keys.reserve(in.size());
        for (auto &r : in) {
            keys.push_back(std::move(r.key));
        }
        if (sink != nullptr) {
            sink->compute(8 * keys.size());
        }
        std::vector<Record> out;
        for (auto &k : selectSplitters(std::move(keys), parts_)) {
            Record r;
            r.key = std::move(k);
            out.push_back(std::move(r));
        }
        return out;
    }

  private:
    std::uint32_t parts_;
};

std::vector<std::vector<Record>>
genTerasort(const DataflowConfig &cfg)
{
    std::vector<std::vector<Record>> input(cfg.nodes);
    for (std::uint32_t node = 0; node < cfg.nodes; ++node) {
        Rng rng(cfg.seed * 0xda942042e4dd58b5ULL + node + 1);
        auto &run = input[node];
        run.reserve(cfg.recordsPerNode);
        for (std::uint64_t k = 0; k < cfg.recordsPerNode; ++k) {
            Record r;
            r.key.resize(10);
            const bool hot = rng.chance(cfg.skew);
            for (auto &b : r.key) {
                b = static_cast<std::uint8_t>(33 + rng.below(94));
            }
            if (hot) {
                // Skewed draws collapse into the bottom key range, so
                // the range exchange funnels them to one destination.
                r.key[0] = 33;
            }
            r.value.resize(90);
            for (auto &b : r.value) {
                b = static_cast<std::uint8_t>(rng.next() & 0xff);
            }
            run.push_back(std::move(r));
        }
    }
    return input;
}

DataflowResult
runTerasort(const DataflowConfig &cfg)
{
    auto input = genTerasort(cfg);
    std::vector<Record> ref;
    for (const auto &run : input) {
        ref.insert(ref.end(), run.begin(), run.end());
    }
    std::sort(ref.begin(), ref.end(), recordLess);

    StageEngine eng(cfg);
    DataflowResult res;
    res.job = "terasort";
    res.backend = cfg.backend;

    // Stage 1: sample keys, gather them on node 0, pick splitters.
    SampleOperator sample(kSampleStride);
    SinglePartitioner toZero(0);
    ConcatMergeOperator concat;
    SplitterOperator pick(cfg.nodes);
    Stage s1;
    s1.name = "terasort.sample";
    s1.map = &sample;
    s1.shuffle = &toZero;
    s1.gather = &concat;
    s1.reduce = &pick;
    res.stages.emplace_back();
    auto sampled = eng.runStage(s1, input, &res.stages.back());

    // Control plane: the driver reads node 0's splitters and installs
    // them into the next stage's partitioner (a Spark-style broadcast;
    // splitters are metadata, not exchanged records).
    std::vector<std::vector<std::uint8_t>> splitters;
    for (const auto &r : sampled[0]) {
        splitters.push_back(r.key);
    }

    // Stage 2: sort local runs, range-exchange, k-way merge.
    SortRunOperator sorter;
    RangePartitioner range(std::move(splitters));
    MultiwayMergeOperator merge;
    Stage s2;
    s2.name = "terasort.sort";
    s2.map = &sorter;
    s2.shuffle = &range;
    s2.gather = &merge;
    res.stages.emplace_back();
    auto out = eng.runStage(s2, std::move(input), &res.stages.back());

    // Sortedness + multiset preservation: the per-node outputs,
    // concatenated in node order, must equal the globally sorted
    // input record for record.
    std::vector<Record> flat;
    for (const auto &run : out) {
        flat.insert(flat.end(), run.begin(), run.end());
    }
    res.invariantsOk = flat == ref;
    finishResult(res, eng, out);
    return res;
}

// --- pagerank -----------------------------------------------------------

/** Reduce contributions, then damp and emit the owned vertex range. */
class RankUpdateOperator : public Operator
{
  public:
    explicit RankUpdateOperator(std::uint64_t per_node)
        : perNode_(per_node)
    {
    }

    const char *name() const override { return "rank_update"; }

    std::vector<Record>
    apply(std::vector<Record> in, unsigned node, MemSink *sink) override
    {
        ReduceTable table(sumF64Merge(), 0);
        for (auto &r : in) {
            table.insert(std::move(r), sink);
        }
        std::unordered_map<std::string, double> sums;
        for (const auto &r : table.drain(sink)) {
            sums.emplace(keyString(r.key), unpackF64(r.value));
        }
        std::vector<Record> out;
        out.reserve(perNode_);
        const std::uint64_t first = std::uint64_t{node} * perNode_;
        for (std::uint64_t v = first; v < first + perNode_; ++v) {
            const auto key = packU64(v);
            const auto it = sums.find(keyString(key));
            const double sum = it == sums.end() ? 0.0 : it->second;
            if (sink != nullptr) {
                sink->compute(8);
            }
            Record r;
            r.key = key;
            r.value = packF64(1.0 - kDamping + kDamping * sum);
            out.push_back(std::move(r));
        }
        return out;
    }

  private:
    std::uint64_t perNode_;
};

struct PageRankData
{
    std::vector<std::vector<Record>> ranks;
    /** Per-node adjacency: vertex key -> packed u64 out-edge targets. */
    std::vector<std::unordered_map<std::string,
                                   std::vector<std::uint8_t>>> adj;
};

PageRankData
genPageRank(const DataflowConfig &cfg)
{
    PageRankData data;
    data.ranks.resize(cfg.nodes);
    data.adj.resize(cfg.nodes);
    const std::uint64_t per = cfg.recordsPerNode;
    const std::uint64_t vertices = per * cfg.nodes;
    for (std::uint32_t node = 0; node < cfg.nodes; ++node) {
        Rng rng(cfg.seed * 0xbf58476d1ce4e5b9ULL + node + 1);
        for (std::uint64_t v = node * per; v < (node + 1) * per; ++v) {
            std::vector<std::uint8_t> targets(kPageRankDegree * 8);
            for (std::size_t d = 0; d < kPageRankDegree; ++d) {
                // Skewed draws all point at vertex 0: a hot vertex
                // whose owner becomes the exchange's hot destination.
                const std::uint64_t t =
                    rng.chance(cfg.skew) ? 0 : rng.below(vertices);
                std::memcpy(targets.data() + d * 8, &t, 8);
            }
            const auto key = packU64(v);
            data.adj[node].emplace(keyString(key), std::move(targets));
            Record r;
            r.key = key;
            r.value = packF64(1.0);
            data.ranks[node].push_back(std::move(r));
        }
    }
    return data;
}

DataflowResult
runPageRank(const DataflowConfig &cfg)
{
    auto data = genPageRank(cfg);
    StageEngine eng(cfg);
    DataflowResult res;
    res.job = "pagerank";
    res.backend = cfg.backend;

    JoinAggregateOperator contrib(
        "contrib",
        [](const Record &probe, const std::vector<std::uint8_t> &edges,
           std::vector<Record> &out) {
            const std::size_t degree = edges.size() / 8;
            const double share = unpackF64(probe.value) /
                                 static_cast<double>(degree);
            for (std::size_t d = 0; d < degree; ++d) {
                std::uint64_t t = 0;
                std::memcpy(&t, edges.data() + d * 8, 8);
                Record r;
                r.key = packU64(t);
                r.value = packF64(share);
                out.push_back(std::move(r));
            }
        });
    for (std::uint32_t node = 0; node < cfg.nodes; ++node) {
        contrib.setBuildSide(node, std::move(data.adj[node]));
    }
    OwnerPartitioner owner(cfg.recordsPerNode);
    ConcatMergeOperator concat;
    RankUpdateOperator update(cfg.recordsPerNode);
    Stage st;
    st.name = "pagerank.iter";
    st.map = &contrib;
    st.shuffle = &owner;
    st.gather = &concat;
    st.reduce = &update;

    auto ranks = std::move(data.ranks);
    for (unsigned it = 0; it < cfg.iterations; ++it) {
        res.stages.emplace_back();
        ranks = eng.runStage(st, std::move(ranks), &res.stages.back());
    }

    // Rank mass is conserved: with no dangling vertices every vertex
    // redistributes its full rank, so the total stays at the vertex
    // count through every damped iteration.
    const double vertices = static_cast<double>(
        cfg.recordsPerNode * static_cast<std::uint64_t>(cfg.nodes));
    double sum = 0;
    bool countsOk = true;
    for (const auto &run : ranks) {
        countsOk = countsOk && run.size() == cfg.recordsPerNode;
        for (const auto &r : run) {
            sum += unpackF64(r.value);
        }
    }
    res.invariantsOk =
        countsOk && std::abs(sum - vertices) <= 1e-6 * vertices;
    finishResult(res, eng, ranks);
    return res;
}

} // namespace

DataflowResult
runDataflow(const DataflowConfig &cfg)
{
    panic_if(cfg.recordsPerNode == 0, "dataflow needs input records");
    if (cfg.job == "wordcount") {
        return runWordCount(cfg);
    }
    if (cfg.job == "terasort") {
        return runTerasort(cfg);
    }
    if (cfg.job == "pagerank") {
        return runPageRank(cfg);
    }
    panic("unknown dataflow job '%s'", cfg.job.c_str());
}

} // namespace dataflow
} // namespace cereal
