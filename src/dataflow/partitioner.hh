/**
 * @file
 * Record-to-destination routing policies for shuffled stages.
 *
 * A Partitioner is the one seam between an operator's data model and
 * the cluster's node topology: given a record and the node count it
 * names the destination, and nothing else about the exchange. The
 * stock policies cover the three jobs' needs — hash (reduce-by-key),
 * range over sampled splitters (sample sort), owner-of-key (iterative
 * per-vertex state) — plus the degenerate single-destination policy
 * the splitter-gathering stage uses.
 */

#ifndef CEREAL_DATAFLOW_PARTITIONER_HH
#define CEREAL_DATAFLOW_PARTITIONER_HH

#include <algorithm>
#include <utility>
#include <vector>

#include "dataflow/record.hh"

namespace cereal {
namespace dataflow {

/** Maps each record to a destination partition in [0, parts). */
class Partitioner
{
  public:
    virtual ~Partitioner() = default;

    virtual std::uint32_t
    partition(const Record &r, std::uint32_t parts) const = 0;
};

/** FNV-1a of the key bytes modulo the partition count. */
class HashPartitioner : public Partitioner
{
  public:
    std::uint32_t
    partition(const Record &r, std::uint32_t parts) const override
    {
        return static_cast<std::uint32_t>(
            hashBytes(r.key.data(), r.key.size()) % parts);
    }
};

/**
 * Range partitioner over parts-1 sorted splitter keys: destination i
 * receives keys in (splitter[i-1], splitter[i]] with the open ends at
 * the extremes — the sample-sort exchange. Skewed key draws land in
 * one range and show up as a hot destination, which is exactly the
 * imbalance the skew sweep measures.
 */
class RangePartitioner : public Partitioner
{
  public:
    explicit RangePartitioner(
        std::vector<std::vector<std::uint8_t>> splitters)
        : splitters_(std::move(splitters))
    {
    }

    std::uint32_t
    partition(const Record &r, std::uint32_t parts) const override
    {
        const auto it = std::lower_bound(splitters_.begin(),
                                         splitters_.end(), r.key);
        auto idx = static_cast<std::uint32_t>(it - splitters_.begin());
        return std::min(idx, parts - 1);
    }

    const std::vector<std::vector<std::uint8_t>> &
    splitters() const
    {
        return splitters_;
    }

  private:
    std::vector<std::vector<std::uint8_t>> splitters_;
};

/**
 * Keys are little-endian u64 ids; id / idsPerNode owns the record.
 * Iterative jobs use it so a vertex's state updates always land on
 * the node holding that vertex's adjacency.
 */
class OwnerPartitioner : public Partitioner
{
  public:
    explicit OwnerPartitioner(std::uint64_t ids_per_node)
        : idsPerNode_(ids_per_node)
    {
    }

    std::uint32_t
    partition(const Record &r, std::uint32_t parts) const override
    {
        const std::uint64_t id = unpackU64(r.key);
        const std::uint64_t owner = id / idsPerNode_;
        return static_cast<std::uint32_t>(
            std::min<std::uint64_t>(owner, parts - 1));
    }

  private:
    std::uint64_t idsPerNode_;
};

/** Everything to one destination (splitter gathering). */
class SinglePartitioner : public Partitioner
{
  public:
    explicit SinglePartitioner(std::uint32_t dst = 0) : dst_(dst) {}

    std::uint32_t
    partition(const Record &, std::uint32_t parts) const override
    {
        return std::min(dst_, parts - 1);
    }

  private:
    std::uint32_t dst_;
};

} // namespace dataflow
} // namespace cereal

#endif // CEREAL_DATAFLOW_PARTITIONER_HH
