#include "dataflow/record.hh"

#include "heap/object.hh"
#include "sim/logging.hh"

namespace cereal {
namespace dataflow {

std::uint64_t
recordsChecksum(const std::vector<Record> &records)
{
    const std::uint64_t n = records.size();
    std::uint64_t h = hashBytes(&n, 8);
    for (const auto &r : records) {
        const std::uint64_t kl = r.key.size();
        const std::uint64_t vl = r.value.size();
        h = hashBytes(&kl, 8, h);
        h = hashBytes(r.key.data(), r.key.size(), h);
        h = hashBytes(&vl, 8, h);
        h = hashBytes(r.value.data(), r.value.size(), h);
    }
    return h;
}

RecordSchema
RecordSchema::install(KlassRegistry &reg)
{
    RecordSchema s;
    const KlassId existing = reg.idByName("dataflow.Record");
    if (existing != kBadKlassId) {
        s.record = existing;
    } else {
        s.record = reg.add("dataflow.Record",
                           {{"key", FieldType::Reference},
                            {"value", FieldType::Reference}});
    }
    s.byteArray = reg.arrayKlass(FieldType::Byte);
    s.recordArray = reg.arrayKlass(FieldType::Reference);
    return s;
}

namespace {

Addr
materializeBytes(Heap &heap, const std::vector<std::uint8_t> &bytes)
{
    const Addr arr = heap.allocateArray(FieldType::Byte, bytes.size());
    if (!bytes.empty()) {
        ObjectView v(heap, arr);
        heap.storeBytes(v.elemAddr(0), bytes.data(), bytes.size());
    }
    return arr;
}

std::vector<std::uint8_t>
readBytes(Heap &heap, Addr arr)
{
    ObjectView v(heap, arr);
    std::vector<std::uint8_t> out(v.length());
    if (!out.empty()) {
        heap.loadBytes(v.elemAddr(0), out.data(), out.size());
    }
    return out;
}

} // namespace

Addr
materializeBatch(Heap &heap, const RecordSchema &schema,
                 const std::vector<Record> &batch)
{
    const Addr root =
        heap.allocateArray(FieldType::Reference, batch.size());
    ObjectView rv(heap, root);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const Addr key = materializeBytes(heap, batch[i].key);
        const Addr value = materializeBytes(heap, batch[i].value);
        const Addr rec = heap.allocateInstance(schema.record);
        ObjectView r(heap, rec);
        r.setRef(0, key);
        r.setRef(1, value);
        rv.setRefElem(i, rec);
    }
    return root;
}

std::vector<Record>
readBatchGraph(Heap &heap, Addr root)
{
    ObjectView rv(heap, root);
    panic_if(!rv.isArray(), "batch root is not an array");
    std::vector<Record> out;
    out.reserve(rv.length());
    for (std::uint64_t i = 0; i < rv.length(); ++i) {
        const Addr rec = rv.getRefElem(i);
        panic_if(rec == 0, "null record in batch");
        ObjectView r(heap, rec);
        Record kv;
        kv.key = readBytes(heap, r.getRef(0));
        kv.value = readBytes(heap, r.getRef(1));
        out.push_back(std::move(kv));
    }
    return out;
}

namespace {

std::vector<std::uint8_t>
viewBytes(const HpsImage &img, std::uint64_t enc)
{
    std::uint64_t off = 0;
    panic_if(!HpsImage::refTarget(enc, &off),
             "null byte-array reference in record segment");
    const HpsImage::Segment &seg = img.at(off);
    // Array bodies carry the u64 element count, then packed elements.
    return std::vector<std::uint8_t>(seg.body + 8,
                                     seg.body + 8 + seg.count);
}

} // namespace

std::vector<Record>
readBatchViews(const HpsImage &img)
{
    const HpsImage::Segment &root = img.root();
    std::vector<Record> out;
    out.reserve(root.count);
    for (std::uint64_t i = 0; i < root.count; ++i) {
        std::uint64_t enc = 0;
        std::memcpy(&enc, root.body + 8 + i * 8, 8);
        std::uint64_t off = 0;
        panic_if(!HpsImage::refTarget(enc, &off),
                 "null record reference in batch root");
        const HpsImage::Segment &rec = img.at(off);
        Record kv;
        kv.key = viewBytes(img, img.fieldRaw(rec, 0));
        kv.value = viewBytes(img, img.fieldRaw(rec, 1));
        out.push_back(std::move(kv));
    }
    return out;
}

} // namespace dataflow
} // namespace cereal
