/**
 * @file
 * Memory/compute event sink used to time software serializers.
 *
 * Every software serializer in src/serde is functionally real — it
 * produces and parses actual byte streams. To *time* a run, a serializer
 * additionally narrates what a CPU implementation would do: loads and
 * stores with their addresses, and batches of plain ALU/branch work.
 * A MemSink consumes that narration online (no trace is buffered), so
 * the CPU timing model in src/cpu can replay it through a cache
 * hierarchy and DRAM as the serializer executes.
 *
 * Address-space convention: heap objects live at the heap's base, the
 * serialized stream is modelled at kStreamBase (sequential), and
 * serializer-private bookkeeping (hash tables of visited objects) at
 * kScratchBase.
 */

#ifndef CEREAL_SERDE_SINK_HH
#define CEREAL_SERDE_SINK_HH

#include <cstdint>

#include "sim/types.hh"

namespace cereal {

/** Simulated address where the serialized byte stream is buffered. */
constexpr Addr kStreamBase = 0x20'0000'0000ULL;

/** Simulated address of serializer-private scratch structures. */
constexpr Addr kScratchBase = 0x30'0000'0000ULL;

/** Online consumer of a serializer's memory/compute narration. */
class MemSink
{
  public:
    virtual ~MemSink() = default;

    /** A data load of @p bytes at @p addr. */
    virtual void load(Addr addr, std::uint32_t bytes) = 0;

    /** A data store of @p bytes at @p addr. */
    virtual void store(Addr addr, std::uint32_t bytes) = 0;

    /** @p ops units of non-memory work (ALU, branch, call overhead). */
    virtual void compute(std::uint64_t ops) = 0;

    /**
     * @p ops units of *straight-line* non-memory work: generated
     * serializer code with no per-field dispatch and perfectly
     * predictable branches (the plaincode backend). Timing models may
     * charge this below their branchy-dispatch base CPI; the default
     * treats it as plain compute.
     */
    virtual void computeStreamlined(std::uint64_t ops) { compute(ops); }

    /**
     * A *dependent* load: its address was produced by a just-loaded
     * value (pointer chasing during object-graph traversal), so no
     * other memory request can issue until it returns. Timing models
     * serialise on these; the default treats it as a plain load.
     */
    virtual void
    loadDep(Addr addr, std::uint32_t bytes)
    {
        load(addr, bytes);
    }

    /**
     * Phase annotation: the narration that follows belongs to the
     * serializer phase @p name — the paper's Fig. 2/3 taxonomy ("walk"
     * = graph traversal, "metadata" = class descriptors / type tables,
     * "copy" = field and array data movement, "patch" = reference
     * fix-ups) plus codec phases in the shuffle path ("compress",
     * "decompress", "checksum"). @p name must be a string literal.
     * Sinks that don't attribute time (counting, null) ignore it; the
     * CPU timing model turns consecutive phases into trace spans.
     */
    virtual void phase(const char *name) { (void)name; }
};

/** Sink that ignores everything (functional-only runs). */
class NullSink : public MemSink
{
  public:
    void load(Addr, std::uint32_t) override {}
    void store(Addr, std::uint32_t) override {}
    void compute(std::uint64_t) override {}
};

/** Sink that only counts traffic (tests and sanity checks). */
class CountingSink : public MemSink
{
  public:
    void
    load(Addr, std::uint32_t bytes) override
    {
        ++loads;
        loadBytes += bytes;
    }

    void
    store(Addr, std::uint32_t bytes) override
    {
        ++stores;
        storeBytes += bytes;
    }

    void compute(std::uint64_t ops) override { computeOps += ops; }

    void
    computeStreamlined(std::uint64_t ops) override
    {
        computeOps += ops;
        streamlinedOps += ops;
    }

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t loadBytes = 0;
    std::uint64_t storeBytes = 0;
    std::uint64_t computeOps = 0;
    /** Subset of computeOps narrated as straight-line generated code. */
    std::uint64_t streamlinedOps = 0;
};

} // namespace cereal

#endif // CEREAL_SERDE_SINK_HH
