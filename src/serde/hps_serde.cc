#include "serde/hps_serde.hh"

#include <cstring>
#include <deque>
#include <unordered_set>

#include "heap/object.hh"
#include "serde/bytes.hh"
#include "sim/logging.hh"

namespace cereal {

namespace {

constexpr std::uint32_t kMagic = 0x31535048; // "HPS1"

/** Region offset of the segment header (fixed stream header size). */
constexpr std::size_t kRegionAt = 16;

void
charge(MemSink *sink, std::uint64_t ops)
{
    if (sink) {
        sink->compute(ops);
    }
}

void
setPhase(MemSink *sink, const char *name)
{
    if (sink) {
        sink->phase(name);
    }
}

void
chargeProbe(MemSink *sink, const HpsSerdeCosts &costs, Addr key)
{
    if (!sink) {
        return;
    }
    sink->compute(costs.handleProbe);
    Addr bucket = kScratchBase + (key * 0x9e3779b97f4a7c15ULL) % (1 << 22);
    sink->load(roundDown(bucket, 8), 8);
}

std::uint64_t
encodeRef(std::uint64_t rel)
{
    return (rel << 1) | 1;
}

/** On-wire element width: references are tagged u64 tokens. */
unsigned
wireElemBytes(const KlassDescriptor &d)
{
    return d.elemType() == FieldType::Reference
               ? 8
               : fieldTypeBytes(d.elemType());
}

std::uint32_t
le32at(const std::vector<std::uint8_t> &buf, std::size_t at)
{
    std::uint32_t v;
    std::memcpy(&v, buf.data() + at, 4);
    return v;
}

std::uint64_t
le64at(const std::vector<std::uint8_t> &buf, std::size_t at)
{
    std::uint64_t v;
    std::memcpy(&v, buf.data() + at, 8);
    return v;
}

} // namespace

const HpsImage::Segment &
HpsImage::at(std::uint64_t off) const
{
    auto it = byOffset_.find(off);
    panic_if(it == byOffset_.end(),
             "no HPS segment at region offset %llu",
             (unsigned long long)off);
    return segments_[it->second];
}

std::uint64_t
HpsImage::fieldRaw(const Segment &s, std::uint64_t idx) const
{
    panic_if(idx >= s.count, "HPS field index %llu out of range",
             (unsigned long long)idx);
    std::uint64_t v;
    std::memcpy(&v, s.body + idx * 8, 8);
    return v;
}

bool
HpsImage::refTarget(std::uint64_t enc, std::uint64_t *off)
{
    if (enc == 0) {
        return false;
    }
    *off = enc >> 1;
    return true;
}

std::vector<std::uint8_t>
HpsSerializer::serialize(Heap &src, Addr root, MemSink *sink)
{
    ByteWriter w(sink);
    w.u32(kMagic);
    // Segment count and region length are patched after the walk.
    std::size_t count_at = w.size();
    w.u32(0);
    std::size_t len_at = w.size();
    w.u64(0);

    // Region offsets are assigned at first encounter: segment sizes
    // are a pure function of the class (and array length), so the
    // layout is known before the target segment is written.
    std::unordered_map<Addr, std::uint64_t> rel_of;
    std::deque<Addr> queue;
    std::uint64_t assigned_bytes = 0;

    std::unordered_map<KlassId, std::uint32_t> type_ids;
    std::vector<KlassId> type_table;

    auto seg_bytes_of = [&](Addr obj) -> std::uint64_t {
        ObjectView v(src, obj);
        const auto &d = v.klass();
        if (d.isArray()) {
            return 12 + v.length() * wireElemBytes(d);
        }
        return 4 + std::uint64_t{d.numFields()} * 8;
    };

    auto ref_rel = [&](Addr obj) -> std::uint64_t {
        panic_if(obj == 0, "ref_rel(null)");
        chargeProbe(sink, costs_, obj);
        auto it = rel_of.find(obj);
        if (it != rel_of.end()) {
            return it->second;
        }
        std::uint64_t rel = assigned_bytes;
        assigned_bytes += 4 + seg_bytes_of(obj);
        rel_of.emplace(obj, rel);
        queue.push_back(obj);
        return rel;
    };

    auto type_id_of = [&](KlassId id) -> std::uint32_t {
        auto it = type_ids.find(id);
        if (it != type_ids.end()) {
            return it->second;
        }
        auto tid = static_cast<std::uint32_t>(type_table.size());
        type_ids.emplace(id, tid);
        type_table.push_back(id);
        return tid;
    };

    auto ref_token = [&](Addr target) -> std::uint64_t {
        return target == 0 ? 0 : encodeRef(ref_rel(target));
    };

    // The emit loop both walks (pointer chase + layout probes) and
    // packs; attribute it to "copy" with the type table as "metadata".
    setPhase(sink, "copy");
    ref_rel(root);
    std::uint32_t seg_count = 0;
    while (!queue.empty()) {
        Addr obj = queue.front();
        queue.pop_front();
        ++seg_count;

        if (sink) {
            sink->loadDep(obj, 16); // header: resolve class
        }
        charge(sink, costs_.perSegment);

        ObjectView v(src, obj);
        const auto &d = v.klass();
        w.u32(static_cast<std::uint32_t>(seg_bytes_of(obj)));
        w.u32(type_id_of(v.klassId()));

        if (d.isArray()) {
            const std::uint64_t n = v.length();
            w.u64(n);
            if (d.elemType() == FieldType::Reference) {
                for (std::uint64_t i = 0; i < n; ++i) {
                    if (sink) {
                        sink->load(v.elemAddr(i), 8);
                    }
                    charge(sink, costs_.fieldCopy);
                    w.u64(ref_token(v.getRefElem(i)));
                }
            } else {
                const unsigned esz = fieldTypeBytes(d.elemType());
                const Addr bytes = n * esz;
                if (sink) {
                    sink->load(v.elemAddr(0), 0); // position marker
                    for (Addr off = 0; off < bytes; off += 64) {
                        auto chunk = static_cast<std::uint32_t>(
                            std::min<Addr>(64, bytes - off));
                        sink->load(v.elemAddr(0) + off, chunk);
                        sink->compute(costs_.bulkPerBlock);
                    }
                }
                std::vector<std::uint8_t> tmp(bytes);
                src.loadBytes(v.elemAddr(0), tmp.data(), bytes);
                w.raw(tmp.data(), bytes);
            }
            continue;
        }

        for (std::uint32_t i = 0; i < d.numFields(); ++i) {
            const auto &f = d.fields()[i];
            charge(sink, costs_.fieldCopy);
            if (sink) {
                sink->load(v.fieldAddr(i), 8);
            }
            if (f.type == FieldType::Reference) {
                w.u64(ref_token(v.getRef(i)));
            } else {
                w.u64(v.getRaw(i));
            }
        }
    }

    w.patchU32(count_at, seg_count);
    w.patchU32(len_at, static_cast<std::uint32_t>(assigned_bytes));
    w.patchU32(len_at + 4,
               static_cast<std::uint32_t>(assigned_bytes >> 32));

    // Trailing type table: id -> class name.
    setPhase(sink, "metadata");
    w.u32(static_cast<std::uint32_t>(type_table.size()));
    for (KlassId id : type_table) {
        const auto &d = src.registry().klass(id);
        w.str(d.name());
        charge(sink, d.name().size());
    }

    return w.take();
}

HpsImage
HpsSerializer::attach(const std::vector<std::uint8_t> &stream,
                      const KlassRegistry &reg, MemSink *sink) const
{
    ByteReader r(stream, sink);
    setPhase(sink, "metadata");
    decode_check(r.u32() == kMagic, DecodeStatus::BadMagic, 0,
                 "bad HPS stream magic");
    std::uint32_t seg_count = r.u32();
    std::uint64_t data_bytes = r.u64();
    decode_check(data_bytes <= r.remaining(), DecodeStatus::BadLength, 8,
                 "segment region (%llu B) exceeds stream (%zu B left)",
                 (unsigned long long)data_bytes, r.remaining());
    panic_if(r.pos() != kRegionAt, "HPS header layout drift");
    r.skip(data_bytes);

    // Trailing type table first: segment validation needs the classes.
    std::size_t count_at = r.pos();
    std::uint32_t type_count = r.u32();
    // Each table entry is at least a 2 B length prefix.
    decode_check(type_count <= r.remaining() / 2, DecodeStatus::BadLength,
                 count_at, "type table count %u exceeds remaining stream",
                 type_count);
    std::vector<KlassId> types(type_count);
    for (std::uint32_t i = 0; i < type_count; ++i) {
        std::size_t name_at = r.pos();
        std::string type_name = r.str();
        KlassId id = reg.idByName(type_name);
        decode_check(id != kBadKlassId, DecodeStatus::BadClass, name_at,
                     "unknown class '%s' in HPS stream",
                     type_name.c_str());
        types[i] = id;
        charge(sink, 2 * type_name.size());
    }
    decode_check(r.done(), DecodeStatus::Malformed, r.pos(),
                 "trailing bytes after HPS type table");

    // Single bounds-checked validation sweep over the segment region.
    // Only structural words are touched (length prefixes, type ids,
    // array counts, reference tokens) — primitive payload bytes are
    // never read, which is the zero-copy receive-side story.
    setPhase(sink, "walk");
    HpsImage image;
    std::unordered_set<std::uint64_t> starts;
    struct PendingRef
    {
        std::size_t at; // absolute stream offset (error reporting)
        std::uint64_t enc;
    };
    std::vector<PendingRef> refs;

    std::uint64_t off = 0;
    while (off < data_bytes) {
        const std::size_t seg_at = kRegionAt + off;
        const std::uint64_t avail = data_bytes - off;
        charge(sink, costs_.validatePerSegment);
        if (sink) {
            sink->load(kStreamBase + seg_at, 8);
        }
        decode_check(avail >= 8, DecodeStatus::Truncated, seg_at,
                     "segment prefix at +%llu overruns region",
                     (unsigned long long)off);
        std::uint64_t seg_bytes = le32at(stream, seg_at);
        decode_check(seg_bytes >= 4 && seg_bytes <= avail - 4,
                     DecodeStatus::BadLength, seg_at,
                     "segment length %llu at +%llu exceeds region",
                     (unsigned long long)seg_bytes,
                     (unsigned long long)off);
        std::uint32_t tid = le32at(stream, seg_at + 4);
        decode_check(tid < types.size(), DecodeStatus::BadClass,
                     seg_at + 4, "bad HPS type id %u at +%llu", tid,
                     (unsigned long long)off);
        KlassId id = types[tid];
        const auto &d = reg.klass(id);

        HpsImage::Segment seg;
        seg.offset = off;
        seg.klass = id;
        seg.body = stream.data() + seg_at + 8;
        seg.bodyBytes = static_cast<std::uint32_t>(seg_bytes - 4);

        if (d.isArray()) {
            decode_check(seg_bytes >= 12, DecodeStatus::Truncated,
                         seg_at, "array segment at +%llu lacks a count",
                         (unsigned long long)off);
            if (sink) {
                sink->load(kStreamBase + seg_at + 8, 8);
            }
            std::uint64_t n = le64at(stream, seg_at + 8);
            const unsigned esz = wireElemBytes(d);
            // Overflow-safe bound before the n * esz product.
            decode_check(n <= (seg_bytes - 12) / esz,
                         DecodeStatus::BadLength, seg_at + 8,
                         "array count %llu at +%llu exceeds segment",
                         (unsigned long long)n, (unsigned long long)off);
            decode_check(seg_bytes == 12 + n * esz,
                         DecodeStatus::Malformed, seg_at,
                         "array segment at +%llu: length %llu does not "
                         "match count %llu",
                         (unsigned long long)off,
                         (unsigned long long)seg_bytes,
                         (unsigned long long)n);
            seg.count = n;
            if (d.elemType() == FieldType::Reference) {
                // Elements follow the prefix, type id, and u64 count.
                for (std::uint64_t i = 0; i < n; ++i) {
                    const std::size_t at = seg_at + 16 + i * 8;
                    if (sink) {
                        sink->load(kStreamBase + at, 8);
                    }
                    refs.push_back({at, le64at(stream, at)});
                }
            }
        } else {
            const std::uint64_t want =
                4 + std::uint64_t{d.numFields()} * 8;
            decode_check(seg_bytes == want, DecodeStatus::Malformed,
                         seg_at,
                         "instance segment at +%llu: length %llu, class "
                         "'%s' wants %llu",
                         (unsigned long long)off,
                         (unsigned long long)seg_bytes,
                         d.name().c_str(), (unsigned long long)want);
            seg.count = d.numFields();
            for (std::uint32_t i = 0; i < d.numFields(); ++i) {
                if (d.fields()[i].type != FieldType::Reference) {
                    continue;
                }
                const std::size_t at = seg_at + 8 + std::size_t{i} * 8;
                if (sink) {
                    sink->load(kStreamBase + at, 8);
                }
                refs.push_back({at, le64at(stream, at)});
            }
        }

        image.byOffset_.emplace(off, image.segments_.size());
        image.segments_.push_back(seg);
        starts.insert(off);
        off += 4 + seg_bytes;
    }
    decode_check(image.segments_.size() == seg_count,
                 DecodeStatus::Malformed, 4,
                 "segment count %u does not match region (%zu found)",
                 seg_count, image.segments_.size());
    decode_check(!image.segments_.empty(), DecodeStatus::Malformed,
                 kRegionAt, "empty HPS stream (no segments)");

    // Deferred reference audit: every non-null token must be tagged and
    // land on a segment prefix.
    for (const auto &p : refs) {
        if (p.enc == 0) {
            continue;
        }
        charge(sink, costs_.validatePerRef);
        decode_check(p.enc & 1, DecodeStatus::Malformed, p.at,
                     "untagged non-null HPS reference %#llx",
                     (unsigned long long)p.enc);
        std::uint64_t rel = p.enc >> 1;
        decode_check(starts.count(rel) != 0, DecodeStatus::BadHandle,
                     p.at,
                     "reference offset +%llu is not a segment start",
                     (unsigned long long)rel);
    }

    return image;
}

Addr
HpsSerializer::deserialize(const std::vector<std::uint8_t> &stream,
                           Heap &dst, MemSink *sink)
{
    // The narrated work of an HPS receive is attach() alone; the heap
    // materialization below exists so the common Serializer round-trip
    // contract (and the cross-backend differential oracle) holds, and
    // is deliberately unnarrated — a real consumer reads the HpsImage
    // views in place.
    HpsImage image = attach(stream, dst.registry(), sink);

    std::unordered_map<std::uint64_t, Addr> addr_of;
    for (const auto &s : image.segments()) {
        const auto &d = dst.registry().klass(s.klass);
        Addr obj = d.isArray() ? dst.allocateArray(d.elemType(), s.count)
                               : dst.allocateInstance(s.klass);
        addr_of.emplace(s.offset, obj);
    }

    auto resolve = [&](std::uint64_t enc) -> Addr {
        std::uint64_t off;
        if (!HpsImage::refTarget(enc, &off)) {
            return 0;
        }
        return addr_of.at(off);
    };

    for (const auto &s : image.segments()) {
        const auto &d = dst.registry().klass(s.klass);
        ObjectView v(dst, addr_of.at(s.offset));
        if (d.isArray()) {
            if (d.elemType() == FieldType::Reference) {
                for (std::uint64_t i = 0; i < s.count; ++i) {
                    std::uint64_t enc;
                    std::memcpy(&enc, s.body + 8 + i * 8, 8);
                    v.setRefElem(i, resolve(enc));
                }
            } else if (s.count > 0) {
                const unsigned esz = fieldTypeBytes(d.elemType());
                dst.storeBytes(v.elemAddr(0), s.body + 8,
                               s.count * esz);
            }
        } else {
            for (std::uint32_t i = 0; i < d.numFields(); ++i) {
                std::uint64_t raw = image.fieldRaw(s, i);
                if (d.fields()[i].type == FieldType::Reference) {
                    v.setRef(i, resolve(raw));
                } else {
                    v.setRaw(i, raw);
                }
            }
        }
    }

    return addr_of.at(image.root().offset);
}

} // namespace cereal
