/**
 * @file
 * Typed, recoverable decode errors for the deserialization side.
 *
 * Every deserializer in this repo consumes bytes that, in the target
 * deployment, arrive off the wire — so malformed input is an expected
 * runtime condition, not a simulator bug. The decode contract is:
 *
 *  - decoders NEVER abort the process on malformed input; they throw a
 *    DecodeError carrying a status code and the stream offset at which
 *    the problem was detected;
 *  - Serializer::tryDeserialize() (and CerealContext::tryReadObject())
 *    wrap that into a DecodeResult for callers that prefer a value
 *    channel over exceptions;
 *  - all allocations a decoder performs are bounded by a small constant
 *    multiple of the input length, so hostile streams cannot cause
 *    unbounded allocation;
 *  - panic()/fatal() remain reserved for *internal* invariants and
 *    configuration errors that no byte stream can trigger.
 *
 * The destination heap may hold a partially reconstructed graph after a
 * failed decode; callers discard the heap, never the process.
 */

#ifndef CEREAL_SERDE_DECODE_ERROR_HH
#define CEREAL_SERDE_DECODE_ERROR_HH

#include <cstdarg>
#include <cstddef>
#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "sim/logging.hh"

namespace cereal {

/** Classification of a decode failure. */
enum class DecodeStatus : std::uint8_t
{
    /** Stream ended before a required field/section. */
    Truncated,
    /** Leading magic word does not identify this format. */
    BadMagic,
    /** Varint is overlong or overflows 64 bits. */
    BadVarint,
    /** Unknown record/type tag. */
    BadTag,
    /** Object handle / back-reference out of range. */
    BadHandle,
    /** Class id or class name unknown to the registry. */
    BadClass,
    /** A declared count/length cannot fit in the remaining bytes. */
    BadLength,
    /** Structurally inconsistent (section sizes, layout mismatch...). */
    Malformed,
};

/** Printable name of a DecodeStatus. */
inline const char *
decodeStatusName(DecodeStatus s)
{
    switch (s) {
      case DecodeStatus::Truncated: return "truncated";
      case DecodeStatus::BadMagic: return "bad-magic";
      case DecodeStatus::BadVarint: return "bad-varint";
      case DecodeStatus::BadTag: return "bad-tag";
      case DecodeStatus::BadHandle: return "bad-handle";
      case DecodeStatus::BadClass: return "bad-class";
      case DecodeStatus::BadLength: return "bad-length";
      case DecodeStatus::Malformed: return "malformed";
    }
    return "?";
}

/** Recoverable decode failure: status + stream offset + detail. */
class DecodeError : public std::exception
{
  public:
    DecodeError(DecodeStatus status, std::size_t offset,
                std::string message)
        : status_(status), offset_(offset), message_(std::move(message)),
          what_(strfmt("decode error (%s) at byte %zu: %s",
                       decodeStatusName(status), offset_,
                       message_.c_str()))
    {
    }

    DecodeStatus status() const { return status_; }

    /** Byte offset in the input at which the error was detected. */
    std::size_t offset() const { return offset_; }

    const std::string &message() const { return message_; }

    const char *what() const noexcept override { return what_.c_str(); }

  private:
    DecodeStatus status_;
    std::size_t offset_;
    std::string message_;
    std::string what_;
};

/** Throw a DecodeError with a printf-formatted message. */
[[noreturn]] inline void
throwDecode(DecodeStatus status, std::size_t offset, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    throw DecodeError(status, offset, std::move(msg));
}

/** throwDecode() unless @p cond holds (decode-side bounds checks). */
#define decode_check(cond, status, offset, ...)                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::cereal::throwDecode((status), (offset), __VA_ARGS__);         \
        }                                                                   \
    } while (0)

/**
 * Value-or-error result of a decode attempt (expected-style).
 *
 * @tparam T decoded value type (must be movable)
 */
template <typename T>
class DecodeResult
{
  public:
    DecodeResult(T value) : value_(std::move(value)) {}
    DecodeResult(DecodeError error) : error_(std::move(error)) {}

    bool ok() const { return !error_.has_value(); }
    explicit operator bool() const { return ok(); }

    const T &
    value() const
    {
        panic_if(!ok(), "DecodeResult::value() on error result: %s",
                 error_->what());
        return *value_;
    }

    T &
    value()
    {
        panic_if(!ok(), "DecodeResult::value() on error result: %s",
                 error_->what());
        return *value_;
    }

    const DecodeError &
    error() const
    {
        panic_if(ok(), "DecodeResult::error() on success result");
        return *error_;
    }

  private:
    std::optional<T> value_;
    std::optional<DecodeError> error_;
};

} // namespace cereal

#endif // CEREAL_SERDE_DECODE_ERROR_HH
