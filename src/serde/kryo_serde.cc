#include "serde/kryo_serde.hh"

#include <deque>

#include "heap/object.hh"
#include "serde/bytes.hh"
#include "sim/logging.hh"

namespace cereal {

namespace {

constexpr std::uint32_t kMagic = 0x4b52594f; // "KRYO"
constexpr std::uint64_t kNullRef = 0;

void
charge(MemSink *sink, std::uint64_t ops)
{
    if (sink) {
        sink->compute(ops);
    }
}

void
setPhase(MemSink *sink, const char *name)
{
    if (sink) {
        sink->phase(name);
    }
}

void
chargeProbe(MemSink *sink, const KryoSerdeCosts &costs, Addr key)
{
    if (!sink) {
        return;
    }
    sink->compute(costs.handleProbe);
    Addr bucket = kScratchBase + (key * 0x9e3779b97f4a7c15ULL) % (1 << 22);
    sink->load(roundDown(bucket, 8), 8);
}

/** Zig-zag a signed 64-bit slot so small negatives stay short. */
std::uint64_t
zigzag(std::uint64_t raw)
{
    auto s = static_cast<std::int64_t>(raw);
    return (static_cast<std::uint64_t>(s) << 1) ^
           static_cast<std::uint64_t>(s >> 63);
}

std::uint64_t
unzigzag(std::uint64_t z)
{
    return (z >> 1) ^ (~(z & 1) + 1);
}

} // namespace

void
KryoSerializer::registerClass(KlassId id)
{
    if (toKryoId_.count(id)) {
        return;
    }
    auto kryo_id = static_cast<std::uint32_t>(fromKryoId_.size());
    toKryoId_.emplace(id, kryo_id);
    fromKryoId_.push_back(id);
}

void
KryoSerializer::registerAll(const KlassRegistry &reg)
{
    for (KlassId id = 0; id < reg.size(); ++id) {
        registerClass(id);
    }
}

std::uint32_t
KryoSerializer::kryoIdOf(KlassId id) const
{
    auto it = toKryoId_.find(id);
    fatal_if(it == toKryoId_.end(),
             "class id %u not registered with Kryo; call registerClass()",
             id);
    return it->second;
}

std::vector<std::uint8_t>
KryoSerializer::serialize(Heap &src, Addr root, MemSink *sink)
{
    ByteWriter w(sink);
    w.u32(kMagic);

    std::unordered_map<Addr, std::uint64_t> handles;
    std::deque<Addr> queue;

    // Reference encoding: 0 = null, otherwise handle+1 as varint.
    auto ref_token = [&](Addr obj) -> std::uint64_t {
        if (obj == 0) {
            return kNullRef;
        }
        chargeProbe(sink, costs_, obj);
        auto it = handles.find(obj);
        if (it != handles.end()) {
            return it->second + 1;
        }
        std::uint64_t h = handles.size();
        handles.emplace(obj, h);
        queue.push_back(obj);
        return h + 1;
    };

    setPhase(sink, "walk");
    ref_token(root);
    while (!queue.empty()) {
        Addr obj = queue.front();
        queue.pop_front();

        setPhase(sink, "walk");
        if (sink) {
            sink->loadDep(obj, 16); // header: resolve class (pointer chase)
        }
        charge(sink, costs_.perObject);

        ObjectView v(src, obj);
        const auto &d = v.klass();
        w.u32(kryoIdOf(v.klassId()));

        if (d.isArray()) {
            setPhase(sink, "copy");
            const std::uint64_t n = v.length();
            charge(sink, costs_.varint);
            w.varint(n);
            if (d.elemType() == FieldType::Reference) {
                for (std::uint64_t i = 0; i < n; ++i) {
                    if (sink) {
                        sink->load(v.elemAddr(i), 8);
                    }
                    charge(sink, costs_.varint);
                    w.varint(ref_token(v.getRefElem(i)));
                }
            } else {
                // Bulk fast path: copy the backing store as raw bytes.
                const unsigned esz = fieldTypeBytes(d.elemType());
                const Addr bytes = n * esz;
                if (sink) {
                    sink->load(v.elemAddr(0), 0); // position marker
                    for (Addr off = 0; off < bytes; off += 64) {
                        std::uint32_t chunk = static_cast<std::uint32_t>(
                            std::min<Addr>(64, bytes - off));
                        sink->load(v.elemAddr(0) + off, chunk);
                        sink->compute(costs_.bulkPerBlock);
                    }
                }
                std::vector<std::uint8_t> tmp(bytes);
                src.loadBytes(v.elemAddr(0), tmp.data(), bytes);
                w.raw(tmp.data(), bytes);
            }
            continue;
        }

        // Null-check byte present on every object record (Figure 1c).
        setPhase(sink, "copy");
        w.u8(1);
        for (std::uint32_t i = 0; i < d.numFields(); ++i) {
            const auto &f = d.fields()[i];
            charge(sink, costs_.fieldGet);
            if (sink) {
                sink->load(v.fieldAddr(i), 8);
            }
            switch (f.type) {
              case FieldType::Reference:
                charge(sink, costs_.varint);
                w.varint(ref_token(v.getRef(i)));
                break;
              case FieldType::Int:
              case FieldType::Long:
              case FieldType::Short:
                charge(sink, costs_.varint);
                w.varint(zigzag(v.getRaw(i)));
                break;
              default: {
                std::uint64_t raw = v.getRaw(i);
                w.raw(&raw, fieldTypeBytes(f.type));
                break;
              }
            }
        }
    }

    return w.take();
}

Addr
KryoSerializer::deserialize(const std::vector<std::uint8_t> &stream,
                            Heap &dst, MemSink *sink)
{
    ByteReader r(stream, sink);
    decode_check(r.u32() == kMagic, DecodeStatus::BadMagic, 0,
                 "bad Kryo stream magic");

    std::vector<Addr> handles;
    struct Patch
    {
        Addr slotAddr;
        std::uint64_t token;
    };
    std::vector<Patch> patches;

    while (!r.done()) {
        setPhase(sink, "walk");
        charge(sink, costs_.perObject);
        std::size_t id_at = r.pos();
        std::uint32_t kryo_id = r.u32();
        decode_check(kryo_id < fromKryoId_.size(), DecodeStatus::BadClass,
                     id_at, "unregistered Kryo class id %u (%zu known)",
                     kryo_id, fromKryoId_.size());
        // Class-ID table lookup (a flat array in Kryo).
        charge(sink, 4);
        if (sink) {
            sink->load(kScratchBase + kryo_id * 8, 8);
        }
        KlassId id = fromKryoId_[kryo_id];
        const auto &d = dst.registry().klass(id);

        if (d.isArray()) {
            charge(sink, costs_.varint);
            std::size_t len_at = r.pos();
            std::uint64_t n = r.varint();
            // Allocation cap: each element owes at least one stream byte
            // (a varint per reference, the element size otherwise), so
            // bound the count by remaining() before allocating and
            // before the n * esz products below can overflow.
            const unsigned wire_esz =
                d.elemType() == FieldType::Reference
                    ? 1
                    : fieldTypeBytes(d.elemType());
            decode_check(n <= r.remaining() / wire_esz,
                         DecodeStatus::BadLength, len_at,
                         "array length %llu exceeds remaining stream",
                         (unsigned long long)n);
            setPhase(sink, "copy");
            charge(sink, costs_.alloc);
            Addr obj = dst.allocateArray(d.elemType(), n);
            if (sink) {
                sink->store(obj, 24);
            }
            handles.push_back(obj);
            ObjectView v(dst, obj);
            if (d.elemType() == FieldType::Reference) {
                for (std::uint64_t i = 0; i < n; ++i) {
                    charge(sink, costs_.varint);
                    patches.push_back({v.elemAddr(i), r.varint()});
                }
            } else {
                const unsigned esz = fieldTypeBytes(d.elemType());
                const Addr bytes = n * esz;
                std::vector<std::uint8_t> tmp(bytes);
                r.raw(tmp.data(), bytes);
                dst.storeBytes(v.elemAddr(0), tmp.data(), bytes);
                if (sink) {
                    for (Addr off = 0; off < bytes; off += 64) {
                        std::uint32_t chunk = static_cast<std::uint32_t>(
                            std::min<Addr>(64, bytes - off));
                        sink->store(v.elemAddr(0) + off, chunk);
                        sink->compute(costs_.bulkPerBlock);
                    }
                }
            }
            continue;
        }

        decode_check(r.u8() == 1, DecodeStatus::Malformed, r.pos(),
                     "unexpected null-check byte");
        setPhase(sink, "copy");
        charge(sink, costs_.alloc);
        Addr obj = dst.allocateInstance(id);
        if (sink) {
            sink->store(obj, 16);
        }
        handles.push_back(obj);
        ObjectView v(dst, obj);
        for (std::uint32_t i = 0; i < d.numFields(); ++i) {
            const auto &f = d.fields()[i];
            charge(sink, costs_.fieldSet);
            switch (f.type) {
              case FieldType::Reference:
                charge(sink, costs_.varint);
                patches.push_back({v.fieldAddr(i), r.varint()});
                break;
              case FieldType::Int:
              case FieldType::Long:
              case FieldType::Short:
                charge(sink, costs_.varint);
                v.setRaw(i, unzigzag(r.varint()));
                break;
              default: {
                std::uint64_t raw = 0;
                r.raw(&raw, fieldTypeBytes(f.type));
                v.setRaw(i, raw);
                break;
              }
            }
            if (sink) {
                sink->store(v.fieldAddr(i), 8);
            }
        }
    }

    setPhase(sink, "patch");
    for (const auto &p : patches) {
        charge(sink, 3);
        Addr target = 0;
        if (p.token != kNullRef) {
            decode_check(p.token - 1 < handles.size(),
                         DecodeStatus::BadHandle, r.pos(),
                         "Kryo ref token %llu out of range (%zu objects)",
                         (unsigned long long)p.token, handles.size());
            target = handles[p.token - 1];
        }
        dst.store64(p.slotAddr, target);
        if (sink) {
            sink->store(p.slotAddr, 8);
        }
    }

    decode_check(!handles.empty(), DecodeStatus::Malformed, r.pos(),
                 "empty Kryo stream (no object records)");
    return handles[0];
}

} // namespace cereal
