/**
 * @file
 * Common interface for all serializers (software baselines and Cereal's
 * functional format implementation).
 *
 * A serializer converts the object graph rooted at some heap object into
 * a byte stream, and reconstructs an isomorphic graph from that stream
 * into a (typically different) heap. Both directions optionally narrate
 * their memory behaviour to a MemSink for timing.
 */

#ifndef CEREAL_SERDE_SERIALIZER_HH
#define CEREAL_SERDE_SERIALIZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "heap/heap.hh"
#include "serde/decode_error.hh"
#include "serde/sink.hh"

namespace cereal {

/** Abstract serializer/deserializer pair. */
class Serializer
{
  public:
    virtual ~Serializer() = default;

    /** Human-readable library name ("java", "kryo", "skyway", ...). */
    virtual std::string name() const = 0;

    /**
     * Serialize the graph rooted at @p root in @p src.
     * @param sink optional timing narration target
     */
    virtual std::vector<std::uint8_t>
    serialize(Heap &src, Addr root, MemSink *sink = nullptr) = 0;

    /**
     * Reconstruct the graph from @p stream into @p dst.
     *
     * Error contract: arbitrary (malformed, truncated, hostile) input
     * must never abort the process, read/write out of bounds, or
     * allocate more than a small constant multiple of the stream size —
     * every implementation validates structure as it decodes and throws
     * DecodeError on the first violation. On failure @p dst may hold a
     * partially reconstructed graph; discard the heap, not the process.
     *
     * @return the address of the new root object
     * @throws DecodeError on malformed input
     */
    virtual Addr
    deserialize(const std::vector<std::uint8_t> &stream, Heap &dst,
                MemSink *sink = nullptr) = 0;

    /**
     * Exception-free decode: wraps deserialize() and converts a thrown
     * DecodeError into the error arm of a DecodeResult.
     */
    DecodeResult<Addr>
    tryDeserialize(const std::vector<std::uint8_t> &stream, Heap &dst,
                   MemSink *sink = nullptr)
    {
        try {
            return deserialize(stream, dst, sink);
        } catch (const DecodeError &e) {
            return e;
        }
    }

    /**
     * Exception-free encode, symmetric to tryDeserialize(): a
     * serializer walking a heap that was itself reconstructed from
     * untrusted bytes (the fuzzer's round-trip oracle, a node
     * re-encoding a relayed partition) can hit the same structural
     * violations decoding can, and reports them the same way.
     */
    DecodeResult<std::vector<std::uint8_t>>
    trySerialize(Heap &src, Addr root, MemSink *sink = nullptr)
    {
        try {
            return serialize(src, root, sink);
        } catch (const DecodeError &e) {
            return e;
        }
    }
};

} // namespace cereal

#endif // CEREAL_SERDE_SERIALIZER_HH
