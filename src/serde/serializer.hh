/**
 * @file
 * Common interface for all serializers (software baselines and Cereal's
 * functional format implementation).
 *
 * A serializer converts the object graph rooted at some heap object into
 * a byte stream, and reconstructs an isomorphic graph from that stream
 * into a (typically different) heap. Both directions optionally narrate
 * their memory behaviour to a MemSink for timing.
 */

#ifndef CEREAL_SERDE_SERIALIZER_HH
#define CEREAL_SERDE_SERIALIZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "heap/heap.hh"
#include "serde/sink.hh"

namespace cereal {

/** Abstract serializer/deserializer pair. */
class Serializer
{
  public:
    virtual ~Serializer() = default;

    /** Human-readable library name ("java", "kryo", "skyway", ...). */
    virtual std::string name() const = 0;

    /**
     * Serialize the graph rooted at @p root in @p src.
     * @param sink optional timing narration target
     */
    virtual std::vector<std::uint8_t>
    serialize(Heap &src, Addr root, MemSink *sink = nullptr) = 0;

    /**
     * Reconstruct the graph from @p stream into @p dst.
     * @return the address of the new root object
     */
    virtual Addr
    deserialize(const std::vector<std::uint8_t> &stream, Heap &dst,
                MemSink *sink = nullptr) = 0;
};

} // namespace cereal

#endif // CEREAL_SERDE_SERIALIZER_HH
