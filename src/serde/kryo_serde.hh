/**
 * @file
 * Model of the Kryo serializer (EsotericSoftware/kryo, v4 behaviour).
 *
 * Captures the optimisations the paper credits Kryo with (Section II,
 * Figure 1c):
 *  - *integer class numbering*: every class is pre-registered and is
 *    identified in the stream by a 4 B class ID — no type strings;
 *  - field access through generated accessors (ReflectASM), an order of
 *    magnitude cheaper than java.lang.reflect;
 *  - variable-length encoding of int/long field values;
 *  - bulk fast paths for primitive arrays;
 *  - reference resolver (handles) so shared objects serialize once.
 *
 * Classes must be registered (registerClass) on both the serializing and
 * deserializing side with identical ordering, mirroring Kryo's manual
 * type-registration burden.
 */

#ifndef CEREAL_SERDE_KRYO_SERDE_HH
#define CEREAL_SERDE_KRYO_SERDE_HH

#include <unordered_map>
#include <vector>

#include "serde/serializer.hh"

namespace cereal {

/** Tunable compute-cost constants for the Kryo model (op units). */
struct KryoSerdeCosts
{
    /** Generated-accessor field read (ReflectASM). */
    std::uint64_t fieldGet = 14;
    /** Generated-accessor field write. */
    std::uint64_t fieldSet = 18;
    /** Varint encode/decode of one value. */
    std::uint64_t varint = 8;
    /** Reference-resolver probe (IdentityObjectIntMap). */
    std::uint64_t handleProbe = 30;
    /** Object allocation on deserialize (no constructor, TLAB bump). */
    std::uint64_t alloc = 40;
    /** Fixed per-object overhead (write/read dispatch). */
    std::uint64_t perObject = 45;
    /** Per-64 B block cost of primitive-array bulk copies. */
    std::uint64_t bulkPerBlock = 8;
};

/** The Kryo serializer model. */
class KryoSerializer : public Serializer
{
  public:
    explicit KryoSerializer(KryoSerdeCosts costs = KryoSerdeCosts())
        : costs_(costs)
    {
    }

    std::string name() const override { return "kryo"; }

    /**
     * Register @p id for serialization; assigns the next dense Kryo
     * class ID. Must be called in the same order on both sides.
     */
    void registerClass(KlassId id);

    /** Register every class currently in @p reg (tests/benches). */
    void registerAll(const KlassRegistry &reg);

    std::vector<std::uint8_t>
    serialize(Heap &src, Addr root, MemSink *sink = nullptr) override;

    Addr deserialize(const std::vector<std::uint8_t> &stream, Heap &dst,
                     MemSink *sink = nullptr) override;

  private:
    std::uint32_t kryoIdOf(KlassId id) const;

    KryoSerdeCosts costs_;
    std::unordered_map<KlassId, std::uint32_t> toKryoId_;
    std::vector<KlassId> fromKryoId_;
};

} // namespace cereal

#endif // CEREAL_SERDE_KRYO_SERDE_HH
