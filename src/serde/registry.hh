/**
 * @file
 * The one place backend name strings are interpreted.
 *
 * Every subsystem that picks a serializer by name — the cluster node
 * profiler, the fuzzer's format pool and corpus seeder, the benches —
 * goes through this registry instead of keeping its own switch/if
 * chain. The table is ordered by on-wire format id (the byte the
 * cluster frame header carries), so iterating backends() doubles as
 * iterating format ids, and adding a backend is a one-line change
 * here rather than a scavenger hunt.
 *
 * Header-only on purpose: the registry constructs CerealSerializer,
 * which lives in the cereal library above serde; a registry .cc inside
 * cereal_serde would invert the link order.
 */

#ifndef CEREAL_SERDE_REGISTRY_HH
#define CEREAL_SERDE_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "cereal/cereal_serializer.hh"
#include "serde/hps_serde.hh"
#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "serde/plaincode_serde.hh"
#include "serde/serializer.hh"
#include "serde/skyway_serde.hh"
#include "sim/logging.hh"

namespace cereal {
namespace serde {

/** One serializer backend the simulator models. */
struct BackendInfo
{
    /** Canonical name ("java", "kryo", ..., "plaincode", "hps"). */
    const char *name;
    /** On-wire format id (cluster frame header byte). */
    std::uint8_t formatId;
    /** Needs KlassRegistry-driven class registration before use. */
    bool needsRegistration;
    /**
     * Timed on the Cereal accelerator device model rather than the
     * CPU core model.
     */
    bool accelerated;
    /**
     * Decode returns validated views into the wire buffer instead of
     * materializing a heap graph; consumers read the stream in place,
     * so the payload must travel uncompressed.
     */
    bool zeroCopy;
    /**
     * Shuffle payloads go through the LZ codec on the wire. Packed
     * formats (cereal's accelerator output, hps's view region) travel
     * verbatim: the packing already plays the codec's role, and for
     * zero-copy formats a decompress would force the copy the format
     * exists to avoid.
     */
    bool lzOnWire;
};

/** All backends, ordered by format id. */
inline const std::vector<BackendInfo> &
backends()
{
    // name, format id, needsRegistration, accelerated, zeroCopy,
    // lzOnWire. These traits are the *only* place backend behaviour
    // differences live; cluster/dataflow code dispatches on them
    // instead of naming backends.
    static const std::vector<BackendInfo> table = {
        {"java", 0, false, false, false, true},
        {"kryo", 1, true, false, false, true},
        {"skyway", 2, false, false, false, true},
        {"cereal", 3, true, true, false, false},
        {"plaincode", 4, false, false, false, true},
        {"hps", 5, false, false, true, false},
    };
    return table;
}

/** Backend named @p name, or nullptr. */
inline const BackendInfo *
findBackend(const std::string &name)
{
    for (const auto &b : backends()) {
        if (name == b.name) {
            return &b;
        }
    }
    return nullptr;
}

/** Backend with on-wire @p format_id, or nullptr. */
inline const BackendInfo *
findBackendByFormat(std::uint8_t format_id)
{
    for (const auto &b : backends()) {
        if (b.formatId == format_id) {
            return &b;
        }
    }
    return nullptr;
}

/** Canonical backend names, in format-id order. */
inline std::vector<std::string>
availableBackends()
{
    std::vector<std::string> names;
    names.reserve(backends().size());
    for (const auto &b : backends()) {
        names.push_back(b.name);
    }
    return names;
}

/**
 * Construct the serializer called @p name (fatal on unknown names —
 * callers validate user input with findBackend() first). Backends
 * whose protocol requires pre-registered classes (kryo's dense class
 * ids, cereal's Klass Pointer Table) register every class of @p reg;
 * passing no registry for those backends yields a serializer that only
 * handles already-registered (i.e. no) classes, which is almost never
 * what a caller wants — hence the fatal_if.
 */
inline std::unique_ptr<Serializer>
makeSerializer(const std::string &name, const KlassRegistry *reg = nullptr)
{
    const BackendInfo *info = findBackend(name);
    fatal_if(info == nullptr, "unknown serializer backend '%s'",
             name.c_str());
    fatal_if(info->needsRegistration && reg == nullptr,
             "backend '%s' needs a KlassRegistry to register classes",
             name.c_str());
    switch (info->formatId) {
      case 0:
        return std::make_unique<JavaSerializer>();
      case 1: {
          auto ser = std::make_unique<KryoSerializer>();
          ser->registerAll(*reg);
          return ser;
      }
      case 2:
        return std::make_unique<SkywaySerializer>();
      case 3: {
          auto ser = std::make_unique<CerealSerializer>();
          ser->registerAll(*reg);
          return ser;
      }
      case 4:
        return std::make_unique<PlaincodeSerializer>();
      case 5:
        return std::make_unique<HpsSerializer>();
    }
    panic("backend table out of sync with makeSerializer()");
}

} // namespace serde
} // namespace cereal

#endif // CEREAL_SERDE_REGISTRY_HH
