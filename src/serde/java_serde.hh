/**
 * @file
 * Model of the Java built-in serializer (java.io.ObjectOutputStream).
 *
 * Reproduces the cost structure described in the paper's Sections II-III
 * and Figure 1(b):
 *  - class metadata is embedded as *strings* (class name, every field
 *    name, field type tags) the first time a class appears; later
 *    occurrences use a 4 B class handle;
 *  - field values are extracted/installed through java.lang.reflect,
 *    which performs string-keyed lookups — modelled as per-byte string
 *    hashing plus hash-table probes in scratch memory, the dominant
 *    compute cost;
 *  - shared objects are written once and referenced by object handles.
 *
 * Encoding detail that intentionally differs from the JDK: objects are
 * emitted as a flat sequence of records in depth-first discovery order
 * with all references encoded as handles, rather than nesting child
 * records inside parent field data. This keeps deep graphs (2 M-node
 * lists) off the host call stack; the byte volume and per-field work —
 * what the timing model consumes — match the nested encoding.
 */

#ifndef CEREAL_SERDE_JAVA_SERDE_HH
#define CEREAL_SERDE_JAVA_SERDE_HH

#include "serde/serializer.hh"

namespace cereal {

/**
 * Tunable compute-cost constants for the Java S/D model (op units).
 *
 * Serialization and deserialization are costed separately because the
 * JDK's ObjectInputStream is far more expensive than its
 * ObjectOutputStream: reading an object runs class-descriptor
 * validation, serialVersionUID and security checks, reflective
 * allocation, and string-matched field resolution per object — the
 * behaviour behind the paper's 52x Kryo-over-Java deserialization gap
 * (Figure 10).
 */
struct JavaSerdeCosts
{
    /** Field/Class lookup through java.lang.reflect (per call), ser. */
    std::uint64_t reflectLookup = 90;
    /** Field.get() on a resolved Field object. */
    std::uint64_t reflectGet = 60;
    /** Field.set() on a resolved Field object. */
    std::uint64_t reflectSet = 80;
    /** String hashing/matching, per byte. */
    std::uint64_t stringOpPerByte = 2;
    /** Object allocation + constructor bypass on deserialize. */
    std::uint64_t alloc = 90;
    /** Handle hash-table probe (IdentityHashMap-like). */
    std::uint64_t handleProbe = 35;
    /** Fixed per-object record overhead, serialization. */
    std::uint64_t perObject = 100;
    /** Fixed per-primitive-array-element overhead (DataOutput calls). */
    std::uint64_t perElement = 6;
    /**
     * Fixed per-object overhead on deserialization: readObject0
     * dispatch, descriptor validation, handle bookkeeping, reflective
     * newInstance, and the associated security checks.
     */
    std::uint64_t deserPerObject = 5000;
    /**
     * Per-field overhead on deserialization: matching the stream field
     * against the runtime class's field table by name and installing
     * it reflectively.
     */
    std::uint64_t deserPerField = 900;
};

/** The Java built-in serializer model. */
class JavaSerializer : public Serializer
{
  public:
    explicit JavaSerializer(JavaSerdeCosts costs = JavaSerdeCosts())
        : costs_(costs)
    {
    }

    std::string name() const override { return "java"; }

    std::vector<std::uint8_t>
    serialize(Heap &src, Addr root, MemSink *sink = nullptr) override;

    Addr deserialize(const std::vector<std::uint8_t> &stream, Heap &dst,
                     MemSink *sink = nullptr) override;

  private:
    JavaSerdeCosts costs_;
};

} // namespace cereal

#endif // CEREAL_SERDE_JAVA_SERDE_HH
