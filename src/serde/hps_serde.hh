/**
 * @file
 * Model of an HPS-style zero-copy serializer ("HPS: A C++11 High
 * Performance Serialization Library", cf. PAPERS.md).
 *
 * HPS writes the object graph as one contiguous buffer of
 * length-prefixed segments whose references are *relative offsets*
 * into the same buffer. Decoding therefore never reconstructs a heap
 * graph: a single bounds-checked validation pass proves the buffer is
 * well-formed, and the application then reads *views* into the wire
 * bytes in place. The receive-side cost is O(segments) validation —
 * no allocation, no copy, no reference patching.
 *
 * Wire layout (all little-endian):
 *   u32 magic "HPS1"
 *   u32 segment_count        (patched after the walk)
 *   u64 data_bytes           (segment-region length, patched)
 *   segment region: per object, in BFS discovery order:
 *     u32 seg_bytes          (body length)
 *     u32 type_id            (index into the trailing type table)
 *     instance: one packed u64 per field
 *               (references: 0 = null, else (rel_offset << 1) | 1,
 *                rel_offset = target segment's prefix offset within
 *                the region)
 *     array:    u64 elem_count, then packed elements (references as
 *               tagged u64 tokens, primitives at natural width)
 *   u32 type_count, then u16-length-prefixed class names
 *
 * The Serializer-interface deserialize() narrates *only* the attach /
 * validation sweep to the MemSink — that is the modelled receive cost
 * of a zero-copy format — and then materializes a heap graph
 * functionally (unnarrated) so the round-trip isomorphism oracle and
 * the cross-backend differential suites apply unchanged. HpsImage is
 * the real zero-copy surface: its accessors return pointers into the
 * caller's wire buffer.
 */

#ifndef CEREAL_SERDE_HPS_SERDE_HH
#define CEREAL_SERDE_HPS_SERDE_HH

#include <unordered_map>
#include <vector>

#include "serde/serializer.hh"

namespace cereal {

/** Tunable compute-cost constants for the HPS model (op units). */
struct HpsSerdeCosts
{
    /** Per-segment emit overhead (length prefix + type id). */
    std::uint64_t perSegment = 14;
    /** Offset-assignment probe during layout (visited table). */
    std::uint64_t handleProbe = 26;
    /** Packed move of one field / array element on serialize. */
    std::uint64_t fieldCopy = 3;
    /** Per-64 B block cost of bulk element copies. */
    std::uint64_t bulkPerBlock = 4;
    /** Validation: per-segment bounds + type check on attach. */
    std::uint64_t validatePerSegment = 12;
    /** Validation: per-reference target-membership check. */
    std::uint64_t validatePerRef = 4;
};

/**
 * A validated zero-copy view over an HPS wire buffer. Constructed by
 * HpsSerializer::attach(); all pointers alias the caller's stream (the
 * stream must outlive the image). Offsets identify segments by the
 * position of their u32 length prefix within the segment region;
 * offset 0 is the root.
 */
class HpsImage
{
  public:
    struct Segment
    {
        /** Prefix offset within the segment region (stable ref id). */
        std::uint64_t offset;
        KlassId klass;
        /** Element count (arrays) or field count (instances). */
        std::uint64_t count;
        /** Body bytes, aliasing the wire buffer (after the type id). */
        const std::uint8_t *body;
        /** Body length in bytes, type id excluded. */
        std::uint32_t bodyBytes;
    };

    const std::vector<Segment> &segments() const { return segments_; }

    /** The root object is the first segment laid out. */
    const Segment &root() const { return segments_.front(); }

    /** Segment whose prefix lives at region offset @p off (must exist). */
    const Segment &at(std::uint64_t off) const;

    /** Packed u64 slot @p idx of an instance segment. */
    std::uint64_t fieldRaw(const Segment &s, std::uint64_t idx) const;

    /**
     * Decode a reference slot value: true and sets @p off on a non-null
     * reference, false on null.
     */
    static bool refTarget(std::uint64_t enc, std::uint64_t *off);

  private:
    friend class HpsSerializer;

    std::vector<Segment> segments_;
    std::unordered_map<std::uint64_t, std::size_t> byOffset_;
};

/** The HPS zero-copy serializer model (format id 5). */
class HpsSerializer : public Serializer
{
  public:
    explicit HpsSerializer(HpsSerdeCosts costs = HpsSerdeCosts())
        : costs_(costs)
    {
    }

    std::string name() const override { return "hps"; }

    std::vector<std::uint8_t>
    serialize(Heap &src, Addr root, MemSink *sink = nullptr) override;

    Addr deserialize(const std::vector<std::uint8_t> &stream, Heap &dst,
                     MemSink *sink = nullptr) override;

    /**
     * Validate @p stream against @p reg and return the zero-copy image
     * (throws DecodeError on malformed input). This is the entire
     * receive-side work of the format; @p sink sees exactly this pass.
     */
    HpsImage attach(const std::vector<std::uint8_t> &stream,
                    const KlassRegistry &reg,
                    MemSink *sink = nullptr) const;

  private:
    HpsSerdeCosts costs_;
};

} // namespace cereal

#endif // CEREAL_SERDE_HPS_SERDE_HH
