#include "serde/skyway_serde.hh"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "heap/object.hh"
#include "serde/bytes.hh"
#include "sim/logging.hh"

namespace cereal {

namespace {

constexpr std::uint32_t kMagic = 0x534b5957; // "SKYW"

void
charge(MemSink *sink, std::uint64_t ops)
{
    if (sink) {
        sink->compute(ops);
    }
}

void
setPhase(MemSink *sink, const char *name)
{
    if (sink) {
        sink->phase(name);
    }
}

void
chargeProbe(MemSink *sink, const SkywaySerdeCosts &costs, Addr key)
{
    if (!sink) {
        return;
    }
    sink->compute(costs.handleProbe);
    Addr bucket = kScratchBase + (key * 0x9e3779b97f4a7c15ULL) % (1 << 22);
    sink->load(roundDown(bucket, 8), 8);
}

/** Encode a reference slot: null stays 0, else tagged relative offset. */
std::uint64_t
encodeRef(std::uint64_t rel)
{
    return (rel << 1) | 1;
}

} // namespace

std::vector<std::uint8_t>
SkywaySerializer::serialize(Heap &src, Addr root, MemSink *sink)
{
    ByteWriter w(sink);
    w.u32(kMagic);

    // Relative addresses are assigned at first encounter: the stream
    // data section is laid out in BFS discovery order.
    std::unordered_map<Addr, std::uint64_t> rel_of;
    std::deque<Addr> queue;
    std::uint64_t assigned_bytes = 0;

    std::unordered_map<KlassId, std::uint32_t> type_ids;
    std::vector<KlassId> type_table;

    auto ref_rel = [&](Addr obj) -> std::uint64_t {
        panic_if(obj == 0, "ref_rel(null)");
        chargeProbe(sink, costs_, obj);
        auto it = rel_of.find(obj);
        if (it != rel_of.end()) {
            return it->second;
        }
        std::uint64_t rel = assigned_bytes;
        assigned_bytes += src.objectBytes(obj);
        rel_of.emplace(obj, rel);
        queue.push_back(obj);
        return rel;
    };

    auto type_id_of = [&](KlassId id) -> std::uint32_t {
        auto it = type_ids.find(id);
        if (it != type_ids.end()) {
            return it->second;
        }
        // Automatic type registration: first encounter assigns an ID.
        auto tid = static_cast<std::uint32_t>(type_table.size());
        type_ids.emplace(id, tid);
        type_table.push_back(id);
        return tid;
    };

    // Reserve the data-section length; patched once known.
    std::size_t len_at = w.size();
    w.u64(0);

    // Skyway is a copy machine: the slot loop below both walks (the
    // first-word pointer chase + ref_rel probes) and copies; attribute
    // it to "copy", with the trailing type table as "metadata".
    setPhase(sink, "copy");
    ref_rel(root);
    while (!queue.empty()) {
        Addr obj = queue.front();
        queue.pop_front();
        charge(sink, costs_.perObject);

        ObjectView v(src, obj);
        const unsigned slots = v.slots();
        const auto bitmap = src.instanceBitmap(obj);
        const unsigned header_slots = src.registry().headerSlots();

        for (unsigned s = 0; s < slots; ++s) {
            if (sink) {
                // The first word of each object is reached by chasing
                // the discovering reference; the rest stream.
                if (s == 0) {
                    sink->loadDep(obj, 8);
                } else {
                    sink->load(obj + Addr{s} * 8, 8);
                }
                sink->compute(costs_.copyPerWord);
            }
            std::uint64_t word = src.load64(obj + Addr{s} * 8);
            if (s == 1) {
                // Klass pointer -> integer type ID.
                word = type_id_of(v.klassId());
            } else if (s >= header_slots && bitmap[s]) {
                // Reference -> relative address.
                charge(sink, costs_.refAdjust);
                word = word ? encodeRef(ref_rel(word)) : 0;
            }
            w.u64(word);
        }
    }
    w.patchU32(len_at, static_cast<std::uint32_t>(assigned_bytes));
    w.patchU32(len_at + 4,
               static_cast<std::uint32_t>(assigned_bytes >> 32));

    // Trailing type table: id -> class name.
    setPhase(sink, "metadata");
    w.u32(static_cast<std::uint32_t>(type_table.size()));
    for (KlassId id : type_table) {
        const auto &d = src.registry().klass(id);
        w.str(d.name());
        charge(sink, d.name().size());
    }

    return w.take();
}

Addr
SkywaySerializer::deserialize(const std::vector<std::uint8_t> &stream,
                              Heap &dst, MemSink *sink)
{
    ByteReader r(stream, sink);
    decode_check(r.u32() == kMagic, DecodeStatus::BadMagic, 0,
                 "bad Skyway stream magic");
    std::uint64_t data_bytes = r.u64();
    decode_check(data_bytes <= r.remaining(), DecodeStatus::BadLength,
                 4, "data section (%llu B) exceeds stream (%zu B left)",
                 (unsigned long long)data_bytes, r.remaining());
    decode_check(data_bytes % 8 == 0, DecodeStatus::Malformed, 4,
                 "data section length %llu not slot-aligned",
                 (unsigned long long)data_bytes);

    // Bulk copy of the whole data section into fresh heap space — the
    // "simple memory copy" Skyway is built around.
    setPhase(sink, "copy");
    Addr base = dst.allocateRaw(data_bytes);
    {
        std::vector<std::uint8_t> tmp(data_bytes);
        r.raw(tmp.data(), data_bytes);
        dst.storeBytes(base, tmp.data(), data_bytes);
        if (sink) {
            for (Addr off = 0; off < data_bytes; off += 64) {
                auto chunk = static_cast<std::uint32_t>(
                    std::min<Addr>(64, data_bytes - off));
                sink->store(base + off, chunk);
                sink->compute(costs_.bulkPerBlock);
            }
        }
    }

    // Type table: resolve stream type IDs to registry classes.
    setPhase(sink, "metadata");
    std::size_t count_at = r.pos();
    std::uint32_t type_count = r.u32();
    // Each table entry is at least a 2 B length prefix.
    decode_check(type_count <= r.remaining() / 2, DecodeStatus::BadLength,
                 count_at, "type table count %u exceeds remaining stream",
                 type_count);
    std::vector<KlassId> types(type_count);
    for (std::uint32_t i = 0; i < type_count; ++i) {
        std::size_t name_at = r.pos();
        std::string type_name = r.str();
        KlassId id = dst.registry().idByName(type_name);
        decode_check(id != kBadKlassId, DecodeStatus::BadClass, name_at,
                     "unknown class '%s' in Skyway stream",
                     type_name.c_str());
        types[i] = id;
        charge(sink, 2 * type_name.size());
    }
    decode_check(r.done(), DecodeStatus::Malformed, r.pos(),
                 "trailing bytes after Skyway type table");

    // Validation pre-pass over the copied image: every object header
    // must name a known type, every object must fit inside the data
    // section, and array lengths (which came off the wire) must not
    // overflow the slot arithmetic. Records the set of valid object
    // start offsets so the fix-up pass can reject references that
    // point between objects.
    setPhase(sink, "walk");
    const unsigned header_slots = dst.registry().headerSlots();
    const auto &reg = dst.registry();
    std::unordered_set<Addr> starts;
    {
        Addr off = 0;
        while (off < data_bytes) {
            const Addr avail = data_bytes - off;
            decode_check(avail >= Addr{header_slots} * 8,
                         DecodeStatus::Truncated, 12 + off,
                         "object header at +%llu overruns data section",
                         (unsigned long long)off);
            std::uint64_t tid = dst.load64(base + off + 8);
            decode_check(tid < types.size(), DecodeStatus::BadClass,
                         12 + off, "bad Skyway type id %llu at +%llu",
                         (unsigned long long)tid, (unsigned long long)off);
            KlassId id = types[tid];
            const auto &d = reg.klass(id);
            std::uint64_t slots;
            if (d.isArray()) {
                decode_check(avail >= Addr{header_slots + 1} * 8,
                             DecodeStatus::Truncated, 12 + off,
                             "array header at +%llu overruns data section",
                             (unsigned long long)off);
                std::uint64_t len = dst.load64(
                    base + off + Addr{reg.arrayLengthSlot()} * 8);
                const unsigned esz = fieldTypeBytes(d.elemType());
                // Overflow-safe bound before the len * esz product.
                decode_check(len <= avail / esz, DecodeStatus::BadLength,
                             12 + off,
                             "array length %llu at +%llu exceeds data "
                             "section",
                             (unsigned long long)len,
                             (unsigned long long)off);
                slots = header_slots + 1 + (len * esz + 7) / 8;
            } else {
                slots = reg.instanceSlots(id);
            }
            decode_check(slots * 8 <= avail, DecodeStatus::Truncated,
                         12 + off,
                         "object at +%llu (%llu slots) overruns data "
                         "section",
                         (unsigned long long)off,
                         (unsigned long long)slots);
            starts.insert(off);
            off += slots * 8;
        }
    }
    decode_check(!starts.empty(), DecodeStatus::Malformed, 12,
                 "empty Skyway stream (no objects in data section)");

    // Sequential fix-up pass: restore klass pointers, rebase references.
    setPhase(sink, "patch");
    Addr off = 0;
    Addr root = 0;
    bool first = true;
    while (off < data_bytes) {
        Addr obj = base + off;
        charge(sink, costs_.fixupPerObject);

        if (sink) {
            sink->load(obj + 8, 8);
        }
        std::uint64_t tid = dst.load64(obj + 8);
        KlassId id = types[tid]; // validated by the pre-pass
        dst.store64(obj + 8, dst.registry().metadataAddr(id));
        if (sink) {
            sink->store(obj + 8, 8);
        }
        if (dst.registry().hasCerealHeaderExt()) {
            // Stale visited counters from the sender must not leak.
            dst.store64(obj + 16, 0);
        }

        dst.noteObject(obj);
        if (first) {
            root = obj;
            first = false;
        }

        const unsigned slots = dst.objectSlots(obj);
        const auto bitmap = dst.instanceBitmap(obj);
        for (unsigned s = header_slots; s < slots; ++s) {
            if (!bitmap[s]) {
                continue;
            }
            charge(sink, costs_.refAdjust);
            Addr slot_addr = obj + Addr{s} * 8;
            if (sink) {
                sink->load(slot_addr, 8);
            }
            std::uint64_t enc = dst.load64(slot_addr);
            if (enc != 0) {
                // Non-null references carry the tag bit and must land on
                // an object start inside the data section.
                decode_check(enc & 1, DecodeStatus::Malformed,
                             12 + off + Addr{s} * 8,
                             "untagged non-null reference %#llx at +%llu",
                             (unsigned long long)enc,
                             (unsigned long long)off);
                Addr rel = enc >> 1;
                decode_check(starts.count(rel) != 0,
                             DecodeStatus::BadHandle,
                             12 + off + Addr{s} * 8,
                             "reference offset +%llu is not an object "
                             "start",
                             (unsigned long long)rel);
                dst.store64(slot_addr, base + rel);
                if (sink) {
                    sink->store(slot_addr, 8);
                }
            }
        }
        off += Addr{slots} * 8;
    }
    return root;
}

} // namespace cereal
