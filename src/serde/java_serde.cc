#include "serde/java_serde.hh"

#include <deque>
#include <unordered_map>

#include "heap/object.hh"
#include "serde/bytes.hh"
#include "sim/logging.hh"

namespace cereal {

namespace {

constexpr std::uint32_t kMagic = 0xACED0005;
constexpr std::uint8_t kTagObject = 0x73;
constexpr std::uint8_t kTagArray = 0x75;
constexpr std::uint8_t kTagClassDescFull = 0x72;
constexpr std::uint8_t kTagClassDescHandle = 0x71;
constexpr std::uint32_t kNullHandle = 0xffffffff;

char
typeChar(FieldType t)
{
    switch (t) {
      case FieldType::Boolean: return 'Z';
      case FieldType::Byte: return 'B';
      case FieldType::Char: return 'C';
      case FieldType::Short: return 'S';
      case FieldType::Int: return 'I';
      case FieldType::Long: return 'J';
      case FieldType::Float: return 'F';
      case FieldType::Double: return 'D';
      case FieldType::Reference: return 'L';
    }
    return '?';
}

bool
typeFromChar(char c, FieldType &out)
{
    switch (c) {
      case 'Z': out = FieldType::Boolean; return true;
      case 'B': out = FieldType::Byte; return true;
      case 'C': out = FieldType::Char; return true;
      case 'S': out = FieldType::Short; return true;
      case 'I': out = FieldType::Int; return true;
      case 'J': out = FieldType::Long; return true;
      case 'F': out = FieldType::Float; return true;
      case 'D': out = FieldType::Double; return true;
      case 'L': out = FieldType::Reference; return true;
    }
    return false;
}

void
charge(MemSink *sink, std::uint64_t ops)
{
    if (sink) {
        sink->compute(ops);
    }
}

/** Phase annotation for time attribution (no-op on null sinks). */
void
setPhase(MemSink *sink, const char *name)
{
    if (sink) {
        sink->phase(name);
    }
}

/** Model an identity-hash-map probe in scratch memory. */
void
chargeProbe(MemSink *sink, const JavaSerdeCosts &costs, Addr key)
{
    if (!sink) {
        return;
    }
    sink->compute(costs.handleProbe);
    // Bucket read + entry read, scattered over a table.
    Addr bucket = kScratchBase + (key * 0x9e3779b97f4a7c15ULL) % (1 << 22);
    sink->load(roundDown(bucket, 8), 8);
    sink->load(roundDown(bucket, 8) + 8, 8);
}

} // namespace

std::vector<std::uint8_t>
JavaSerializer::serialize(Heap &src, Addr root, MemSink *sink)
{
    ByteWriter w(sink);
    w.u32(kMagic);

    // Object handles are assigned in enqueue (BFS discovery) order, so
    // record i in the stream describes handle i.
    std::unordered_map<Addr, std::uint32_t> handles;
    std::deque<Addr> queue;
    std::unordered_map<KlassId, std::uint32_t> class_handles;

    auto handle_of = [&](Addr obj) -> std::uint32_t {
        if (obj == 0) {
            return kNullHandle;
        }
        chargeProbe(sink, costs_, obj);
        auto it = handles.find(obj);
        if (it != handles.end()) {
            return it->second;
        }
        auto h = static_cast<std::uint32_t>(handles.size());
        handles.emplace(obj, h);
        queue.push_back(obj);
        return h;
    };

    auto write_classdesc = [&](KlassId id) {
        setPhase(sink, "metadata");
        auto it = class_handles.find(id);
        if (it != class_handles.end()) {
            w.u8(kTagClassDescHandle);
            w.u32(it->second);
            charge(sink, 8);
            return;
        }
        const auto &d = src.registry().klass(id);
        w.u8(kTagClassDescFull);
        w.str(d.name());
        charge(sink, costs_.stringOpPerByte * d.name().size());
        if (d.isArray()) {
            w.u8(1);
            w.u8(static_cast<std::uint8_t>(typeChar(d.elemType())));
        } else {
            w.u8(0);
            w.u16(static_cast<std::uint16_t>(d.numFields()));
            for (const auto &f : d.fields()) {
                // ObjectStreamClass resolves each declared field
                // reflectively when building the descriptor.
                charge(sink, costs_.reflectLookup +
                                 costs_.stringOpPerByte * f.name.size());
                w.u8(static_cast<std::uint8_t>(typeChar(f.type)));
                w.str(f.name);
            }
        }
        class_handles.emplace(
            id, static_cast<std::uint32_t>(class_handles.size()));
    };

    setPhase(sink, "walk");
    handle_of(root);
    while (!queue.empty()) {
        Addr obj = queue.front();
        queue.pop_front();

        setPhase(sink, "walk");
        // Header read to find the object's class: the address came from
        // the reference that discovered this object (pointer chase).
        if (sink) {
            sink->loadDep(obj, 16);
        }
        charge(sink, costs_.perObject);

        ObjectView v(src, obj);
        const auto &d = v.klass();
        KlassId id = v.klassId();

        if (d.isArray()) {
            w.u8(kTagArray);
            write_classdesc(id);
            setPhase(sink, "copy");
            const std::uint64_t n = v.length();
            w.u32(static_cast<std::uint32_t>(n));
            if (d.elemType() == FieldType::Reference) {
                for (std::uint64_t i = 0; i < n; ++i) {
                    if (sink) {
                        sink->load(v.elemAddr(i), 8);
                    }
                    charge(sink, costs_.perElement);
                    w.u32(handle_of(v.getRefElem(i)));
                }
            } else {
                const unsigned esz = fieldTypeBytes(d.elemType());
                for (std::uint64_t i = 0; i < n; ++i) {
                    if (sink) {
                        sink->load(v.elemAddr(i), esz);
                    }
                    charge(sink, costs_.perElement);
                    std::uint64_t e = v.getElem(i);
                    w.raw(&e, esz);
                }
            }
            continue;
        }

        w.u8(kTagObject);
        write_classdesc(id);
        setPhase(sink, "copy");
        for (std::uint32_t i = 0; i < d.numFields(); ++i) {
            const auto &f = d.fields()[i];
            // Field extraction through the reflect package.
            charge(sink, costs_.reflectLookup + costs_.reflectGet +
                             costs_.stringOpPerByte * f.name.size());
            if (sink) {
                sink->load(v.fieldAddr(i), 8);
            }
            if (f.type == FieldType::Reference) {
                w.u32(handle_of(v.getRef(i)));
            } else {
                std::uint64_t raw = v.getRaw(i);
                w.raw(&raw, fieldTypeBytes(f.type));
            }
        }
    }

    return w.take();
}

Addr
JavaSerializer::deserialize(const std::vector<std::uint8_t> &stream,
                            Heap &dst, MemSink *sink)
{
    ByteReader r(stream, sink);
    decode_check(r.u32() == kMagic, DecodeStatus::BadMagic, 0,
                 "bad Java stream magic");

    std::vector<Addr> handles;
    std::vector<KlassId> class_handles;
    struct Patch
    {
        Addr slotAddr;
        std::uint32_t handle;
    };
    std::vector<Patch> patches;

    auto read_classdesc = [&]() -> KlassId {
        setPhase(sink, "metadata");
        std::size_t tag_at = r.pos();
        std::uint8_t tag = r.u8();
        if (tag == kTagClassDescHandle) {
            std::uint32_t h = r.u32();
            charge(sink, 8);
            decode_check(h < class_handles.size(), DecodeStatus::BadHandle,
                         tag_at, "class handle %u out of range (%zu known)",
                         h, class_handles.size());
            return class_handles[h];
        }
        decode_check(tag == kTagClassDescFull, DecodeStatus::BadTag,
                     tag_at, "bad classdesc tag %u", tag);
        std::string cls_name = r.str();
        // Type resolution: hash the name and match it against the
        // registry — the string work the paper calls out as Java S/D's
        // bottleneck.
        charge(sink, 2 * costs_.stringOpPerByte * cls_name.size());
        chargeProbe(sink, costs_, cls_name.size());
        bool is_array = r.u8() != 0;
        KlassId id;
        if (is_array) {
            std::size_t elem_at = r.pos();
            FieldType elem;
            decode_check(typeFromChar(static_cast<char>(r.u8()), elem),
                         DecodeStatus::BadTag, elem_at,
                         "bad array element type char");
            id = dst.registry().arrayKlass(elem);
        } else {
            id = dst.registry().idByName(cls_name);
            decode_check(id != kBadKlassId, DecodeStatus::BadClass,
                         r.pos(), "unknown class '%s' in stream",
                         cls_name.c_str());
            std::uint16_t nf = r.u16();
            decode_check(nf == dst.registry().klass(id).numFields(),
                         DecodeStatus::Malformed, r.pos(),
                         "field count mismatch for '%s' (%u vs %zu)",
                         cls_name.c_str(), nf,
                         dst.registry().klass(id).numFields());
            for (std::uint16_t i = 0; i < nf; ++i) {
                r.u8(); // type char
                std::string fname = r.str();
                // Matching serialized fields to runtime Field objects.
                charge(sink, costs_.reflectLookup +
                                 2 * costs_.stringOpPerByte * fname.size());
            }
        }
        class_handles.push_back(id);
        return id;
    };

    while (!r.done()) {
        setPhase(sink, "walk");
        std::uint8_t tag = r.u8();
        // readObject0 dispatch + descriptor validation + handle setup +
        // reflective allocation path.
        charge(sink, costs_.deserPerObject);
        if (tag == kTagArray) {
            KlassId id = read_classdesc();
            const auto &d = dst.registry().klass(id);
            decode_check(d.isArray(), DecodeStatus::Malformed, r.pos(),
                         "array record with non-array class '%s'",
                         d.name().c_str());
            std::size_t len_at = r.pos();
            std::uint32_t n = r.u32();
            // Allocation cap: every element still owes bytes in the
            // stream (4 B per reference, element size otherwise), so a
            // count beyond remaining()/esz can never be satisfied.
            const unsigned wire_esz =
                d.elemType() == FieldType::Reference
                    ? 4
                    : fieldTypeBytes(d.elemType());
            decode_check(n <= r.remaining() / wire_esz,
                         DecodeStatus::BadLength, len_at,
                         "array length %u exceeds remaining stream", n);
            setPhase(sink, "copy");
            charge(sink, costs_.alloc);
            Addr obj = dst.allocateArray(d.elemType(), n);
            if (sink) {
                sink->store(obj, 24);
            }
            handles.push_back(obj);
            ObjectView v(dst, obj);
            if (d.elemType() == FieldType::Reference) {
                for (std::uint32_t i = 0; i < n; ++i) {
                    charge(sink, costs_.perElement);
                    std::uint32_t h = r.u32();
                    patches.push_back({v.elemAddr(i), h});
                }
            } else {
                const unsigned esz = fieldTypeBytes(d.elemType());
                for (std::uint32_t i = 0; i < n; ++i) {
                    charge(sink, costs_.perElement);
                    std::uint64_t e = 0;
                    r.raw(&e, esz);
                    v.setElem(i, e);
                    if (sink) {
                        sink->store(v.elemAddr(i), esz);
                    }
                }
            }
            continue;
        }
        decode_check(tag == kTagObject, DecodeStatus::BadTag, r.pos(),
                     "bad record tag %u", tag);
        KlassId id = read_classdesc();
        const auto &d = dst.registry().klass(id);
        decode_check(!d.isArray(), DecodeStatus::Malformed, r.pos(),
                     "object record with array class '%s'",
                     d.name().c_str());
        setPhase(sink, "copy");
        charge(sink, costs_.alloc);
        Addr obj = dst.allocateInstance(id);
        if (sink) {
            sink->store(obj, 16);
        }
        handles.push_back(obj);
        ObjectView v(dst, obj);
        for (std::uint32_t i = 0; i < d.numFields(); ++i) {
            const auto &f = d.fields()[i];
            charge(sink, costs_.deserPerField + costs_.reflectSet +
                             costs_.stringOpPerByte * f.name.size());
            if (f.type == FieldType::Reference) {
                std::uint32_t h = r.u32();
                patches.push_back({v.fieldAddr(i), h});
            } else {
                std::uint64_t raw = 0;
                r.raw(&raw, fieldTypeBytes(f.type));
                v.setRaw(i, raw);
            }
            if (sink) {
                sink->store(v.fieldAddr(i), 8);
            }
        }
    }

    // Resolve forward references now that every handle has an address.
    setPhase(sink, "patch");
    for (const auto &p : patches) {
        charge(sink, 4);
        Addr target = 0;
        if (p.handle != kNullHandle) {
            decode_check(p.handle < handles.size(),
                         DecodeStatus::BadHandle, r.pos(),
                         "object handle %u out of range (%zu objects)",
                         p.handle, handles.size());
            target = handles[p.handle];
        }
        dst.store64(p.slotAddr, target);
        if (sink) {
            sink->store(p.slotAddr, 8);
        }
    }

    decode_check(!handles.empty(), DecodeStatus::Malformed, r.pos(),
                 "empty Java stream (no object records)");
    return handles[0];
}

} // namespace cereal
