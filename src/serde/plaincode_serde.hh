/**
 * @file
 * Model of a *generated* plain-code serializer ("Serializing Java
 * Objects in Plain Code", cf. PAPERS.md).
 *
 * Instead of walking class metadata reflectively at run time, a
 * plain-code serializer emits one monomorphic encode/decode routine
 * per class at build time: the field list is burned into straight-line
 * code, so there is no per-field type dispatch, no descriptor lookups,
 * and every branch is perfectly predictable. The model captures that
 * in two ways:
 *  - the wire format is width-classed (varint class id, then one slot
 *    per field at the field's natural width — the width is burned into
 *    the generated routine at schema-compile time, so the stores stay
 *    unconditional; arrays carry a varint length and a packed element
 *    block; references are varint handle tokens);
 *  - all compute is narrated through MemSink::computeStreamlined(),
 *    which the CPU core model charges at CoreConfig::cpiStraightLine
 *    instead of the branchy-dispatch cpiBase.
 *
 * The generated code is compiled against the same schema on both
 * sides, so registry KlassIds appear on the wire directly (validated
 * against the receiving registry on decode). Shared objects still
 * serialize once via a reference resolver — the generated code keeps
 * Kryo-style handles, the one data structure codegen cannot remove.
 */

#ifndef CEREAL_SERDE_PLAINCODE_SERDE_HH
#define CEREAL_SERDE_PLAINCODE_SERDE_HH

#include "serde/serializer.hh"

namespace cereal {

/** Tunable compute-cost constants for the plain-code model (op units). */
struct PlaincodeSerdeCosts
{
    /** Inlined field load + stream store (no accessor call). */
    std::uint64_t fieldGet = 2;
    /** Inlined stream load + field store. */
    std::uint64_t fieldSet = 3;
    /** Reference-resolver probe (identity hash table survives codegen). */
    std::uint64_t handleProbe = 26;
    /** Object allocation on deserialize (TLAB bump, no constructor). */
    std::uint64_t alloc = 36;
    /** Fixed per-object overhead (one direct call into generated code). */
    std::uint64_t perObject = 8;
    /** Per-64 B block cost of primitive-array bulk copies. */
    std::uint64_t bulkPerBlock = 4;
};

/** The generated plain-code serializer model (format id 4). */
class PlaincodeSerializer : public Serializer
{
  public:
    explicit PlaincodeSerializer(
        PlaincodeSerdeCosts costs = PlaincodeSerdeCosts())
        : costs_(costs)
    {
    }

    std::string name() const override { return "plaincode"; }

    std::vector<std::uint8_t>
    serialize(Heap &src, Addr root, MemSink *sink = nullptr) override;

    Addr deserialize(const std::vector<std::uint8_t> &stream, Heap &dst,
                     MemSink *sink = nullptr) override;

  private:
    PlaincodeSerdeCosts costs_;
};

} // namespace cereal

#endif // CEREAL_SERDE_PLAINCODE_SERDE_HH
