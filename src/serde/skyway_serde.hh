/**
 * @file
 * Model of the Skyway serializer (Nguyen et al., ASPLOS 2018).
 *
 * Skyway transfers objects as verbatim memory images (Section II):
 *  - serialization copies each reachable object — header included —
 *    into the stream, rewriting the klass pointer to an integer type ID
 *    and every reference field to a *relative address* (the target's
 *    byte offset inside the stream's data section);
 *  - type registration is automatic: type IDs are assigned on first
 *    encounter and a name table travels with the stream;
 *  - deserialization is one bulk copy of the data section into the heap
 *    followed by a *sequential* fix-up pass that restores klass pointers
 *    and rebases every reference — the serial dependency chain the paper
 *    contrasts with Cereal's parallel block reconstruction.
 */

#ifndef CEREAL_SERDE_SKYWAY_SERDE_HH
#define CEREAL_SERDE_SKYWAY_SERDE_HH

#include "serde/serializer.hh"

namespace cereal {

/** Tunable compute-cost constants for the Skyway model (op units). */
struct SkywaySerdeCosts
{
    /** Visited-table probe (thread-local hash table). */
    std::uint64_t handleProbe = 28;
    /** Per-8 B-word cost of the object image copy. */
    std::uint64_t copyPerWord = 2;
    /** Converting one reference to/from a relative address. */
    std::uint64_t refAdjust = 10;
    /** Fixed per-object overhead (traversal dispatch). */
    std::uint64_t perObject = 40;
    /** Per-object fix-up dispatch on the receiver. */
    std::uint64_t fixupPerObject = 24;
    /** Per-64 B block cost of the receiver's bulk copy. */
    std::uint64_t bulkPerBlock = 6;
};

/** The Skyway serializer model. */
class SkywaySerializer : public Serializer
{
  public:
    explicit SkywaySerializer(SkywaySerdeCosts costs = SkywaySerdeCosts())
        : costs_(costs)
    {
    }

    std::string name() const override { return "skyway"; }

    std::vector<std::uint8_t>
    serialize(Heap &src, Addr root, MemSink *sink = nullptr) override;

    Addr deserialize(const std::vector<std::uint8_t> &stream, Heap &dst,
                     MemSink *sink = nullptr) override;

  private:
    SkywaySerdeCosts costs_;
};

} // namespace cereal

#endif // CEREAL_SERDE_SKYWAY_SERDE_HH
