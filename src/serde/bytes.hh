/**
 * @file
 * Byte-stream writer/reader used by all serialization formats.
 *
 * Both classes optionally narrate their traffic to a MemSink: appends
 * become sequential stores at kStreamBase and reads become sequential
 * loads, so the timing model sees the streaming access pattern that the
 * real serializers exhibit.
 */

#ifndef CEREAL_SERDE_BYTES_HH
#define CEREAL_SERDE_BYTES_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "serde/decode_error.hh"
#include "serde/sink.hh"
#include "sim/logging.hh"

namespace cereal {

/** Append-only byte buffer with little-endian primitives. */
class ByteWriter
{
  public:
    explicit ByteWriter(MemSink *sink = nullptr) : sink_(sink) {}

    std::size_t size() const { return buf_.size(); }
    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

    void
    u8(std::uint8_t v)
    {
        note(1);
        buf_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        raw(&v, 2);
    }

    void
    u32(std::uint32_t v)
    {
        raw(&v, 4);
    }

    void
    u64(std::uint64_t v)
    {
        raw(&v, 8);
    }

    /** LEB128-style unsigned varint (1-10 bytes). */
    void
    varint(std::uint64_t v)
    {
        while (v >= 0x80) {
            u8(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        u8(static_cast<std::uint8_t>(v));
    }

    /** Length-prefixed UTF-8 string. */
    void
    str(const std::string &s)
    {
        u16(static_cast<std::uint16_t>(s.size()));
        raw(s.data(), s.size());
    }

    void
    raw(const void *src, std::size_t n)
    {
        note(n);
        const auto *p = static_cast<const std::uint8_t *>(src);
        buf_.insert(buf_.end(), p, p + n);
    }

    /** Patch a previously written u32 at byte offset @p at. */
    void
    patchU32(std::size_t at, std::uint32_t v)
    {
        panic_if(at + 4 > buf_.size(), "patch out of range");
        std::memcpy(buf_.data() + at, &v, 4);
    }

  private:
    void
    note(std::size_t n)
    {
        if (sink_) {
            sink_->store(kStreamBase + buf_.size(),
                         static_cast<std::uint32_t>(n));
        }
    }

    std::vector<std::uint8_t> buf_;
    MemSink *sink_;
};

/**
 * Sequential reader over a serialized byte stream.
 *
 * All reads are bounds-checked against the buffer and report failure by
 * throwing DecodeError (never panic/abort): the reader is the first line
 * of defence for decoders consuming hostile bytes. Comparisons are done
 * against remaining() so an attacker-controlled length can never wrap
 * the `pos + n` arithmetic.
 */
class ByteReader
{
  public:
    explicit ByteReader(const std::vector<std::uint8_t> &buf,
                        MemSink *sink = nullptr)
        : buf_(&buf), sink_(sink)
    {
    }

    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return buf_->size() - pos_; }
    bool done() const { return pos_ >= buf_->size(); }

    std::uint8_t
    u8()
    {
        std::uint8_t v;
        raw(&v, 1);
        return v;
    }

    std::uint16_t
    u16()
    {
        std::uint16_t v;
        raw(&v, 2);
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v;
        raw(&v, 4);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v;
        raw(&v, 8);
        return v;
    }

    /**
     * LEB128-style unsigned varint (1-10 bytes).
     *
     * Throws DecodeError on a non-terminated varint (Truncated) and on
     * overlong encodings: more than 10 bytes, or a 10th byte carrying
     * bits that overflow 64 bits (BadVarint).
     */
    std::uint64_t
    varint()
    {
        const std::size_t start = pos_;
        std::uint64_t v = 0;
        unsigned shift = 0;
        for (;;) {
            std::uint8_t b = u8();
            if (shift == 63 && (b & 0xfe)) {
                throwDecode(DecodeStatus::BadVarint, start,
                            "varint overflows 64 bits");
            }
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80)) {
                break;
            }
            shift += 7;
            if (shift > 63) {
                throwDecode(DecodeStatus::BadVarint, start,
                            "varint longer than 10 bytes");
            }
        }
        return v;
    }

    std::string
    str()
    {
        std::uint16_t n = u16();
        std::string s(n, '\0');
        raw(s.data(), n);
        return s;
    }

    void
    raw(void *dst, std::size_t n)
    {
        // Compare against remaining(): `pos_ + n` would wrap when a
        // corrupted length field yields a huge n.
        if (n > remaining()) {
            throwDecode(DecodeStatus::Truncated, pos_,
                        "stream underflow (+%zu of %zu remaining)", n,
                        remaining());
        }
        if (n == 0) {
            return; // zero-length reads may pass dst == nullptr
        }
        if (sink_) {
            sink_->load(kStreamBase + pos_,
                        static_cast<std::uint32_t>(n));
        }
        std::memcpy(dst, buf_->data() + pos_, n);
        pos_ += n;
    }

    void
    skip(std::size_t n)
    {
        if (n > remaining()) {
            throwDecode(DecodeStatus::Truncated, pos_,
                        "skip past end (+%zu of %zu remaining)", n,
                        remaining());
        }
        pos_ += n;
    }

  private:
    const std::vector<std::uint8_t> *buf_;
    std::size_t pos_ = 0;
    MemSink *sink_;
};

} // namespace cereal

#endif // CEREAL_SERDE_BYTES_HH
