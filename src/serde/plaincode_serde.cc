#include "serde/plaincode_serde.hh"

#include <deque>
#include <unordered_map>

#include "heap/object.hh"
#include "serde/bytes.hh"
#include "sim/logging.hh"

namespace cereal {

namespace {

constexpr std::uint32_t kMagic = 0x31434c50; // "PLC1"
constexpr std::uint64_t kNullRef = 0;

/**
 * All plain-code compute goes through computeStreamlined(): the
 * generated routines are branch-predictable straight-line code, so the
 * core model charges them at cpiStraightLine rather than cpiBase.
 */
void
charge(MemSink *sink, std::uint64_t ops)
{
    if (sink) {
        sink->computeStreamlined(ops);
    }
}

void
setPhase(MemSink *sink, const char *name)
{
    if (sink) {
        sink->phase(name);
    }
}

void
chargeProbe(MemSink *sink, const PlaincodeSerdeCosts &costs, Addr key)
{
    if (!sink) {
        return;
    }
    sink->computeStreamlined(costs.handleProbe);
    Addr bucket = kScratchBase + (key * 0x9e3779b97f4a7c15ULL) % (1 << 22);
    sink->load(roundDown(bucket, 8), 8);
}

} // namespace

std::vector<std::uint8_t>
PlaincodeSerializer::serialize(Heap &src, Addr root, MemSink *sink)
{
    ByteWriter w(sink);
    w.u32(kMagic);

    std::unordered_map<Addr, std::uint64_t> handles;
    std::deque<Addr> queue;

    // Reference encoding: 0 = null, otherwise handle+1 as a varint.
    auto ref_token = [&](Addr obj) -> std::uint64_t {
        if (obj == 0) {
            return kNullRef;
        }
        chargeProbe(sink, costs_, obj);
        auto it = handles.find(obj);
        if (it != handles.end()) {
            return it->second + 1;
        }
        std::uint64_t h = handles.size();
        handles.emplace(obj, h);
        queue.push_back(obj);
        return h + 1;
    };

    setPhase(sink, "walk");
    ref_token(root);
    while (!queue.empty()) {
        Addr obj = queue.front();
        queue.pop_front();

        setPhase(sink, "walk");
        if (sink) {
            sink->loadDep(obj, 16); // header: resolve class (pointer chase)
        }
        charge(sink, costs_.perObject);

        ObjectView v(src, obj);
        const auto &d = v.klass();
        // Generated code is schema-compiled: registry ids go on the
        // wire directly — no per-stream class numbering handshake.
        w.varint(v.klassId());

        if (d.isArray()) {
            setPhase(sink, "copy");
            const std::uint64_t n = v.length();
            w.varint(n);
            if (d.elemType() == FieldType::Reference) {
                for (std::uint64_t i = 0; i < n; ++i) {
                    if (sink) {
                        sink->load(v.elemAddr(i), 8);
                    }
                    charge(sink, costs_.fieldGet);
                    w.varint(ref_token(v.getRefElem(i)));
                }
            } else {
                // Bulk fast path: copy the backing store as raw bytes.
                const unsigned esz = fieldTypeBytes(d.elemType());
                const Addr bytes = n * esz;
                if (sink) {
                    sink->load(v.elemAddr(0), 0); // position marker
                    for (Addr off = 0; off < bytes; off += 64) {
                        std::uint32_t chunk = static_cast<std::uint32_t>(
                            std::min<Addr>(64, bytes - off));
                        sink->load(v.elemAddr(0) + off, chunk);
                        sink->computeStreamlined(costs_.bulkPerBlock);
                    }
                }
                std::vector<std::uint8_t> tmp(bytes);
                src.loadBytes(v.elemAddr(0), tmp.data(), bytes);
                w.raw(tmp.data(), bytes);
            }
            continue;
        }

        // Width-classed slots: each field is written at its natural
        // width, burned into the generated writer at schema-compile
        // time — still an unconditional store sequence, just with the
        // store width resolved statically instead of a blanket 8 B.
        // References go as varint handle tokens.
        setPhase(sink, "copy");
        for (std::uint32_t i = 0; i < d.numFields(); ++i) {
            const auto &f = d.fields()[i];
            charge(sink, costs_.fieldGet);
            if (sink) {
                sink->load(v.fieldAddr(i), 8);
            }
            if (f.type == FieldType::Reference) {
                w.varint(ref_token(v.getRef(i)));
            } else {
                const std::uint64_t raw = v.getRaw(i);
                w.raw(&raw, fieldTypeBytes(f.type));
            }
        }
    }

    return w.take();
}

Addr
PlaincodeSerializer::deserialize(const std::vector<std::uint8_t> &stream,
                                 Heap &dst, MemSink *sink)
{
    ByteReader r(stream, sink);
    decode_check(r.u32() == kMagic, DecodeStatus::BadMagic, 0,
                 "bad plaincode stream magic");

    std::vector<Addr> handles;
    struct Patch
    {
        Addr slotAddr;
        std::uint64_t token;
    };
    std::vector<Patch> patches;

    while (!r.done()) {
        setPhase(sink, "walk");
        charge(sink, costs_.perObject);
        std::size_t id_at = r.pos();
        std::uint64_t id64 = r.varint();
        decode_check(id64 < dst.registry().size(), DecodeStatus::BadClass,
                     id_at, "unknown plaincode class id %llu (%zu known)",
                     (unsigned long long)id64, dst.registry().size());
        const KlassId id = static_cast<KlassId>(id64);
        const auto &d = dst.registry().klass(id);

        if (d.isArray()) {
            std::size_t len_at = r.pos();
            std::uint64_t n = r.varint();
            // Allocation cap: every element owes wire bytes (at least
            // one varint byte per reference token, the element size
            // otherwise), so bound the count by remaining() before
            // allocating and before the n * esz products below can
            // overflow.
            const unsigned wire_esz =
                d.elemType() == FieldType::Reference
                    ? 1
                    : fieldTypeBytes(d.elemType());
            decode_check(n <= r.remaining() / wire_esz,
                         DecodeStatus::BadLength, len_at,
                         "array length %llu exceeds remaining stream",
                         (unsigned long long)n);
            setPhase(sink, "copy");
            charge(sink, costs_.alloc);
            Addr obj = dst.allocateArray(d.elemType(), n);
            if (sink) {
                sink->store(obj, 24);
            }
            handles.push_back(obj);
            ObjectView v(dst, obj);
            if (d.elemType() == FieldType::Reference) {
                for (std::uint64_t i = 0; i < n; ++i) {
                    charge(sink, costs_.fieldSet);
                    patches.push_back({v.elemAddr(i), r.varint()});
                }
            } else {
                const unsigned esz = fieldTypeBytes(d.elemType());
                const Addr bytes = n * esz;
                std::vector<std::uint8_t> tmp(bytes);
                r.raw(tmp.data(), bytes);
                dst.storeBytes(v.elemAddr(0), tmp.data(), bytes);
                if (sink) {
                    for (Addr off = 0; off < bytes; off += 64) {
                        std::uint32_t chunk = static_cast<std::uint32_t>(
                            std::min<Addr>(64, bytes - off));
                        sink->store(v.elemAddr(0) + off, chunk);
                        sink->computeStreamlined(costs_.bulkPerBlock);
                    }
                }
            }
            continue;
        }

        // Field slots are mandatory at their schema-fixed widths, so
        // the whole record either fits or the stream is truncated.
        setPhase(sink, "copy");
        charge(sink, costs_.alloc);
        Addr obj = dst.allocateInstance(id);
        if (sink) {
            sink->store(obj, 16);
        }
        handles.push_back(obj);
        ObjectView v(dst, obj);
        for (std::uint32_t i = 0; i < d.numFields(); ++i) {
            const auto &f = d.fields()[i];
            charge(sink, costs_.fieldSet);
            if (f.type == FieldType::Reference) {
                patches.push_back({v.fieldAddr(i), r.varint()});
            } else {
                std::uint64_t raw = 0;
                r.raw(&raw, fieldTypeBytes(f.type));
                v.setRaw(i, raw);
            }
            if (sink) {
                sink->store(v.fieldAddr(i), 8);
            }
        }
    }

    setPhase(sink, "patch");
    for (const auto &p : patches) {
        charge(sink, 2);
        Addr target = 0;
        if (p.token != kNullRef) {
            decode_check(p.token - 1 < handles.size(),
                         DecodeStatus::BadHandle, r.pos(),
                         "plaincode ref token %llu out of range "
                         "(%zu objects)",
                         (unsigned long long)p.token, handles.size());
            target = handles[p.token - 1];
        }
        dst.store64(p.slotAddr, target);
        if (sink) {
            sink->store(p.slotAddr, 8);
        }
    }

    decode_check(!handles.empty(), DecodeStatus::Malformed, r.pos(),
                 "empty plaincode stream (no object records)");
    return handles[0];
}

} // namespace cereal
