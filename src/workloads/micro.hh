/**
 * @file
 * Microbenchmark object graphs (paper Section VI-A, Figure 9, Table II).
 *
 * Three data-structure shapes, each in two configurations:
 *  - Tree: narrow (fanout 2, 2,097,150 nodes) and wide (fanout 8,
 *    19,173,960 nodes) — pointer-heavy, hierarchical;
 *  - List: small (524,288 nodes) and large (2,097,152 nodes) — a long
 *    dependence chain of next-pointers;
 *  - Graph: 4,096 nodes with 1 (sparse) or 4,095 (dense) outgoing edges
 *    per node, edges held in reference arrays — reference-dominated.
 *
 * Builders take a scale divisor so tests can run the same shapes at a
 * fraction of the paper's sizes; benchmark binaries pick the divisor
 * from the command line (default keeps runtimes in seconds).
 */

#ifndef CEREAL_WORKLOADS_MICRO_HH
#define CEREAL_WORKLOADS_MICRO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "heap/heap.hh"
#include "sim/rng.hh"

namespace cereal {
namespace workloads {

/** Identifies one microbenchmark configuration (Table II row). */
enum class MicroBench
{
    TreeNarrow,
    TreeWide,
    ListSmall,
    ListLarge,
    GraphSparse,
    GraphDense,
};

/** All six configurations in presentation order. */
const std::vector<MicroBench> &allMicroBenches();

/** Display name ("tree-narrow", ...). */
const char *microBenchName(MicroBench mb);

/**
 * Registers the microbenchmark classes into a registry and builds the
 * object graphs.
 */
class MicroWorkloads
{
  public:
    /** Registers TreeNode2/TreeNode8/ListNode/GraphNode classes. */
    explicit MicroWorkloads(KlassRegistry &registry);

    /**
     * Build the graph for @p mb in @p heap.
     *
     * @param scale_div divide the paper's node counts by this factor
     *                  (>=1); counts are clamped to small minimums
     * @param seed      deterministic seed for values/edges
     * @return the root object
     */
    Addr build(Heap &heap, MicroBench mb, std::uint64_t scale_div = 1,
               std::uint64_t seed = 1) const;

    /**
     * Build a binary/k-ary tree with exactly @p nodes nodes (complete
     * tree shape, breadth-first fill).
     */
    Addr buildTree(Heap &heap, unsigned fanout, std::uint64_t nodes,
                   Rng &rng) const;

    /** Build a singly linked list of @p length nodes. */
    Addr buildList(Heap &heap, std::uint64_t length, Rng &rng) const;

    /**
     * Build a random directed graph of @p nodes nodes with
     * @p edges_per_node outgoing edges each (self-edges allowed, so
     * cycles occur), plus a root holding a node array.
     */
    Addr buildGraph(Heap &heap, std::uint64_t nodes,
                    std::uint64_t edges_per_node, Rng &rng) const;

    KlassId treeNode2() const { return treeNode2_; }
    KlassId treeNode8() const { return treeNode8_; }
    KlassId listNode() const { return listNode_; }
    KlassId graphNode() const { return graphNode_; }

  private:
    KlassRegistry *registry_;
    KlassId treeNode2_;
    KlassId treeNode8_;
    KlassId listNode_;
    KlassId graphNode_;
};

/** Paper-scale node counts for @p mb (Table II), before scaling. */
std::uint64_t microBenchPaperNodes(MicroBench mb);

} // namespace workloads
} // namespace cereal

#endif // CEREAL_WORKLOADS_MICRO_HH
