/**
 * @file
 * Java Serialization Benchmark Suite model (paper Section VI-C,
 * Figure 12).
 *
 * JSBS (jvm-serializers) serializes a fixed MediaContent object graph —
 * a Media record with two Images and associated strings — through ~90
 * serializer libraries. This module provides:
 *
 *  - the MediaContent object-graph builder (classes, strings as char[]
 *    arrays, the standard field complement);
 *  - a profile table of the suite's 88 libraries plus the two
 *    post-paper backends (plaincode, hps). Anchors (java built-in,
 *    kryo, plaincode, hps) are *measured* against our real
 *    implementations; the remaining entries are calibrated relative
 *    profiles spanning
 *    the suite's documented performance spread (fast hand-rolled binary
 *    codecs ... reflective JSON/XML stacks), so the Figure 12
 *    distribution — Cereal 43.4x the suite average, 15.1x the fastest
 *    library — can be reproduced without 85 third-party codebases.
 */

#ifndef CEREAL_WORKLOADS_JSBS_HH
#define CEREAL_WORKLOADS_JSBS_HH

#include <string>
#include <vector>

#include "heap/heap.hh"

namespace cereal {
namespace workloads {

/** One library's profile relative to the measured Java built-in S/D. */
struct JsbsLibrary
{
    std::string name;
    /** Serialization time relative to java-built-in (lower=faster). */
    double serFactor;
    /** Deserialization time relative to java-built-in. */
    double deserFactor;
    /** Serialized size relative to java-built-in. */
    double sizeFactor;
    /** True when the entry is measured, not profiled. */
    bool measured;
};

/** Builder for the JSBS MediaContent graph. */
class JsbsWorkload
{
  public:
    explicit JsbsWorkload(KlassRegistry &registry);

    /**
     * Build one MediaContent instance (Media + 2 Images + strings).
     * @param seed varies string contents deterministically
     */
    Addr buildMediaContent(Heap &heap, std::uint64_t seed = 1) const;

    /**
     * Build an array of @p n MediaContent instances (the suite times
     * repeated S/D over the same shape).
     */
    Addr buildBatch(Heap &heap, std::uint64_t n,
                    std::uint64_t seed = 1) const;

    KlassId mediaContent() const { return mediaContent_; }
    KlassId media() const { return media_; }
    KlassId image() const { return image_; }

  private:
    Addr makeString(Heap &heap, const std::string &s) const;

    KlassRegistry *registry_;
    KlassId mediaContent_;
    KlassId media_;
    KlassId image_;
};

/**
 * The library profile table — the suite's 88 entries plus the two
 * post-paper measured backends (anchors flagged `measured`).
 * Ordered roughly fastest-first as the suite's charts are.
 */
const std::vector<JsbsLibrary> &jsbsLibraries();

} // namespace workloads
} // namespace cereal

#endif // CEREAL_WORKLOADS_JSBS_HH
