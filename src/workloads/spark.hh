/**
 * @file
 * Models of the six HiBench Spark applications (paper Table III,
 * Figures 2 and 13-17).
 *
 * Each application is modelled by two things:
 *
 *  1. a *phase breakdown* under the Java-serializer configuration —
 *     the compute/GC/IO/S-D fractions of Figure 2(a). The paper
 *     measured these on real Spark; here they are workload-model
 *     parameters chosen to match the stated aggregates (S/D averages
 *     39.5% under Java S/D and 28.3% under Kryo; SVM peaks at 90.9%
 *     and 83.4%). Phase fractions under other serializers are *derived*
 *     by rescaling the S/D component with the measured S/D speedup;
 *
 *  2. an *S/D workload generator* producing the object graphs the app
 *     actually shuffles/caches: labeled feature vectors for the ML
 *     apps, key/value records for Terasort, adjacency structures for
 *     NWeight, rating tuples for ALS. These drive the timing models to
 *     obtain the per-app S/D speedups of Figure 13.
 */

#ifndef CEREAL_WORKLOADS_SPARK_HH
#define CEREAL_WORKLOADS_SPARK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "heap/heap.hh"

namespace cereal {
namespace workloads {

/** Phase-time fractions of one app run (sums to 1). */
struct PhaseBreakdown
{
    double compute;
    double gc;
    double io;
    double sd;
};

/** Static description of one Spark application (Table III row). */
struct SparkAppSpec
{
    std::string name;
    std::string type;
    /** HiBench input size, MB (Table III). */
    unsigned inputMB;
    /** Figure 2(a) breakdown under Java S/D. */
    PhaseBreakdown javaPhases;
};

/** All six applications in Table III order. */
const std::vector<SparkAppSpec> &sparkApps();

/**
 * Rescale @p java_phases for a serializer whose S/D runs
 * @p sd_speedup times faster than Java S/D; the other phases keep
 * their absolute time (Amdahl).
 */
PhaseBreakdown scalePhases(const PhaseBreakdown &java_phases,
                           double sd_speedup);

/** Whole-program speedup when only the S/D phase accelerates. */
double programSpeedup(const PhaseBreakdown &java_phases,
                      double sd_speedup);

/** Object-graph builders for the apps' S/D payloads. */
class SparkWorkloads
{
  public:
    explicit SparkWorkloads(KlassRegistry &registry);

    /**
     * Build the representative shuffle/cache batch for @p app_name.
     *
     * @param scale_div divides the modelled batch object count
     * @return root of the batch graph
     */
    Addr build(Heap &heap, const std::string &app_name,
               std::uint64_t scale_div = 1, std::uint64_t seed = 1) const;

    // Individual builders (also used by examples/tests):

    /** LabeledPoint{label, DenseVector{double[d]}} batch (SVM/LR/Bayes). */
    Addr buildLabeledPoints(Heap &heap, std::uint64_t n, unsigned dim,
                            std::uint64_t seed) const;

    /** Terasort 10+90-byte key/value records. */
    Addr buildTerasortRecords(Heap &heap, std::uint64_t n,
                              std::uint64_t seed) const;

    /** Rating{user,product,rating} tuples (ALS). */
    Addr buildRatings(Heap &heap, std::uint64_t n,
                      std::uint64_t seed) const;

    /** Vertex adjacency batch with weighted edges (NWeight). */
    Addr buildAdjacency(Heap &heap, std::uint64_t vertices,
                        std::uint64_t degree, std::uint64_t seed) const;

  private:
    KlassRegistry *registry_;
    KlassId labeledPoint_;
    KlassId denseVector_;
    KlassId terasortRecord_;
    KlassId rating_;
    KlassId vertex_;
    KlassId edge_;
};

} // namespace workloads
} // namespace cereal

#endif // CEREAL_WORKLOADS_SPARK_HH
