#include "workloads/jsbs.hh"

#include "heap/object.hh"
#include "sim/rng.hh"

namespace cereal {
namespace workloads {

JsbsWorkload::JsbsWorkload(KlassRegistry &registry) : registry_(&registry)
{
    image_ = registry.add("jsbs.Image", {{"uri", FieldType::Reference},
                                         {"title", FieldType::Reference},
                                         {"width", FieldType::Int},
                                         {"height", FieldType::Int},
                                         {"size", FieldType::Int}});
    media_ = registry.add(
        "jsbs.Media",
        {{"uri", FieldType::Reference},
         {"title", FieldType::Reference},
         {"width", FieldType::Int},
         {"height", FieldType::Int},
         {"format", FieldType::Reference},
         {"duration", FieldType::Long},
         {"size", FieldType::Long},
         {"bitrate", FieldType::Int},
         {"hasBitrate", FieldType::Boolean},
         {"persons", FieldType::Reference},
         {"player", FieldType::Int},
         {"copyright", FieldType::Reference}});
    mediaContent_ = registry.add(
        "jsbs.MediaContent", {{"media", FieldType::Reference},
                              {"images", FieldType::Reference}});
    registry.arrayKlass(FieldType::Char);
    registry.arrayKlass(FieldType::Reference);
}

Addr
JsbsWorkload::makeString(Heap &heap, const std::string &s) const
{
    Addr arr = heap.allocateArray(FieldType::Char, s.size());
    ObjectView v(heap, arr);
    for (std::size_t i = 0; i < s.size(); ++i) {
        v.setElem(i, static_cast<std::uint64_t>(s[i]));
    }
    return arr;
}

Addr
JsbsWorkload::buildMediaContent(Heap &heap, std::uint64_t seed) const
{
    Rng rng(seed);
    // The canonical jvm-serializers media payload.
    Addr media = heap.allocateInstance(media_);
    {
        ObjectView m(heap, media);
        m.setRef(0, makeString(heap,
                               "http://javaone.com/keynote.mpg"));
        m.setRef(1, makeString(heap, "Javaone Keynote"));
        m.setInt(2, 640);
        m.setInt(3, 480);
        m.setRef(4, makeString(heap, "video/mpg4"));
        m.setLong(5, 18000000);
        m.setLong(6, 58982400);
        m.setInt(7, 262144);
        m.setRaw(8, 1);
        Addr persons = heap.allocateArray(FieldType::Reference, 2);
        ObjectView pv(heap, persons);
        pv.setRefElem(0, makeString(heap, "Bill Gates"));
        pv.setRefElem(1, makeString(heap, "Steve Jobs"));
        m.setRef(9, persons);
        m.setInt(10, static_cast<std::int32_t>(rng.below(2))); // player
        m.setRef(11, 0); // copyright: null
    }

    Addr images = heap.allocateArray(FieldType::Reference, 2);
    {
        ObjectView iv(heap, images);
        const char *uris[2] = {
            "http://javaone.com/keynote_large.jpg",
            "http://javaone.com/keynote_small.jpg",
        };
        const int dims[2][3] = {{1024, 768, 2}, {320, 240, 0}};
        for (int i = 0; i < 2; ++i) {
            Addr img = heap.allocateInstance(image_);
            ObjectView v(heap, img);
            v.setRef(0, makeString(heap, uris[i]));
            v.setRef(1, i == 0 ? makeString(heap, "Javaone Keynote")
                               : Addr{0});
            v.setInt(2, dims[i][0]);
            v.setInt(3, dims[i][1]);
            v.setInt(4, dims[i][2]);
            iv.setRefElem(i, img);
        }
    }

    Addr mc = heap.allocateInstance(mediaContent_);
    ObjectView v(heap, mc);
    v.setRef(0, media);
    v.setRef(1, images);
    return mc;
}

Addr
JsbsWorkload::buildBatch(Heap &heap, std::uint64_t n,
                         std::uint64_t seed) const
{
    Addr batch = heap.allocateArray(FieldType::Reference, n);
    ObjectView v(heap, batch);
    for (std::uint64_t i = 0; i < n; ++i) {
        v.setRefElem(i, buildMediaContent(heap, seed + i));
    }
    return batch;
}

const std::vector<JsbsLibrary> &
jsbsLibraries()
{
    // Factors are relative to the measured java-built-in run
    // (ser, deser, size); anchors are measured with this repo's real
    // implementations. The spread follows the jvm-serializers wiki's
    // published ordering: hand-rolled/codegen binary codecs fastest,
    // reflective XML stacks slowest, java-built-in near the bottom.
    static const std::vector<JsbsLibrary> libs = {
        // --- measured anchors ------------------------------------------
        {"java-built-in", 1.0, 1.0, 1.0, true},
        {"kryo", 0.0, 0.0, 0.0, true},        // factors filled by bench
        {"plaincode", 0.0, 0.0, 0.0, true},   // factors filled by bench
        {"hps", 0.0, 0.0, 0.0, true},         // factors filled by bench
        {"kryo-manual", 0.22, 0.045, 0.38, false},
        // --- codegen / hand-rolled binary -------------------------------
        {"colfer", 0.16, 0.030, 0.33, false},
        {"protostuff-manual", 0.18, 0.035, 0.36, false},
        {"wobly", 0.19, 0.038, 0.35, false},
        {"wobly-compact", 0.21, 0.040, 0.31, false},
        {"datakernel", 0.17, 0.033, 0.37, false},
        {"protostuff", 0.23, 0.048, 0.36, false},
        {"protostuff-runtime", 0.30, 0.075, 0.38, false},
        {"fst-flat-pre", 0.24, 0.052, 0.40, false},
        {"fst-flat", 0.28, 0.065, 0.42, false},
        {"kryo-flat-pre", 0.25, 0.055, 0.40, false},
        {"kryo-flat", 0.29, 0.068, 0.41, false},
        {"kryo-opt", 0.26, 0.060, 0.39, false},
        {"sbe", 0.20, 0.036, 0.48, false},
        {"capnproto", 0.22, 0.042, 0.55, false},
        {"flatbuffers", 0.27, 0.045, 0.60, false},
        {"java-manual", 0.30, 0.080, 0.58, false},
        {"obser", 0.33, 0.095, 0.62, false},
        // --- schema-based binary frameworks -----------------------------
        {"protobuf", 0.35, 0.090, 0.40, false},
        {"protobuf/protostuff", 0.31, 0.082, 0.40, false},
        {"thrift-compact", 0.38, 0.105, 0.42, false},
        {"thrift", 0.42, 0.120, 0.50, false},
        {"avro-specific", 0.40, 0.135, 0.37, false},
        {"avro-generic", 0.52, 0.190, 0.37, false},
        {"msgpack-manual", 0.33, 0.088, 0.44, false},
        {"msgpack-databind", 0.48, 0.160, 0.46, false},
        {"cbor-manual", 0.36, 0.098, 0.45, false},
        {"cbor/jackson", 0.46, 0.150, 0.47, false},
        {"smile/jackson-manual", 0.37, 0.100, 0.45, false},
        {"smile/jackson", 0.47, 0.155, 0.47, false},
        {"smile/protostuff", 0.38, 0.110, 0.46, false},
        {"ion-binary", 0.50, 0.170, 0.52, false},
        {"bson/jackson", 0.55, 0.200, 0.62, false},
        {"bson/mongodb", 0.75, 0.310, 0.62, false},
        {"fst", 0.36, 0.105, 0.50, false},
        {"hessian", 0.70, 0.330, 0.58, false},
        {"burlap", 1.40, 0.750, 1.10, false},
        {"jboss-serialization", 0.85, 0.460, 0.90, false},
        {"jboss-marshalling-river", 0.78, 0.400, 0.76, false},
        {"jboss-marshalling-serial", 0.95, 0.620, 0.98, false},
        {"stephenerialization", 1.05, 0.700, 0.95, false},
        {"jserial", 0.88, 0.540, 0.92, false},
        {"pickle", 0.62, 0.260, 0.55, false},
        {"scala-pickling", 0.80, 0.420, 0.66, false},
        {"chill", 0.45, 0.140, 0.45, false},
        {"chill-java", 0.49, 0.165, 0.46, false},
        // --- JSON databind / reflective ----------------------------------
        {"json/jackson-manual", 0.40, 0.130, 0.72, false},
        {"json/jackson+afterburner", 0.52, 0.185, 0.74, false},
        {"json/jackson", 0.60, 0.240, 0.74, false},
        {"json/jackson-databind", 0.63, 0.260, 0.74, false},
        {"json/fastjson", 0.58, 0.230, 0.74, false},
        {"json/gson-manual", 0.72, 0.300, 0.74, false},
        {"json/gson", 0.95, 0.480, 0.76, false},
        {"json/genson", 0.78, 0.370, 0.75, false},
        {"json/flexjson", 1.80, 1.050, 0.86, false},
        {"json/json-lib", 2.60, 1.600, 0.92, false},
        {"json/json-io", 1.10, 0.640, 0.82, false},
        {"json/jsonij", 1.90, 1.150, 0.88, false},
        {"json/argo", 2.20, 1.350, 0.90, false},
        {"json/svenson", 1.30, 0.780, 0.84, false},
        {"json/mjson", 1.50, 0.900, 0.86, false},
        {"json/json-smart", 0.85, 0.430, 0.78, false},
        {"json/johnzon", 1.00, 0.560, 0.80, false},
        {"json/glassfish", 1.25, 0.740, 0.82, false},
        {"json/jsonp", 1.35, 0.800, 0.82, false},
        {"json/javax-tree", 1.40, 0.860, 0.84, false},
        {"json/simple", 1.60, 0.980, 0.88, false},
        {"json/org.json", 1.45, 0.880, 0.86, false},
        {"json/jsonutil", 1.70, 1.020, 0.88, false},
        {"json/sojo", 1.95, 1.200, 0.90, false},
        {"json/dsl-json", 0.42, 0.140, 0.72, false},
        {"json/dsl-json-databind", 0.50, 0.180, 0.72, false},
        {"json/boon-databind", 0.66, 0.280, 0.76, false},
        {"json/johnson-databind", 0.92, 0.470, 0.78, false},
        {"json/protostuff", 0.56, 0.210, 0.73, false},
        {"json/protobuf", 0.64, 0.270, 0.75, false},
        // --- XML / YAML stacks -------------------------------------------
        {"xml/xstream+c", 2.90, 1.900, 1.55, false},
        {"xml/xstream+c-woodstox", 2.40, 1.550, 1.45, false},
        {"xml/xstream+c-aalto", 2.20, 1.400, 1.45, false},
        {"xml/jaxb", 1.90, 1.150, 1.40, false},
        {"xml/jaxb-aalto", 1.60, 0.950, 1.40, false},
        {"xml/exi-manual", 0.90, 0.520, 0.50, false},
        {"xml/fastinfoset", 1.30, 0.800, 0.92, false},
        {"xml/woodstox-manual", 1.10, 0.660, 1.30, false},
        {"xml/aalto-manual", 0.98, 0.580, 1.30, false},
        {"yaml/snakeyaml", 3.60, 2.300, 1.35, false},
    };
    return libs;
}

} // namespace workloads
} // namespace cereal
