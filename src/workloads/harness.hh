/**
 * @file
 * Shared measurement harness for the benchmark binaries.
 *
 * Provides one-call measurement of a (serializer, object graph) pair:
 * software serializers run through the CPU core timing model, Cereal
 * runs through the accelerator device model; both sit on identically
 * configured DDR4 instances so bandwidth utilisations are comparable
 * (Figures 3, 10, 11, 13, 15).
 */

#ifndef CEREAL_WORKLOADS_HARNESS_HH
#define CEREAL_WORKLOADS_HARNESS_HH

#include <string>

#include "cereal/api.hh"
#include "cpu/core_model.hh"
#include "serde/serializer.hh"
#include "sim/json.hh"

namespace cereal {
namespace workloads {

/** Timing/traffic results of one S/D pair on one workload. */
struct SdMeasurement
{
    std::string serializer;
    double serSeconds = 0;
    double deserSeconds = 0;
    /** DRAM bandwidth utilisation during each phase (0..1). */
    double serBandwidth = 0;
    double deserBandwidth = 0;
    /** CPU-only metrics (zero for Cereal). */
    double serIpc = 0;
    double deserIpc = 0;
    double serLlcMissRate = 0;
    double deserLlcMissRate = 0;
    /** Serialized stream size, bytes. */
    std::uint64_t streamBytes = 0;
    /** Objects in the graph. */
    std::uint64_t objects = 0;
    /** Energy per the paper's accounting (TDP or Table V), joules. */
    double serEnergyJ = 0;
    double deserEnergyJ = 0;

    /**
     * Emit this measurement as one object member named @p key of the
     * writer's currently-open object. The member set is fixed — part
     * of the cereal-bench-v1 schema.
     */
    void writeJson(json::Writer &w, const std::string &key) const;
};

/**
 * Time @p ser on the graph rooted at @p root with the CPU model.
 *
 * A fresh DDR4 + core model pair is used for each direction; the
 * destination heap for deserialization is created internally.
 *
 * @param verify when true, the deserialized graph is checked
 *        isomorphic to the source (panics otherwise)
 */
SdMeasurement measureSoftware(Serializer &ser, Heap &src, Addr root,
                              const CoreConfig &core_cfg = CoreConfig(),
                              bool verify = true);

/**
 * Time Cereal on the graph rooted at @p root with the accelerator
 * model (functional serializer validates the round trip when @p verify
 * is set).
 */
SdMeasurement measureCereal(Heap &src, Addr root,
                            const AccelConfig &accel_cfg = AccelConfig(),
                            const CerealOptions &opts = CerealOptions(),
                            bool verify = true);

/** Geometric mean helper used throughout the figure benches. */
double geomean(const std::vector<double> &xs);

} // namespace workloads
} // namespace cereal

#endif // CEREAL_WORKLOADS_HARNESS_HH
