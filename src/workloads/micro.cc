#include "workloads/micro.hh"

#include <deque>

#include "heap/object.hh"
#include "sim/logging.hh"

namespace cereal {
namespace workloads {

const std::vector<MicroBench> &
allMicroBenches()
{
    static const std::vector<MicroBench> all = {
        MicroBench::TreeNarrow, MicroBench::TreeWide,
        MicroBench::ListSmall,  MicroBench::ListLarge,
        MicroBench::GraphSparse, MicroBench::GraphDense,
    };
    return all;
}

const char *
microBenchName(MicroBench mb)
{
    switch (mb) {
      case MicroBench::TreeNarrow: return "tree-narrow";
      case MicroBench::TreeWide: return "tree-wide";
      case MicroBench::ListSmall: return "list-small";
      case MicroBench::ListLarge: return "list-large";
      case MicroBench::GraphSparse: return "graph-sparse";
      case MicroBench::GraphDense: return "graph-dense";
    }
    return "?";
}

std::uint64_t
microBenchPaperNodes(MicroBench mb)
{
    switch (mb) {
      case MicroBench::TreeNarrow: return 2'097'150;
      case MicroBench::TreeWide: return 19'173'960;
      case MicroBench::ListSmall: return 524'288;
      case MicroBench::ListLarge: return 2'097'152;
      case MicroBench::GraphSparse: return 4'096;
      case MicroBench::GraphDense: return 4'096;
    }
    return 0;
}

MicroWorkloads::MicroWorkloads(KlassRegistry &registry)
    : registry_(&registry)
{
    treeNode2_ = registry.add(
        "TreeNode2", {{"value", FieldType::Long},
                      {"left", FieldType::Reference},
                      {"right", FieldType::Reference}});
    treeNode8_ = registry.add(
        "TreeNode8", {{"value", FieldType::Long},
                      {"c0", FieldType::Reference},
                      {"c1", FieldType::Reference},
                      {"c2", FieldType::Reference},
                      {"c3", FieldType::Reference},
                      {"c4", FieldType::Reference},
                      {"c5", FieldType::Reference},
                      {"c6", FieldType::Reference},
                      {"c7", FieldType::Reference}});
    listNode_ = registry.add(
        "ListNode", {{"value", FieldType::Long},
                     {"next", FieldType::Reference}});
    graphNode_ = registry.add(
        "GraphNode", {{"id", FieldType::Long},
                      {"neighbors", FieldType::Reference}});
    registry.arrayKlass(FieldType::Reference);
}

Addr
MicroWorkloads::build(Heap &heap, MicroBench mb, std::uint64_t scale_div,
                      std::uint64_t seed) const
{
    panic_if(scale_div == 0, "scale divisor must be >= 1");
    Rng rng(seed);
    const std::uint64_t paper_nodes = microBenchPaperNodes(mb);
    switch (mb) {
      case MicroBench::TreeNarrow:
        return buildTree(heap, 2,
                         std::max<std::uint64_t>(paper_nodes / scale_div, 7),
                         rng);
      case MicroBench::TreeWide:
        return buildTree(heap, 8,
                         std::max<std::uint64_t>(paper_nodes / scale_div, 9),
                         rng);
      case MicroBench::ListSmall:
      case MicroBench::ListLarge:
        return buildList(
            heap, std::max<std::uint64_t>(paper_nodes / scale_div, 4), rng);
      case MicroBench::GraphSparse:
        return buildGraph(
            heap, std::max<std::uint64_t>(paper_nodes / scale_div, 8), 1,
            rng);
      case MicroBench::GraphDense: {
        // Dense: every node points at (almost) every other node. Scale
        // node count by sqrt so edge volume scales ~linearly.
        std::uint64_t n = paper_nodes;
        std::uint64_t div = scale_div;
        while (div >= 4) {
            n /= 2;
            div /= 4;
        }
        if (div >= 2) {
            n = n * 100 / 141;
        }
        n = std::max<std::uint64_t>(n, 8);
        return buildGraph(heap, n, n - 1, rng);
      }
    }
    panic("bad microbenchmark id");
}

Addr
MicroWorkloads::buildTree(Heap &heap, unsigned fanout, std::uint64_t nodes,
                          Rng &rng) const
{
    panic_if(fanout != 2 && fanout != 8, "tree fanout must be 2 or 8");
    const KlassId node_klass = (fanout == 2) ? treeNode2_ : treeNode8_;

    Addr root = heap.allocateInstance(node_klass);
    ObjectView(heap, root).setLong(0, static_cast<std::int64_t>(rng.next()));
    std::uint64_t created = 1;

    // Breadth-first fill to get a complete tree of exactly `nodes`.
    std::deque<Addr> frontier{root};
    while (created < nodes && !frontier.empty()) {
        Addr parent = frontier.front();
        frontier.pop_front();
        ObjectView pv(heap, parent);
        for (unsigned c = 0; c < fanout && created < nodes; ++c) {
            Addr child = heap.allocateInstance(node_klass);
            ObjectView cv(heap, child);
            cv.setLong(0, static_cast<std::int64_t>(rng.below(1 << 20)));
            pv.setRef(1 + c, child);
            frontier.push_back(child);
            ++created;
        }
    }
    return root;
}

Addr
MicroWorkloads::buildList(Heap &heap, std::uint64_t length, Rng &rng) const
{
    panic_if(length == 0, "empty list");
    Addr head = heap.allocateInstance(listNode_);
    ObjectView(heap, head)
        .setLong(0, static_cast<std::int64_t>(rng.below(1 << 20)));
    Addr tail = head;
    for (std::uint64_t i = 1; i < length; ++i) {
        Addr node = heap.allocateInstance(listNode_);
        ObjectView nv(heap, node);
        nv.setLong(0, static_cast<std::int64_t>(rng.below(1 << 20)));
        ObjectView(heap, tail).setRef(1, node);
        tail = node;
    }
    return head;
}

Addr
MicroWorkloads::buildGraph(Heap &heap, std::uint64_t nodes,
                           std::uint64_t edges_per_node, Rng &rng) const
{
    panic_if(nodes == 0, "empty graph");
    std::vector<Addr> node_addrs(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i) {
        Addr n = heap.allocateInstance(graphNode_);
        ObjectView(heap, n).setLong(0, static_cast<std::int64_t>(i));
        node_addrs[i] = n;
    }
    for (std::uint64_t i = 0; i < nodes; ++i) {
        Addr arr = heap.allocateArray(FieldType::Reference, edges_per_node);
        ObjectView av(heap, arr);
        for (std::uint64_t e = 0; e < edges_per_node; ++e) {
            av.setRefElem(e, node_addrs[rng.below(nodes)]);
        }
        ObjectView(heap, node_addrs[i]).setRef(1, arr);
    }
    // Root: a reference array holding every node so the whole graph is
    // reachable even if the random edges leave some node unreferenced.
    Addr root = heap.allocateArray(FieldType::Reference, nodes);
    ObjectView rv(heap, root);
    for (std::uint64_t i = 0; i < nodes; ++i) {
        rv.setRefElem(i, node_addrs[i]);
    }
    return root;
}

} // namespace workloads
} // namespace cereal
