#include "workloads/harness.hh"

#include <cmath>

#include "cereal/area_power.hh"
#include "heap/walker.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"

namespace cereal {
namespace workloads {

SdMeasurement
measureSoftware(Serializer &ser, Heap &src, Addr root,
                const CoreConfig &core_cfg, bool verify)
{
    SdMeasurement out;
    out.serializer = ser.name();
    out.objects = GraphWalker(src).stats(root).objectCount;

    // --- serialize ------------------------------------------------------
    std::vector<std::uint8_t> stream;
    {
        EventQueue eq;
        Dram dram("dram.ser", eq);
        CoreModel core(dram, core_cfg);
        auto em = trace::current().sub((ser.name() + ".ser").c_str());
        core.setTrace(em);
        dram.setTrace(em.sub("dram"));
        stream = ser.serialize(src, root, &core);
        auto st = core.finish();
        out.serSeconds = st.seconds;
        out.serBandwidth = st.bandwidthUtil;
        out.serIpc = st.ipc;
        out.serLlcMissRate = st.llcMissRate;
        out.serEnergyJ = AreaPowerModel::softwareEnergyJ(st.seconds);
    }
    out.streamBytes = stream.size();

    // --- deserialize ----------------------------------------------------
    {
        EventQueue eq;
        Dram dram("dram.deser", eq);
        CoreModel core(dram, core_cfg);
        auto em = trace::current().sub((ser.name() + ".deser").c_str());
        core.setTrace(em);
        dram.setTrace(em.sub("dram"));
        Heap dst(src.registry(), 0x9'0000'0000ULL);
        Addr nr = ser.deserialize(stream, dst, &core);
        auto st = core.finish();
        out.deserSeconds = st.seconds;
        out.deserBandwidth = st.bandwidthUtil;
        out.deserIpc = st.ipc;
        out.deserLlcMissRate = st.llcMissRate;
        out.deserEnergyJ = AreaPowerModel::softwareEnergyJ(st.seconds);
        if (verify) {
            std::string why;
            panic_if(!graphEquals(src, root, dst, nr, &why),
                     "%s round trip broken: %s", ser.name().c_str(),
                     why.c_str());
        }
    }
    return out;
}

SdMeasurement
measureCereal(Heap &src, Addr root, const AccelConfig &accel_cfg,
              const CerealOptions &opts, bool verify)
{
    SdMeasurement out;
    out.serializer = "cereal";
    out.objects = GraphWalker(src).stats(root).objectCount;

    AreaPowerModel power(accel_cfg);

    CerealStream stream;
    {
        EventQueue eq;
        Dram dram("dram.ser", eq);
        CerealContext ctx(dram, accel_cfg, opts);
        dram.setTrace(trace::current().sub("cereal.ser_dram"));
        ctx.registerAll(src.registry());
        ObjectOutputStream oos;
        auto w = ctx.writeObject(oos, src, root);
        stream = std::move(w.stream);
        out.serSeconds = w.timing.latencySeconds;
        out.serBandwidth = dram.utilization(w.timing.start, w.timing.done);
        out.serEnergyJ = power.serializeEnergyJ(
            ticksToSeconds(ctx.device().suBusyTicks()));
    }
    out.streamBytes = stream.serializedBytes();

    {
        EventQueue eq;
        Dram dram("dram.deser", eq);
        CerealContext ctx(dram, accel_cfg, opts);
        dram.setTrace(trace::current().sub("cereal.deser_dram"));
        ctx.registerAll(src.registry());
        Heap dst(src.registry(), 0x9'0000'0000ULL);
        Addr nr = ctx.serializer().deserializeStream(stream, dst);
        auto t = ctx.device().deserialize(stream, nr, 0);
        out.deserSeconds = t.latencySeconds;
        out.deserBandwidth = dram.utilization(t.start, t.done);
        out.deserEnergyJ = power.deserializeEnergyJ(
            ticksToSeconds(ctx.device().duBusyTicks()));
        if (verify) {
            std::string why;
            panic_if(!graphEquals(src, root, dst, nr, &why),
                     "cereal round trip broken: %s", why.c_str());
        }
    }
    return out;
}

void
SdMeasurement::writeJson(json::Writer &w, const std::string &key) const
{
    w.key(key);
    w.beginObject();
    w.kv("serializer", serializer);
    w.kv("objects", objects);
    w.kv("stream_bytes", streamBytes);
    w.kv("ser_seconds", serSeconds);
    w.kv("deser_seconds", deserSeconds);
    w.kv("ser_bandwidth", serBandwidth);
    w.kv("deser_bandwidth", deserBandwidth);
    w.kv("ser_ipc", serIpc);
    w.kv("deser_ipc", deserIpc);
    w.kv("ser_llc_miss_rate", serLlcMissRate);
    w.kv("deser_llc_miss_rate", deserLlcMissRate);
    w.kv("ser_energy_j", serEnergyJ);
    w.kv("deser_energy_j", deserEnergyJ);
    w.endObject();
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty()) {
        return 0;
    }
    double log_sum = 0;
    for (double x : xs) {
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace workloads
} // namespace cereal
