#include "workloads/spark.hh"

#include "heap/object.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace cereal {
namespace workloads {

const std::vector<SparkAppSpec> &
sparkApps()
{
    // Java-S/D phase fractions chosen to reproduce Figure 2(a)'s
    // aggregates: mean S/D share 39.5%, SVM 90.9%, visible extra I/O
    // for NWeight.
    static const std::vector<SparkAppSpec> apps = {
        {"NWeight", "Graph", 156, {0.36, 0.07, 0.14, 0.43}},
        {"SVM", "Machine learning", 1740, {0.055, 0.020, 0.016, 0.909}},
        {"Bayes", "Machine learning", 1126, {0.53, 0.08, 0.10, 0.29}},
        {"LR", "Machine learning", 1945, {0.50, 0.07, 0.09, 0.34}},
        {"Terasort", "Sort", 3072, {0.39, 0.05, 0.22, 0.34}},
        {"ALS", "Machine learning", 1331, {0.58, 0.08, 0.06, 0.28}},
    };
    return apps;
}

PhaseBreakdown
scalePhases(const PhaseBreakdown &java_phases, double sd_speedup)
{
    panic_if(sd_speedup <= 0, "bad S/D speedup");
    const double other =
        java_phases.compute + java_phases.gc + java_phases.io;
    const double sd = java_phases.sd / sd_speedup;
    const double total = other + sd;
    return {java_phases.compute / total, java_phases.gc / total,
            java_phases.io / total, sd / total};
}

double
programSpeedup(const PhaseBreakdown &java_phases, double sd_speedup)
{
    const double other =
        java_phases.compute + java_phases.gc + java_phases.io;
    return 1.0 / (other + java_phases.sd / sd_speedup);
}

SparkWorkloads::SparkWorkloads(KlassRegistry &registry)
    : registry_(&registry)
{
    denseVector_ = registry.add(
        "spark.DenseVector", {{"values", FieldType::Reference}});
    labeledPoint_ = registry.add(
        "spark.LabeledPoint", {{"label", FieldType::Double},
                               {"features", FieldType::Reference}});
    terasortRecord_ = registry.add(
        "spark.TerasortRecord", {{"key", FieldType::Reference},
                                 {"value", FieldType::Reference}});
    rating_ = registry.add("spark.Rating", {{"user", FieldType::Int},
                                            {"product", FieldType::Int},
                                            {"rating", FieldType::Double}});
    edge_ = registry.add("spark.Edge", {{"weight", FieldType::Double},
                                        {"target", FieldType::Reference}});
    vertex_ = registry.add(
        "spark.Vertex", {{"id", FieldType::Long},
                         {"edges", FieldType::Reference}});
    registry.arrayKlass(FieldType::Double);
    registry.arrayKlass(FieldType::Byte);
    registry.arrayKlass(FieldType::Reference);
}

Addr
SparkWorkloads::buildLabeledPoints(Heap &heap, std::uint64_t n,
                                   unsigned dim, std::uint64_t seed) const
{
    Rng rng(seed);
    Addr batch = heap.allocateArray(FieldType::Reference, n);
    ObjectView bv(heap, batch);
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr values = heap.allocateArray(FieldType::Double, dim);
        ObjectView vv(heap, values);
        for (unsigned d = 0; d < dim; ++d) {
            double x = rng.uniform();
            std::uint64_t bits;
            static_assert(sizeof(bits) == sizeof(x));
            __builtin_memcpy(&bits, &x, 8);
            vv.setElem(d, bits);
        }
        Addr vec = heap.allocateInstance(denseVector_);
        ObjectView(heap, vec).setRef(0, values);
        Addr lp = heap.allocateInstance(labeledPoint_);
        ObjectView lv(heap, lp);
        lv.setDouble(0, rng.chance(0.5) ? 1.0 : -1.0);
        lv.setRef(1, vec);
        bv.setRefElem(i, lp);
    }
    return batch;
}

Addr
SparkWorkloads::buildTerasortRecords(Heap &heap, std::uint64_t n,
                                     std::uint64_t seed) const
{
    Rng rng(seed);
    Addr batch = heap.allocateArray(FieldType::Reference, n);
    ObjectView bv(heap, batch);
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr key = heap.allocateArray(FieldType::Byte, 10);
        Addr value = heap.allocateArray(FieldType::Byte, 90);
        ObjectView kv(heap, key);
        for (unsigned b = 0; b < 10; ++b) {
            kv.setElem(b, rng.below(95) + 32);
        }
        ObjectView vv(heap, value);
        for (unsigned b = 0; b < 90; ++b) {
            vv.setElem(b, rng.below(95) + 32);
        }
        Addr rec = heap.allocateInstance(terasortRecord_);
        ObjectView rv(heap, rec);
        rv.setRef(0, key);
        rv.setRef(1, value);
        bv.setRefElem(i, rec);
    }
    return batch;
}

Addr
SparkWorkloads::buildRatings(Heap &heap, std::uint64_t n,
                             std::uint64_t seed) const
{
    Rng rng(seed);
    Addr batch = heap.allocateArray(FieldType::Reference, n);
    ObjectView bv(heap, batch);
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr r = heap.allocateInstance(rating_);
        ObjectView rv(heap, r);
        rv.setInt(0, static_cast<std::int32_t>(rng.below(100000)));
        rv.setInt(1, static_cast<std::int32_t>(rng.below(20000)));
        rv.setDouble(2, 1.0 + static_cast<double>(rng.below(9)) / 2.0);
        bv.setRefElem(i, r);
    }
    return batch;
}

Addr
SparkWorkloads::buildAdjacency(Heap &heap, std::uint64_t vertices,
                               std::uint64_t degree,
                               std::uint64_t seed) const
{
    Rng rng(seed);
    std::vector<Addr> verts(vertices);
    for (std::uint64_t i = 0; i < vertices; ++i) {
        verts[i] = heap.allocateInstance(vertex_);
        ObjectView(heap, verts[i])
            .setLong(0, static_cast<std::int64_t>(i));
    }
    for (std::uint64_t i = 0; i < vertices; ++i) {
        Addr edges = heap.allocateArray(FieldType::Reference, degree);
        ObjectView ev(heap, edges);
        for (std::uint64_t e = 0; e < degree; ++e) {
            Addr edge = heap.allocateInstance(edge_);
            ObjectView eo(heap, edge);
            eo.setDouble(0, rng.uniform());
            eo.setRef(1, verts[rng.below(vertices)]);
            ev.setRefElem(e, edge);
        }
        ObjectView(heap, verts[i]).setRef(1, edges);
    }
    Addr batch = heap.allocateArray(FieldType::Reference, vertices);
    ObjectView bv(heap, batch);
    for (std::uint64_t i = 0; i < vertices; ++i) {
        bv.setRefElem(i, verts[i]);
    }
    return batch;
}

Addr
SparkWorkloads::build(Heap &heap, const std::string &app_name,
                      std::uint64_t scale_div, std::uint64_t seed) const
{
    panic_if(scale_div == 0, "scale divisor must be >= 1");
    auto scaled = [&](std::uint64_t paper_n, std::uint64_t min_n) {
        return std::max<std::uint64_t>(paper_n / scale_div, min_n);
    };
    // Batch sizes model one shuffle block's object population.
    if (app_name == "NWeight") {
        return buildAdjacency(heap, scaled(8192, 32), 8, seed);
    }
    if (app_name == "SVM" || app_name == "LR") {
        return buildLabeledPoints(heap, scaled(65536, 64), 16, seed);
    }
    if (app_name == "Bayes") {
        // Sparse-ish text features: short vectors, more objects.
        return buildLabeledPoints(heap, scaled(131072, 64), 8, seed);
    }
    if (app_name == "Terasort") {
        return buildTerasortRecords(heap, scaled(131072, 64), seed);
    }
    if (app_name == "ALS") {
        return buildRatings(heap, scaled(262144, 64), seed);
    }
    fatal("unknown Spark app '%s'", app_name.c_str());
}

} // namespace workloads
} // namespace cereal
