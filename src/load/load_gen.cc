#include "load/load_gen.hh"

#include <cmath>

#include "sim/logging.hh"

namespace cereal {
namespace load {

LoadGenerator::LoadGenerator(LoadGenConfig cfg) : cfg_(cfg)
{
    panic_if(cfg_.nodes < 2, "load generator needs at least 2 nodes");
    panic_if(cfg_.lambdaBase <= 0, "base arrival rate must be > 0");
    panic_if(cfg_.requestsPerNode == 0, "need at least one request");
    panic_if(cfg_.clientsPerNode == 0, "need a client population");
    horizon_ = static_cast<double>(cfg_.requestsPerNode) /
               cfg_.lambdaBase;
}

std::uint8_t
LoadGenerator::classOf(std::uint64_t client)
{
    // Stable per client: a client is gold on every request it makes.
    // Decile split: 1 gold, 6 silver, 3 bronze.
    const std::uint64_t decile = client % 10;
    if (decile == 0) {
        return 0;
    }
    return decile < 7 ? 1 : 2;
}

std::vector<Arrival>
LoadGenerator::arrivalsFor(std::uint32_t origin) const
{
    panic_if(origin >= cfg_.nodes, "origin out of range");

    // Private per-origin randomness: the stream is independent of the
    // order origins are generated in (and of host threading).
    Rng rng(cfg_.seed * 0x2545f4914f6cdd1dULL + origin + 1);
    ShapeEvaluator eval(cfg_.shape, horizon_,
                        cfg_.seed * 0x9e3779b97f4a7c15ULL + origin);

    // Lewis-Shedler thinning: draw a homogeneous Poisson stream at the
    // envelope rate, keep each candidate with probability
    // factor(t) / maxFactor. What survives is an exact sample of the
    // non-homogeneous process with rate lambdaBase * factor(t).
    const double lambdaMax = cfg_.lambdaBase * eval.maxFactor();

    std::vector<Arrival> out;
    out.reserve(cfg_.requestsPerNode);
    double t = 0;
    while (out.size() < cfg_.requestsPerNode) {
        t += -std::log(1.0 - rng.uniform()) / lambdaMax;
        const double keep = eval.factor(t) / eval.maxFactor();
        if (keep < 1.0 && !rng.chance(keep)) {
            continue;
        }
        Arrival a;
        a.t = t;
        a.origin = origin;
        a.dst = static_cast<std::uint32_t>(rng.below(cfg_.nodes - 1));
        if (a.dst >= origin) {
            ++a.dst; // uniform over the n-1 peers
        }
        a.client = static_cast<std::uint64_t>(origin) *
                       cfg_.clientsPerNode +
                   rng.below(cfg_.clientsPerNode);
        a.cls = classOf(a.client);
        out.push_back(a);
    }
    return out;
}

} // namespace load
} // namespace cereal
