/**
 * @file
 * Composable traffic shapes for the serving load generator.
 *
 * A LoadShape describes how the aggregate request rate of a large
 * client population varies over a run: it is a product of modulation
 * components applied to a base Poisson rate. Four component kinds
 * cover the canonical datacenter traffic patterns:
 *
 *  - Steady:     factor 1 everywhere (homogeneous Poisson).
 *  - Diurnal:    1 + amplitude * sin(2*pi * t / period - pi/2), the
 *                day/night swing of a planet-scale user base (starts
 *                at the trough so warm-up sees the quiet period).
 *  - Bursty:     a two-state MMPP (Markov-modulated Poisson process):
 *                exponentially distributed ON/OFF residencies, factor
 *                onFactor while ON and offFactor while OFF.
 *  - FlashCrowd: factor spikeFactor inside one [start, start+duration)
 *                window, 1 outside — a news-event stampede.
 *
 * All times are *fractions of the run horizon* rather than absolute
 * seconds: the same shape can drive a backend whose capacity (and
 * therefore natural run length) is 100x another's, and the spike still
 * lands mid-run. The generator converts to seconds at draw time.
 *
 * Components multiply, so `steady().with(diurnal(...)).with(flash())`
 * is a diurnal curve with a spike on top. Evaluation is deterministic:
 * the only stochastic component (Bursty) draws its switching schedule
 * from a seed owned by the evaluator, never from ambient state.
 */

#ifndef CEREAL_LOAD_LOAD_SHAPE_HH
#define CEREAL_LOAD_LOAD_SHAPE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"

namespace cereal {
namespace load {

/** Modulation component kinds; see the file comment. */
enum class ShapeKind { Steady, Diurnal, Bursty, FlashCrowd };

/** One multiplicative modulation component of a LoadShape. */
struct ShapeComponent
{
    ShapeKind kind = ShapeKind::Steady;
    /** Diurnal: peak-to-mean swing in (0, 1]. */
    double amplitude = 0;
    /** Diurnal: cycle length as a fraction of the horizon. */
    double period = 1.0;
    /** Bursty: rate factor while the ON state holds (> 1). */
    double onFactor = 1.0;
    /** Bursty: rate factor while OFF (in [0, 1]). */
    double offFactor = 1.0;
    /** Bursty: mean state residency as a horizon fraction. */
    double meanResidency = 0.1;
    /** FlashCrowd: spike start as a horizon fraction. */
    double start = 0;
    /** FlashCrowd: spike length as a horizon fraction. */
    double duration = 0;
    /** FlashCrowd: rate factor inside the spike window (> 1). */
    double spikeFactor = 1.0;
};

/** A product of modulation components over a base Poisson rate. */
class LoadShape
{
  public:
    /** Homogeneous Poisson: no modulation. */
    static LoadShape steady();

    /**
     * Sinusoidal day/night swing: factor 1 +/- @p amplitude across
     * @p period_frac of the horizon (default one full cycle per run).
     */
    static LoadShape diurnal(double amplitude, double period_frac = 1.0);

    /**
     * Two-state MMPP: factor @p on_factor for exponentially
     * distributed ON residencies (mean @p mean_residency_frac of the
     * horizon), @p off_factor in between.
     */
    static LoadShape bursty(double on_factor, double off_factor,
                            double mean_residency_frac = 0.1);

    /**
     * One spike window: factor @p spike_factor over
     * [@p start_frac, @p start_frac + @p duration_frac) of the horizon.
     */
    static LoadShape flashCrowd(double spike_factor, double start_frac,
                                double duration_frac);

    /** Compose: this shape's factors multiplied by @p other's. */
    LoadShape with(const LoadShape &other) const;

    const std::vector<ShapeComponent> &components() const
    {
        return components_;
    }

    /**
     * Upper bound on the modulation factor at any instant (thinning
     * envelope for the non-homogeneous Poisson draw).
     */
    double maxFactor() const;

    /** The flash-crowd component, or nullptr when none is present. */
    const ShapeComponent *flashComponent() const;

    /** "steady", "diurnal+flash", ... for bench row names and JSON. */
    std::string describe() const;

  private:
    std::vector<ShapeComponent> components_;
};

/**
 * Deterministic evaluator of one shape over one run: owns the MMPP
 * switching schedule (drawn lazily from its own seeded Rng) so that
 * factor queries at increasing times are pure and repeatable. One
 * evaluator per arrival stream; queries must not go backwards in time.
 */
class ShapeEvaluator
{
  public:
    /**
     * @param horizon_seconds run horizon the fractional times scale to
     * @param seed            seed for the MMPP switching schedule
     */
    ShapeEvaluator(const LoadShape &shape, double horizon_seconds,
                   std::uint64_t seed);

    /** Modulation factor at @p t seconds (t must not decrease). */
    double factor(double t);

    /** Thinning envelope: max factor over the whole horizon. */
    double maxFactor() const { return maxFactor_; }

  private:
    struct BurstyState
    {
        std::size_t component;
        bool on = false;
        /** Next state flip, seconds. */
        double nextSwitch = 0;
        Rng rng;
    };

    const LoadShape shape_;
    double horizon_;
    double maxFactor_;
    std::vector<BurstyState> bursty_;
};

} // namespace load
} // namespace cereal

#endif // CEREAL_LOAD_LOAD_SHAPE_HH
