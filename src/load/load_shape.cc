#include "load/load_shape.hh"

#include <cmath>

#include "sim/logging.hh"

namespace cereal {
namespace load {

LoadShape
LoadShape::steady()
{
    LoadShape s;
    ShapeComponent c;
    c.kind = ShapeKind::Steady;
    s.components_.push_back(c);
    return s;
}

LoadShape
LoadShape::diurnal(double amplitude, double period_frac)
{
    panic_if(amplitude <= 0 || amplitude > 1,
             "diurnal amplitude must be in (0, 1]");
    panic_if(period_frac <= 0, "diurnal period must be positive");
    LoadShape s;
    ShapeComponent c;
    c.kind = ShapeKind::Diurnal;
    c.amplitude = amplitude;
    c.period = period_frac;
    s.components_.push_back(c);
    return s;
}

LoadShape
LoadShape::bursty(double on_factor, double off_factor,
                  double mean_residency_frac)
{
    panic_if(on_factor < 1, "bursty ON factor must be >= 1");
    panic_if(off_factor < 0 || off_factor > 1,
             "bursty OFF factor must be in [0, 1]");
    panic_if(mean_residency_frac <= 0,
             "bursty mean residency must be positive");
    LoadShape s;
    ShapeComponent c;
    c.kind = ShapeKind::Bursty;
    c.onFactor = on_factor;
    c.offFactor = off_factor;
    c.meanResidency = mean_residency_frac;
    s.components_.push_back(c);
    return s;
}

LoadShape
LoadShape::flashCrowd(double spike_factor, double start_frac,
                      double duration_frac)
{
    panic_if(spike_factor < 1, "flash-crowd factor must be >= 1");
    panic_if(start_frac < 0 || duration_frac <= 0,
             "flash-crowd window must lie in the run");
    LoadShape s;
    ShapeComponent c;
    c.kind = ShapeKind::FlashCrowd;
    c.start = start_frac;
    c.duration = duration_frac;
    c.spikeFactor = spike_factor;
    s.components_.push_back(c);
    return s;
}

LoadShape
LoadShape::with(const LoadShape &other) const
{
    LoadShape s = *this;
    for (const auto &c : other.components_) {
        s.components_.push_back(c);
    }
    return s;
}

double
LoadShape::maxFactor() const
{
    double f = 1.0;
    for (const auto &c : components_) {
        switch (c.kind) {
          case ShapeKind::Steady:
            break;
          case ShapeKind::Diurnal:
            f *= 1.0 + c.amplitude;
            break;
          case ShapeKind::Bursty:
            f *= c.onFactor;
            break;
          case ShapeKind::FlashCrowd:
            f *= c.spikeFactor;
            break;
        }
    }
    return f;
}

const ShapeComponent *
LoadShape::flashComponent() const
{
    for (const auto &c : components_) {
        if (c.kind == ShapeKind::FlashCrowd) {
            return &c;
        }
    }
    return nullptr;
}

std::string
LoadShape::describe() const
{
    std::string out;
    for (const auto &c : components_) {
        if (!out.empty()) {
            out += '+';
        }
        switch (c.kind) {
          case ShapeKind::Steady:
            out += "steady";
            break;
          case ShapeKind::Diurnal:
            out += "diurnal";
            break;
          case ShapeKind::Bursty:
            out += "bursty";
            break;
          case ShapeKind::FlashCrowd:
            out += "flash";
            break;
        }
    }
    return out.empty() ? "steady" : out;
}

ShapeEvaluator::ShapeEvaluator(const LoadShape &shape,
                               double horizon_seconds, std::uint64_t seed)
    : shape_(shape), horizon_(horizon_seconds),
      maxFactor_(shape.maxFactor())
{
    panic_if(horizon_ <= 0, "shape evaluator needs a positive horizon");
    const auto &cs = shape_.components();
    for (std::size_t i = 0; i < cs.size(); ++i) {
        if (cs[i].kind != ShapeKind::Bursty) {
            continue;
        }
        BurstyState st{i, false, 0,
                       Rng(seed * 0x9e3779b97f4a7c15ULL + i + 1)};
        // The process starts OFF; the first flip is one exponential
        // residency in.
        const double mean = cs[i].meanResidency * horizon_;
        st.nextSwitch = -std::log(1.0 - st.rng.uniform()) * mean;
        bursty_.push_back(st);
    }
}

double
ShapeEvaluator::factor(double t)
{
    double f = 1.0;
    std::size_t next_bursty = 0;
    const auto &cs = shape_.components();
    for (std::size_t i = 0; i < cs.size(); ++i) {
        const ShapeComponent &c = cs[i];
        switch (c.kind) {
          case ShapeKind::Steady:
            break;
          case ShapeKind::Diurnal: {
            // Trough at t = 0 so warm-up sees the quiet period.
            const double phase =
                2.0 * M_PI * t / (c.period * horizon_);
            f *= 1.0 - c.amplitude * std::cos(phase);
            break;
          }
          case ShapeKind::Bursty: {
            BurstyState &st = bursty_[next_bursty++];
            // Advance the pre-committed switching schedule to t.
            const double mean = c.meanResidency * horizon_;
            while (st.nextSwitch <= t) {
                st.on = !st.on;
                st.nextSwitch +=
                    -std::log(1.0 - st.rng.uniform()) * mean;
            }
            f *= st.on ? c.onFactor : c.offFactor;
            break;
          }
          case ShapeKind::FlashCrowd: {
            const double s = c.start * horizon_;
            const double e = s + c.duration * horizon_;
            if (t >= s && t < e) {
                f *= c.spikeFactor;
            }
            break;
          }
        }
    }
    return f;
}

} // namespace load
} // namespace cereal
