/**
 * @file
 * Deterministic load generator for the cluster serving front-end.
 *
 * Models the aggregate of a large simulated client population (default
 * one million clients per node) as a non-homogeneous Poisson process:
 * a base per-node rate modulated by a composable LoadShape (steady,
 * diurnal, bursty, flash crowd — load_shape.hh). Arrivals are drawn by
 * Lewis-Shedler thinning against the shape's max-factor envelope, so
 * any shape composition stays an exact Poisson sample of its rate
 * curve.
 *
 * Each arrival carries a client id (drawn from the population) and a
 * request class derived from it — 0 = gold (~10%), 1 = silver (~60%),
 * 2 = bronze (~30%) — which the admission controller's shed-by-class
 * policy uses as drop priority.
 *
 * Determinism: each origin node's stream comes from its own seeded
 * Rng and its own ShapeEvaluator, so streams are independent of
 * generation order and identical across host thread counts.
 */

#ifndef CEREAL_LOAD_LOAD_GEN_HH
#define CEREAL_LOAD_LOAD_GEN_HH

#include <cstdint>
#include <vector>

#include "load/load_shape.hh"

namespace cereal {
namespace load {

/** One simulated client request entering the cluster. */
struct Arrival
{
    /** Arrival time, seconds from run start. */
    double t = 0;
    /** Node the client's connection terminates on. */
    std::uint32_t origin = 0;
    /** Uniformly chosen peer that serves the request. */
    std::uint32_t dst = 0;
    /** Simulated client id within the population. */
    std::uint64_t client = 0;
    /** Request class: 0 = gold, 1 = silver, 2 = bronze. */
    std::uint8_t cls = 0;
};

/** Request classes are 0..kRequestClasses-1, best first. */
constexpr unsigned kRequestClasses = 3;

/** Parameters of one generated load. */
struct LoadGenConfig
{
    unsigned nodes = 4;
    /** Base (unmodulated) per-node arrival rate, requests/second. */
    double lambdaBase = 1.0;
    /** Arrivals generated per origin node. */
    std::uint64_t requestsPerNode = 200;
    /** Simulated client population size per node. */
    std::uint64_t clientsPerNode = 1'000'000;
    LoadShape shape = LoadShape::steady();
    std::uint64_t seed = 1;
};

/**
 * Draws per-node arrival streams. Stateless between calls: the stream
 * for an origin is a pure function of (config, origin).
 */
class LoadGenerator
{
  public:
    explicit LoadGenerator(LoadGenConfig cfg);

    const LoadGenConfig &config() const { return cfg_; }

    /**
     * Nominal run length the shape's fractional times scale to: the
     * expected span of requestsPerNode arrivals at the base rate.
     */
    double horizonSeconds() const { return horizon_; }

    /**
     * The complete arrival stream of @p origin, sorted by time.
     * Deterministic: repeated calls return identical vectors.
     */
    std::vector<Arrival> arrivalsFor(std::uint32_t origin) const;

    /** The class a given client id maps to (stable per client). */
    static std::uint8_t classOf(std::uint64_t client);

  private:
    LoadGenConfig cfg_;
    double horizon_ = 0;
};

} // namespace load
} // namespace cereal

#endif // CEREAL_LOAD_LOAD_GEN_HH
